// Tests for the sharded multi-series serving layer.
#include "serve/prediction_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::serve {
namespace {

tsdb::SeriesKey key_of(std::size_t s) {
  return {"host" + std::to_string(s / 4), "dev" + std::to_string(s % 4), "cpu"};
}

std::vector<double> ar1_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = 0.8 * dev + rng.normal(0.0, 2.0);
    x = 50.0 + dev;
  }
  return xs;
}

EngineConfig small_config(std::size_t threads, std::size_t shards = 4) {
  EngineConfig config;
  config.lar.window = 5;
  config.shards = shards;
  config.threads = threads;
  config.train_samples = 40;
  config.audit_every = 0;  // determinism tests drive QA explicitly
  return config;
}

TEST(PredictionEngine, ValidatesConstruction) {
  EXPECT_THROW(PredictionEngine(predictors::PredictorPool{}, small_config(1)),
               InvalidArgument);
  auto zero_shards = small_config(1);
  zero_shards.shards = 0;
  EXPECT_THROW(PredictionEngine(predictors::make_paper_pool(5), zero_shards),
               InvalidArgument);
  auto tiny_train = small_config(1);
  tiny_train.train_samples = tiny_train.lar.window + 1;
  EXPECT_THROW(PredictionEngine(predictors::make_paper_pool(5), tiny_train),
               InvalidArgument);
}

TEST(PredictionEngine, LazyTrainsAfterTrainSamples) {
  PredictionEngine engine(predictors::make_paper_pool(5), small_config(1));
  const auto key = key_of(0);
  const auto series = ar1_series(60, 1);
  for (std::size_t i = 0; i < 39; ++i) engine.observe(key, series[i]);
  EXPECT_FALSE(engine.is_trained(key));
  EXPECT_FALSE(engine.predict(key).ready);
  engine.observe(key, series[39]);
  EXPECT_TRUE(engine.is_trained(key));
  const auto prediction = engine.predict(key);
  EXPECT_TRUE(prediction.ready);
  EXPECT_TRUE(std::isfinite(prediction.value));
  EXPECT_EQ(engine.series_count(), 1u);
  EXPECT_EQ(engine.stats().trains, 1u);
}

// The engine must be a pure fan-out: per-series forecasts are identical to a
// standalone LarPredictor fed the same stream, whatever the thread/shard mix.
TEST(PredictionEngine, MatchesStandaloneLarPredictor) {
  const std::size_t kSeries = 12;
  const std::size_t kTrain = 40;
  const std::size_t kSteps = 30;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PredictionEngine engine(predictors::make_paper_pool(5),
                            small_config(threads));

    std::vector<std::vector<double>> streams;
    std::vector<core::LarPredictor> reference;
    std::vector<tsdb::SeriesKey> keys;
    for (std::size_t s = 0; s < kSeries; ++s) {
      streams.push_back(ar1_series(kTrain + kSteps, 100 + s));
      keys.push_back(key_of(s));
      reference.emplace_back(predictors::make_paper_pool(5),
                             small_config(threads).lar);
      reference.back().train(
          std::span<const double>(streams.back().data(), kTrain));
    }

    std::vector<Observation> batch(kSeries);
    for (std::size_t i = 0; i < kTrain; ++i) {
      for (std::size_t s = 0; s < kSeries; ++s) {
        batch[s] = {keys[s], streams[s][i]};
      }
      engine.observe(batch);
    }

    for (std::size_t i = 0; i < kSteps; ++i) {
      const auto predictions = engine.predict(keys);
      for (std::size_t s = 0; s < kSeries; ++s) {
        const auto expected = reference[s].predict_next();
        ASSERT_TRUE(predictions[s].ready);
        ASSERT_DOUBLE_EQ(predictions[s].value, expected.value)
            << "threads=" << threads << " series " << s << " step " << i;
        ASSERT_EQ(predictions[s].label, expected.label);
      }
      for (std::size_t s = 0; s < kSeries; ++s) {
        batch[s] = {keys[s], streams[s][kTrain + i]};
        reference[s].observe(streams[s][kTrain + i]);
      }
      engine.observe(batch);
    }

    const auto stats = engine.stats();
    EXPECT_EQ(stats.series, kSeries);
    EXPECT_EQ(stats.trained_series, kSeries);
    EXPECT_EQ(stats.observations, kSeries * (kTrain + kSteps));
    EXPECT_EQ(stats.predictions, kSeries * kSteps);
    EXPECT_EQ(stats.resolved, kSeries * kSteps);
    EXPECT_GT(stats.mean_squared_error, 0.0);
    EXPECT_GT(stats.observe_seconds, 0.0);
    EXPECT_GT(stats.predict_seconds, 0.0);
  }
}

TEST(PredictionEngine, QaOrdersRetrainOnBadForecasts) {
  auto config = small_config(2);
  config.audit_every = 8;
  config.quality.mse_threshold = 1.0;
  config.quality.min_records = 4;
  PredictionEngine engine(predictors::make_paper_pool(5), config);

  const auto key = key_of(0);
  const auto series = ar1_series(config.train_samples, 7);
  for (double x : series) engine.observe(key, x);
  ASSERT_TRUE(engine.is_trained(key));

  // A level shift of +400 makes every resolved forecast wildly wrong, so an
  // audit must breach the threshold and order a re-train from the retained
  // (post-shift) history.
  Rng rng(8);
  for (int i = 0; i < 64; ++i) {
    (void)engine.predict(key);
    engine.observe(key, 450.0 + rng.normal(0.0, 1.0));
  }
  const auto stats = engine.stats();
  EXPECT_GT(stats.audits, 0u);
  EXPECT_GT(stats.retrains, 0u);

  // After re-training on the shifted regime, forecasts live at the new level.
  const auto prediction = engine.predict(key);
  ASSERT_TRUE(prediction.ready);
  EXPECT_NEAR(prediction.value, 450.0, 25.0);
}

TEST(PredictionEngine, ManySeriesAcrossShardsAndThreads) {
  auto config = small_config(4, /*shards=*/8);
  config.audit_every = 16;
  PredictionEngine engine(predictors::make_paper_pool(5), config);

  const std::size_t kSeries = 64;
  std::vector<tsdb::SeriesKey> keys;
  std::vector<Rng> rngs;
  std::vector<double> level(kSeries, 0.0);
  for (std::size_t s = 0; s < kSeries; ++s) {
    keys.push_back(key_of(s));
    rngs.emplace_back(1000 + s);
  }
  std::vector<Observation> batch(kSeries);
  const std::size_t total_steps = config.train_samples + 20;
  for (std::size_t i = 0; i < total_steps; ++i) {
    if (i > config.train_samples) (void)engine.predict(keys);
    for (std::size_t s = 0; s < kSeries; ++s) {
      level[s] = 0.8 * level[s] + rngs[s].normal(0.0, 2.0);
      batch[s] = {keys[s], 50.0 + level[s]};
    }
    engine.observe(batch);
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.series, kSeries);
  EXPECT_EQ(stats.trained_series, kSeries);
  EXPECT_EQ(stats.trains, kSeries);
  EXPECT_EQ(stats.observations, kSeries * total_steps);
  EXPECT_GT(stats.resolved, 0u);
  EXPECT_TRUE(std::isfinite(stats.mean_absolute_error));
}

TEST(PredictionEngine, PredictUnknownSeriesIsNotReady) {
  PredictionEngine engine(predictors::make_paper_pool(5), small_config(1));
  const auto prediction = engine.predict(key_of(9));
  EXPECT_FALSE(prediction.ready);
  EXPECT_TRUE(std::isnan(prediction.value));
  EXPECT_TRUE(std::isnan(prediction.uncertainty));
  EXPECT_EQ(engine.series_count(), 0u);
}

}  // namespace
}  // namespace larp::serve
