// DurabilityMode::Async at the engine level: the WalSyncer thread runs
// behind live observe/predict traffic (the TSan job exercises the handoff),
// a clean shutdown loses nothing, and the engine's Interval idle tick is
// deterministic under an injected clock.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "persist/wal.hpp"
#include "serve/prediction_engine.hpp"
#include "util/rng.hpp"

namespace larp::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr std::size_t kSeries = 6;
constexpr std::size_t kTrain = 40;

tsdb::SeriesKey key_of(std::size_t s) {
  return {"host" + std::to_string(s / 2), "dev" + std::to_string(s % 2), "cpu"};
}

EngineConfig base_config() {
  EngineConfig config;
  config.lar.window = 5;
  config.shards = 4;
  config.threads = 1;
  config.train_samples = kTrain;
  config.audit_every = 8;
  return config;
}

EngineConfig async_config(const fs::path& dir, std::size_t backlog_frames = 8,
                          std::chrono::milliseconds deadline = 50ms) {
  EngineConfig config = base_config();
  config.durability.data_dir = dir;
  config.durability.wal.mode = persist::DurabilityMode::Async;
  config.durability.wal.fsync = persist::FsyncPolicy::EveryN;
  config.durability.wal.fsync_every_n = backlog_frames;
  config.durability.wal.fsync_interval = deadline;
  return config;
}

/// Deterministic AR(1) stream, same construction as the recovery tests.
struct StreamState {
  std::vector<Rng> rngs;
  std::vector<double> level;
  StreamState() : level(kSeries, 0.0) {
    Rng parent(2007);
    for (std::size_t s = 0; s < kSeries; ++s) rngs.push_back(parent.split(s));
  }
  double sample(std::size_t s) {
    level[s] = 0.8 * level[s] + rngs[s].normal(0.0, 2.0);
    return 50.0 + level[s];
  }
};

void drive(PredictionEngine& engine, StreamState& stream, std::size_t steps) {
  std::vector<tsdb::SeriesKey> keys;
  for (std::size_t s = 0; s < kSeries; ++s) keys.push_back(key_of(s));
  std::vector<Observation> batch(kSeries);
  for (std::size_t i = 0; i < steps; ++i) {
    (void)engine.predict(keys);
    for (std::size_t s = 0; s < kSeries; ++s) {
      batch[s] = {keys[s], stream.sample(s)};
    }
    engine.observe(batch);
  }
}

void expect_identical_future(PredictionEngine& restored,
                             PredictionEngine& reference, StreamState& stream_a,
                             StreamState& stream_b, std::size_t steps) {
  std::vector<tsdb::SeriesKey> keys;
  for (std::size_t s = 0; s < kSeries; ++s) keys.push_back(key_of(s));
  std::vector<Observation> batch(kSeries);
  for (std::size_t i = 0; i < steps; ++i) {
    const auto got = restored.predict(keys);
    const auto want = reference.predict(keys);
    for (std::size_t s = 0; s < kSeries; ++s) {
      EXPECT_EQ(got[s].ready, want[s].ready) << "series " << s << " step " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[s].value),
                std::bit_cast<std::uint64_t>(want[s].value))
          << "series " << s << " step " << i;
    }
    for (std::size_t s = 0; s < kSeries; ++s) {
      batch[s] = {keys[s], stream_a.sample(s)};
      ASSERT_EQ(batch[s].value, stream_b.sample(s));
    }
    restored.observe(batch);
    reference.observe(batch);
  }
}

class AsyncDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("larp_async_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// Clean shutdown under Async loses nothing: the destructor joins the syncer
// and flushes every shard, so a restore continues bit-identically to an
// uninterrupted reference — same contract as Sync mode.
TEST_F(AsyncDurabilityTest, CleanShutdownRestoresBitIdentically) {
  StreamState stream_a;
  StreamState stream_b;
  auto reference = std::make_unique<PredictionEngine>(
      predictors::make_paper_pool(5), base_config());
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             async_config(dir_));
    drive(durable, stream_a, kTrain + 12);
  }
  drive(*reference, stream_b, kTrain + 12);

  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir_, async_config(dir_));
  const auto restored_stats = restored->stats();
  const auto reference_stats = reference->stats();
  EXPECT_EQ(restored_stats.observations, reference_stats.observations);
  EXPECT_EQ(restored_stats.predictions, reference_stats.predictions);
  EXPECT_EQ(restored_stats.trains, reference_stats.trains);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(restored_stats.mean_squared_error),
            std::bit_cast<std::uint64_t>(reference_stats.mean_squared_error));
  expect_identical_future(*restored, *reference, stream_a, stream_b, 20);
}

// Snapshot + WAL suffix under Async: the incremental snapshot's per-shard
// watermarks must cut each shard exactly where its section was serialized.
TEST_F(AsyncDurabilityTest, SnapshotPlusAsyncWalSuffixRestores) {
  StreamState stream_a;
  StreamState stream_b;
  auto reference = std::make_unique<PredictionEngine>(
      predictors::make_paper_pool(5), base_config());
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             async_config(dir_));
    drive(durable, stream_a, kTrain + 7);
    EXPECT_GT(durable.snapshot(), 0u);
    drive(durable, stream_a, 9);  // lives only in the WAL
  }
  drive(*reference, stream_b, kTrain + 7 + 9);

  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir_, async_config(dir_));
  EXPECT_EQ(restored->stats().observations, reference->stats().observations);
  expect_identical_future(*restored, *reference, stream_a, stream_b, 15);
}

// The syncer thread actually runs: with a tight backlog trigger the engine
// reports background fdatasyncs, and the published-but-unsynced backlog
// stays bounded.  Concurrency: the serving thread commits while the syncer
// fdatasyncs and a reader thread polls stats() — the exact interleaving the
// TSan job verifies.
TEST_F(AsyncDurabilityTest, SyncerRunsBehindLiveTraffic) {
  auto config = async_config(dir_, /*backlog_frames=*/4, /*deadline=*/2ms);
  PredictionEngine engine(predictors::make_paper_pool(5), config);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      (void)engine.stats();
      std::this_thread::yield();
    }
  });
  StreamState stream;
  drive(engine, stream, kTrain + 20);
  done.store(true);
  reader.join();

  EXPECT_EQ(engine.stats().observations, (kTrain + 20) * kSeries);
  // Bounded wait, not an instant assertion: on a single-CPU runner the
  // syncer thread may not have been scheduled at all while the drive loop
  // was hot — once the appender goes idle, the deadline pass must drain
  // every published frame.
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  while (engine.stats().wal_unsynced_frames > 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.wal_unsynced_frames, 0u);
  EXPECT_GT(stats.wal_background_syncs, 0u);
}

// The engine's Interval idle tick, deterministic under an injected clock:
// an idle Sync-mode writer holds its frames only until the interval
// elapses and the maintenance tick runs.
TEST_F(AsyncDurabilityTest, IdleTickBoundsTheIntervalLossWindow) {
  auto ticks = std::make_shared<std::atomic<std::int64_t>>(0);
  EngineConfig config = base_config();
  config.durability.data_dir = dir_;
  config.durability.wal.fsync = persist::FsyncPolicy::Interval;
  config.durability.wal.fsync_interval = std::chrono::minutes(10);
  config.durability.wal.clock = [ticks] {
    return std::chrono::steady_clock::time_point{} +
           std::chrono::milliseconds(ticks->load());
  };
  PredictionEngine engine(predictors::make_paper_pool(5), config);

  engine.observe(key_of(0), 42.0);
  EXPECT_GE(engine.stats().wal_unsynced_frames, 1u);
  engine.sync_wals_if_due();  // interval not elapsed: still unsynced
  EXPECT_GE(engine.stats().wal_unsynced_frames, 1u);

  ticks->fetch_add(std::chrono::milliseconds(std::chrono::minutes(10)).count());
  engine.sync_wals_if_due();
  EXPECT_EQ(engine.stats().wal_unsynced_frames, 0u);
}

// The incremental snapshot records its serving pause: the longest
// single-shard lock hold, which is what replaced the engine-wide
// stop-the-world pause.
TEST_F(AsyncDurabilityTest, SnapshotRecordsPauseMetric) {
  PredictionEngine engine(predictors::make_paper_pool(5), async_config(dir_));
  StreamState stream;
  drive(engine, stream, kTrain + 4);

  EXPECT_EQ(engine.stats().snapshots, 0u);
  EXPECT_GT(engine.snapshot(), 0u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.snapshots, 1u);
  EXPECT_GT(stats.snapshot_max_pause_seconds, 0.0);

  EXPECT_GT(engine.snapshot(), 0u);
  EXPECT_EQ(engine.stats().snapshots, 2u);
}

}  // namespace
}  // namespace larp::serve
