// Tests for the engine-level cold-start tier: fast training at
// fast_train_samples, O(1) serving while the full window fills, handoff at
// train_samples bit-identical to a never-fast engine, and v3 snapshot
// round-trips of a mid-cold-phase engine.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "serve/prediction_engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::serve {
namespace {

tsdb::SeriesKey key_of(std::size_t s) {
  return {"host" + std::to_string(s / 4), "dev" + std::to_string(s % 4), "cpu"};
}

std::vector<double> ar1_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = 0.8 * dev + rng.normal(0.0, 2.0);
    x = 50.0 + dev;
  }
  return xs;
}

EngineConfig fast_config(std::size_t threads = 1, std::size_t shards = 4) {
  EngineConfig config;
  config.lar.window = 5;
  config.lar.fast_tier = selection::FastTier::Tournament;
  config.shards = shards;
  config.threads = threads;
  config.train_samples = 40;
  config.fast_train_samples = 12;
  config.audit_every = 0;
  return config;
}

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::path(::testing::TempDir()) /
            ("larp_fast_tier_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(FastTierEngine, ValidatesConfiguration) {
  auto no_tier = fast_config();
  no_tier.lar.fast_tier = selection::FastTier::None;
  EXPECT_THROW(PredictionEngine(predictors::make_paper_pool(5), no_tier),
               InvalidArgument);

  auto tiny = fast_config();
  tiny.fast_train_samples = tiny.lar.window + 1;
  EXPECT_THROW(PredictionEngine(predictors::make_paper_pool(5), tiny),
               InvalidArgument);

  auto too_late = fast_config();
  too_late.fast_train_samples = too_late.train_samples;
  EXPECT_THROW(PredictionEngine(predictors::make_paper_pool(5), too_late),
               InvalidArgument);
}

TEST(FastTierEngine, ServesFromTheFastTierBeforeFullTraining) {
  PredictionEngine engine(predictors::make_paper_pool(5), fast_config());
  const auto key = key_of(0);
  const auto series = ar1_series(60, 3);

  for (std::size_t i = 0; i < 11; ++i) engine.observe(key, series[i]);
  EXPECT_FALSE(engine.is_fast_serving(key));
  EXPECT_FALSE(engine.predict(key).ready);

  engine.observe(key, series[11]);  // 12th sample: fast-train fires
  EXPECT_TRUE(engine.is_fast_serving(key));
  EXPECT_FALSE(engine.is_trained(key));
  const auto prediction = engine.predict(key);
  EXPECT_TRUE(prediction.ready);
  EXPECT_TRUE(std::isfinite(prediction.value));

  const auto stats = engine.stats();
  EXPECT_EQ(stats.fast_trains, 1u);
  EXPECT_EQ(stats.fast_serving, 1u);
  EXPECT_EQ(stats.trains, 0u);
  EXPECT_EQ(stats.trained_series, 0u);

  // Full depth reached: the classifier takes over.
  for (std::size_t i = 12; i < 40; ++i) engine.observe(key, series[i]);
  EXPECT_TRUE(engine.is_trained(key));
  EXPECT_FALSE(engine.is_fast_serving(key));
  const auto after = engine.stats();
  EXPECT_EQ(after.trains, 1u);
  EXPECT_EQ(after.trained_series, 1u);
  EXPECT_EQ(after.fast_serving, 0u);
  EXPECT_EQ(after.fast_trains, 1u);
}

// The handoff acceptance gate at engine level: once both engines are fully
// trained, a fast-tier engine and a plain engine fed the same stream must
// produce bit-identical forecasts.
TEST(FastTierEngine, HandoffMatchesAPlainEngineBitForBit) {
  const std::size_t kSeriesCount = 8;
  auto plain_cfg = fast_config(4);
  plain_cfg.lar.fast_tier = selection::FastTier::None;
  plain_cfg.fast_train_samples = 0;
  PredictionEngine fast_engine(predictors::make_paper_pool(5), fast_config(4));
  PredictionEngine plain_engine(predictors::make_paper_pool(5), plain_cfg);

  std::vector<std::vector<double>> streams;
  streams.reserve(kSeriesCount);
  for (std::size_t s = 0; s < kSeriesCount; ++s) {
    streams.push_back(ar1_series(90, 100 + s));
  }

  for (std::size_t i = 0; i < 90; ++i) {
    for (std::size_t s = 0; s < kSeriesCount; ++s) {
      const auto key = key_of(s);
      fast_engine.observe(key, streams[s][i]);
      plain_engine.observe(key, streams[s][i]);
      if (i >= 40) {
        const auto a = fast_engine.predict(key);
        const auto b = plain_engine.predict(key);
        ASSERT_EQ(a.ready, b.ready) << "series " << s << " step " << i;
        ASSERT_EQ(a.label, b.label) << "series " << s << " step " << i;
        ASSERT_DOUBLE_EQ(a.value, b.value)
            << "series " << s << " step " << i;
      }
    }
  }
  EXPECT_EQ(fast_engine.stats().fast_trains, kSeriesCount);
  EXPECT_EQ(fast_engine.stats().trains, plain_engine.stats().trains);
}

TEST(FastTierEngine, EraseWhileFastServingKeepsTheGaugesConsistent) {
  PredictionEngine engine(predictors::make_paper_pool(5), fast_config());
  const auto key = key_of(0);
  const auto series = ar1_series(20, 5);
  for (std::size_t i = 0; i < 15; ++i) engine.observe(key, series[i]);
  EXPECT_TRUE(engine.is_fast_serving(key));
  EXPECT_EQ(engine.stats().fast_serving, 1u);
  EXPECT_TRUE(engine.erase(key));
  const auto stats = engine.stats();
  EXPECT_EQ(stats.fast_serving, 0u);
  EXPECT_EQ(stats.trained_series, 0u);
  EXPECT_EQ(stats.series, 0u);
}

// Snapshot an engine while series sit on the fast tier; the restored engine
// must continue serving from the tier and hand off at the same observation.
TEST(FastTierEngine, SnapshotRestoresTheColdPhase) {
  TempDir dir;
  const auto key = key_of(0);
  const auto series = ar1_series(80, 9);

  auto config = fast_config();
  config.durability.data_dir = dir.path();
  std::vector<Prediction> original_tail;
  {
    PredictionEngine engine(predictors::make_paper_pool(5), config);
    for (std::size_t i = 0; i < 20; ++i) engine.observe(key, series[i]);
    EXPECT_TRUE(engine.is_fast_serving(key));
    engine.snapshot();
    for (std::size_t i = 20; i < 80; ++i) {
      engine.observe(key, series[i]);
      original_tail.push_back(engine.predict(key));
    }
    EXPECT_TRUE(engine.is_trained(key));
  }

  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir.path());
  // The restored engine replayed the WAL past the snapshot: fully caught up.
  EXPECT_TRUE(restored->is_trained(key));
  EXPECT_EQ(restored->stats().fast_trains, 1u);
  const auto stats = restored->stats();
  EXPECT_EQ(stats.fast_serving, 0u);

  // Identity-defining fast-tier config came from the snapshot.
  EXPECT_EQ(restored->config().fast_train_samples, config.fast_train_samples);
  EXPECT_EQ(restored->config().lar.fast_tier, config.lar.fast_tier);
}

// Restore from a snapshot taken mid-cold-phase with NO further WAL: the
// engine comes back serving from the fast tier.
TEST(FastTierEngine, RestoreMidColdPhaseResumesFastServing) {
  TempDir dir;
  const auto key = key_of(0);
  const auto series = ar1_series(60, 13);

  auto config = fast_config();
  config.durability.data_dir = dir.path();
  std::vector<Prediction> expected;
  {
    PredictionEngine engine(predictors::make_paper_pool(5), config);
    for (std::size_t i = 0; i < 20; ++i) engine.observe(key, series[i]);
    engine.snapshot();
  }
  // Fresh process continues from the snapshot alone.
  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir.path());
  EXPECT_TRUE(restored->is_fast_serving(key));
  EXPECT_FALSE(restored->is_trained(key));
  EXPECT_EQ(restored->stats().fast_serving, 1u);
  const auto prediction = restored->predict(key);
  EXPECT_TRUE(prediction.ready);
  EXPECT_TRUE(std::isfinite(prediction.value));

  // And it still hands off at the configured depth.
  for (std::size_t i = 20; i < 40; ++i) restored->observe(key, series[i]);
  EXPECT_TRUE(restored->is_trained(key));
  EXPECT_FALSE(restored->is_fast_serving(key));
}

}  // namespace
}  // namespace larp::serve
