// Tests for PredictionEngine::erase: teardown semantics, stats bookkeeping,
// and interleaving erase with batched observe traffic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/prediction_engine.hpp"
#include "util/rng.hpp"

namespace larp::serve {
namespace {

tsdb::SeriesKey key_of(std::size_t s) {
  return {"host" + std::to_string(s / 4), "dev" + std::to_string(s % 4), "cpu"};
}

EngineConfig small_config(std::size_t threads = 1) {
  EngineConfig config;
  config.lar.window = 5;
  config.shards = 4;
  config.threads = threads;
  config.train_samples = 40;
  config.audit_every = 0;
  return config;
}

TEST(PredictionEngineErase, UnknownKeyReturnsFalse) {
  PredictionEngine engine(predictors::make_paper_pool(5), small_config());
  EXPECT_FALSE(engine.erase(key_of(0)));
  EXPECT_EQ(engine.stats().erases, 0u);
}

TEST(PredictionEngineErase, DropsStateAndCountsOnce) {
  PredictionEngine engine(predictors::make_paper_pool(5), small_config());
  Rng rng(3);
  for (int i = 0; i < 45; ++i) engine.observe(key_of(0), rng.normal(10.0, 2.0));
  ASSERT_TRUE(engine.is_trained(key_of(0)));
  ASSERT_EQ(engine.series_count(), 1u);

  EXPECT_TRUE(engine.erase(key_of(0)));
  EXPECT_EQ(engine.series_count(), 0u);
  EXPECT_FALSE(engine.is_trained(key_of(0)));
  EXPECT_FALSE(engine.predict(key_of(0)).ready);
  EXPECT_FALSE(engine.erase(key_of(0)));  // already gone
  EXPECT_EQ(engine.stats().erases, 1u);
}

// After an erase the key is a brand-new series: it must re-accumulate a full
// training window and train from scratch.
TEST(PredictionEngineErase, ErasedSeriesRetrainsFromScratch) {
  PredictionEngine engine(predictors::make_paper_pool(5), small_config());
  Rng rng(5);
  for (int i = 0; i < 45; ++i) engine.observe(key_of(0), rng.normal(10.0, 2.0));
  ASSERT_TRUE(engine.erase(key_of(0)));

  for (int i = 0; i < 39; ++i) engine.observe(key_of(0), rng.normal(10.0, 2.0));
  EXPECT_FALSE(engine.is_trained(key_of(0)));
  engine.observe(key_of(0), rng.normal(10.0, 2.0));
  EXPECT_TRUE(engine.is_trained(key_of(0)));
  EXPECT_EQ(engine.stats().trains, 2u);
}

// Erase interleaved with batched observe traffic, multi-threaded: untouched
// series must behave exactly as in an engine that never saw the erases.
TEST(PredictionEngineErase, InterleavesWithBatchedObserve) {
  const std::size_t kSeries = 12;
  const std::size_t kErased = 3;  // keys 0..2 get erased mid-stream
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PredictionEngine engine(predictors::make_paper_pool(5),
                            small_config(threads));
    PredictionEngine reference(predictors::make_paper_pool(5),
                               small_config(threads));
    Rng parent(11);
    std::vector<Rng> rngs;
    for (std::size_t s = 0; s < kSeries; ++s) rngs.push_back(parent.split(s));
    std::vector<double> level(kSeries, 0.0);
    const auto sample = [&](std::size_t s) {
      level[s] = 0.7 * level[s] + rngs[s].normal(0.0, 1.5);
      return 20.0 + level[s];
    };

    std::vector<Observation> batch(kSeries);
    std::vector<Observation> reference_batch;
    std::size_t erases_done = 0;
    for (std::size_t step = 0; step < 70; ++step) {
      reference_batch.clear();
      for (std::size_t s = 0; s < kSeries; ++s) {
        batch[s] = {key_of(s), sample(s)};
        // The reference engine never sees the erased keys at all.
        if (s >= kErased) reference_batch.push_back(batch[s]);
      }
      engine.observe(batch);
      reference.observe(reference_batch);
      // Erase one of the doomed keys every 20 steps, mid-traffic.
      if (step % 20 == 19 && erases_done < kErased) {
        EXPECT_TRUE(engine.erase(key_of(erases_done)));
        ++erases_done;
      }
    }
    EXPECT_EQ(erases_done, kErased);
    EXPECT_EQ(engine.stats().erases, kErased);

    // Surviving series forecast identically to the erase-free reference.
    std::vector<tsdb::SeriesKey> keys;
    for (std::size_t s = kErased; s < kSeries; ++s) keys.push_back(key_of(s));
    const auto got = engine.predict(keys);
    const auto want = reference.predict(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(got[i].ready, want[i].ready);
      EXPECT_EQ(got[i].value, want[i].value) << "series " << i + kErased;
      EXPECT_EQ(got[i].label, want[i].label);
    }
    // The erased keys keep absorbing post-erase samples as fresh series.
    EXPECT_EQ(engine.series_count(), kSeries);
  }
}

}  // namespace
}  // namespace larp::serve
