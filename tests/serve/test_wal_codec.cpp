// WalPayloadCodec — block WAL frame round-trips, the cross-frame state
// machine, and malformed-payload rejection (engine payload v4).
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <limits>
#include <vector>

#include "serve/wal_codec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::serve {
namespace {

using tsdb::SeriesKey;

std::vector<std::byte> copy(std::span<const std::byte> s) {
  return {s.begin(), s.end()};
}

struct DecodedOp {
  std::uint8_t type;
  SeriesKey key;
  double value;
};

std::vector<DecodedOp> decode_all(WalPayloadCodec& codec,
                                  std::span<const std::byte> payload) {
  std::vector<DecodedOp> out;
  codec.decode_block(payload, [&](const WalOp& op) {
    out.push_back({op.type, *op.key, op.value});
  });
  return out;
}

TEST(WalCodecTest, SingleBlockRoundTripsAllOpTypes) {
  const SeriesKey a{"vm0", "dev0", "cpu"};
  const SeriesKey b{"vm1", "dev1", "mem"};
  WalPayloadCodec enc;
  enc.begin_block(4);
  enc.add_observe(a, 41.5);
  enc.add_observe(b, -0.25);
  enc.add_predict(a);
  enc.add_erase(b);
  const auto payload = copy(enc.finish_block());

  ASSERT_TRUE(WalPayloadCodec::is_block(payload));
  EXPECT_EQ(WalPayloadCodec::payload_weight(payload), 4u);

  WalPayloadCodec dec;
  const auto ops = decode_all(dec, payload);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].type, 0);
  EXPECT_EQ(ops[0].key, a);
  EXPECT_EQ(ops[0].value, 41.5);
  EXPECT_EQ(ops[1].type, 0);
  EXPECT_EQ(ops[1].key, b);
  EXPECT_EQ(ops[1].value, -0.25);
  EXPECT_EQ(ops[2].type, 1);
  EXPECT_EQ(ops[2].key, a);
  EXPECT_EQ(ops[3].type, 2);
  EXPECT_EQ(ops[3].key, b);
  EXPECT_EQ(dec.dictionary_size(), 2u);
}

TEST(WalCodecTest, DictionaryAndXorChainSpanFrames) {
  // Keys ship their strings once; later frames reference ids, and each
  // series' XOR chain continues across frames — the decoder must track
  // both through a multi-frame stream.
  Rng rng(101);
  std::vector<SeriesKey> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back({"host" + std::to_string(i / 2),
                    "dev" + std::to_string(i % 2),
                    i % 3 == 0 ? "cpu" : "mem"});
  }
  WalPayloadCodec enc;
  WalPayloadCodec dec;
  std::vector<double> levels(keys.size(), 100.0);
  std::size_t first_frame_size = 0;
  std::size_t last_frame_size = 0;
  for (int frame = 0; frame < 20; ++frame) {
    enc.begin_block(keys.size());
    std::vector<double> expect;
    for (std::size_t k = 0; k < keys.size(); ++k) {
      levels[k] = 0.9 * levels[k] + rng.normal(0.0, 2.0);
      enc.add_observe(keys[k], levels[k]);
      expect.push_back(levels[k]);
    }
    const auto payload = copy(enc.finish_block());
    if (frame == 0) first_frame_size = payload.size();
    last_frame_size = payload.size();
    const auto ops = decode_all(dec, payload);
    ASSERT_EQ(ops.size(), keys.size());
    for (std::size_t k = 0; k < keys.size(); ++k) {
      EXPECT_EQ(ops[k].key, keys[k]);
      EXPECT_EQ(ops[k].value, expect[k]);
    }
  }
  EXPECT_EQ(dec.dictionary_size(), keys.size());
  // Frames after the dictionary is warm drop the key strings entirely.
  EXPECT_LT(last_frame_size, first_frame_size / 2);
}

TEST(WalCodecTest, SaveLoadResumesTheChainMidStream) {
  // The snapshot cut: encode N frames, persist the codec state after the
  // first half, and decode only the second half starting from that state —
  // exactly what recovery does when frames below the watermark are covered
  // by the snapshot.
  Rng rng(202);
  const SeriesKey key{"vm", "disk0", "iops"};
  WalPayloadCodec enc;
  std::vector<std::vector<std::byte>> frames;
  std::vector<double> values;
  double level = 10.0;
  persist::io::Writer saved;
  for (int frame = 0; frame < 12; ++frame) {
    if (frame == 6) enc.save(saved);  // the watermark cut
    enc.begin_block(1);
    level += rng.normal(0.0, 1.0);
    values.push_back(level);
    enc.add_observe(key, level);
    frames.push_back(copy(enc.finish_block()));
  }

  WalPayloadCodec resumed;
  persist::io::Reader r{saved.bytes()};
  resumed.load(r);
  EXPECT_EQ(resumed.dictionary_size(), 1u);
  for (int frame = 6; frame < 12; ++frame) {
    const auto ops = decode_all(resumed, frames[static_cast<std::size_t>(frame)]);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ops[0].value),
              std::bit_cast<std::uint64_t>(
                  values[static_cast<std::size_t>(frame)]));
  }
}

TEST(WalCodecTest, EraseKeepsTheDictionaryEntryStable) {
  const SeriesKey a{"vm0", "d", "cpu"};
  const SeriesKey b{"vm1", "d", "cpu"};
  WalPayloadCodec enc;
  WalPayloadCodec dec;
  enc.begin_block(3);
  enc.add_observe(a, 1.0);
  enc.add_erase(a);
  enc.add_observe(b, 2.0);
  auto ops = decode_all(dec, copy(enc.finish_block()));
  ASSERT_EQ(ops.size(), 3u);

  // A re-created series reuses its id and resumes the XOR chain; b's id
  // must not have shifted.
  enc.begin_block(2);
  enc.add_observe(a, 1.5);
  enc.add_observe(b, 2.5);
  ops = decode_all(dec, copy(enc.finish_block()));
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].key, a);
  EXPECT_EQ(ops[0].value, 1.5);
  EXPECT_EQ(ops[1].key, b);
  EXPECT_EQ(ops[1].value, 2.5);
  EXPECT_EQ(dec.dictionary_size(), 2u);
}

TEST(WalCodecTest, AdversarialObserveValuesRoundTrip) {
  const SeriesKey key{"vm", "d", "m"};
  const std::vector<double> specials = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -0.0};
  WalPayloadCodec enc;
  WalPayloadCodec dec;
  enc.begin_block(specials.size());
  for (const double v : specials) enc.add_observe(key, v);
  const auto ops = decode_all(dec, copy(enc.finish_block()));
  ASSERT_EQ(ops.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ops[i].value),
              std::bit_cast<std::uint64_t>(specials[i]));
  }
}

TEST(WalCodecTest, LegacyPerOpPayloadIsNotABlock) {
  // Legacy payloads start with their type byte (0/1/2); the marker keeps
  // the two formats first-byte distinguishable.
  const std::vector<std::byte> legacy = {std::byte{0}, std::byte{3},
                                         std::byte{'v'}, std::byte{'m'}};
  EXPECT_FALSE(WalPayloadCodec::is_block(legacy));
  EXPECT_EQ(WalPayloadCodec::payload_weight(legacy), 1u);
  EXPECT_FALSE(WalPayloadCodec::is_block({}));
}

TEST(WalCodecTest, OpCountMismatchThrows) {
  WalPayloadCodec enc;
  enc.begin_block(2);
  enc.add_predict({"vm", "d", "m"});
  EXPECT_THROW((void)enc.finish_block(), StateError);
}

TEST(WalCodecTest, MalformedBlocksAreRejected) {
  const auto decode = [](const std::vector<std::byte>& payload) {
    WalPayloadCodec codec;
    codec.decode_block(payload, [](const WalOp&) {});
  };
  // Bad marker.
  EXPECT_THROW(decode({std::byte{0xB2}, std::byte{1}}), persist::CorruptData);
  // Impossible op count for the payload size.
  EXPECT_THROW(decode({std::byte{0xB1}, std::byte{0xFF}, std::byte{0xFF},
                       std::byte{0x7F}}),
               persist::CorruptData);
  // Count promises ops the stream does not hold.
  {
    WalPayloadCodec enc;
    enc.begin_block(1);
    enc.add_observe({"vm", "d", "m"}, 1.0);
    auto payload = copy(enc.finish_block());
    payload[1] = std::byte{9};  // lie about the op count
    EXPECT_THROW(decode(payload), persist::CorruptData);
  }
  // Truncated mid-op.
  {
    WalPayloadCodec enc;
    enc.begin_block(2);
    enc.add_observe({"vm", "d", "m"}, 1.0);
    enc.add_observe({"other", "d", "m"}, 2.0);
    auto payload = copy(enc.finish_block());
    payload.resize(payload.size() / 2);
    EXPECT_THROW(decode(payload), persist::CorruptData);
  }
}

TEST(WalCodecTest, DuplicateKeyInSavedStateIsRejected) {
  persist::io::Writer w;
  w.u64(2);
  for (int i = 0; i < 2; ++i) {
    w.str("vm");
    w.str("d");
    w.str("m");
    persist::codec::XorState{}.save(w);
  }
  persist::io::Reader r{w.bytes()};
  WalPayloadCodec codec;
  EXPECT_THROW(codec.load(r), persist::CorruptData);
}

}  // namespace
}  // namespace larp::serve
