// Tests for the fold walk and cross-validation experiment runner (§7
// machinery) — the invariants every paper figure rests on.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tracegen/catalog.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::core {
namespace {

LarConfig paper_config(std::size_t window = 5) {
  LarConfig config;
  config.window = window;
  return config;
}

std::vector<double> regime_series(std::size_t n, std::uint64_t seed) {
  // Alternating smooth / bursty regimes to give every expert a turn.
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  double dev = 0.0;
  bool smooth = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 60 == 0) smooth = !smooth;
    if (smooth) {
      dev = 0.9 * dev + rng.normal(0.0, 1.0);
      xs.push_back(50.0 + dev);
    } else {
      xs.push_back(rng.bernoulli(0.3) ? 50.0 + rng.pareto(10.0, 1.8)
                                      : 45.0 + rng.normal(0.0, 2.0));
    }
  }
  return xs;
}

TEST(EvaluateFold, Validation) {
  const auto series = regime_series(100, 1);
  const auto pool = predictors::make_paper_pool(5);
  EXPECT_THROW(
      (void)evaluate_fold(series, 4, pool, paper_config()),  // split < m+1
      InvalidArgument);
  EXPECT_THROW((void)evaluate_fold(series, 100, pool, paper_config()),
               InvalidArgument);  // no test targets
  const std::vector<double> flat(100, 2.0);
  EXPECT_THROW((void)evaluate_fold(flat, 50, pool, paper_config()), StateError);
}

TEST(EvaluateFold, StepCountMatchesTestSide) {
  const auto series = regime_series(200, 2);
  const auto pool = predictors::make_paper_pool(5);
  const auto result = evaluate_fold(series, 100, pool, paper_config());
  // Targets at indices 100..199 -> 100 test steps.
  EXPECT_EQ(result.steps(), 100u);
  EXPECT_EQ(result.observed_best.size(), 100u);
  EXPECT_EQ(result.lar_choice.size(), 100u);
  EXPECT_EQ(result.nws_choice.size(), 100u);
  EXPECT_EQ(result.wnws_choice.size(), 100u);
}

TEST(EvaluateFold, OracleIsLowerBoundOnEveryStrategy) {
  // P-LAR picks the per-step best, so its MSE can never exceed any other
  // strategy evaluated on the same forecasts — the paper's "upper bound of
  // prediction accuracy" claim for Table 2's P-LAR column.
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    const auto series = regime_series(300, seed);
    const auto pool = predictors::make_paper_pool(5);
    const auto r = evaluate_fold(series, 150, pool, paper_config());
    EXPECT_LE(r.mse_oracle, r.mse_lar + 1e-12);
    EXPECT_LE(r.mse_oracle, r.mse_nws + 1e-12);
    EXPECT_LE(r.mse_oracle, r.mse_wnws + 1e-12);
    for (double single : r.mse_single) {
      EXPECT_LE(r.mse_oracle, single + 1e-12);
    }
  }
}

TEST(EvaluateFold, AccuraciesAreProbabilities) {
  const auto series = regime_series(300, 6);
  const auto pool = predictors::make_paper_pool(5);
  const auto r = evaluate_fold(series, 150, pool, paper_config());
  for (double a : {r.lar_accuracy, r.nws_accuracy, r.wnws_accuracy}) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(EvaluateFold, ChoicesAreValidLabels) {
  const auto series = regime_series(250, 7);
  const auto pool = predictors::make_paper_pool(5);
  const auto r = evaluate_fold(series, 120, pool, paper_config());
  for (std::size_t i = 0; i < r.steps(); ++i) {
    EXPECT_LT(r.observed_best[i], 3u);
    EXPECT_LT(r.lar_choice[i], 3u);
    EXPECT_LT(r.nws_choice[i], 3u);
    EXPECT_LT(r.wnws_choice[i], 3u);
  }
}

TEST(EvaluateFold, LarMseBetweenOracleAndWorst) {
  const auto series = regime_series(400, 8);
  const auto pool = predictors::make_paper_pool(5);
  const auto r = evaluate_fold(series, 200, pool, paper_config());
  const double worst =
      *std::max_element(r.mse_single.begin(), r.mse_single.end());
  EXPECT_GE(r.mse_lar, r.mse_oracle - 1e-12);
  EXPECT_LE(r.mse_lar, worst + 1e-12);
}

TEST(EvaluateFold, DeterministicForIdenticalInputs) {
  const auto series = regime_series(300, 9);
  const auto pool = predictors::make_paper_pool(5);
  const auto a = evaluate_fold(series, 150, pool, paper_config());
  const auto b = evaluate_fold(series, 150, pool, paper_config());
  EXPECT_EQ(a.lar_choice, b.lar_choice);
  EXPECT_DOUBLE_EQ(a.mse_lar, b.mse_lar);
}

TEST(EvaluateFold, ColdNwsOptionChangesWarmup) {
  const auto series = regime_series(300, 10);
  const auto pool = predictors::make_paper_pool(5);
  FoldOptions warm, cold;
  cold.warm_nws_on_train = false;
  const auto rw = evaluate_fold(series, 150, pool, paper_config(), warm);
  const auto rc = evaluate_fold(series, 150, pool, paper_config(), cold);
  // LAR is unaffected by the option; NWS selections may differ.
  EXPECT_DOUBLE_EQ(rw.mse_lar, rc.mse_lar);
}

TEST(EvaluateFold, NormalizedMseNearUnityForLastOnWhiteNoise) {
  // Sanity anchor for Table 2's magnitudes: on z-scored white noise the
  // LAST model's normalized MSE is ~2 (var of difference of two unit
  // normals) and SW_AVG's is ~1.
  Rng rng(11);
  std::vector<double> noise(2000);
  for (auto& x : noise) x = rng.normal(10.0, 3.0);
  const auto pool = predictors::make_paper_pool(5);
  const auto r = evaluate_fold(noise, 1000, pool, paper_config());
  EXPECT_NEAR(r.mse_single[0], 2.0, 0.3);  // LAST
  EXPECT_NEAR(r.mse_single[2], 1.0, 0.2);  // SW_AVG over m=5 -> ~1.2
}

TEST(CrossValidate, AveragesOverRequestedFolds) {
  const auto series = regime_series(300, 12);
  const auto pool = predictors::make_paper_pool(5);
  ml::CrossValidationPlan plan;
  plan.folds = 4;
  Rng rng(13);
  const auto result = cross_validate(series, pool, paper_config(), plan, rng);
  EXPECT_FALSE(result.degenerate);
  EXPECT_EQ(result.folds, 4u);
  EXPECT_LE(result.mse_oracle, result.mse_lar + 1e-12);
  EXPECT_EQ(result.mse_single.size(), 3u);
}

TEST(CrossValidate, DegenerateTraceYieldsNaN) {
  const std::vector<double> flat(200, 7.0);
  const auto pool = predictors::make_paper_pool(5);
  ml::CrossValidationPlan plan;
  Rng rng(14);
  const auto result = cross_validate(flat, pool, paper_config(), plan, rng);
  EXPECT_TRUE(result.degenerate);
  EXPECT_TRUE(std::isnan(result.mse_lar));
  EXPECT_TRUE(std::isnan(result.mse_single[0]));
}

TEST(CrossValidate, BestSingleLabelAndFlags) {
  const auto series = regime_series(400, 15);
  const auto pool = predictors::make_paper_pool(5);
  ml::CrossValidationPlan plan;
  plan.folds = 3;
  Rng rng(16);
  const auto result = cross_validate(series, pool, paper_config(), plan, rng);
  const std::size_t best = result.best_single_label();
  ASSERT_LT(best, 3u);
  for (double v : result.mse_single) {
    EXPECT_LE(result.mse_single[best], v + 1e-12);
  }
  // Flags consistent with their definitions.
  EXPECT_EQ(result.lar_beats_best_single(),
            result.mse_lar <= result.mse_single[best]);
  EXPECT_EQ(result.lar_beats_nws(), result.mse_lar < result.mse_nws);
}

TEST(CrossValidate, ReproducibleForSameSeed) {
  const auto series = regime_series(300, 17);
  const auto pool = predictors::make_paper_pool(5);
  ml::CrossValidationPlan plan;
  Rng a(18), b(18);
  const auto ra = cross_validate(series, pool, paper_config(), plan, a);
  const auto rb = cross_validate(series, pool, paper_config(), plan, b);
  EXPECT_DOUBLE_EQ(ra.mse_lar, rb.mse_lar);
  EXPECT_DOUBLE_EQ(ra.lar_accuracy, rb.lar_accuracy);
}

TEST(CrossValidate, RunsOnCatalogTraces) {
  // Smoke across a couple of catalog traces at paper shapes.
  const auto pool = predictors::make_paper_pool(5);
  ml::CrossValidationPlan plan;
  plan.folds = 2;
  for (const auto* metric : {"CPU_usedsec", "NIC1_received"}) {
    const auto trace = tracegen::make_trace("VM2", metric, 99);
    Rng rng(20);
    const auto result =
        cross_validate(trace.values, pool, paper_config(), plan, rng);
    EXPECT_FALSE(result.degenerate) << metric;
    EXPECT_GT(result.lar_accuracy, 0.0) << metric;
  }
}

// Property sweep over window sizes and splits: the oracle bound and
// label-validity invariants hold everywhere.
class FoldProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FoldProperty, InvariantsHold) {
  const auto [window, split_pct, seed] = GetParam();
  const auto series = regime_series(300, seed);
  const auto pool = predictors::make_paper_pool(window);
  const std::size_t split = 300 * split_pct / 100;
  const auto r = evaluate_fold(series, split, pool, paper_config(window));
  EXPECT_LE(r.mse_oracle, r.mse_lar + 1e-12);
  EXPECT_LE(r.mse_oracle, r.mse_nws + 1e-12);
  EXPECT_EQ(r.steps(), 300u - split);
  EXPECT_GE(r.lar_accuracy, 0.0);
  EXPECT_LE(r.lar_accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FoldProperty,
    ::testing::Combine(::testing::Values(4, 5, 8, 16),
                       ::testing::Values(35, 50, 65),
                       ::testing::Values(21, 22)));

}  // namespace
}  // namespace larp::core
