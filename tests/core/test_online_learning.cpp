// Tests for the online-learning extension (classifier index grows during
// deployment).
#include <gtest/gtest.h>

#include <cmath>

#include "core/lar_predictor.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::core {
namespace {

// Two-regime series: the FIRST half is smooth only; the violent regime only
// appears after training, so a frozen classifier has never seen it.
std::vector<double> smooth_then_wild(std::size_t half, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  double dev = 0.0;
  for (std::size_t i = 0; i < half; ++i) {
    dev = 0.9 * dev + rng.normal(0.0, 0.5);
    xs.push_back(40.0 + dev);
  }
  for (std::size_t i = 0; i < half; ++i) {
    xs.push_back(rng.bernoulli(0.5) ? 80.0 + rng.normal(0.0, 4.0)
                                    : 10.0 + rng.normal(0.0, 4.0));
  }
  return xs;
}

LarConfig online_config(ClassifierKind kind = ClassifierKind::Knn) {
  LarConfig config;
  config.window = 5;
  config.online_learning = true;
  config.classifier = kind;
  return config;
}

TEST(OnlineLearning, DisabledByDefault) {
  const auto series = smooth_then_wild(150, 1);
  LarConfig config;
  config.window = 5;
  LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(std::span<const double>(series.data(), 150));
  for (std::size_t t = 150; t < 200; ++t) lar.observe(series[t]);
  EXPECT_EQ(lar.online_windows_learned(), 0u);
}

TEST(OnlineLearning, LearnsOneWindowPerObservation) {
  const auto series = smooth_then_wild(150, 2);
  LarPredictor lar(predictors::make_paper_pool(5), online_config());
  lar.train(std::span<const double>(series.data(), 150));
  for (std::size_t t = 150; t < 200; ++t) lar.observe(series[t]);
  EXPECT_EQ(lar.online_windows_learned(), 50u);
}

TEST(OnlineLearning, WorksWithEveryClassifierAndBackend) {
  const auto series = smooth_then_wild(150, 3);
  for (const auto kind :
       {ClassifierKind::Knn, ClassifierKind::NearestCentroid}) {
    for (const auto backend :
         {ml::KnnBackend::BruteForce, ml::KnnBackend::KdTree}) {
      auto config = online_config(kind);
      config.knn_backend = backend;
      LarPredictor lar(predictors::make_paper_pool(5), config);
      lar.train(std::span<const double>(series.data(), 150));
      for (std::size_t t = 150; t < 250; ++t) {
        lar.observe(series[t]);
        const auto forecast = lar.predict_next();
        ASSERT_TRUE(std::isfinite(forecast.value));
      }
      EXPECT_EQ(lar.online_windows_learned(), 100u);
    }
  }
}

TEST(OnlineLearning, AdaptsToAPostTrainingRegime) {
  // Train on the smooth half only, then walk the wild half.  The online
  // learner absorbs wild-regime windows; across seeds it must on average
  // match or beat the frozen classifier on the remainder of the wild half.
  double frozen_total = 0.0, online_total = 0.0;
  for (std::uint64_t seed : {4u, 5u, 6u, 7u, 8u}) {
    const auto series = smooth_then_wild(300, seed);
    const std::size_t split = 300;

    const auto run = [&](bool online) {
      LarConfig config;
      config.window = 5;
      config.online_learning = online;
      LarPredictor lar(predictors::make_paper_pool(5), config);
      lar.train(std::span<const double>(series.data(), split));
      stats::RunningMse mse;
      for (std::size_t t = split; t < series.size(); ++t) {
        const auto forecast = lar.predict_next();
        // Score only after the learner has had some wild-regime exposure.
        if (t > split + 60) mse.add(forecast.value, series[t]);
        lar.observe(series[t]);
      }
      return mse.value();
    };
    frozen_total += run(false);
    online_total += run(true);
  }
  EXPECT_LE(online_total, frozen_total * 1.05)
      << "online learning should not be materially worse on a regime the "
         "frozen classifier never saw";
}

TEST(OnlineLearning, LabelsStayWithinPool) {
  const auto series = smooth_then_wild(150, 9);
  LarPredictor lar(predictors::make_paper_pool(5), online_config());
  lar.train(std::span<const double>(series.data(), 150));
  for (std::size_t t = 150; t < 300; ++t) {
    lar.observe(series[t]);
    EXPECT_LT(lar.predict_next().label, 3u);
  }
}

TEST(OnlineLearning, PerStepLabelingVariantRuns) {
  const auto series = smooth_then_wild(150, 10);
  auto config = online_config();
  config.labeling = Labeling::StepAbsoluteError;
  LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(std::span<const double>(series.data(), 150));
  for (std::size_t t = 150; t < 200; ++t) lar.observe(series[t]);
  EXPECT_EQ(lar.online_windows_learned(), 50u);
}

}  // namespace
}  // namespace larp::core
