// Tests for soft (probability-weighted) voting — LarConfig::soft_vote.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/experiment.hpp"
#include "core/lar_predictor.hpp"
#include "selection/knn_selector.hpp"
#include "selection/static_selector.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::core {
namespace {

std::vector<double> mixed_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  double dev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((i / 40) % 2 == 0) {
      dev = 0.9 * dev + rng.normal(0.0, 0.5);
      xs.push_back(40.0 + dev);
    } else {
      xs.push_back(rng.bernoulli(0.4) ? 70.0 + rng.normal(0.0, 3.0)
                                      : 25.0 + rng.normal(0.0, 3.0));
    }
  }
  return xs;
}

TEST(SelectWeights, DefaultIsOneHotOfSelect) {
  selection::StaticSelector sel(2);
  const auto weights = sel.select_weights(std::vector<double>{1, 2, 3}, 4);
  EXPECT_EQ(weights, (std::vector<double>{0, 0, 1, 0}));
  // Out-of-pool label is an error, not a silent drop.
  selection::StaticSelector bad(9);
  EXPECT_THROW((void)bad.select_weights(std::vector<double>{1.0}, 3),
               InvalidArgument);
}

TEST(SelectWeights, KnnSharesSumToOneAndMatchMajority) {
  const auto series = mixed_series(300, 1);
  LarConfig config;
  config.window = 5;
  LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(series);

  auto selector = lar.selector().clone();
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> window(5);
    for (auto& w : window) w = rng.uniform(-2, 2);
    const auto weights = selector->select_weights(window, 3);
    const double total =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
    for (double w : weights) {
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0);
      // With k = 3, shares are multiples of 1/3.
      EXPECT_NEAR(std::round(w * 3.0), w * 3.0, 1e-9);
    }
    // The majority vote equals the hard selection.
    const std::size_t hard = selector->select(window);
    const std::size_t argmax = static_cast<std::size_t>(
        std::max_element(weights.begin(), weights.end()) - weights.begin());
    EXPECT_GE(weights[argmax], weights[hard] - 1e-12);
  }
}

TEST(SoftVote, ForecastIsConvexCombination) {
  const auto series = mixed_series(300, 3);
  LarConfig hard_config, soft_config;
  hard_config.window = soft_config.window = 5;
  soft_config.soft_vote = true;

  LarPredictor soft(predictors::make_paper_pool(5), soft_config);
  soft.train(series);
  const auto forecast = soft.predict_next();
  EXPECT_TRUE(std::isfinite(forecast.value));
  EXPECT_LT(forecast.label, 3u);

  // The combined forecast lies within the range of the experts' forecasts.
  auto pool = predictors::make_paper_pool(5);
  // Re-derive expert forecasts on the same normalized tail.
  // (Approximate bound check in raw units: min/max of expert raw forecasts.)
  LarPredictor probe(predictors::make_paper_pool(5), hard_config);
  probe.train(series);
  // probe and soft share the same training; hard forecast must equal one
  // expert's output, soft must lie in the convex hull -> both finite and
  // within a loose band of the series scale.
  EXPECT_GT(forecast.value, -100.0);
  EXPECT_LT(forecast.value, 200.0);
}

TEST(SoftVote, UnanimousNeighboursReduceToHardSelection) {
  // A strongly single-regime series: training labels are near-uniform, so
  // most votes are unanimous and soft == hard on most steps.
  Rng rng(4);
  std::vector<double> ramp(300);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<double>(i) + rng.normal(0.0, 0.01);
  }
  LarConfig hard_config, soft_config;
  hard_config.window = soft_config.window = 5;
  soft_config.soft_vote = true;
  LarPredictor hard(predictors::make_paper_pool(5), hard_config);
  LarPredictor soft(predictors::make_paper_pool(5), soft_config);
  hard.train(ramp);
  soft.train(ramp);
  int equal_steps = 0;
  for (int i = 0; i < 40; ++i) {
    const double next = static_cast<double>(300 + i);
    const auto hard_forecast = hard.predict_next();
    const auto soft_forecast = soft.predict_next();
    if (std::abs(hard_forecast.value - soft_forecast.value) < 1e-9) {
      ++equal_steps;
    }
    hard.observe(next);
    soft.observe(next);
  }
  EXPECT_GT(equal_steps, 20);
}

TEST(SoftVote, FoldWalkSupportsSoftVoting) {
  const auto series = mixed_series(300, 5);
  const auto pool = predictors::make_paper_pool(5);
  LarConfig hard_config, soft_config;
  hard_config.window = soft_config.window = 5;
  soft_config.soft_vote = true;

  const auto hard = evaluate_fold(series, 150, pool, hard_config);
  const auto soft = evaluate_fold(series, 150, pool, soft_config);
  // Same walk, same oracle; only the LAR row changes.
  EXPECT_DOUBLE_EQ(hard.mse_oracle, soft.mse_oracle);
  EXPECT_GE(soft.mse_lar, soft.mse_oracle - 1e-12);
  EXPECT_TRUE(std::isfinite(soft.mse_lar));
  // Soft voting hedges ties, so it should not be drastically worse.
  EXPECT_LT(soft.mse_lar, 2.0 * hard.mse_lar + 1e-12);
}

}  // namespace
}  // namespace larp::core
