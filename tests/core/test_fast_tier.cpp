// Tests for the constant-time fast tier in core::LarPredictor: train_fast()
// cold-start serving, the TieredSelector handoff (bit-identical to a
// warm-only predictor), and the tiered save/load path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lar_predictor.hpp"
#include "persist/io.hpp"
#include "predictors/pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::core {
namespace {

LarConfig fast_config(selection::FastTier tier = selection::FastTier::Tournament) {
  LarConfig config;
  config.window = 5;
  config.pca_components = 2;
  config.knn_k = 3;
  config.fast_tier = tier;
  return config;
}

std::vector<double> ar1_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = 0.8 * dev + rng.normal(0.0, 5.0);
    x = 50.0 + dev;
  }
  return xs;
}

TEST(FastTier, TrainFastRequiresAConfiguredTier) {
  LarConfig plain = fast_config(selection::FastTier::None);
  LarPredictor lar(predictors::make_paper_pool(5), plain);
  const auto series = ar1_series(40, 7);
  EXPECT_THROW(lar.train_fast(series), StateError);
}

TEST(FastTier, RejectsPcaSpacePrediction) {
  LarConfig config = fast_config();
  config.predict_in_pca_space = true;
  EXPECT_THROW(LarPredictor(predictors::make_paper_pool(5), config),
               InvalidArgument);
}

TEST(FastTier, TrainFastServesImmediately) {
  for (const auto tier : {selection::FastTier::Tournament,
                          selection::FastTier::Perceptron,
                          selection::FastTier::GlobalHistory}) {
    LarPredictor lar(predictors::make_paper_pool(5), fast_config(tier));
    const auto series = ar1_series(20, 11);
    lar.train_fast(series);
    EXPECT_TRUE(lar.trained());
    EXPECT_TRUE(lar.serving_fast_tier());
    for (int step = 0; step < 10; ++step) {
      const auto forecast = lar.predict_next();
      EXPECT_TRUE(std::isfinite(forecast.value));
      EXPECT_LT(forecast.label, 5u);
      lar.observe(50.0 + step);
    }
  }
}

// The acceptance gate: a fast-started predictor, once full training runs on
// the same data, must forecast BIT-IDENTICALLY to a predictor that only ever
// full-trained — the cold tier must leave no trace after handoff.
TEST(FastTier, HandoffIsBitIdenticalToWarmOnlyTraining) {
  const auto series = ar1_series(140, 23);
  const std::size_t kFastAt = 20;
  const std::size_t kTrainAt = 60;

  LarPredictor fast_first(predictors::make_paper_pool(5), fast_config());
  fast_first.train_fast({series.data(), kFastAt});
  for (std::size_t i = kFastAt; i < kTrainAt; ++i) {
    (void)fast_first.predict_next();  // exercise the cold tier's serving path
    fast_first.observe(series[i]);
  }
  EXPECT_TRUE(fast_first.serving_fast_tier());
  fast_first.train({series.data(), kTrainAt});
  EXPECT_FALSE(fast_first.serving_fast_tier());

  LarPredictor warm_only(predictors::make_paper_pool(5),
                         fast_config(selection::FastTier::None));
  warm_only.train({series.data(), kTrainAt});

  for (std::size_t i = kTrainAt; i < series.size(); ++i) {
    const auto a = fast_first.predict_next();
    const auto b = warm_only.predict_next();
    ASSERT_EQ(a.label, b.label) << "step " << i;
    ASSERT_DOUBLE_EQ(a.value, b.value) << "step " << i;
    fast_first.observe(series[i]);
    warm_only.observe(series[i]);
  }
}

TEST(FastTier, FullTrainWithTierConfiguredStillServesThePrimary) {
  // train() (no fast phase) on a fast-tier config wraps the classifier in a
  // TieredSelector whose primary is ready at once — behaviour identical to
  // the plain config.
  const auto series = ar1_series(80, 31);
  LarPredictor tiered(predictors::make_paper_pool(5), fast_config());
  LarPredictor plain(predictors::make_paper_pool(5),
                     fast_config(selection::FastTier::None));
  tiered.train(series);
  plain.train(series);
  EXPECT_FALSE(tiered.serving_fast_tier());
  for (int step = 0; step < 20; ++step) {
    const auto a = tiered.predict_next();
    const auto b = plain.predict_next();
    ASSERT_EQ(a.label, b.label);
    ASSERT_DOUBLE_EQ(a.value, b.value);
    const double next = series[static_cast<std::size_t>(step) % series.size()];
    tiered.observe(next);
    plain.observe(next);
  }
}

// Snapshot a predictor mid-cold-phase: the restored instance must continue
// the forecast sequence bit-identically, still on the fast tier.
TEST(FastTier, SaveLoadRoundTripsTheColdPhase) {
  const auto series = ar1_series(60, 41);
  LarPredictor original(predictors::make_paper_pool(5), fast_config());
  original.train_fast({series.data(), 20});
  for (std::size_t i = 20; i < 35; ++i) {
    (void)original.predict_next();
    original.observe(series[i]);
  }

  persist::io::Writer w;
  original.save_state(w);
  LarPredictor restored(predictors::make_paper_pool(5), fast_config());
  persist::io::Reader r(w.bytes());
  restored.load_state(r);
  EXPECT_TRUE(restored.serving_fast_tier());

  for (std::size_t i = 35; i < series.size(); ++i) {
    const auto a = original.predict_next();
    const auto b = restored.predict_next();
    ASSERT_EQ(a.label, b.label) << "step " << i;
    ASSERT_DOUBLE_EQ(a.value, b.value) << "step " << i;
    original.observe(series[i]);
    restored.observe(series[i]);
  }
}

// And after handoff: the serialized selector carries BOTH tiers.
TEST(FastTier, SaveLoadRoundTripsThePromotedState) {
  const auto series = ar1_series(100, 43);
  LarPredictor original(predictors::make_paper_pool(5), fast_config());
  original.train_fast({series.data(), 20});
  for (std::size_t i = 20; i < 60; ++i) original.observe(series[i]);
  original.train({series.data(), 60});
  for (std::size_t i = 60; i < 80; ++i) {
    (void)original.predict_next();
    original.observe(series[i]);
  }

  persist::io::Writer w;
  original.save_state(w);
  LarPredictor restored(predictors::make_paper_pool(5), fast_config());
  persist::io::Reader r(w.bytes());
  restored.load_state(r);
  EXPECT_TRUE(restored.trained());
  EXPECT_FALSE(restored.serving_fast_tier());

  for (std::size_t i = 80; i < series.size(); ++i) {
    const auto a = original.predict_next();
    const auto b = restored.predict_next();
    ASSERT_EQ(a.label, b.label) << "step " << i;
    ASSERT_DOUBLE_EQ(a.value, b.value) << "step " << i;
    original.observe(series[i]);
    restored.observe(series[i]);
  }
}

}  // namespace
}  // namespace larp::core
