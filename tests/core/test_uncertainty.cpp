// Tests for the Forecast::uncertainty online residual estimate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lar_predictor.hpp"
#include "tracegen/catalog.hpp"
#include "util/rng.hpp"

namespace larp::core {
namespace {

LarPredictor trained_predictor_with(LarConfig config, std::uint64_t seed,
                                    double sigma = 2.0) {
  Rng rng(seed);
  std::vector<double> series(400);
  double dev = 0.0;
  for (auto& x : series) {
    dev = 0.8 * dev + rng.normal(0.0, sigma);
    x = 50.0 + dev;
  }
  LarPredictor lar(predictors::make_paper_pool(config.window), config);
  lar.train(series);
  return lar;
}

LarPredictor trained_predictor(std::uint64_t seed, double sigma = 2.0) {
  LarConfig config;
  config.window = 5;
  return trained_predictor_with(config, seed, sigma);
}

/// Resolves `count` predict/observe pairs and returns the next forecast.
LarPredictor::Forecast resolve_and_predict(LarPredictor& lar, int count,
                                           std::uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    (void)lar.predict_next();
    lar.observe(50.0 + rng.normal(0.0, 2.0));
  }
  return lar.predict_next();
}

TEST(ForecastUncertainty, NaNUntilEnoughResolvedForecasts) {
  auto lar = trained_predictor(1);
  const auto first = lar.predict_next();
  EXPECT_TRUE(std::isnan(first.uncertainty));
  EXPECT_EQ(lar.resolved_forecasts(), 0u);
}

TEST(ForecastUncertainty, BecomesFiniteAfterWarmup) {
  auto lar = trained_predictor(2);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    (void)lar.predict_next();
    lar.observe(50.0 + rng.normal(0.0, 2.0));
  }
  EXPECT_EQ(lar.resolved_forecasts(), 10u);
  const auto forecast = lar.predict_next();
  EXPECT_TRUE(std::isfinite(forecast.uncertainty));
  EXPECT_GT(forecast.uncertainty, 0.0);
}

TEST(ForecastUncertainty, TracksResidualScale) {
  // Feed values far from any sane forecast: uncertainty must grow to the
  // scale of the injected errors.
  auto lar = trained_predictor(4);
  for (int i = 0; i < 12; ++i) {
    (void)lar.predict_next();
    lar.observe(i % 2 == 0 ? 150.0 : -50.0);  // ~100-unit errors
  }
  const auto wild = lar.predict_next();
  EXPECT_GT(wild.uncertainty, 30.0);

  // A well-behaved stream instead yields uncertainty near the noise scale.
  auto calm = trained_predictor(5, /*sigma=*/1.0);
  Rng rng(6);
  double dev = 0.0;
  for (int i = 0; i < 40; ++i) {
    (void)calm.predict_next();
    dev = 0.8 * dev + rng.normal(0.0, 1.0);
    calm.observe(50.0 + dev);
  }
  const auto steady = calm.predict_next();
  EXPECT_LT(steady.uncertainty, 5.0);
}

// The warm-up is derived from LarConfig::uncertainty_window (window / 8,
// minimum 1), not a hard-coded count: the default window of 32 needs 4
// resolved pairs, a window of 8 needs just 1.
TEST(ForecastUncertainty, WarmupScalesWithUncertaintyWindow) {
  LarConfig wide;
  wide.window = 5;
  wide.uncertainty_window = 32;
  EXPECT_EQ(wide.uncertainty_warmup(), 4u);
  auto lar32 = trained_predictor_with(wide, 21);
  EXPECT_TRUE(std::isnan(resolve_and_predict(lar32, 3, 22).uncertainty));
  auto lar32_warm = trained_predictor_with(wide, 21);
  EXPECT_TRUE(std::isfinite(resolve_and_predict(lar32_warm, 4, 22).uncertainty));

  LarConfig narrow;
  narrow.window = 5;
  narrow.uncertainty_window = 8;
  EXPECT_EQ(narrow.uncertainty_warmup(), 1u);
  auto lar8 = trained_predictor_with(narrow, 23);
  EXPECT_TRUE(std::isnan(lar8.predict_next().uncertainty));
  EXPECT_TRUE(std::isfinite(resolve_and_predict(lar8, 1, 24).uncertainty));
}

// A default-constructed Forecast must not look like a zero-uncertainty one.
TEST(ForecastUncertainty, DefaultConstructedForecastIsNaN) {
  const LarPredictor::Forecast forecast;
  EXPECT_TRUE(std::isnan(forecast.uncertainty));
}

TEST(ForecastUncertainty, ObserveWithoutPredictDoesNotResolve) {
  auto lar = trained_predictor(7);
  lar.observe(50.0);
  lar.observe(51.0);
  EXPECT_EQ(lar.resolved_forecasts(), 0u);
}

TEST(ForecastUncertainty, RepeatedPredictKeepsOnlyLatest) {
  auto lar = trained_predictor(8);
  (void)lar.predict_next();
  (void)lar.predict_next();  // replaces the pending forecast
  lar.observe(50.0);
  EXPECT_EQ(lar.resolved_forecasts(), 1u);
}

TEST(ForecastUncertainty, RetrainResetsResidualState) {
  auto lar = trained_predictor(9);
  Rng rng(10);
  for (int i = 0; i < 8; ++i) {
    (void)lar.predict_next();
    lar.observe(50.0 + rng.normal(0.0, 2.0));
  }
  EXPECT_GT(lar.resolved_forecasts(), 0u);
  std::vector<double> fresh(200);
  double dev = 0.0;
  for (auto& x : fresh) {
    dev = 0.8 * dev + rng.normal(0.0, 2.0);
    x = 50.0 + dev;
  }
  lar.retrain(fresh);
  EXPECT_EQ(lar.resolved_forecasts(), 0u);
  EXPECT_TRUE(std::isnan(lar.predict_next().uncertainty));
}

}  // namespace
}  // namespace larp::core
