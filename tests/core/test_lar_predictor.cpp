// Tests for the LARPredictor training/testing pipeline (§6).
#include "core/lar_predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "predictors/last.hpp"
#include "predictors/pool.hpp"
#include "predictors/sliding_window_average.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::core {
namespace {

LarConfig paper_config(std::size_t window = 5) {
  LarConfig config;
  config.window = window;
  config.pca_components = 2;
  config.knn_k = 3;
  return config;
}

std::vector<double> ar1_series(std::size_t n, std::uint64_t seed,
                               double phi = 0.8, double mean = 50.0,
                               double sigma = 5.0) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = phi * dev + rng.normal(0.0, sigma);
    x = mean + dev;
  }
  return xs;
}

// End-to-end on a zero-variance trace: the normalizer's stddev-1 fallback
// must carry through training, prediction, and online observation without
// NaNs — the forecast is the flat level itself.
TEST(LarPredictor, ConstantSeriesEndToEnd) {
  const std::vector<double> flat(100, 42.0);
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  lar.train(flat);
  EXPECT_TRUE(lar.trained());
  EXPECT_DOUBLE_EQ(lar.normalizer().stddev(), 1.0);

  for (int step = 0; step < 20; ++step) {
    const auto forecast = lar.predict_next();
    EXPECT_DOUBLE_EQ(forecast.value, 42.0) << "step " << step;
    lar.observe(42.0);
  }
  // Residuals are exactly zero, so the warmed-up uncertainty is too.
  EXPECT_DOUBLE_EQ(lar.predict_next().uncertainty, 0.0);
}

TEST(LarPredictor, ConstructionValidation) {
  EXPECT_THROW(LarPredictor(predictors::PredictorPool{}, paper_config()),
               InvalidArgument);
  LarConfig zero_window = paper_config();
  zero_window.window = 0;
  EXPECT_THROW(LarPredictor(predictors::make_paper_pool(5), zero_window),
               InvalidArgument);
  // Window smaller than AR order is rejected.
  LarConfig small = paper_config(3);
  EXPECT_THROW(LarPredictor(predictors::make_paper_pool(5), small),
               InvalidArgument);
  LarConfig zero_k = paper_config();
  zero_k.knn_k = 0;
  EXPECT_THROW(LarPredictor(predictors::make_paper_pool(5), zero_k),
               InvalidArgument);
}

TEST(LarPredictor, UntrainedAccessThrows) {
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  EXPECT_FALSE(lar.trained());
  EXPECT_THROW((void)lar.predict_next(), StateError);
  EXPECT_THROW(lar.observe(1.0), StateError);
  EXPECT_THROW((void)lar.selector(), StateError);
  EXPECT_THROW((void)lar.training_labels(), StateError);
  EXPECT_THROW((void)lar.normalizer(), StateError);
}

TEST(LarPredictor, TrainValidatesLength) {
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  EXPECT_THROW(lar.train(std::vector<double>(6, 1.0)), InvalidArgument);
}

TEST(LarPredictor, TrainingProducesOneLabelPerSupervisedWindow) {
  const auto series = ar1_series(200, 1);
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  lar.train(series);
  ASSERT_TRUE(lar.trained());
  EXPECT_EQ(lar.training_labels().size(), 200u - 5u);
  for (std::size_t label : lar.training_labels()) EXPECT_LT(label, 3u);
  EXPECT_EQ(lar.observed_count(), 200u);
}

TEST(LarPredictor, ForecastIsFiniteAndInRawUnits) {
  const auto series = ar1_series(300, 2);
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  lar.train(series);
  const auto forecast = lar.predict_next();
  EXPECT_TRUE(std::isfinite(forecast.value));
  EXPECT_LT(forecast.label, 3u);
  // Raw units: an AR(1) around 50 should forecast in that neighbourhood.
  EXPECT_GT(forecast.value, 0.0);
  EXPECT_LT(forecast.value, 120.0);
}

TEST(LarPredictor, OnlineObservationsShiftTheWindow) {
  const auto series = ar1_series(300, 3);
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  lar.train(series);
  const auto before = lar.predict_next();
  lar.observe(series.back() + 10.0);
  const auto after = lar.predict_next();
  // The window changed, so (for LAST/AR selections at least) the forecast
  // should respond.  Equality of both is possible only for SW_AVG quirks;
  // assert the pipeline didn't throw and labels remain valid.
  EXPECT_LT(after.label, 3u);
  EXPECT_TRUE(std::isfinite(after.value));
  (void)before;
}

TEST(LarPredictor, LabelsTrackWorkloadCharacter) {
  // Construct a series whose first half is smooth (LAST/AR territory) and
  // whose second half is violent noise (SW_AVG territory); the training
  // labels must not collapse to a single class.
  Rng rng(4);
  std::vector<double> series;
  double dev = 0.0;
  for (int i = 0; i < 200; ++i) {
    dev = 0.95 * dev + rng.normal(0.0, 0.3);
    series.push_back(50.0 + dev);
  }
  for (int i = 0; i < 200; ++i) {
    series.push_back(rng.bernoulli(0.5) ? 80.0 + rng.normal(0, 5)
                                        : 20.0 + rng.normal(0, 5));
  }
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  lar.train(series);
  const auto& labels = lar.training_labels();
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t l : labels) ++counts[l];
  EXPECT_GT(counts[0] + counts[1], 0u);
  EXPECT_GT(counts[2], 0u);  // SW_AVG must win somewhere in the noise half
}

TEST(LarPredictor, SelectorAgreesWithKnnOnTrainingWindows) {
  const auto series = ar1_series(150, 5);
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  lar.train(series);
  // Selector must produce a valid label for any window-sized input.
  auto selector = lar.selector().clone();
  const std::vector<double> window(5, 0.0);
  EXPECT_LT(selector->select(window), 3u);
}

TEST(LarPredictor, RetrainReplacesModel) {
  const auto first = ar1_series(200, 6, 0.8, 10.0, 1.0);
  const auto second = ar1_series(200, 7, 0.8, 1000.0, 1.0);
  LarPredictor lar(predictors::make_paper_pool(5), paper_config());
  lar.train(first);
  const double mean_before = lar.normalizer().mean();
  lar.retrain(second);
  EXPECT_GT(lar.normalizer().mean(), 10.0 * mean_before);
  const auto forecast = lar.predict_next();
  EXPECT_GT(forecast.value, 500.0);  // now forecasting in the new regime
}

TEST(LarPredictor, WorksWithExtendedPool) {
  const auto series = ar1_series(400, 8);
  LarConfig config = paper_config(8);
  LarPredictor lar(predictors::make_extended_pool(8), config);
  lar.train(series);
  const auto forecast = lar.predict_next();
  EXPECT_LT(forecast.label, predictors::make_extended_pool(8).size());
  EXPECT_TRUE(std::isfinite(forecast.value));
}

TEST(LarPredictor, PcaSpaceAblationStillPredicts) {
  const auto series = ar1_series(300, 9);
  LarConfig config = paper_config();
  config.predict_in_pca_space = true;
  LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(series);
  const auto forecast = lar.predict_next();
  EXPECT_TRUE(std::isfinite(forecast.value));
}

TEST(LarPredictor, KdTreeBackendMatchesBruteForceSelections) {
  const auto series = ar1_series(300, 10);
  LarConfig brute_cfg = paper_config();
  LarConfig tree_cfg = paper_config();
  tree_cfg.knn_backend = ml::KnnBackend::KdTree;

  LarPredictor brute(predictors::make_paper_pool(5), brute_cfg);
  LarPredictor tree(predictors::make_paper_pool(5), tree_cfg);
  brute.train(series);
  tree.train(series);

  auto bsel = brute.selector().clone();
  auto tsel = tree.selector().clone();
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> window(5);
    for (auto& w : window) w = rng.uniform(-2, 2);
    EXPECT_EQ(bsel->select(window), tsel->select(window));
  }
}

TEST(LabelBestPredictors, MatchesManualComputation) {
  // Tiny deterministic series; verify a label by hand.
  // series (already "normalized" for the test's purpose): 0,0,0,10
  // window m=3 -> one supervised window (0,0,0) with target 10.
  // LAST -> 0 (err 10); AR unfit? use SW_AVG/LAST-only pool to keep it
  // parameter-free: SW_AVG -> 0 (err 10). Tie -> label 0 (LAST).
  predictors::PredictorPool pool;
  pool.add(std::make_unique<predictors::LastValue>());
  pool.add(std::make_unique<predictors::SlidingWindowAverage>());
  const std::vector<double> series{0, 0, 0, 10};
  const auto labels = label_best_predictors(pool, series, 3);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], 0u);
}

TEST(LabelBestPredictors, PrefersTheGenuinelyBetterExpert) {
  // Rising ramp: LAST undershoots by 1 each step, SW_AVG by more.
  predictors::PredictorPool pool;
  pool.add(std::make_unique<predictors::LastValue>());
  pool.add(std::make_unique<predictors::SlidingWindowAverage>());
  std::vector<double> ramp(50);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  const auto labels = label_best_predictors(pool, ramp, 4);
  for (std::size_t l : labels) EXPECT_EQ(l, 0u);  // LAST always closer
}

TEST(LabelBestPredictors, Validation) {
  auto pool = predictors::make_paper_pool(3);
  EXPECT_THROW((void)label_best_predictors(pool, std::vector<double>(3, 1.0), 3),
               InvalidArgument);
}

}  // namespace
}  // namespace larp::core
