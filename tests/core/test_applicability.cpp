// Tests for the §8 applicability assessor.
#include "core/applicability.hpp"

#include <gtest/gtest.h>

#include "tracegen/catalog.hpp"
#include "util/rng.hpp"

namespace larp::core {
namespace {

LarConfig test_config() {
  LarConfig config;
  config.window = 5;
  config.pca_components = 0;
  config.pca_min_variance = 0.85;
  return config;
}

ml::CrossValidationPlan quick_plan() {
  ml::CrossValidationPlan plan;
  plan.folds = 3;
  return plan;
}

TEST(Applicability, ConstantSeriesNotApplicable) {
  const std::vector<double> flat(200, 3.0);
  const auto pool = predictors::make_paper_pool(5);
  Rng rng(1);
  const auto report =
      assess_applicability(flat, pool, test_config(), quick_plan(), rng);
  EXPECT_EQ(report.verdict, ApplicabilityVerdict::NotApplicable);
  EXPECT_FALSE(report.explanation.empty());
}

TEST(Applicability, RandomWalkPrefersSingleExpert) {
  // A pure random walk: LAST is optimal and the oracle headroom over it is
  // small — the assessor must say "run the single expert".
  Rng gen(2);
  std::vector<double> walk(600);
  double level = 100.0;
  for (auto& x : walk) {
    level += gen.normal(0.0, 1.0);
    x = level;
  }
  const auto pool = predictors::make_paper_pool(5);
  Rng rng(3);
  const auto report =
      assess_applicability(walk, pool, test_config(), quick_plan(), rng);
  EXPECT_NE(report.verdict, ApplicabilityVerdict::NotApplicable);
  // LAST should be identified as the best single expert.
  EXPECT_EQ(report.best_single_label, 0u);
  EXPECT_LT(report.oracle_headroom, 0.6);
}

TEST(Applicability, RegimeSwitchingTraceScoresHeadroom) {
  const auto trace = tracegen::make_trace("VM2", "load15", 7, 500);
  const auto pool = predictors::make_paper_pool(5);
  Rng rng(4);
  const auto report =
      assess_applicability(trace.values, pool, test_config(), quick_plan(), rng);
  EXPECT_NE(report.verdict, ApplicabilityVerdict::NotApplicable);
  EXPECT_GT(report.oracle_headroom, 0.05);
  EXPECT_GT(report.label_entropy, 0.2);   // multiple classes genuinely used
  EXPECT_GT(report.label_churn, 0.0);     // and they alternate
  EXPECT_GT(report.selection_accuracy, report.chance_accuracy);
}

TEST(Applicability, ReportFieldsConsistent) {
  const auto trace = tracegen::make_trace("VM4", "CPU_usedsec", 9, 400);
  const auto pool = predictors::make_paper_pool(5);
  Rng rng(5);
  const auto report =
      assess_applicability(trace.values, pool, test_config(), quick_plan(), rng);
  // Ratios must match the raw MSEs they were derived from.
  EXPECT_NEAR(report.oracle_headroom,
              1.0 - report.mse_oracle / report.mse_best_single, 1e-12);
  EXPECT_NEAR(report.realized_gain,
              1.0 - report.mse_lar / report.mse_best_single, 1e-12);
  EXPECT_LE(report.mse_oracle, report.mse_best_single + 1e-12);
  EXPECT_DOUBLE_EQ(report.chance_accuracy, 1.0 / 3.0);
  EXPECT_GE(report.label_entropy, 0.0);
  EXPECT_LE(report.label_entropy, 1.0);
  EXPECT_FALSE(report.explanation.empty());
}

TEST(Applicability, VerdictStringsDistinct) {
  EXPECT_STRNE(to_string(ApplicabilityVerdict::NotApplicable),
               to_string(ApplicabilityVerdict::Recommended));
  EXPECT_STRNE(to_string(ApplicabilityVerdict::SingleExpertSuffices),
               to_string(ApplicabilityVerdict::HeadroomUnrealized));
}

TEST(Applicability, ThresholdsShiftVerdicts) {
  const auto trace = tracegen::make_trace("VM2", "NIC1_received", 11, 400);
  const auto pool = predictors::make_paper_pool(5);

  ApplicabilityThresholds lenient;
  lenient.min_headroom = 0.0;
  lenient.min_realized_gain = -1.0;  // any realized result passes
  Rng rng_a(6);
  const auto relaxed = assess_applicability(trace.values, pool, test_config(),
                                            quick_plan(), rng_a, lenient);
  EXPECT_EQ(relaxed.verdict, ApplicabilityVerdict::Recommended);

  ApplicabilityThresholds strict;
  strict.min_headroom = 0.99;  // nothing has 99% headroom
  Rng rng_b(6);
  const auto denied = assess_applicability(trace.values, pool, test_config(),
                                           quick_plan(), rng_b, strict);
  EXPECT_EQ(denied.verdict, ApplicabilityVerdict::SingleExpertSuffices);
}

TEST(Applicability, DeterministicForFixedSeed) {
  const auto trace = tracegen::make_trace("VM5", "NIC2_received", 13, 400);
  const auto pool = predictors::make_paper_pool(5);
  Rng a(7), b(7);
  const auto ra =
      assess_applicability(trace.values, pool, test_config(), quick_plan(), a);
  const auto rb =
      assess_applicability(trace.values, pool, test_config(), quick_plan(), b);
  EXPECT_EQ(ra.verdict, rb.verdict);
  EXPECT_DOUBLE_EQ(ra.oracle_headroom, rb.oracle_headroom);
  EXPECT_DOUBLE_EQ(ra.realized_gain, rb.realized_gain);
}

}  // namespace
}  // namespace larp::core
