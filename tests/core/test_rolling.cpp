// Tests for the rolling-origin (walk-forward) evaluation protocol.
#include "core/rolling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tracegen/catalog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::core {
namespace {

RollingOriginConfig quick_config() {
  RollingOriginConfig config;
  config.lar.window = 5;
  config.lar.pca_components = 0;
  config.lar.pca_min_variance = 0.85;
  config.initial_train = 100;
  config.retrain_every = 50;
  return config;
}

TEST(RollingOrigin, Validation) {
  const auto pool = predictors::make_paper_pool(5);
  RollingOriginConfig config = quick_config();
  config.initial_train = 5;  // window+2 = 7 required
  EXPECT_THROW((void)rolling_origin_evaluate(std::vector<double>(300, 1.0),
                                             pool, config),
               InvalidArgument);
  config = quick_config();
  EXPECT_THROW((void)rolling_origin_evaluate(std::vector<double>(50, 1.0),
                                             pool, config),
               InvalidArgument);
  EXPECT_THROW((void)rolling_origin_evaluate(std::vector<double>(300, 1.0),
                                             pool, config),
               StateError);  // constant prefix
}

TEST(RollingOrigin, WalksEveryPostTrainingStep) {
  const auto trace = tracegen::make_trace("VM2", "CPU_usedsec", 3);
  const auto pool = predictors::make_paper_pool(5);
  const auto result =
      rolling_origin_evaluate(trace.values, pool, quick_config());
  EXPECT_EQ(result.steps, trace.size() - 100);
  // Usage counts account for every step.
  EXPECT_EQ(std::accumulate(result.expert_usage.begin(),
                            result.expert_usage.end(), std::size_t{0}),
            result.steps);
}

TEST(RollingOrigin, RetrainsOnCadence) {
  const auto trace = tracegen::make_trace("VM4", "CPU_usedsec", 4);
  const auto pool = predictors::make_paper_pool(5);
  auto config = quick_config();
  config.retrain_every = 40;
  const auto result = rolling_origin_evaluate(trace.values, pool, config);
  // 188 walked steps / 40 -> 4 cadence hits (the final one may be skipped
  // near the series end).
  EXPECT_GE(result.retrains, 3u);
  EXPECT_LE(result.retrains, 5u);

  config.retrain_every = 0;
  const auto frozen = rolling_origin_evaluate(trace.values, pool, config);
  EXPECT_EQ(frozen.retrains, 0u);
}

TEST(RollingOrigin, OracleBoundsEveryStrategy) {
  for (const char* metric : {"CPU_usedsec", "NIC1_received", "VD1_write"}) {
    const auto trace = tracegen::make_trace("VM2", metric, 5);
    const auto pool = predictors::make_paper_pool(5);
    const auto result =
        rolling_origin_evaluate(trace.values, pool, quick_config());
    EXPECT_LE(result.mse_oracle, result.mse_nws + 1e-9) << metric;
    EXPECT_LE(result.mse_oracle, result.mse_wnws + 1e-9) << metric;
    for (double single : result.mse_single) {
      EXPECT_LE(result.mse_oracle, single + 1e-9) << metric;
    }
    // All raw-unit MSEs finite.
    EXPECT_TRUE(std::isfinite(result.mse_lar)) << metric;
  }
}

TEST(RollingOrigin, RetrainingHelpsAfterARegimeChange) {
  // Calm prefix, violent suffix: the re-training variant must beat the
  // frozen variant on average across seeds.
  double frozen_total = 0.0, retrained_total = 0.0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    std::vector<double> series;
    double dev = 0.0;
    for (int i = 0; i < 250; ++i) {
      dev = 0.9 * dev + rng.normal(0.0, 0.5);
      series.push_back(30.0 + dev);
    }
    for (int i = 0; i < 250; ++i) {
      series.push_back(rng.bernoulli(0.4) ? 200.0 + rng.normal(0.0, 10.0)
                                          : 50.0 + rng.normal(0.0, 10.0));
    }
    const auto pool = predictors::make_paper_pool(5);
    auto config = quick_config();
    config.initial_train = 200;
    config.retrain_every = 40;
    retrained_total += rolling_origin_evaluate(series, pool, config).mse_lar;
    config.retrain_every = 0;
    frozen_total += rolling_origin_evaluate(series, pool, config).mse_lar;
  }
  EXPECT_LT(retrained_total, frozen_total);
}

TEST(RollingOrigin, DeterministicForSameInputs) {
  const auto trace = tracegen::make_trace("VM5", "NIC2_received", 6);
  const auto pool = predictors::make_paper_pool(5);
  const auto a = rolling_origin_evaluate(trace.values, pool, quick_config());
  const auto b = rolling_origin_evaluate(trace.values, pool, quick_config());
  EXPECT_DOUBLE_EQ(a.mse_lar, b.mse_lar);
  EXPECT_EQ(a.expert_usage, b.expert_usage);
}

}  // namespace
}  // namespace larp::core
