// Tests for the Prediction Quality Assuror (§3.2).
#include "qa/quality_assuror.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp::qa {
namespace {

const tsdb::SeriesKey kKey{"VM1", "cpu", "CPU_usedsec"};

void fill(tsdb::PredictionDatabase& db, int count, double error,
          Timestamp start = 0) {
  for (int i = 0; i < count; ++i) {
    const Timestamp ts = start + i * 300;
    db.record_prediction(kKey, ts, 0.0, 0);
    db.record_observation(kKey, ts, error);
  }
}

TEST(QualityAssuror, Validation) {
  tsdb::PredictionDatabase db;
  QaConfig bad;
  bad.mse_threshold = 0.0;
  EXPECT_THROW(QualityAssuror(db, bad), InvalidArgument);
  bad = {};
  bad.audit_window = 0;
  EXPECT_THROW(QualityAssuror(db, bad), InvalidArgument);
  bad = {};
  bad.min_records = 0;
  EXPECT_THROW(QualityAssuror(db, bad), InvalidArgument);
}

TEST(QualityAssuror, SkipsAuditBelowMinRecords) {
  tsdb::PredictionDatabase db;
  QaConfig config;
  config.min_records = 10;
  QualityAssuror qa(db, config);
  fill(db, 5, 1.0);
  const auto report = qa.audit(kKey);
  EXPECT_FALSE(report.audited);
  EXPECT_EQ(report.records, 5u);
  EXPECT_EQ(qa.audits_performed(), 0u);
}

TEST(QualityAssuror, PassingAuditDoesNotRetrain) {
  tsdb::PredictionDatabase db;
  QaConfig config;
  config.mse_threshold = 2.0;
  config.min_records = 5;
  QualityAssuror qa(db, config);
  bool retrained = false;
  qa.set_retrain_handler([&](const tsdb::SeriesKey&) { retrained = true; });
  fill(db, 20, 1.0);  // MSE = 1 < 2
  const auto report = qa.audit(kKey);
  EXPECT_TRUE(report.audited);
  EXPECT_DOUBLE_EQ(report.mse, 1.0);
  EXPECT_FALSE(report.retrain_ordered);
  EXPECT_FALSE(retrained);
}

TEST(QualityAssuror, BreachTriggersRetrainHandler) {
  tsdb::PredictionDatabase db;
  QaConfig config;
  config.mse_threshold = 1.0;
  config.min_records = 5;
  QualityAssuror qa(db, config);
  tsdb::SeriesKey seen;
  qa.set_retrain_handler([&](const tsdb::SeriesKey& k) { seen = k; });
  fill(db, 20, 3.0);  // MSE = 9 > 1
  const auto report = qa.audit(kKey);
  EXPECT_TRUE(report.retrain_ordered);
  EXPECT_EQ(seen, kKey);
  EXPECT_EQ(qa.retrains_ordered(), 1u);
}

TEST(QualityAssuror, AuditWindowLimitsLookback) {
  tsdb::PredictionDatabase db;
  QaConfig config;
  config.mse_threshold = 1.0;
  config.audit_window = 10;
  config.min_records = 5;
  QualityAssuror qa(db, config);
  // Old terrible predictions followed by recent perfect ones: the audit
  // only sees the recent window and passes.
  fill(db, 30, 10.0, 0);
  fill(db, 10, 0.0, 30 * 300);
  const auto report = qa.audit(kKey);
  EXPECT_TRUE(report.audited);
  EXPECT_DOUBLE_EQ(report.mse, 0.0);
  EXPECT_FALSE(report.retrain_ordered);
}

TEST(QualityAssuror, NoHandlerIsSafe) {
  tsdb::PredictionDatabase db;
  QaConfig config;
  config.min_records = 1;
  QualityAssuror qa(db, config);
  fill(db, 5, 100.0);
  EXPECT_NO_THROW((void)qa.audit(kKey));
  EXPECT_EQ(qa.retrains_ordered(), 1u);
}

TEST(QualityAssuror, UnknownStreamIsEmptyAudit) {
  tsdb::PredictionDatabase db;
  QualityAssuror qa(db, QaConfig{});
  const auto report = qa.audit(tsdb::SeriesKey{"no", "such", "stream"});
  EXPECT_FALSE(report.audited);
  EXPECT_EQ(report.records, 0u);
}

}  // namespace
}  // namespace larp::qa
