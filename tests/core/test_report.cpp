// Tests for the report/table formatting helpers.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace larp::core {
namespace {

TEST(TextTable, ValidatesShape) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable table({"Metric", "MSE"});
  table.add_row({"CPU_usedsec", "0.9508"});
  table.add_row({"NIC1_received", "0.5436"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Metric"), std::string::npos);
  EXPECT_NE(text.find("0.9508"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TextTable, NumFormatsLikeThePaper) {
  EXPECT_EQ(TextTable::num(0.95078), "0.9508");
  EXPECT_EQ(TextTable::num(1.0), "1.0000");
  EXPECT_EQ(TextTable::num(1.0, 2), "1.00");
  EXPECT_EQ(TextTable::num(std::nan("")), "NaN");
}

TEST(TextTable, PctFormatting) {
  EXPECT_EQ(TextTable::pct(0.5598), "55.98%");
  EXPECT_EQ(TextTable::pct(0.4423), "44.23%");
  EXPECT_EQ(TextTable::pct(std::nan("")), "NaN");
}

TEST(LabelStrip, OneLanePerClass) {
  const std::vector<std::size_t> series{0, 0, 1, 1, 2, 2};
  const auto strip =
      render_label_strip(series, {"LAST", "AR", "SW_AVG"}, 6);
  // Three lanes, each with its name.
  EXPECT_NE(strip.find("LAST"), std::string::npos);
  EXPECT_NE(strip.find("AR"), std::string::npos);
  EXPECT_NE(strip.find("SW_AVG"), std::string::npos);
  EXPECT_EQ(std::count(strip.begin(), strip.end(), '\n'), 3);
  // Exactly one '#' per column across all lanes.
  EXPECT_EQ(std::count(strip.begin(), strip.end(), '#'), 6);
}

TEST(LabelStrip, DownsamplesLongSeries) {
  const std::vector<std::size_t> series(1000, 1);
  const auto strip = render_label_strip(series, {"A", "B"}, 50);
  EXPECT_EQ(std::count(strip.begin(), strip.end(), '#'), 50);
}

TEST(LabelStrip, EmptySeries) {
  const auto strip = render_label_strip({}, {"A"});
  EXPECT_EQ(std::count(strip.begin(), strip.end(), '#'), 0);
  EXPECT_THROW((void)render_label_strip({0}, {}), InvalidArgument);
}

}  // namespace
}  // namespace larp::core
