// Tests for the Liang-style multi-resource (cross-correlation) predictor.
#include "predictors/multi_resource.hpp"

#include <gtest/gtest.h>

#include "predictors/autoregressive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::predictors {
namespace {

// Coupled pair: the auxiliary series LEADS the primary by one step, so the
// cross terms carry real predictive information the primary's own history
// does not.
struct CoupledPair {
  std::vector<double> primary;
  std::vector<double> auxiliary;
};

CoupledPair make_coupled(std::size_t n, std::uint64_t seed, double coupling) {
  Rng rng(seed);
  CoupledPair pair;
  pair.primary.resize(n);
  pair.auxiliary.resize(n);
  double aux = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    aux = 0.8 * aux + rng.normal();
    pair.auxiliary[t] = aux;
    const double lead = t > 0 ? pair.auxiliary[t - 1] : 0.0;
    pair.primary[t] = 0.3 * (t > 0 ? pair.primary[t - 1] : 0.0) +
                      coupling * lead + rng.normal(0.0, 0.5);
  }
  return pair;
}

TEST(MultiResource, Validation) {
  EXPECT_THROW(MultiResourcePredictor(0), InvalidArgument);
  MultiResourcePredictor model(2);
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW(model.fit(std::vector<double>(50, 1.0),
                         std::vector<double>(49, 1.0)),
               InvalidArgument);
  EXPECT_THROW(model.fit(std::vector<double>(5, 1.0),
                         std::vector<double>(5, 1.0)),
               InvalidArgument);
  EXPECT_THROW((void)model.predict(std::vector<double>{1, 2},
                                   std::vector<double>{1, 2}),
               StateError);
}

TEST(MultiResource, RecoversCrossCoefficients) {
  const auto pair = make_coupled(40000, 1, /*coupling=*/0.9);
  MultiResourcePredictor model(1);
  model.fit(pair.primary, pair.auxiliary);
  EXPECT_NEAR(model.primary_coefficients()[0], 0.3, 0.03);
  EXPECT_NEAR(model.auxiliary_coefficients()[0], 0.9, 0.03);
}

TEST(MultiResource, BeatsUnivariateArOnCoupledPair) {
  // The paper's §2 point about Liang et al.: cross-correlation information
  // lifts accuracy beyond any univariate model of the primary.
  const auto train = make_coupled(20000, 2, 0.9);
  const auto test = make_coupled(20000, 3, 0.9);

  MultiResourcePredictor cross(2);
  cross.fit(train.primary, train.auxiliary);
  const double cross_mse = cross.walk_mse(test.primary, test.auxiliary);

  Autoregressive ar(2);
  ar.fit(train.primary);
  stats::RunningMse ar_mse;
  for (std::size_t t = 2; t < test.primary.size(); ++t) {
    const std::vector<double> window{test.primary[t - 2], test.primary[t - 1]};
    ar_mse.add(ar.predict(window), test.primary[t]);
  }

  EXPECT_LT(cross_mse, 0.7 * ar_mse.value())
      << "cross terms failed to exploit the auxiliary lead";
  // And the cross model approaches the innovation floor (0.5^2).
  EXPECT_NEAR(cross_mse, 0.25, 0.05);
}

TEST(MultiResource, NoWorseOnUncoupledPair) {
  // With zero coupling the aux coefficients should fit to ~0 and the model
  // should match (not beat) the univariate AR.
  const auto train = make_coupled(20000, 4, 0.0);
  const auto test = make_coupled(20000, 5, 0.0);
  MultiResourcePredictor cross(1);
  cross.fit(train.primary, train.auxiliary);
  EXPECT_NEAR(cross.auxiliary_coefficients()[0], 0.0, 0.03);

  Autoregressive ar(1);
  ar.fit(train.primary);
  stats::RunningMse ar_mse;
  for (std::size_t t = 1; t < test.primary.size(); ++t) {
    ar_mse.add(ar.predict(std::vector<double>{test.primary[t - 1]}),
               test.primary[t]);
  }
  const double cross_mse = cross.walk_mse(test.primary, test.auxiliary);
  EXPECT_NEAR(cross_mse, ar_mse.value(), 0.02 * ar_mse.value());
}

TEST(MultiResource, InterceptHandlesNonZeroMeans) {
  Rng rng(6);
  std::vector<double> primary(2000), aux(2000);
  for (std::size_t t = 0; t < 2000; ++t) {
    aux[t] = 50.0 + rng.normal();
    primary[t] = 100.0 + 0.5 * (aux[t > 0 ? t - 1 : 0] - 50.0) + rng.normal(0, 0.3);
  }
  MultiResourcePredictor model(1);
  model.fit(primary, aux);
  const double forecast =
      model.predict(std::vector<double>{100.0}, std::vector<double>{50.0});
  EXPECT_NEAR(forecast, 100.0, 1.0);
}

TEST(MultiResource, WalkMseValidation) {
  MultiResourcePredictor model(1);
  const auto pair = make_coupled(200, 7, 0.5);
  model.fit(pair.primary, pair.auxiliary);
  EXPECT_THROW((void)model.walk_mse(std::vector<double>{1.0},
                                    std::vector<double>{1.0}),
               InvalidArgument);
  EXPECT_THROW((void)model.walk_mse(pair.primary,
                                    std::vector<double>(10, 1.0)),
               InvalidArgument);
}

}  // namespace
}  // namespace larp::predictors
