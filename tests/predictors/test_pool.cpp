// Tests for the predictor pool and its factory configurations.
#include "predictors/pool.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "predictors/last.hpp"
#include "predictors/running_mean.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::predictors {
namespace {

std::vector<double> noisy_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = 0.7 * prev + rng.normal();
    x = prev;
  }
  return xs;
}

TEST(PredictorPool, PaperPoolOrderMatchesClassNumbering) {
  const auto pool = make_paper_pool(5);
  ASSERT_EQ(pool.size(), 3u);
  // Paper: 1-LAST, 2-AR, 3-SW_AVG (0-based 0, 1, 2).
  EXPECT_EQ(pool.name(0), "LAST");
  EXPECT_EQ(pool.name(1), "AR");
  EXPECT_EQ(pool.name(2), "SW_AVG");
}

TEST(PredictorPool, ExtendedPoolSupersetOfPaperPool) {
  const auto pool = make_extended_pool(5);
  EXPECT_GE(pool.size(), 10u);
  EXPECT_EQ(pool.name(0), "LAST");
  EXPECT_EQ(pool.name(1), "AR");
  EXPECT_EQ(pool.name(2), "SW_AVG");
  EXPECT_NO_THROW((void)pool.label_of("TENDENCY"));
  EXPECT_NO_THROW((void)pool.label_of("POLY_FIT(d2)"));
}

TEST(PredictorPool, AddRejectsNull) {
  PredictorPool pool;
  EXPECT_THROW((void)pool.add(nullptr), InvalidArgument);
}

TEST(PredictorPool, LabelLookup) {
  const auto pool = make_paper_pool(3);
  EXPECT_EQ(pool.label_of("AR"), 1u);
  EXPECT_THROW((void)pool.label_of("NOPE"), NotFound);
  EXPECT_THROW((void)pool.at(3), InvalidArgument);
  EXPECT_THROW((void)pool.name(99), InvalidArgument);
}

TEST(PredictorPool, MinHistoryIsMaxOverMembers) {
  const auto pool = make_paper_pool(7);
  EXPECT_EQ(pool.min_history(), 7u);  // AR(7) dominates LAST/SW_AVG
}

TEST(PredictorPool, PredictAllMatchesMembers) {
  auto pool = make_paper_pool(3);
  const auto series = noisy_series(500, 42);
  pool.fit_all(series);
  const std::vector<double> window{1.0, 2.0, 3.0};
  const auto all = pool.predict_all(window);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0], pool.at(0).predict(window));
  EXPECT_DOUBLE_EQ(all[1], pool.at(1).predict(window));
  EXPECT_DOUBLE_EQ(all[2], pool.at(2).predict(window));
  EXPECT_DOUBLE_EQ(all[0], 3.0);  // LAST
  EXPECT_DOUBLE_EQ(all[2], 2.0);  // SW_AVG
}

TEST(PredictorPool, ObserveAllFeedsStatefulMembers) {
  PredictorPool pool;
  pool.add(std::make_unique<LastValue>());
  pool.add(std::make_unique<RunningMean>());
  pool.observe_all(4.0);
  pool.observe_all(8.0);
  const auto all = pool.predict_all(std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(all[0], 1.0);  // LAST sees the window
  EXPECT_DOUBLE_EQ(all[1], 6.0);  // RunningMean sees the observations
}

TEST(PredictorPool, ResetAllClearsState) {
  PredictorPool pool;
  pool.add(std::make_unique<RunningMean>());
  pool.observe_all(100.0);
  pool.reset_all();
  const auto all = pool.predict_all(std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(all[0], 2.0);
}

TEST(PredictorPool, CloneIsDeepAndIndependent) {
  PredictorPool pool;
  pool.add(std::make_unique<RunningMean>());
  pool.observe_all(10.0);
  auto copy = pool.clone();
  // Clone carries the state snapshot...
  EXPECT_DOUBLE_EQ(copy.predict_all(std::vector<double>{0.0})[0], 10.0);
  // ...but evolves independently afterwards.
  copy.observe_all(20.0);
  EXPECT_DOUBLE_EQ(pool.predict_all(std::vector<double>{0.0})[0], 10.0);
  EXPECT_DOUBLE_EQ(copy.predict_all(std::vector<double>{0.0})[0], 15.0);
}

TEST(PredictorPool, FitAllFitsAr) {
  auto pool = make_paper_pool(2);
  const auto series = noisy_series(2000, 7);
  EXPECT_NO_THROW(pool.fit_all(series));
  // AR must now predict without throwing.
  EXPECT_NO_THROW((void)pool.at(1).predict(std::vector<double>{0.1, 0.2}));
}

TEST(PredictorPool, NamesVectorInLabelOrder) {
  const auto pool = make_paper_pool(4);
  const auto names = pool.names();
  EXPECT_EQ(names, (std::vector<std::string>{"LAST", "AR", "SW_AVG"}));
}

TEST(PredictorPool, ExtendedPoolSurvivesFullFitPredictCycle) {
  auto pool = make_extended_pool(5);
  const auto series = noisy_series(1000, 99);
  pool.fit_all(series);
  pool.reset_all();
  for (std::size_t i = 0; i < 10; ++i) pool.observe_all(series[i]);
  const std::vector<double> window(series.begin(), series.begin() + 5);
  const auto all = pool.predict_all(window);
  EXPECT_EQ(all.size(), pool.size());
  for (double f : all) EXPECT_TRUE(std::isfinite(f));
}

}  // namespace
}  // namespace larp::predictors
