// Tests for the seasonal-naive predictor.
#include "predictors/seasonal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "predictors/last.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::predictors {
namespace {

TEST(SeasonalNaive, Validation) {
  EXPECT_THROW(SeasonalNaive(0), InvalidArgument);
  SeasonalNaive model(4);
  EXPECT_THROW((void)model.predict(std::vector<double>{}), InvalidArgument);
}

TEST(SeasonalNaive, NameAndPeriod) {
  SeasonalNaive model(288);
  EXPECT_EQ(model.name(), "SEASONAL(288)");
  EXPECT_EQ(model.period(), 288u);
  EXPECT_FALSE(model.primed());
}

TEST(SeasonalNaive, DegradesToLastBeforePrimed) {
  SeasonalNaive model(10);
  model.observe(1.0);
  EXPECT_FALSE(model.primed());
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{7.0}), 7.0);
}

TEST(SeasonalNaive, ExactOnPurelyPeriodicSeries) {
  // A deterministic period-4 cycle: once primed, forecasts are perfect.
  const double cycle[4] = {10, 20, 30, 40};
  SeasonalNaive model(4);
  for (int t = 0; t < 4; ++t) model.observe(cycle[t % 4]);
  EXPECT_TRUE(model.primed());
  for (int t = 4; t < 40; ++t) {
    // Forecast the value at t given observations through t-1.
    const std::vector<double> window{cycle[(t - 1) % 4]};
    EXPECT_DOUBLE_EQ(model.predict(window), cycle[t % 4]) << "t=" << t;
    model.observe(cycle[t % 4]);
  }
}

TEST(SeasonalNaive, BeatsLastOnDiurnalSeries) {
  // Sinusoid of period 48 with small noise: LAST lags the slope, the
  // seasonal expert nails each phase.
  Rng rng(5);
  const std::size_t period = 48;
  std::vector<double> series(period * 20);
  for (std::size_t t = 0; t < series.size(); ++t) {
    series[t] = 50.0 +
                20.0 * std::sin(2.0 * std::numbers::pi * t / period) +
                rng.normal(0.0, 0.5);
  }
  SeasonalNaive seasonal(period);
  LastValue last;
  stats::RunningMse seasonal_mse, last_mse;
  for (std::size_t t = 0; t + 1 < series.size(); ++t) {
    seasonal.observe(series[t]);
    if (t >= period) {
      const std::vector<double> window{series[t]};
      seasonal_mse.add(seasonal.predict(window), series[t + 1]);
      last_mse.add(last.predict(window), series[t + 1]);
    }
  }
  EXPECT_LT(seasonal_mse.value(), 0.6 * last_mse.value());
}

TEST(SeasonalNaive, ResetClearsRing) {
  SeasonalNaive model(3);
  for (double v : {1.0, 2.0, 3.0}) model.observe(v);
  EXPECT_TRUE(model.primed());
  model.reset();
  EXPECT_FALSE(model.primed());
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{9.0}), 9.0);
}

TEST(SeasonalNaive, CloneCarriesRing) {
  SeasonalNaive model(2);
  model.observe(5.0);
  model.observe(6.0);
  const auto copy = model.clone();
  const std::vector<double> window{0.0};
  EXPECT_DOUBLE_EQ(copy->predict(window), model.predict(window));
  EXPECT_DOUBLE_EQ(copy->predict(window), 5.0);  // one period back
}

}  // namespace
}  // namespace larp::predictors
