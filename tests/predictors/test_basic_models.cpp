// Tests for the paper's parameter-free models: LAST and SW_AVG.
#include <gtest/gtest.h>

#include "predictors/last.hpp"
#include "predictors/sliding_window_average.hpp"
#include "util/error.hpp"

namespace larp::predictors {
namespace {

TEST(LastValue, PredictsMostRecent) {
  LastValue model;
  EXPECT_EQ(model.name(), "LAST");
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1, 2, 3}), 3.0);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{-7}), -7.0);
}

TEST(LastValue, RejectsEmptyWindow) {
  LastValue model;
  EXPECT_THROW((void)model.predict(std::vector<double>{}), InvalidArgument);
}

TEST(LastValue, CloneIsIndependent) {
  LastValue model;
  const auto copy = model.clone();
  EXPECT_EQ(copy->name(), "LAST");
  EXPECT_DOUBLE_EQ(copy->predict(std::vector<double>{5.0}), 5.0);
}

TEST(LastValue, PerfectOnConstantSeries) {
  // The paper's observation: LAST excels on smooth traces.
  LastValue model;
  const std::vector<double> window(8, 2.5);
  EXPECT_DOUBLE_EQ(model.predict(window), 2.5);
}

TEST(LastValue, FitAndObserveAreNoops) {
  LastValue model;
  model.fit(std::vector<double>{1, 2, 3});
  model.observe(9.0);
  model.reset();
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{4.0}), 4.0);
}

TEST(SlidingWindowAverage, AveragesWholeWindowByDefault) {
  SlidingWindowAverage model;
  EXPECT_EQ(model.name(), "SW_AVG");
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(SlidingWindowAverage, FixedWindowUsesSuffix) {
  SlidingWindowAverage model(2);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{100, 1, 3}), 2.0);
  EXPECT_EQ(model.min_history(), 2u);
}

TEST(SlidingWindowAverage, FixedWindowRequiresEnoughHistory) {
  SlidingWindowAverage model(4);
  EXPECT_THROW((void)model.predict(std::vector<double>{1, 2, 3}), InvalidArgument);
}

TEST(SlidingWindowAverage, DampsSpikes) {
  // The reason SW_AVG wins on bursty traces: a single spike moves the
  // forecast by only spike/window.
  SlidingWindowAverage model;
  const double quiet = model.predict(std::vector<double>{1, 1, 1, 1});
  const double spiked = model.predict(std::vector<double>{1, 1, 1, 101});
  EXPECT_DOUBLE_EQ(quiet, 1.0);
  EXPECT_DOUBLE_EQ(spiked, 26.0);  // vs LAST which would say 101
}

TEST(SlidingWindowAverage, CloneKeepsWindowSize) {
  SlidingWindowAverage model(3);
  const auto copy = model.clone();
  EXPECT_EQ(copy->min_history(), 3u);
}

TEST(SlidingWindowAverage, SingleElementWindow) {
  SlidingWindowAverage model;
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{7.0}), 7.0);
}

}  // namespace
}  // namespace larp::predictors
