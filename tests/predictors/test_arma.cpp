// Tests for the Hannan–Rissanen ARMA/MA predictors (extension pool).
#include "predictors/arma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::predictors {
namespace {

// Simulates an ARMA(p,q) process with unit-variance innovations.
std::vector<double> simulate_arma(const std::vector<double>& phi,
                                  const std::vector<double>& theta,
                                  std::size_t n, Rng& rng, double mean = 0.0) {
  std::vector<double> z(n, 0.0);
  std::vector<double> e(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    e[t] = rng.normal();
    double value = e[t];
    for (std::size_t i = 0; i < phi.size() && i < t; ++i) {
      value += phi[i] * (z[t - 1 - i] - mean);
    }
    for (std::size_t j = 0; j < theta.size() && j < t; ++j) {
      value += theta[j] * e[t - 1 - j];
    }
    z[t] = mean + value;
  }
  return z;
}

TEST(Arma, Validation) {
  EXPECT_THROW(Arma(2, 0), InvalidArgument);
  EXPECT_NO_THROW(Arma(0, 1));
  EXPECT_NO_THROW(Arma(2, 1));
}

TEST(Arma, NameEncodesOrders) {
  EXPECT_EQ(Arma(2, 1).name(), "ARMA(2,1)");
  EXPECT_EQ(Arma(0, 3).name(), "MA(3)");
  EXPECT_EQ(make_moving_average(2)->name(), "MA(2)");
}

TEST(Arma, PredictBeforeFitThrows) {
  Arma model(1, 1);
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), StateError);
}

TEST(Arma, FitRequiresEnoughData) {
  Arma model(1, 1);
  EXPECT_THROW(model.fit(std::vector<double>(20, 1.0)), InvalidArgument);
}

TEST(Arma, RecoversArma11Coefficients) {
  Rng rng(71);
  const auto series = simulate_arma({0.6}, {0.4}, 60000, rng);
  Arma model(1, 1);
  model.fit(series);
  ASSERT_TRUE(model.fitted());
  EXPECT_NEAR(model.ar_coefficients()[0], 0.6, 0.05);
  EXPECT_NEAR(model.ma_coefficients()[0], 0.4, 0.07);
}

TEST(Arma, RecoversMa1Coefficient) {
  Rng rng(72);
  const auto series = simulate_arma({}, {0.7}, 60000, rng);
  Arma model(0, 1);
  model.fit(series);
  EXPECT_TRUE(model.ar_coefficients().empty());
  EXPECT_NEAR(model.ma_coefficients()[0], 0.7, 0.07);
}

TEST(Arma, OnlineWalkBeatsMeanPredictionOnMaProcess) {
  // On an MA(1) process the best mean-style forecast has MSE = var =
  // (1+theta^2) sigma^2; a fitted MA(1) driven through the predict/observe
  // walk should approach the innovation variance sigma^2 = 1.
  Rng rng(73);
  const double theta = 0.8;
  const auto series = simulate_arma({}, {theta}, 40000, rng);
  const std::size_t split = 20000;
  Arma model(0, 1);
  model.fit(std::span<const double>(series.data(), split));
  model.reset();

  stats::RunningMse mse;
  for (std::size_t t = 0; t + 1 < series.size(); ++t) {
    // Pipeline contract: predict() is called once its window's most recent
    // value has been observed (predictors/predictor.hpp).
    model.observe(series[t]);
    if (t >= split) {
      const std::vector<double> window{series[t]};
      mse.add(model.predict(window), series[t + 1]);
    }
  }
  const double series_var = stats::variance(series);
  EXPECT_LT(mse.value(), 0.85 * series_var);   // clearly better than the mean
  EXPECT_NEAR(mse.value(), 1.0, 0.15);         // near the innovation variance
}

TEST(Arma, ConstantSeriesDegeneratesGracefully) {
  Arma model(1, 1);
  model.fit(std::vector<double>(100, 5.0));
  EXPECT_NEAR(model.predict(std::vector<double>{5.0}), 5.0, 1e-9);
}

TEST(Arma, ResetClearsInnovationState) {
  Rng rng(74);
  const auto series = simulate_arma({0.5}, {0.5}, 5000, rng);
  Arma model(1, 1);
  model.fit(series);
  model.observe(10.0);
  model.observe(-10.0);
  const double with_state = model.predict(std::vector<double>{0.0});
  model.reset();
  const double without_state = model.predict(std::vector<double>{0.0});
  EXPECT_NE(with_state, without_state);
  EXPECT_NEAR(without_state, stats::mean(series), 0.2);
}

TEST(Arma, CloneCarriesFitAndState) {
  Rng rng(75);
  const auto series = simulate_arma({0.5}, {0.3}, 5000, rng);
  Arma model(1, 1);
  model.fit(series);
  model.observe(2.0);
  const auto copy = model.clone();
  const std::vector<double> window{1.0};
  EXPECT_DOUBLE_EQ(copy->predict(window), model.predict(window));
}

TEST(Arma, MinHistoryReflectsArOrder) {
  EXPECT_EQ(Arma(3, 1).min_history(), 3u);
  EXPECT_EQ(Arma(0, 2).min_history(), 1u);
}

TEST(Arma, InnovationTrackingIndependentOfPredictCalls) {
  // Deployment semantics: observe() alone must maintain correct state even
  // when predict() is never called (only the selected expert runs).
  Rng rng(76);
  const auto series = simulate_arma({0.5}, {0.5}, 8000, rng);
  Arma a(1, 1), b(1, 1);
  a.fit(series);
  b.fit(series);
  a.reset();
  b.reset();
  for (int i = 0; i < 50; ++i) {
    a.observe(series[i]);
    // b additionally predicts each step; state must match regardless.
    if (i > 0) (void)b.predict(std::vector<double>{series[i - 1]});
    b.observe(series[i]);
  }
  const std::vector<double> window{series[49]};
  EXPECT_DOUBLE_EQ(a.predict(window), b.predict(window));
}

}  // namespace
}  // namespace larp::predictors
