// Tests for the Yule–Walker-fitted AR(p) predictor.
#include "predictors/autoregressive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::predictors {
namespace {

std::vector<double> simulate_ar(const std::vector<double>& psi, double sigma,
                                std::size_t n, Rng& rng, double mean = 0.0) {
  std::vector<double> series(n, 0.0);
  std::vector<double> state(psi.size(), 0.0);
  for (auto& x : series) {
    double next = rng.normal(0.0, sigma);
    for (std::size_t i = 0; i < psi.size(); ++i) next += psi[i] * state[i];
    for (std::size_t i = psi.size(); i-- > 1;) state[i] = state[i - 1];
    state[0] = next;
    x = mean + next;
  }
  return series;
}

TEST(Autoregressive, RejectsZeroOrder) {
  EXPECT_THROW(Autoregressive(0), InvalidArgument);
}

TEST(Autoregressive, PredictBeforeFitThrows) {
  Autoregressive model(2);
  EXPECT_THROW((void)model.predict(std::vector<double>{1, 2}), StateError);
}

TEST(Autoregressive, FitRequiresEnoughData) {
  Autoregressive model(5);
  const std::vector<double> series{1, 2, 3, 4, 5};
  EXPECT_THROW(model.fit(series), InvalidArgument);
}

TEST(Autoregressive, RecoversAr1Coefficient) {
  Rng rng(9001);
  const auto series = simulate_ar({0.75}, 1.0, 50000, rng);
  Autoregressive model(1);
  model.fit(series);
  ASSERT_TRUE(model.fitted());
  EXPECT_NEAR(model.coefficients()[0], 0.75, 0.02);
}

TEST(Autoregressive, RecoversAr2Coefficients) {
  Rng rng(9002);
  const auto series = simulate_ar({0.6, -0.2}, 1.0, 80000, rng);
  Autoregressive model(2);
  model.fit(series);
  EXPECT_NEAR(model.coefficients()[0], 0.6, 0.02);
  EXPECT_NEAR(model.coefficients()[1], -0.2, 0.02);
}

TEST(Autoregressive, PredictionUsesRecencyOrdering) {
  // With psi = (1, 0) the forecast equals the last value; with (0, 1) the
  // one before it.  Verify the window indexing convention directly.
  Rng rng(9003);
  const auto series = simulate_ar({0.9}, 1.0, 30000, rng);
  Autoregressive model(1);
  model.fit(series);
  const double phi = model.coefficients()[0];
  const double mu = stats::mean(series);
  const std::vector<double> window{1.0, 2.0, 10.0};
  EXPECT_NEAR(model.predict(window), mu + phi * (10.0 - mu), 1e-12);
}

TEST(Autoregressive, WindowShorterThanOrderThrows) {
  Rng rng(9004);
  const auto series = simulate_ar({0.5, 0.1, 0.05}, 1.0, 1000, rng);
  Autoregressive model(3);
  model.fit(series);
  EXPECT_THROW((void)model.predict(std::vector<double>{1, 2}), InvalidArgument);
  EXPECT_NO_THROW((void)model.predict(std::vector<double>{1, 2, 3}));
}

TEST(Autoregressive, NonZeroMeanHandledThroughIntercept) {
  Rng rng(9005);
  const auto series = simulate_ar({0.5}, 0.5, 50000, rng, /*mean=*/20.0);
  Autoregressive model(1);
  model.fit(series);
  // Window at the series mean forecasts the mean.
  const double mu = stats::mean(series);
  EXPECT_NEAR(model.predict(std::vector<double>{mu}), mu, 1e-9);
}

TEST(Autoregressive, ConstantSeriesPredictsTheConstant) {
  const std::vector<double> series(100, 7.0);
  Autoregressive model(4);
  model.fit(series);
  EXPECT_NEAR(model.predict(std::vector<double>{7, 7, 7, 7}), 7.0, 1e-12);
}

TEST(Autoregressive, OneStepMseApproachesInnovationVariance) {
  // On a true AR(1), the fitted model's one-step MSE ~= noise variance,
  // and must beat LAST (whose MSE is 2(1-phi) * var).
  Rng rng(9006);
  const double phi = 0.6, sigma = 1.0;
  const auto series = simulate_ar({phi}, sigma, 50000, rng);
  Autoregressive model(1);
  model.fit(series);

  stats::RunningMse ar_mse, last_mse;
  for (std::size_t t = 1; t + 1 < series.size(); ++t) {
    const std::vector<double> window{series[t]};
    ar_mse.add(model.predict(window), series[t + 1]);
    last_mse.add(series[t], series[t + 1]);
  }
  EXPECT_NEAR(ar_mse.value(), sigma * sigma, 0.05);
  EXPECT_LT(ar_mse.value(), last_mse.value());
}

TEST(Autoregressive, CloneCarriesFittedState) {
  Rng rng(9007);
  const auto series = simulate_ar({0.8}, 1.0, 10000, rng);
  Autoregressive model(1);
  model.fit(series);
  const auto copy = model.clone();
  const std::vector<double> window{2.0};
  EXPECT_DOUBLE_EQ(copy->predict(window), model.predict(window));
}

TEST(Autoregressive, InnovationVarianceReported) {
  Rng rng(9008);
  const auto series = simulate_ar({0.7}, 2.0, 50000, rng);
  Autoregressive model(1);
  model.fit(series);
  // Innovation variance is in normalized acf units times series variance;
  // yule_walker works on autocorrelations so it reports the *fraction*:
  // var_innov / var_series = 1 - phi^2.
  EXPECT_NEAR(model.innovation_variance(), 1.0 - 0.7 * 0.7, 0.03);
}

// Paper note (§4): "LAST performs better for smooth trace data and AR
// performs better for peaky data."  Verify the peaky half: on a
// negatively-correlated (zig-zag) series, AR beats LAST decisively.
TEST(Autoregressive, BeatsLastOnPeakySeries) {
  Rng rng(9009);
  const auto series = simulate_ar({-0.7}, 1.0, 30000, rng);
  Autoregressive model(1);
  model.fit(series);
  stats::RunningMse ar_mse, last_mse;
  for (std::size_t t = 0; t + 1 < series.size(); ++t) {
    ar_mse.add(model.predict(std::vector<double>{series[t]}), series[t + 1]);
    last_mse.add(series[t], series[t + 1]);
  }
  EXPECT_LT(ar_mse.value(), 0.5 * last_mse.value());
}

}  // namespace
}  // namespace larp::predictors
