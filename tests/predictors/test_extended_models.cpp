// Tests for the extension pool (NWS battery / SC'03 / CCGrid'06 models).
#include <gtest/gtest.h>

#include <cmath>

#include "predictors/adaptive_window.hpp"
#include "predictors/ewma.hpp"
#include "predictors/median_window.hpp"
#include "predictors/polyfit.hpp"
#include "predictors/running_mean.hpp"
#include "predictors/tendency.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::predictors {
namespace {

TEST(RunningMean, TracksEntireHistory) {
  RunningMean model;
  model.observe(2.0);
  model.observe(4.0);
  model.observe(6.0);
  // The window contents are irrelevant once history exists.
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{100.0}), 4.0);
  EXPECT_EQ(model.observed_count(), 3u);
}

TEST(RunningMean, FallsBackToWindowMeanWhenCold) {
  RunningMean model;
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1, 3}), 2.0);
}

TEST(RunningMean, ResetClearsHistory) {
  RunningMean model;
  model.observe(10.0);
  model.reset();
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{2.0}), 2.0);
}

TEST(RunningMean, CloneCarriesState) {
  RunningMean model;
  model.observe(8.0);
  const auto copy = model.clone();
  EXPECT_DOUBLE_EQ(copy->predict(std::vector<double>{0.0}), 8.0);
}

TEST(Ewma, ValidatesAlpha) {
  EXPECT_THROW(Ewma(0.0), InvalidArgument);
  EXPECT_THROW(Ewma(1.5), InvalidArgument);
  EXPECT_NO_THROW(Ewma(1.0));
}

TEST(Ewma, SmoothingRecursion) {
  Ewma model(0.5);
  model.observe(10.0);  // state = 10
  model.observe(20.0);  // state = 15
  model.observe(10.0);  // state = 12.5
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{0.0}), 12.5);
}

TEST(Ewma, AlphaOneBehavesLikeLast) {
  Ewma model(1.0);
  model.observe(3.0);
  model.observe(9.0);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{0.0}), 9.0);
}

TEST(Ewma, ColdStartUsesWindow) {
  Ewma model(0.5);
  // window EWMA of {4, 8}: s = 4 then 0.5*8+0.5*4 = 6.
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{4.0, 8.0}), 6.0);
}

TEST(Ewma, NameEncodesAlpha) {
  EXPECT_EQ(Ewma(0.2).name(), "EWMA(0.2)");
}

TEST(MedianWindow, RobustToOutliers) {
  MedianWindow model;
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1, 1, 1000, 1, 1}), 1.0);
}

TEST(MedianWindow, FixedWindowSuffix) {
  MedianWindow model(3);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1000, 1, 2, 3}), 2.0);
  EXPECT_THROW((void)model.predict(std::vector<double>{1, 2}), InvalidArgument);
}

TEST(TrimmedMean, BetweenMeanAndMedian) {
  TrimmedMeanWindow model(0.2);
  const std::vector<double> window{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(model.predict(window), 3.0);
  EXPECT_THROW(TrimmedMeanWindow(0.5), InvalidArgument);
}

TEST(AdaptiveMean, ValidatesWindow) {
  EXPECT_THROW(AdaptiveMean(0), InvalidArgument);
}

TEST(AdaptiveMean, LearnsShortWindowOnRegimeShifts) {
  // Series with abrupt level changes: short averaging windows track better,
  // so the adaptive model should converge to a small best_window.
  AdaptiveMean model(16);
  Rng rng(321);
  double level = 0.0;
  for (int i = 0; i < 400; ++i) {
    if (i % 25 == 0) level = rng.uniform(-50, 50);
    model.observe(level + rng.normal(0.0, 0.1));
  }
  EXPECT_LE(model.best_window(), 2u);
}

TEST(AdaptiveMean, LearnsLongWindowOnNoisyStationary) {
  // Pure noise around a constant: longer windows average it out.
  AdaptiveMean model(16);
  Rng rng(322);
  for (int i = 0; i < 2000; ++i) model.observe(rng.normal(10.0, 5.0));
  EXPECT_GE(model.best_window(), 8u);
}

TEST(AdaptiveMean, PredictsWithBestWindow) {
  AdaptiveMean model(4);
  // Without feedback, defaults to the shortest window (LAST-like).
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1, 2, 9}), 9.0);
}

TEST(AdaptiveMedian, SameMachineryRobustStatistic) {
  AdaptiveMedian model(8);
  Rng rng(323);
  for (int i = 0; i < 500; ++i) model.observe(rng.normal(5.0, 1.0));
  const std::vector<double> window{4, 5, 6, 5, 4, 5, 6, 1000};
  // Best window is long by now; the median shrugs off the spike.
  EXPECT_LT(model.predict(window), 100.0);
}

TEST(Tendency, ContinuesDirection) {
  Tendency model;
  // Window rising by steps of ~2: forecast continues above the last value.
  const std::vector<double> rising{1, 3, 5, 7};
  EXPECT_GT(model.predict(rising), 7.0);
  const std::vector<double> falling{7, 5, 3, 1};
  EXPECT_LT(model.predict(falling), 1.0);
}

TEST(Tendency, FlatSeriesPredictsCurrent) {
  Tendency model;
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{5, 5, 5}), 5.0);
}

TEST(Tendency, OnlineStateRefinesStepEstimate) {
  Tendency model(1.0);  // no smoothing: estimate equals the last step size
  model.observe(0.0);
  model.observe(10.0);  // step 10
  const std::vector<double> window{0.0, 10.0};
  EXPECT_DOUBLE_EQ(model.predict(window), 20.0);
}

TEST(Tendency, ValidatesParameters) {
  EXPECT_THROW(Tendency(0.0), InvalidArgument);
  EXPECT_THROW(Tendency(0.5, 1.5), InvalidArgument);
  EXPECT_THROW((void)Tendency().predict(std::vector<double>{1.0}),
               InvalidArgument);
}

TEST(PolynomialFit, ExactOnPolynomialData) {
  // Degree-2 fit must extrapolate an exact quadratic perfectly.
  PolynomialFit model(2);
  std::vector<double> window;
  for (int x = 0; x < 6; ++x) window.push_back(2.0 * x * x - 3.0 * x + 1.0);
  const double expected = 2.0 * 36 - 3.0 * 6 + 1.0;
  EXPECT_NEAR(model.predict(window), expected, 1e-8);
}

TEST(PolynomialFit, LinearFitExtrapolatesTrend) {
  PolynomialFit model(1);
  EXPECT_NEAR(model.predict(std::vector<double>{1, 2, 3, 4}), 5.0, 1e-10);
}

TEST(PolynomialFit, ValidatesConfiguration) {
  EXPECT_THROW(PolynomialFit(0), InvalidArgument);
  EXPECT_THROW(PolynomialFit(2, 2), InvalidArgument);
  PolynomialFit model(2);
  EXPECT_THROW((void)model.predict(std::vector<double>{1, 2}), InvalidArgument);
}

TEST(PolynomialFit, NameEncodesDegree) {
  EXPECT_EQ(PolynomialFit(2).name(), "POLY_FIT(d2)");
}

TEST(PolynomialFit, FitPointsLimitTheLookback) {
  // With fit_points=2 and degree 1, only the last two points define the line.
  PolynomialFit model(1, 2);
  EXPECT_NEAR(model.predict(std::vector<double>{100, 100, 1, 2}), 3.0, 1e-10);
}

}  // namespace
}  // namespace larp::predictors
