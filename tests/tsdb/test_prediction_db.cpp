// Tests for the prediction database ([vmID, deviceID, timeStamp, metricName]
// keyed forecast store).
#include "tsdb/prediction_db.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp::tsdb {
namespace {

const SeriesKey kKey{"VM3", "memory", "Memory_size"};

TEST(PredictionDb, RecordAndResolve) {
  PredictionDatabase db;
  db.record_prediction(kKey, 300, 10.0, 1);
  EXPECT_EQ(db.size(), 1u);

  auto rec = db.find(kKey, 300);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->resolved());
  EXPECT_DOUBLE_EQ(rec->predicted, 10.0);
  EXPECT_EQ(rec->predictor_label, 1u);
  EXPECT_THROW((void)rec->squared_error(), StateError);

  db.record_observation(kKey, 300, 12.0);
  rec = db.find(kKey, 300);
  ASSERT_TRUE(rec->resolved());
  EXPECT_DOUBLE_EQ(rec->squared_error(), 4.0);
}

TEST(PredictionDb, DuplicateForecastRejected) {
  PredictionDatabase db;
  db.record_prediction(kKey, 300, 10.0, 0);
  EXPECT_THROW(db.record_prediction(kKey, 300, 11.0, 0), InvalidArgument);
}

TEST(PredictionDb, ObservationValidation) {
  PredictionDatabase db;
  EXPECT_THROW(db.record_observation(kKey, 300, 1.0), NotFound);
  db.record_prediction(kKey, 300, 10.0, 0);
  EXPECT_THROW(db.record_observation(kKey, 600, 1.0), NotFound);
  db.record_observation(kKey, 300, 1.0);
  EXPECT_THROW(db.record_observation(kKey, 300, 2.0), StateError);
}

TEST(PredictionDb, FindMissing) {
  PredictionDatabase db;
  EXPECT_FALSE(db.find(kKey, 300).has_value());
  db.record_prediction(kKey, 300, 1.0, 0);
  EXPECT_FALSE(db.find(kKey, 600).has_value());
  EXPECT_FALSE(db.find(SeriesKey{"x", "y", "z"}, 300).has_value());
}

TEST(PredictionDb, ResolvedRangeFiltersAndOrders) {
  PredictionDatabase db;
  for (Timestamp ts = 0; ts < 600; ts += 100) {
    db.record_prediction(kKey, ts, 1.0, 0);
  }
  db.record_observation(kKey, 100, 1.5);
  db.record_observation(kKey, 300, 2.0);
  db.record_observation(kKey, 500, 2.5);

  const auto range = db.resolved_range(kKey, 100, 500);
  ASSERT_EQ(range.size(), 2u);  // 500 excluded (end-exclusive)
  EXPECT_EQ(range[0].first, 100);
  EXPECT_EQ(range[1].first, 300);
}

TEST(PredictionDb, AuditMse) {
  PredictionDatabase db;
  db.record_prediction(kKey, 0, 0.0, 0);
  db.record_prediction(kKey, 100, 0.0, 0);
  db.record_observation(kKey, 0, 1.0);   // sq err 1
  db.record_observation(kKey, 100, 3.0); // sq err 9
  const auto mse = db.audit_mse(kKey, 0, 200);
  ASSERT_TRUE(mse.has_value());
  EXPECT_DOUBLE_EQ(*mse, 5.0);
  EXPECT_FALSE(db.audit_mse(kKey, 200, 400).has_value());
}

TEST(PredictionDb, LatestResolvedReturnsTimeOrderedSuffix) {
  PredictionDatabase db;
  for (Timestamp ts = 0; ts < 1000; ts += 100) {
    db.record_prediction(kKey, ts, 0.0, 0);
    db.record_observation(kKey, ts, 1.0);
  }
  const auto latest = db.latest_resolved(kKey, 3);
  ASSERT_EQ(latest.size(), 3u);
  EXPECT_EQ(latest[0].first, 700);
  EXPECT_EQ(latest[2].first, 900);
}

TEST(PredictionDb, LatestResolvedSkipsUnresolved) {
  PredictionDatabase db;
  db.record_prediction(kKey, 0, 0.0, 0);
  db.record_observation(kKey, 0, 1.0);
  db.record_prediction(kKey, 100, 0.0, 0);  // pending
  const auto latest = db.latest_resolved(kKey, 5);
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest[0].first, 0);
}

TEST(PredictionDb, PruneBeforeDropsOldRecords) {
  PredictionDatabase db;
  for (Timestamp ts = 0; ts < 500; ts += 100) {
    db.record_prediction(kKey, ts, 0.0, 0);
  }
  db.prune_before(kKey, 300);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_FALSE(db.find(kKey, 200).has_value());
  EXPECT_TRUE(db.find(kKey, 300).has_value());
  // Pruning an unknown key is a no-op.
  EXPECT_NO_THROW(db.prune_before(SeriesKey{"a", "b", "c"}, 100));
}

TEST(PredictionDb, StreamsAreIndependent) {
  PredictionDatabase db;
  const SeriesKey other{"VM4", "cpu", "CPU_ready"};
  db.record_prediction(kKey, 0, 1.0, 0);
  db.record_prediction(other, 0, 2.0, 1);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_DOUBLE_EQ(db.find(kKey, 0)->predicted, 1.0);
  EXPECT_DOUBLE_EQ(db.find(other, 0)->predicted, 2.0);
}

}  // namespace
}  // namespace larp::tsdb
