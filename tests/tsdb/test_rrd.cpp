// Tests for the round-robin performance database.
#include "tsdb/rrd.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp::tsdb {
namespace {

const SeriesKey kKey{"VM1", "cpu", "CPU_usedsec"};

RrdConfig tiny_config() {
  RrdConfig config;
  config.base_step = kMinute;
  config.archives.push_back(ArchiveSpec{Consolidation::Average, 1, 8});
  config.archives.push_back(ArchiveSpec{Consolidation::Average, 5, 4});
  return config;
}

TEST(Rrd, ConfigValidation) {
  RrdConfig bad = tiny_config();
  bad.base_step = 0;
  EXPECT_THROW(RoundRobinDatabase{bad}, InvalidArgument);

  bad = tiny_config();
  bad.archives.clear();
  EXPECT_THROW(RoundRobinDatabase{bad}, InvalidArgument);

  bad = tiny_config();
  bad.archives[0].capacity = 0;
  EXPECT_THROW(RoundRobinDatabase{bad}, InvalidArgument);

  bad = tiny_config();
  bad.archives[0].steps_per_bin = 0;
  EXPECT_THROW(RoundRobinDatabase{bad}, InvalidArgument);
}

TEST(Rrd, UpdateValidation) {
  RoundRobinDatabase db(tiny_config());
  db.update(kKey, 0, 1.0);
  EXPECT_THROW(db.update(kKey, 0, 2.0), InvalidArgument);    // non-increasing
  EXPECT_THROW(db.update(kKey, 30, 2.0), InvalidArgument);   // off-grid
  EXPECT_THROW(db.update(kKey, 180, 2.0), InvalidArgument);  // gap
  EXPECT_NO_THROW(db.update(kKey, 60, 2.0));
}

TEST(Rrd, RawArchiveRoundTrip) {
  RoundRobinDatabase db(tiny_config());
  for (int i = 0; i < 5; ++i) {
    db.update(kKey, i * kMinute, static_cast<double>(i));
  }
  const TimeSeries s = db.fetch(kKey, kMinute, 0, 5 * kMinute);
  ASSERT_EQ(s.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(s.values[i], i);
  EXPECT_EQ(s.axis.step(), kMinute);
}

TEST(Rrd, FiveMinuteAverageConsolidation) {
  // The vmkusage behaviour the paper describes: five one-minute samples
  // consolidate into one five-minute average.
  RoundRobinDatabase db(tiny_config());
  for (int i = 0; i < 10; ++i) {
    db.update(kKey, i * kMinute, static_cast<double>(i));
  }
  const TimeSeries s = db.fetch(kKey, kFiveMinutes, 0, 2 * kFiveMinutes);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.values[0], 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(s.values[1], 7.0);  // mean of 5..9
}

TEST(Rrd, MinMaxLastConsolidation) {
  RrdConfig config;
  config.base_step = kMinute;
  config.archives.push_back(ArchiveSpec{Consolidation::Min, 3, 10});
  config.archives.push_back(ArchiveSpec{Consolidation::Max, 3, 10});
  config.archives.push_back(ArchiveSpec{Consolidation::Last, 3, 10});
  // Same step for all three archives is ambiguous on fetch; give them
  // distinct steps instead.
  config.archives[1].steps_per_bin = 2;
  config.archives[2].steps_per_bin = 6;

  RoundRobinDatabase db(config);
  const double values[] = {5, 1, 3, 9, 2, 4};
  for (int i = 0; i < 6; ++i) db.update(kKey, i * kMinute, values[i]);

  EXPECT_DOUBLE_EQ(db.fetch(kKey, 3 * kMinute, 0, 6 * kMinute).values[0], 1.0);
  EXPECT_DOUBLE_EQ(db.fetch(kKey, 2 * kMinute, 0, 2 * kMinute).values[0], 5.0);
  EXPECT_DOUBLE_EQ(db.fetch(kKey, 6 * kMinute, 0, 6 * kMinute).values[0], 4.0);
}

TEST(Rrd, RoundRobinOverwriteSlidesWindow) {
  RoundRobinDatabase db(tiny_config());  // raw archive capacity 8
  for (int i = 0; i < 12; ++i) {
    db.update(kKey, i * kMinute, static_cast<double>(i));
  }
  const auto range = db.retained_range(kKey, kMinute);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 4 * kMinute);   // bins 0..3 overwritten
  EXPECT_EQ(range->second, 11 * kMinute);
  // Oldest retained data fetches correctly after the wrap.
  const TimeSeries s = db.fetch(kKey, kMinute, 4 * kMinute, 12 * kMinute);
  ASSERT_EQ(s.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(s.values[i], 4.0 + i);
  // Evicted window rejected.
  EXPECT_THROW((void)db.fetch(kKey, kMinute, 0, 4 * kMinute), InvalidArgument);
}

TEST(Rrd, FetchValidation) {
  RoundRobinDatabase db(tiny_config());
  for (int i = 0; i < 6; ++i) db.update(kKey, i * kMinute, 1.0);
  EXPECT_THROW((void)db.fetch(SeriesKey{"x", "y", "z"}, kMinute, 0, 60),
               NotFound);
  EXPECT_THROW((void)db.fetch(kKey, 7 * kMinute, 0, 60), NotFound);
  EXPECT_THROW((void)db.fetch(kKey, kMinute, 0, 0), InvalidArgument);  // empty
  EXPECT_THROW((void)db.fetch(kKey, kMinute, 30, 90), InvalidArgument);  // misaligned
  EXPECT_THROW((void)db.fetch(kKey, kMinute, 0, 20 * kMinute), InvalidArgument);
}

TEST(Rrd, KeysAndContains) {
  RoundRobinDatabase db(tiny_config());
  EXPECT_EQ(db.key_count(), 0u);
  EXPECT_FALSE(db.contains(kKey));
  db.update(kKey, 0, 1.0);
  EXPECT_TRUE(db.contains(kKey));
  const SeriesKey other{"VM2", "nic1", "NIC1_received"};
  db.update(other, 0, 2.0);
  EXPECT_EQ(db.key_count(), 2u);
  EXPECT_EQ(db.keys().size(), 2u);
}

TEST(Rrd, PartialBinNotVisibleUntilClosed) {
  RoundRobinDatabase db(tiny_config());
  for (int i = 0; i < 4; ++i) db.update(kKey, i * kMinute, 10.0);
  // Only 4 of 5 samples for the first 5-minute bin: nothing consolidated.
  EXPECT_FALSE(db.retained_range(kKey, kFiveMinutes).has_value());
  db.update(kKey, 4 * kMinute, 10.0);
  const auto range = db.retained_range(kKey, kFiveMinutes);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 0);
}

TEST(Rrd, AvailableStepsSortedUnique) {
  RoundRobinDatabase db(make_vmkusage_config());
  db.update(kKey, 0, 1.0);
  const auto steps = db.available_steps(kKey);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0], kMinute);
  EXPECT_EQ(steps[1], kFiveMinutes);
  EXPECT_EQ(steps[2], kThirtyMinutes);
  EXPECT_THROW((void)db.available_steps(SeriesKey{"a", "b", "c"}), NotFound);
}

TEST(Rrd, VmkusageConfigCoversPaperExtractions) {
  // 24 h of minute samples must yield 288 five-minute bins and 48
  // thirty-minute bins — the paper's VM2-5 and VM1 extraction grids.
  RoundRobinDatabase db(make_vmkusage_config());
  const auto day_minutes = static_cast<int>(kDay / kMinute);
  for (int i = 0; i < day_minutes; ++i) {
    db.update(kKey, i * kMinute, 1.0);
  }
  const TimeSeries five = db.fetch(kKey, kFiveMinutes, 0, kDay);
  EXPECT_EQ(five.size(), 288u);
  const TimeSeries thirty = db.fetch(kKey, kThirtyMinutes, 0, kDay);
  EXPECT_EQ(thirty.size(), 48u);
}

TEST(Rrd, HoldLastGapPolicyBridgesShortGaps) {
  RrdConfig config = tiny_config();
  config.gap_policy = GapPolicy::HoldLast;
  RoundRobinDatabase db(config);
  db.update(kKey, 0, 10.0);
  // Two missing minutes: samples at 1 and 2 minutes are synthesized as 10.
  db.update(kKey, 3 * kMinute, 40.0);
  const TimeSeries s = db.fetch(kKey, kMinute, 0, 4 * kMinute);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.values[0], 10.0);
  EXPECT_DOUBLE_EQ(s.values[1], 10.0);
  EXPECT_DOUBLE_EQ(s.values[2], 10.0);
  EXPECT_DOUBLE_EQ(s.values[3], 40.0);
}

TEST(Rrd, HoldLastFeedsConsolidationCompletely) {
  RrdConfig config = tiny_config();
  config.gap_policy = GapPolicy::HoldLast;
  RoundRobinDatabase db(config);
  db.update(kKey, 0, 5.0);
  db.update(kKey, 4 * kMinute, 10.0);  // bridges minutes 1-3 with 5.0
  // 5-minute bin closes with {5, 5, 5, 5, 10} -> mean 6.
  const TimeSeries s = db.fetch(kKey, kFiveMinutes, 0, kFiveMinutes);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.values[0], 6.0);
}

TEST(Rrd, HoldLastRefusesDeadStreams) {
  RrdConfig config = tiny_config();
  config.gap_policy = GapPolicy::HoldLast;
  config.max_gap_steps = 3;
  RoundRobinDatabase db(config);
  db.update(kKey, 0, 1.0);
  EXPECT_THROW(db.update(kKey, 5 * kMinute, 2.0), InvalidArgument);  // 4 missing
  EXPECT_NO_THROW(db.update(kKey, 4 * kMinute, 2.0));                // 3 missing
}

TEST(Rrd, RejectPolicyUnchangedByDefault) {
  RoundRobinDatabase db(tiny_config());
  db.update(kKey, 0, 1.0);
  EXPECT_THROW(db.update(kKey, 2 * kMinute, 1.0), InvalidArgument);
}

TEST(Rrd, SeriesKeyFormatting) {
  EXPECT_EQ(kKey.to_string(), "VM1/cpu/CPU_usedsec");
  EXPECT_EQ(kKey, (SeriesKey{"VM1", "cpu", "CPU_usedsec"}));
  EXPECT_NE(kKey, (SeriesKey{"VM1", "cpu", "CPU_ready"}));
}

}  // namespace
}  // namespace larp::tsdb
