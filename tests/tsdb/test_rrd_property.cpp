// Property tests: the ring-buffered RRD must agree exactly with a naive
// keep-everything reference across long random update streams, for every
// consolidation function and tier shape.
#include <gtest/gtest.h>

#include <deque>

#include "tsdb/rrd.hpp"
#include "util/rng.hpp"

namespace larp::tsdb {
namespace {

// Naive reference: consolidates the full sample history on demand.
class ReferenceArchive {
 public:
  ReferenceArchive(Consolidation fn, std::size_t steps_per_bin,
                   std::size_t capacity, Timestamp base_step)
      : fn_(fn), steps_(steps_per_bin), capacity_(capacity), base_(base_step) {}

  void update(Timestamp ts, double value) {
    samples_.emplace_back(ts, value);
  }

  // All currently retained (timestamp, consolidated value) bins.
  [[nodiscard]] std::vector<std::pair<Timestamp, double>> bins() const {
    std::vector<std::pair<Timestamp, double>> out;
    for (std::size_t start = 0; start + steps_ <= samples_.size();
         start += steps_) {
      double acc = 0.0, lo = samples_[start].second, hi = lo, last = lo;
      for (std::size_t i = start; i < start + steps_; ++i) {
        const double v = samples_[i].second;
        acc += v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        last = v;
      }
      double value = 0.0;
      switch (fn_) {
        case Consolidation::Average: value = acc / double(steps_); break;
        case Consolidation::Min: value = lo; break;
        case Consolidation::Max: value = hi; break;
        case Consolidation::Last: value = last; break;
      }
      out.emplace_back(samples_[start].first, value);
    }
    if (out.size() > capacity_) {
      out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(capacity_));
    }
    return out;
  }

 private:
  Consolidation fn_;
  std::size_t steps_;
  std::size_t capacity_;
  Timestamp base_;
  std::vector<std::pair<Timestamp, double>> samples_;
};

struct Shape {
  Consolidation fn;
  std::size_t steps_per_bin;
  std::size_t capacity;
};

class RrdAgainstReference : public ::testing::TestWithParam<
                                std::tuple<Shape, int /*stream length*/, int>> {};

TEST_P(RrdAgainstReference, RetainedBinsIdentical) {
  const auto [shape, length, seed] = GetParam();
  RrdConfig config;
  config.base_step = kMinute;
  config.archives.push_back(
      ArchiveSpec{shape.fn, shape.steps_per_bin, shape.capacity});
  RoundRobinDatabase db(config);
  ReferenceArchive reference(shape.fn, shape.steps_per_bin, shape.capacity,
                             kMinute);
  const SeriesKey key{"VMx", "dev", "metric"};

  Rng rng(static_cast<std::uint64_t>(seed) * 1299709 + length);
  for (int i = 0; i < length; ++i) {
    const double value = rng.uniform(-100, 100);
    db.update(key, i * kMinute, value);
    reference.update(i * kMinute, value);
  }

  const auto expected = reference.bins();
  const auto range = db.retained_range(
      key, kMinute * static_cast<Timestamp>(shape.steps_per_bin));
  if (expected.empty()) {
    EXPECT_FALSE(range.has_value());
    return;
  }
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, expected.front().first);
  EXPECT_EQ(range->second, expected.back().first);

  const Timestamp step = kMinute * static_cast<Timestamp>(shape.steps_per_bin);
  const auto series = db.fetch(key, step, range->first, range->second + step);
  ASSERT_EQ(series.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(series.axis.at(i), expected[i].first) << "bin " << i;
    EXPECT_DOUBLE_EQ(series.values[i], expected[i].second) << "bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RrdAgainstReference,
    ::testing::Combine(
        ::testing::Values(Shape{Consolidation::Average, 1, 7},
                          Shape{Consolidation::Average, 5, 12},
                          Shape{Consolidation::Min, 3, 4},
                          Shape{Consolidation::Max, 4, 9},
                          Shape{Consolidation::Last, 2, 5}),
        // Stream lengths around and far past the wrap point.
        ::testing::Values(3, 20, 61, 500),
        ::testing::Values(1, 2)));

}  // namespace
}  // namespace larp::tsdb
