// Tests for the profiler extraction layer.
#include "tsdb/profiler.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp::tsdb {
namespace {

const SeriesKey kKey{"VM2", "nic1", "NIC1_received"};

RoundRobinDatabase filled_db(int minutes) {
  RoundRobinDatabase db(make_vmkusage_config());
  for (int i = 0; i < minutes; ++i) {
    db.update(kKey, i * kMinute, static_cast<double>(i % 60));
  }
  return db;
}

TEST(Profiler, ExtractByRequest) {
  const auto db = filled_db(60);
  const Profiler profiler(db);
  ProfileRequest request;
  request.key = kKey;
  request.interval = kFiveMinutes;
  request.start = 0;
  request.end = 30 * kMinute;
  const TimeSeries s = profiler.extract(request);
  EXPECT_EQ(s.size(), 6u);
  EXPECT_DOUBLE_EQ(s.values[0], 2.0);  // mean of 0..4
}

TEST(Profiler, ExtractAllCoversRetention) {
  const auto db = filled_db(50);
  const Profiler profiler(db);
  const TimeSeries s = profiler.extract_all(kKey, kFiveMinutes);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.axis.start(), 0);
}

TEST(Profiler, ExtractAllEmptyArchiveThrows) {
  RoundRobinDatabase db(make_vmkusage_config());
  db.update(kKey, 0, 1.0);  // one sample: 5-minute bin not closed yet
  const Profiler profiler(db);
  EXPECT_THROW((void)profiler.extract_all(kKey, kFiveMinutes), InvalidArgument);
}

TEST(Profiler, ExtractRecentTakesSuffix) {
  const auto db = filled_db(100);
  const Profiler profiler(db);
  const TimeSeries s = profiler.extract_recent(kKey, kFiveMinutes, 4);
  EXPECT_EQ(s.size(), 4u);
  // 100 minutes -> 20 closed bins; the last 4 start at bin 16.
  EXPECT_EQ(s.axis.start(), 16 * kFiveMinutes);
}

TEST(Profiler, ExtractRecentClampsToRetention) {
  const auto db = filled_db(25);  // 5 closed five-minute bins
  const Profiler profiler(db);
  const TimeSeries s = profiler.extract_recent(kKey, kFiveMinutes, 100);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Profiler, ExtractRecentValidation) {
  const auto db = filled_db(30);
  const Profiler profiler(db);
  EXPECT_THROW((void)profiler.extract_recent(kKey, kFiveMinutes, 0),
               InvalidArgument);
  EXPECT_THROW(
      (void)profiler.extract_recent(SeriesKey{"no", "such", "key"},
                                    kFiveMinutes, 5),
      NotFound);
}

TEST(Profiler, UnknownResolutionPropagates) {
  const auto db = filled_db(30);
  const Profiler profiler(db);
  EXPECT_THROW((void)profiler.extract_all(kKey, 7 * kMinute), NotFound);
}

}  // namespace
}  // namespace larp::tsdb
