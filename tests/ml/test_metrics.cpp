// Tests for classification metrics.
#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp::ml {
namespace {

TEST(ConfusionMatrix, ValidatesConstruction) {
  EXPECT_THROW(ConfusionMatrix(0), InvalidArgument);
}

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(1, 2);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(1, 2), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
}

TEST(ConfusionMatrix, EmptyAccuracyZero) {
  ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, LabelRangeChecked) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), InvalidArgument);
  EXPECT_THROW(cm.add(0, 2), InvalidArgument);
  EXPECT_THROW((void)cm.count(2, 0), InvalidArgument);
}

TEST(ConfusionMatrix, RecallPerClass) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(0, 1);
  cm.add(1, 1);
  const auto recall = cm.recall();
  EXPECT_NEAR(recall[0], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(recall[1], 1.0);
}

TEST(ConfusionMatrix, PrecisionPerClass) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  const auto precision = cm.precision();
  EXPECT_DOUBLE_EQ(precision[0], 0.5);
  EXPECT_DOUBLE_EQ(precision[1], 1.0);
}

TEST(ConfusionMatrix, UnseenClassZeroRecallPrecision) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.recall()[2], 0.0);
  EXPECT_DOUBLE_EQ(cm.precision()[2], 0.0);
}

TEST(ConfusionMatrix, RenderContainsNamesAndCounts) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  const auto text = cm.render({"LAST", "AR"});
  EXPECT_NE(text.find("LAST"), std::string::npos);
  EXPECT_NE(text.find("AR"), std::string::npos);
  EXPECT_THROW((void)cm.render({"one"}), InvalidArgument);
}

TEST(Accuracy, SequenceComparison) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  EXPECT_THROW((void)accuracy({1}, {1, 2}), InvalidArgument);
}

}  // namespace
}  // namespace larp::ml
