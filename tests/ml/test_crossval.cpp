// Tests for the repeated random-split cross-validation plan (§7.2).
#include "ml/crossval.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp::ml {
namespace {

TEST(CrossVal, ProducesRequestedFoldCount) {
  Rng rng(1);
  const auto folds = make_random_split_folds(288, CrossValidationPlan{}, rng);
  EXPECT_EQ(folds.size(), 10u);  // paper: ten-fold
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.length, 288u);
    EXPECT_EQ(fold.train_size() + fold.test_size(), 288u);
  }
}

TEST(CrossVal, SplitsStayInsideFractionBand) {
  Rng rng(2);
  CrossValidationPlan plan;
  plan.folds = 200;
  plan.min_fraction = 0.4;
  plan.max_fraction = 0.6;
  const auto folds = make_random_split_folds(1000, plan, rng);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.split, 399u);
    EXPECT_LE(fold.split, 601u);
  }
}

TEST(CrossVal, SplitsVaryAcrossFolds) {
  Rng rng(3);
  const auto folds = make_random_split_folds(1000, CrossValidationPlan{}, rng);
  std::size_t distinct = 1;
  for (std::size_t i = 1; i < folds.size(); ++i) {
    if (folds[i].split != folds[0].split) ++distinct;
  }
  EXPECT_GT(distinct, 5u);
}

TEST(CrossVal, MinSidePointsRespected) {
  Rng rng(4);
  CrossValidationPlan plan;
  plan.folds = 100;
  plan.min_fraction = 0.01;
  plan.max_fraction = 0.99;
  const auto folds = make_random_split_folds(50, plan, rng, 17);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.train_size(), 17u);
    EXPECT_GE(fold.test_size(), 17u);
  }
}

TEST(CrossVal, DeterministicForFixedSeed) {
  Rng a(99), b(99);
  const auto fa = make_random_split_folds(500, CrossValidationPlan{}, a);
  const auto fb = make_random_split_folds(500, CrossValidationPlan{}, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].split, fb[i].split);
  }
}

TEST(CrossVal, Validation) {
  Rng rng(5);
  CrossValidationPlan plan;
  EXPECT_THROW((void)make_random_split_folds(0, plan, rng), InvalidArgument);
  plan.folds = 0;
  EXPECT_THROW((void)make_random_split_folds(100, plan, rng), InvalidArgument);
  plan.folds = 10;
  plan.min_fraction = 0.0;
  EXPECT_THROW((void)make_random_split_folds(100, plan, rng), InvalidArgument);
  plan.min_fraction = 0.7;
  plan.max_fraction = 0.3;
  EXPECT_THROW((void)make_random_split_folds(100, plan, rng), InvalidArgument);
  plan.min_fraction = 0.4;
  plan.max_fraction = 0.6;
  EXPECT_THROW((void)make_random_split_folds(10, plan, rng, 6), InvalidArgument);
}

}  // namespace
}  // namespace larp::ml
