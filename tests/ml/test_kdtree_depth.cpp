// Depth-cap regression tests for KdTree::insert.  A sorted insertion order
// is the adversary: every new point descends the same spine, so without the
// cap the tree degenerates to a linked list (depth N) long before the
// doubling rule fires — and query cost plus search() recursion depth are
// both O(depth).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/kdtree.hpp"

namespace larp::ml {
namespace {

std::vector<Neighbor> brute_force(const linalg::Matrix& points,
                                  std::span<const double> query,
                                  std::size_t k) {
  std::vector<Neighbor> all;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    double sq = 0.0;
    for (std::size_t d = 0; d < points.cols(); ++d) {
      const double diff = query[d] - points(i, d);
      sq += diff * diff;
    }
    all.push_back({i, sq});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.index < b.index;
  });
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(KdTreeDepth, DepthLimitIsLogarithmic) {
  // Monotone, and clearly o(N): the cap for a million points is a few dozen.
  EXPECT_GE(KdTree::depth_limit(1), 1u);
  for (std::size_t n : {2u, 16u, 1024u, 1u << 20}) {
    EXPECT_GE(KdTree::depth_limit(n), KdTree::depth_limit(n / 2));
    EXPECT_LT(KdTree::depth_limit(n), 8 + 2 * 64u);
  }
  EXPECT_LE(KdTree::depth_limit(1u << 20), 50u);
}

TEST(KdTreeDepth, EmptyAndSingletonDepths) {
  KdTree tree;
  EXPECT_EQ(tree.max_depth(), 0u);
  tree.insert(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(tree.max_depth(), 1u);
}

// The adversarial order: strictly increasing points descend the right spine
// on every insert.  The depth cap must hold after EVERY insert, not just at
// the end — a transiently degenerate tree still serves degenerate queries.
TEST(KdTreeDepth, SortedAscendingInsertionRespectsDepthCap) {
  constexpr std::size_t kPoints = 2000;
  KdTree tree;
  for (std::size_t i = 0; i < kPoints; ++i) {
    const double v = static_cast<double>(i);
    tree.insert(std::vector<double>{v, v});
    ASSERT_LE(tree.max_depth(), KdTree::depth_limit(tree.size()))
        << "after insert " << i;
  }
  // Without the cap this tree would be ~kPoints/2 deep; with it the depth is
  // logarithmic, so spine queries are cheap again.
  EXPECT_LE(tree.max_depth(), KdTree::depth_limit(kPoints));
}

TEST(KdTreeDepth, SortedDescendingInsertionRespectsDepthCap) {
  constexpr std::size_t kPoints = 1500;
  KdTree tree;
  for (std::size_t i = kPoints; i-- > 0;) {
    const double v = static_cast<double>(i);
    tree.insert(std::vector<double>{v, -v});
    ASSERT_LE(tree.max_depth(), KdTree::depth_limit(tree.size()));
  }
}

// Correctness under the adversary: rebuilds triggered by the cap must not
// perturb results — exact parity with brute force, ties included.
TEST(KdTreeDepth, SortedInsertionKeepsQueriesExact) {
  constexpr std::size_t kPoints = 600;
  linalg::Matrix points;
  KdTree tree;
  for (std::size_t i = 0; i < kPoints; ++i) {
    const double v = static_cast<double>(i);
    const std::vector<double> p{v, 2.0 * v};
    points.append_row(p);
    tree.insert(p);
    if (i % 97 == 0 || i + 1 == kPoints) {
      const std::vector<double> query{v * 0.5, v};
      const auto got = tree.nearest(query, 5);
      const auto want = brute_force(points, query, 5);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].index, want[j].index) << "insert " << i << " hit " << j;
        EXPECT_DOUBLE_EQ(got[j].squared_distance, want[j].squared_distance);
      }
    }
  }
}

// All-equal points: the pathological tie case degenerates into one spine per
// split dimension cycle; the cap has to hold here too.
TEST(KdTreeDepth, DuplicatePointsRespectDepthCap) {
  constexpr std::size_t kPoints = 800;
  KdTree tree;
  for (std::size_t i = 0; i < kPoints; ++i) {
    tree.insert(std::vector<double>{7.0, 7.0});
    ASSERT_LE(tree.max_depth(), KdTree::depth_limit(tree.size()));
  }
  const auto hits = tree.nearest(std::vector<double>{7.0, 7.0}, 3);
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& h : hits) EXPECT_EQ(h.squared_distance, 0.0);
}

}  // namespace
}  // namespace larp::ml
