// Tests for z-score normalization with train-derived coefficients.
#include "ml/normalizer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::ml {
namespace {

TEST(Normalizer, UsedBeforeFitThrows) {
  ZScoreNormalizer norm;
  EXPECT_FALSE(norm.fitted());
  EXPECT_THROW((void)norm.transform(1.0), StateError);
  EXPECT_THROW((void)norm.inverse(1.0), StateError);
}

TEST(Normalizer, EmptySeriesRejected) {
  ZScoreNormalizer norm;
  EXPECT_THROW(norm.fit(std::vector<double>{}), InvalidArgument);
}

TEST(Normalizer, TransformedSeriesHasZeroMeanUnitVariance) {
  Rng rng(11);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(42.0, 7.0);
  ZScoreNormalizer norm;
  norm.fit(xs);
  const auto zs = norm.transform(xs);
  EXPECT_NEAR(stats::mean(zs), 0.0, 1e-10);
  EXPECT_NEAR(stats::variance(zs), 1.0, 1e-10);
}

TEST(Normalizer, InverseRoundTrips) {
  const std::vector<double> xs{1.0, 5.0, -2.0, 8.0};
  ZScoreNormalizer norm;
  norm.fit(xs);
  for (double x : xs) {
    EXPECT_NEAR(norm.inverse(norm.transform(x)), x, 1e-12);
  }
  const auto zs = norm.transform(xs);
  const auto back = norm.inverse(zs);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(back[i], xs[i], 1e-12);
}

TEST(Normalizer, ConstantSeriesMapsToZeros) {
  const std::vector<double> xs(50, 3.0);
  ZScoreNormalizer norm;
  norm.fit(xs);
  EXPECT_DOUBLE_EQ(norm.stddev(), 1.0);  // divide-by-zero guard
  for (double z : norm.transform(xs)) EXPECT_DOUBLE_EQ(z, 0.0);
}

// The zero-variance path substitutes stddev 1, which makes the transform a
// pure mean shift: the round trip must be exact (not just approximate) for
// every value, on and off the flat level.
TEST(Normalizer, ConstantSeriesRoundTripIsExact) {
  const std::vector<double> flat(64, -7.25);
  ZScoreNormalizer norm;
  norm.fit(flat);
  EXPECT_DOUBLE_EQ(norm.mean(), -7.25);
  for (double x : {-7.25, 0.0, 12.5, -100.0}) {
    EXPECT_DOUBLE_EQ(norm.inverse(norm.transform(x)), x);
    EXPECT_DOUBLE_EQ(norm.transform(x), x + 7.25);  // unit-slope shift
  }
  const auto zs = norm.transform(flat);
  const auto back = norm.inverse(zs);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], flat[i]);
  }
}

TEST(Normalizer, TrainCoefficientsReplayOnTestData) {
  // The §6.2 leak-prevention property: test data normalized with TRAIN
  // statistics, not its own.
  const std::vector<double> train{0, 2, 4, 6, 8};  // mean 4, sd sqrt(8)
  const std::vector<double> test{104.0};
  ZScoreNormalizer norm;
  norm.fit(train);
  EXPECT_NEAR(norm.transform(test[0]), 100.0 / norm.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(norm.mean(), 4.0);
}

// Batch kernels must keep the exact rounding of the scalar transform —
// bitwise equality, not a tolerance.
TEST(Normalizer, BatchTransformIntoMatchesScalarExactly) {
  Rng rng(901);
  std::vector<double> xs(37);
  for (auto& x : xs) x = rng.normal(20.0, 7.0);

  ZScoreNormalizer norm;
  norm.fit(xs);

  std::vector<double> z(xs.size()), back(xs.size());
  norm.transform_into(xs, z);
  const auto z_ref = norm.transform(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(z[i], norm.transform(xs[i])) << "i=" << i;
    EXPECT_EQ(z[i], z_ref[i]) << "i=" << i;
  }

  norm.inverse_into(z, back);
  const auto back_ref = norm.inverse(z);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(back[i], norm.inverse(z[i])) << "i=" << i;
    EXPECT_EQ(back[i], back_ref[i]) << "i=" << i;
  }
}

TEST(Normalizer, RefitReplacesCoefficients) {
  ZScoreNormalizer norm;
  norm.fit(std::vector<double>{0.0, 10.0});
  const double before = norm.transform(5.0);
  norm.fit(std::vector<double>{100.0, 102.0});
  EXPECT_NE(norm.transform(5.0), before);
  EXPECT_DOUBLE_EQ(norm.mean(), 101.0);
}

}  // namespace
}  // namespace larp::ml
