// Randomized round-trip parity tests: the allocation-free *_into overloads
// must produce bit-identical results to the allocating ones, across many
// random fits and inputs — they share kernels, so any divergence is a bug.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/normalizer.hpp"
#include "ml/pca.hpp"
#include "util/rng.hpp"

namespace larp::ml {
namespace {

std::vector<double> random_series(Rng& rng, std::size_t n, double mean,
                                  double sd) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

void expect_bits_equal(std::span<const double> got, std::span<const double> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "index " << i;
  }
}

TEST(IntoParity, NormalizerTransformMatchesAllocatingOverload) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    ZScoreNormalizer normalizer;
    normalizer.fit(random_series(rng, 16 + trial, rng.normal(0.0, 100.0),
                                 0.1 + trial * 0.3));
    const auto xs = random_series(rng, 1 + trial % 37, 5.0, 50.0);
    const auto want = normalizer.transform(xs);
    std::vector<double> got(xs.size());
    normalizer.transform_into(xs, got);
    expect_bits_equal(got, want);
    // In-place operation is part of the contract.
    auto in_place = xs;
    normalizer.transform_into(in_place, in_place);
    expect_bits_equal(in_place, want);
  }
}

TEST(IntoParity, NormalizerInverseMatchesAndRoundTrips) {
  Rng rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    ZScoreNormalizer normalizer;
    normalizer.fit(random_series(rng, 24, rng.normal(0.0, 10.0), 2.0));
    const auto zs = random_series(rng, 1 + trial % 29, 0.0, 1.0);
    const auto want = normalizer.inverse(zs);
    std::vector<double> got(zs.size());
    normalizer.inverse_into(zs, got);
    expect_bits_equal(got, want);

    // transform_into ∘ inverse_into round-trips to scalar precision.
    std::vector<double> back(zs.size());
    normalizer.transform_into(got, back);
    for (std::size_t i = 0; i < zs.size(); ++i) {
      EXPECT_NEAR(back[i], zs[i], 1e-12);
    }
  }
}

TEST(IntoParity, PcaTransformMatchesAllocatingOverload) {
  Rng rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t dim = 3 + trial % 6;
    const std::size_t rows = dim + 5 + trial % 10;
    linalg::Matrix samples(rows, dim);
    for (std::size_t r = 0; r < rows; ++r) {
      // Correlated columns so the PCA basis is non-trivial.
      const double base = rng.normal(0.0, 3.0);
      for (std::size_t c = 0; c < dim; ++c) {
        samples(r, c) = base * (1.0 + 0.2 * static_cast<double>(c)) +
                        rng.normal(0.0, 0.5);
      }
    }
    Pca pca;
    PcaPolicy policy;
    policy.fixed_components = 1 + trial % dim;
    pca.fit(samples, policy);

    const auto sample = random_series(rng, dim, 0.0, 3.0);
    const auto want = pca.transform(sample);
    std::vector<double> got(pca.components());
    pca.transform_into(sample, std::span<double>(got));
    expect_bits_equal(got, std::span<const double>(want.data(), want.size()));

    // The Vector-resizing convenience overload agrees too.
    linalg::Vector resized;
    pca.transform_into(sample, resized);
    expect_bits_equal(std::span<const double>(resized.data(), resized.size()),
                      std::span<const double>(want.data(), want.size()));
  }
}

TEST(IntoParity, PcaInverseTransformMatchesAllocatingOverload) {
  Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t dim = 4 + trial % 4;
    linalg::Matrix samples(dim + 8, dim);
    for (std::size_t r = 0; r < samples.rows(); ++r) {
      for (std::size_t c = 0; c < dim; ++c) samples(r, c) = rng.normal(0.0, 2.0);
    }
    Pca pca;
    PcaPolicy policy;
    policy.fixed_components = 2;
    pca.fit(samples, policy);

    const auto reduced = random_series(rng, pca.components(), 0.0, 1.0);
    const auto want = pca.inverse_transform(reduced);
    std::vector<double> got(dim);
    pca.inverse_transform_into(reduced, got);
    expect_bits_equal(got, std::span<const double>(want.data(), want.size()));
  }
}

// Full-rank PCA (n == m) makes inverse ∘ transform the identity up to
// floating-point noise — a sanity check that the two _into paths compose.
TEST(IntoParity, FullRankPcaRoundTripsThroughIntoOverloads) {
  Rng rng(505);
  const std::size_t dim = 5;
  linalg::Matrix samples(20, dim);
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    for (std::size_t c = 0; c < dim; ++c) samples(r, c) = rng.normal(0.0, 2.0);
  }
  Pca pca;
  PcaPolicy policy;
  policy.fixed_components = dim;
  pca.fit(samples, policy);

  for (int trial = 0; trial < 20; ++trial) {
    const auto sample = random_series(rng, dim, 0.0, 4.0);
    std::vector<double> reduced(dim);
    std::vector<double> back(dim);
    pca.transform_into(sample, std::span<double>(reduced));
    pca.inverse_transform_into(reduced, back);
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(back[i], sample[i], 1e-9);
    }
  }
}

}  // namespace
}  // namespace larp::ml
