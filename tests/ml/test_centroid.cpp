// Tests for the nearest-centroid classifier.
#include "ml/centroid.hpp"

#include <gtest/gtest.h>

#include "ml/knn.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::ml {
namespace {

TEST(NearestCentroid, Validation) {
  NearestCentroidClassifier nc;
  EXPECT_FALSE(nc.fitted());
  EXPECT_THROW(nc.fit(linalg::Matrix(0, 2), {}), InvalidArgument);
  EXPECT_THROW(nc.fit(linalg::Matrix(2, 2), {0}), InvalidArgument);
  EXPECT_THROW((void)nc.classify(linalg::Vector{1, 2}), StateError);
}

TEST(NearestCentroid, ComputesPerClassMeans) {
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{0, 0}, {2, 2}, {10, 10}, {12, 12}}, {0, 0, 1, 1});
  ASSERT_EQ(nc.classes(), 2u);
  EXPECT_EQ(nc.class_label(0), 0u);
  EXPECT_DOUBLE_EQ(nc.centroid(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(nc.centroid(1)[1], 11.0);
  EXPECT_THROW((void)nc.centroid(2), InvalidArgument);
}

TEST(NearestCentroid, ClassifiesByNearestMean) {
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{0, 0}, {10, 0}}, {5, 9});
  EXPECT_EQ(nc.classify(linalg::Vector{2, 0}), 5u);
  EXPECT_EQ(nc.classify(linalg::Vector{8, 0}), 9u);
}

TEST(NearestCentroid, TieBreaksTowardSmallestLabel) {
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{-1, 0}, {1, 0}}, {3, 1});
  // Query equidistant from both centroids: ascending-label iteration keeps
  // the smallest label (1).
  EXPECT_EQ(nc.classify(linalg::Vector{0, 0}), 1u);
}

TEST(NearestCentroid, DimensionChecked) {
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{0, 0}}, {0});
  EXPECT_THROW((void)nc.classify(linalg::Vector{1}), InvalidArgument);
}

TEST(NearestCentroid, SparseLabelsSupported) {
  // Labels need not be contiguous.
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{0, 0}, {5, 5}}, {2, 7});
  EXPECT_EQ(nc.classify(linalg::Vector{0.5, 0.5}), 2u);
}

TEST(NearestCentroid, AgreesWithKnnOnWellSeparatedClusters) {
  Rng rng(123);
  linalg::Matrix points(300, 2);
  std::vector<std::size_t> labels(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const std::size_t cls = i % 3;
    const double cx = cls == 0 ? -10.0 : cls == 1 ? 0.0 : 10.0;
    points(i, 0) = cx + rng.normal(0.0, 0.5);
    points(i, 1) = rng.normal(0.0, 0.5);
    labels[i] = cls;
  }
  NearestCentroidClassifier nc;
  nc.fit(points, labels);
  KnnClassifier knn(3);
  knn.fit(points, labels);
  for (int q = 0; q < 100; ++q) {
    const std::size_t cls = q % 3;
    const double cx = cls == 0 ? -10.0 : cls == 1 ? 0.0 : 10.0;
    const linalg::Vector query{cx + rng.normal(0.0, 1.0),
                               rng.normal(0.0, 1.0)};
    EXPECT_EQ(nc.classify(query), knn.classify(query));
  }
}

TEST(NearestCentroid, AddUpdatesCentroidIncrementally) {
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{0.0, 0.0}}, {0});
  nc.add(linalg::Vector{2.0, 2.0}, 0);
  // Centroid of {(0,0), (2,2)} is (1,1).
  EXPECT_DOUBLE_EQ(nc.centroid(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(nc.centroid(0)[1], 1.0);
}

TEST(NearestCentroid, AddOpensNewClass) {
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{0.0}}, {5});
  nc.add(linalg::Vector{10.0}, 2);
  EXPECT_EQ(nc.classes(), 2u);
  // Labels stay ascending so tie-breaking semantics are preserved.
  EXPECT_EQ(nc.class_label(0), 2u);
  EXPECT_EQ(nc.class_label(1), 5u);
  EXPECT_EQ(nc.classify(linalg::Vector{9.0}), 2u);
  EXPECT_THROW(nc.add(linalg::Vector{1.0, 2.0}, 0), InvalidArgument);
}

TEST(NearestCentroid, AddMatchesBatchRefit) {
  Rng rng(42);
  linalg::Matrix points(30, 2);
  std::vector<std::size_t> labels(30);
  for (std::size_t i = 0; i < 30; ++i) {
    points(i, 0) = rng.uniform(-3, 3);
    points(i, 1) = rng.uniform(-3, 3);
    labels[i] = i % 3;
  }
  // Incremental: fit on the first 10, add the rest one by one.
  NearestCentroidClassifier incremental;
  {
    linalg::Matrix head(10, 2);
    std::vector<std::size_t> head_labels(labels.begin(), labels.begin() + 10);
    for (std::size_t i = 0; i < 10; ++i) {
      head(i, 0) = points(i, 0);
      head(i, 1) = points(i, 1);
    }
    incremental.fit(head, head_labels);
  }
  for (std::size_t i = 10; i < 30; ++i) {
    incremental.add(points.row(i), labels[i]);
  }
  // Batch: fit on everything at once.
  NearestCentroidClassifier batch;
  batch.fit(points, labels);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(incremental.centroid(c)[0], batch.centroid(c)[0], 1e-12);
    EXPECT_NEAR(incremental.centroid(c)[1], batch.centroid(c)[1], 1e-12);
  }
}

TEST(NearestCentroid, RefitReplacesModel) {
  NearestCentroidClassifier nc;
  nc.fit(linalg::Matrix{{0.0}}, {0});
  nc.fit(linalg::Matrix{{5.0}, {9.0}}, {1, 2});
  EXPECT_EQ(nc.classes(), 2u);
  EXPECT_EQ(nc.classify(linalg::Vector{8.5}), 2u);
}

}  // namespace
}  // namespace larp::ml
