// Tests for the k-NN classifier and the kd-tree backend (§5.1 / §7.3).
#include "ml/knn.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::ml {
namespace {

TEST(MajorityVote, SimpleMajority) {
  EXPECT_EQ(majority_vote({1, 1, 2}), 1u);
  EXPECT_EQ(majority_vote({2, 2, 2}), 2u);
  EXPECT_EQ(majority_vote({0}), 0u);
}

TEST(MajorityVote, TieBreaksTowardSmallestLabel) {
  EXPECT_EQ(majority_vote({2, 1}), 1u);
  EXPECT_EQ(majority_vote({0, 1, 2}), 0u);
  EXPECT_EQ(majority_vote({3, 3, 1, 1}), 1u);
}

TEST(MajorityVote, EmptyThrows) {
  EXPECT_THROW((void)majority_vote({}), InvalidArgument);
}

TEST(Knn, ValidatesConstruction) {
  EXPECT_THROW(KnnClassifier(0), InvalidArgument);
}

TEST(Knn, FitValidation) {
  KnnClassifier knn(3);
  EXPECT_THROW(knn.fit(linalg::Matrix(0, 2), {}), InvalidArgument);
  EXPECT_THROW(knn.fit(linalg::Matrix(2, 2), {0}), InvalidArgument);
  EXPECT_THROW((void)knn.classify(linalg::Vector{1, 2}), StateError);
}

TEST(Knn, OneNearestNeighbor) {
  KnnClassifier knn(1);
  knn.fit(linalg::Matrix{{0, 0}, {10, 10}}, {0, 1});
  EXPECT_EQ(knn.classify(linalg::Vector{1, 1}), 0u);
  EXPECT_EQ(knn.classify(linalg::Vector{9, 9}), 1u);
}

TEST(Knn, ThreeNearestMajority) {
  // Two class-0 points near the query outvote one closer class-1 point.
  KnnClassifier knn(3);
  knn.fit(linalg::Matrix{{0, 0}, {0.5, 0}, {0.2, 0.1}, {50, 50}}, {0, 0, 1, 1});
  EXPECT_EQ(knn.classify(linalg::Vector{0.2, 0.0}), 0u);
}

TEST(Knn, KClampedToTrainingSize) {
  KnnClassifier knn(5);
  knn.fit(linalg::Matrix{{0, 0}, {1, 1}}, {1, 1});
  EXPECT_EQ(knn.classify(linalg::Vector{0, 0}), 1u);
}

TEST(Knn, QueryDimensionMismatch) {
  KnnClassifier knn(1);
  knn.fit(linalg::Matrix{{0, 0}}, {0});
  EXPECT_THROW((void)knn.classify(linalg::Vector{1}), InvalidArgument);
}

TEST(Knn, NeighborsSortedByDistance) {
  KnnClassifier knn(3);
  knn.fit(linalg::Matrix{{5, 0}, {1, 0}, {3, 0}}, {0, 1, 2});
  const auto hits = knn.neighbors(linalg::Vector{0, 0});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].index, 1u);  // distance 1
  EXPECT_EQ(hits[1].index, 2u);  // distance 3
  EXPECT_EQ(hits[2].index, 0u);  // distance 5
  EXPECT_DOUBLE_EQ(hits[0].squared_distance, 1.0);
}

TEST(Knn, EqualDistanceTieBreaksByIndex) {
  KnnClassifier knn(1);
  knn.fit(linalg::Matrix{{1, 0}, {-1, 0}}, {7, 3});
  const auto hits = knn.neighbors(linalg::Vector{0, 0});
  EXPECT_EQ(hits[0].index, 0u);  // same distance; lower index wins
}

TEST(Knn, MatrixClassifyMatchesPointwise) {
  Rng rng(1234);
  linalg::Matrix train(100, 2);
  std::vector<std::size_t> labels(100);
  for (std::size_t i = 0; i < 100; ++i) {
    train(i, 0) = rng.uniform(-1, 1);
    train(i, 1) = rng.uniform(-1, 1);
    labels[i] = train(i, 0) > 0 ? 1 : 0;
  }
  KnnClassifier knn(3);
  knn.fit(train, labels);
  linalg::Matrix queries(10, 2);
  for (auto& v : queries.data()) v = rng.uniform(-1, 1);
  const auto batch = knn.classify(queries);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(batch[i], knn.classify(queries.row(i)));
  }
}

TEST(Knn, LearnsLinearlySeparableClasses) {
  Rng rng(777);
  linalg::Matrix train(400, 2);
  std::vector<std::size_t> labels(400);
  for (std::size_t i = 0; i < 400; ++i) {
    train(i, 0) = rng.uniform(-1, 1);
    train(i, 1) = rng.uniform(-1, 1);
    labels[i] = (train(i, 0) + train(i, 1) > 0) ? 1 : 0;
  }
  KnnClassifier knn(3);
  knn.fit(train, labels);
  int correct = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const linalg::Vector q{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (std::abs(q[0] + q[1]) < 0.2) continue;  // skip the boundary band
    ++total;
    if (knn.classify(q) == ((q[0] + q[1] > 0) ? 1u : 0u)) ++correct;
  }
  EXPECT_GT(total, 50);
  EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

// The two backends must return identical neighbours on identical data.
class BackendEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BackendEquivalence, BruteAndKdTreeAgree) {
  const auto [n_points, dims, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + n_points + dims);
  linalg::Matrix points(n_points, dims);
  std::vector<std::size_t> labels(n_points);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    for (std::size_t d = 0; d < points.cols(); ++d) {
      points(i, d) = rng.uniform(-10, 10);
    }
    labels[i] = i % 3;
  }
  KnnClassifier brute(3, KnnBackend::BruteForce);
  KnnClassifier tree(3, KnnBackend::KdTree);
  brute.fit(points, labels);
  tree.fit(points, labels);

  for (int q = 0; q < 50; ++q) {
    linalg::Vector query(dims);
    for (auto& v : query) v = rng.uniform(-12, 12);
    const auto brute_hits = brute.neighbors(query);
    const auto tree_hits = tree.neighbors(query);
    ASSERT_EQ(brute_hits.size(), tree_hits.size());
    for (std::size_t i = 0; i < brute_hits.size(); ++i) {
      EXPECT_EQ(brute_hits[i].index, tree_hits[i].index)
          << "query " << q << " neighbour " << i;
      EXPECT_NEAR(brute_hits[i].squared_distance, tree_hits[i].squared_distance,
                  1e-9);
    }
    EXPECT_EQ(brute.classify(query), tree.classify(query));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackendEquivalence,
    ::testing::Combine(::testing::Values(1, 5, 64, 500),
                       ::testing::Values(1, 2, 5),
                       ::testing::Values(1, 2)));

TEST(Knn, AddGrowsIndexAndChangesDecisions) {
  KnnClassifier knn(1);
  knn.fit(linalg::Matrix{{0.0, 0.0}}, {0});
  EXPECT_EQ(knn.classify(linalg::Vector{5.0, 5.0}), 0u);
  knn.add(linalg::Vector{5.0, 5.0}, 1);
  EXPECT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn.classify(linalg::Vector{5.5, 5.5}), 1u);
  EXPECT_EQ(knn.classify(linalg::Vector{0.1, 0.1}), 0u);
  EXPECT_THROW(knn.add(linalg::Vector{1.0}, 0), InvalidArgument);
}

TEST(Knn, AddKeepsBackendsEquivalent) {
  Rng rng(555);
  linalg::Matrix points(50, 2);
  std::vector<std::size_t> labels(50);
  for (std::size_t i = 0; i < 50; ++i) {
    points(i, 0) = rng.uniform(-5, 5);
    points(i, 1) = rng.uniform(-5, 5);
    labels[i] = i % 2;
  }
  KnnClassifier brute(3, KnnBackend::BruteForce);
  KnnClassifier tree(3, KnnBackend::KdTree);
  brute.fit(points, labels);
  tree.fit(points, labels);
  for (int i = 0; i < 30; ++i) {
    const linalg::Vector p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    brute.add(p, i % 3);
    tree.add(p, i % 3);
    const linalg::Vector q{rng.uniform(-6, 6), rng.uniform(-6, 6)};
    EXPECT_EQ(brute.classify(q), tree.classify(q)) << "after add " << i;
  }
}

// Incremental insertion must keep kd-tree queries exactly neighbour-identical
// to brute force, across enough adds to cross several doubling rebuilds.
TEST(Knn, IncrementalInsertMatchesBruteForceNeighbors) {
  Rng rng(909);
  const std::size_t initial = 24;
  linalg::Matrix points(initial, 2);
  std::vector<std::size_t> labels(initial);
  for (std::size_t i = 0; i < initial; ++i) {
    points(i, 0) = rng.uniform(-10, 10);
    points(i, 1) = rng.uniform(-10, 10);
    labels[i] = i % 3;
  }
  KnnClassifier brute(3, KnnBackend::BruteForce);
  KnnClassifier tree(3, KnnBackend::KdTree);
  brute.fit(points, labels);
  tree.fit(points, labels);

  // 24 -> ~400 points: the doubling rule rebuilds several times in between.
  for (int i = 0; i < 380; ++i) {
    const linalg::Vector p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    brute.add(p, i % 3);
    tree.add(p, i % 3);
    const linalg::Vector q{rng.uniform(-12, 12), rng.uniform(-12, 12)};
    const auto brute_hits = brute.neighbors(q);
    const auto tree_hits = tree.neighbors(q);
    ASSERT_EQ(brute_hits.size(), tree_hits.size()) << "after add " << i;
    for (std::size_t h = 0; h < brute_hits.size(); ++h) {
      ASSERT_EQ(brute_hits[h].index, tree_hits[h].index)
          << "after add " << i << " neighbour " << h;
      ASSERT_NEAR(brute_hits[h].squared_distance,
                  tree_hits[h].squared_distance, 1e-9);
    }
  }
  EXPECT_EQ(tree.size(), initial + 380);
}

// Adversarial insertion order (sorted points would degenerate a kd-tree
// without rebalancing) must still return exact neighbours.
TEST(Knn, IncrementalInsertSortedOrderStaysExact) {
  KnnClassifier brute(3, KnnBackend::BruteForce);
  KnnClassifier tree(3, KnnBackend::KdTree);
  brute.fit(linalg::Matrix{{0.0, 0.0}}, {0});
  tree.fit(linalg::Matrix{{0.0, 0.0}}, {0});
  for (int i = 1; i <= 200; ++i) {
    const linalg::Vector p{static_cast<double>(i), static_cast<double>(i)};
    brute.add(p, i % 2);
    tree.add(p, i % 2);
  }
  Rng rng(31);
  for (int q = 0; q < 40; ++q) {
    const linalg::Vector query{rng.uniform(0, 200), rng.uniform(0, 200)};
    const auto brute_hits = brute.neighbors(query);
    const auto tree_hits = tree.neighbors(query);
    ASSERT_EQ(brute_hits.size(), tree_hits.size());
    for (std::size_t h = 0; h < brute_hits.size(); ++h) {
      EXPECT_EQ(brute_hits[h].index, tree_hits[h].index) << "query " << q;
    }
  }
}

TEST(KdTree, InsertIntoEmptyTreeAdoptsDimension) {
  KdTree tree;
  tree.insert(linalg::Vector{1.0, 2.0});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.dimension(), 2u);
  const auto hits = tree.nearest(linalg::Vector{1.0, 2.0}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_THROW(tree.insert(linalg::Vector{1.0}), InvalidArgument);
}

TEST(KdTree, EmptyTree) {
  const KdTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.nearest(linalg::Vector{}, 3).empty());
}

TEST(KdTree, DuplicatePointsAllRetrievable) {
  linalg::Matrix points(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    points(i, 0) = 1.0;
    points(i, 1) = 1.0;
  }
  const KdTree tree(points);
  const auto hits = tree.nearest(linalg::Vector{1.0, 1.0}, 4);
  ASSERT_EQ(hits.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(hits[i].index, i);  // index-ordered among equal distances
    EXPECT_DOUBLE_EQ(hits[i].squared_distance, 0.0);
  }
}

}  // namespace
}  // namespace larp::ml
