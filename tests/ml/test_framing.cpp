// Tests for series framing (§6 / Fig. 3).
#include "ml/framing.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace larp::ml {
namespace {

TEST(Framing, SupervisedWindowsAndTargets) {
  const std::vector<double> series{1, 2, 3, 4, 5};
  const auto framed = frame_supervised(series, 2);
  ASSERT_EQ(framed.windows.rows(), 3u);
  ASSERT_EQ(framed.windows.cols(), 2u);
  ASSERT_EQ(framed.targets.size(), 3u);
  // Window i = (x_i, x_{i+1}), target = x_{i+2}.
  EXPECT_DOUBLE_EQ(framed.windows(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(framed.windows(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(framed.targets[0], 3.0);
  EXPECT_DOUBLE_EQ(framed.windows(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(framed.targets[2], 5.0);
}

TEST(Framing, SupervisedCountIsLengthMinusWindow) {
  const std::vector<double> series(100, 0.0);
  for (std::size_t m : {1u, 5u, 16u, 99u}) {
    const auto framed = frame_supervised(series, m);
    EXPECT_EQ(framed.windows.rows(), 100 - m) << "m=" << m;
  }
}

TEST(Framing, SupervisedValidation) {
  const std::vector<double> series{1, 2, 3};
  EXPECT_THROW((void)frame_supervised(series, 0), InvalidArgument);
  EXPECT_THROW((void)frame_supervised(series, 3), InvalidArgument);
  EXPECT_NO_THROW((void)frame_supervised(series, 2));
}

TEST(Framing, WindowsVariantIncludesFinalTargetlessWindow) {
  const std::vector<double> series{1, 2, 3, 4};
  // The paper's X'_{(u-m+1) x m} count.
  const auto windows = frame_windows(series, 2);
  EXPECT_EQ(windows.rows(), 3u);
  EXPECT_DOUBLE_EQ(windows(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(windows(2, 1), 4.0);
}

TEST(Framing, WindowsExactFit) {
  const std::vector<double> series{7, 8};
  const auto windows = frame_windows(series, 2);
  EXPECT_EQ(windows.rows(), 1u);
  EXPECT_THROW((void)frame_windows(series, 3), InvalidArgument);
}

TEST(Framing, WindowsOverlapByOne) {
  const std::vector<double> series{10, 20, 30, 40};
  const auto windows = frame_windows(series, 3);
  ASSERT_EQ(windows.rows(), 2u);
  // Consecutive windows share m-1 values.
  EXPECT_DOUBLE_EQ(windows(0, 1), windows(1, 0));
  EXPECT_DOUBLE_EQ(windows(0, 2), windows(1, 1));
}

}  // namespace
}  // namespace larp::ml
