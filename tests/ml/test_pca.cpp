// Tests for the PCA feature-space reduction (§5.2).
#include "ml/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/covariance.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::ml {
namespace {

// Samples concentrated along a line in 3D with small isotropic noise.
linalg::Matrix line_cloud(std::size_t n, Rng& rng, double noise = 0.05) {
  linalg::Matrix samples(n, 3);
  for (std::size_t r = 0; r < n; ++r) {
    const double t = rng.uniform(-5, 5);
    samples(r, 0) = 2.0 * t + rng.normal(0.0, noise) + 1.0;
    samples(r, 1) = -1.0 * t + rng.normal(0.0, noise) + 2.0;
    samples(r, 2) = 0.5 * t + rng.normal(0.0, noise) - 3.0;
  }
  return samples;
}

TEST(Pca, UsedBeforeFitThrows) {
  Pca pca;
  EXPECT_FALSE(pca.fitted());
  EXPECT_THROW((void)pca.transform(linalg::Vector{1, 2}), StateError);
  EXPECT_THROW((void)pca.explained_variance_ratio(), StateError);
}

TEST(Pca, ValidatesInputs) {
  Pca pca;
  EXPECT_THROW(pca.fit(linalg::Matrix(0, 3)), InvalidArgument);
  PcaPolicy bad;
  bad.fixed_components = 0;
  bad.min_variance_fraction = 0.0;
  EXPECT_THROW(pca.fit(linalg::Matrix(3, 3), bad), InvalidArgument);
}

TEST(Pca, FixedComponentsReducesDimension) {
  Rng rng(101);
  const auto cloud = line_cloud(300, rng);
  Pca pca;
  pca.fit(cloud, PcaPolicy{2, 0.9});
  EXPECT_EQ(pca.components(), 2u);
  EXPECT_EQ(pca.input_dimension(), 3u);
  const auto reduced = pca.transform(cloud);
  EXPECT_EQ(reduced.rows(), 300u);
  EXPECT_EQ(reduced.cols(), 2u);
}

TEST(Pca, FixedComponentsClampedToDimension) {
  Rng rng(102);
  const auto cloud = line_cloud(50, rng);
  Pca pca;
  pca.fit(cloud, PcaPolicy{10, 0.9});
  EXPECT_EQ(pca.components(), 3u);
}

TEST(Pca, FirstComponentCapturesLineVariance) {
  Rng rng(103);
  const auto cloud = line_cloud(2000, rng, 0.01);
  Pca pca;
  pca.fit(cloud, PcaPolicy{3, 0.9});
  const auto ratio = pca.explained_variance_ratio();
  EXPECT_GT(ratio[0], 0.999);  // nearly all variance along the line
  EXPECT_NEAR(ratio[0] + ratio[1] + ratio[2], 1.0, 1e-9);
}

TEST(Pca, MinVarianceFractionSelectsComponentCount) {
  Rng rng(104);
  const auto cloud = line_cloud(500, rng, 0.01);
  Pca pca;
  pca.fit(cloud, PcaPolicy{0, 0.99});
  EXPECT_EQ(pca.components(), 1u);  // the line alone explains > 99%

  Pca strict;
  strict.fit(cloud, PcaPolicy{0, 0.9999999});
  EXPECT_GE(strict.components(), 2u);
}

TEST(Pca, EigenvaluesDescending) {
  Rng rng(105);
  linalg::Matrix cloud(200, 4);
  for (auto& v : cloud.data()) v = rng.uniform(-1, 1);
  Pca pca;
  pca.fit(cloud, PcaPolicy{4, 0.9});
  const auto& values = pca.eigenvalues();
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GE(values[i - 1], values[i] - 1e-12);
  }
}

TEST(Pca, TransformDimensionMismatchThrows) {
  Rng rng(106);
  Pca pca;
  pca.fit(line_cloud(50, rng), PcaPolicy{2, 0.9});
  EXPECT_THROW((void)pca.transform(linalg::Vector{1, 2}), InvalidArgument);
  EXPECT_THROW((void)pca.transform(linalg::Matrix(5, 4)), InvalidArgument);
  EXPECT_THROW((void)pca.inverse_transform(linalg::Vector{1, 2, 3}),
               InvalidArgument);
}

TEST(Pca, FullRankTransformIsInvertible) {
  Rng rng(107);
  linalg::Matrix cloud(100, 3);
  for (auto& v : cloud.data()) v = rng.uniform(-2, 2);
  Pca pca;
  pca.fit(cloud, PcaPolicy{3, 0.9});
  for (std::size_t r = 0; r < 10; ++r) {
    const auto reduced = pca.transform(cloud.row(r));
    const auto rebuilt = pca.inverse_transform(reduced);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(rebuilt[c], cloud(r, c), 1e-9);
    }
  }
}

TEST(Pca, ReducedReconstructionIsLeastSquaresClose) {
  // With components = 1 on a line cloud, reconstruction error should be on
  // the order of the injected noise, not the line's extent.
  Rng rng(108);
  const auto cloud = line_cloud(1000, rng, 0.05);
  Pca pca;
  pca.fit(cloud, PcaPolicy{1, 0.9});
  double worst = 0.0;
  for (std::size_t r = 0; r < cloud.rows(); ++r) {
    const auto rebuilt = pca.inverse_transform(pca.transform(cloud.row(r)));
    worst = std::max(worst, linalg::distance(rebuilt, cloud.row(r)));
  }
  EXPECT_LT(worst, 0.5);
}

TEST(Pca, ProjectionDecorrelatesComponents) {
  Rng rng(109);
  // Correlated 2D cloud.
  linalg::Matrix cloud(3000, 2);
  for (std::size_t r = 0; r < cloud.rows(); ++r) {
    const double x = rng.normal();
    cloud(r, 0) = x + rng.normal(0.0, 0.3);
    cloud(r, 1) = x - rng.normal(0.0, 0.3);
  }
  Pca pca;
  pca.fit(cloud, PcaPolicy{2, 0.9});
  const auto reduced = pca.transform(cloud);
  const auto cov = linalg::covariance(reduced);
  EXPECT_NEAR(cov(0, 1), 0.0, 0.02);
  EXPECT_GT(cov(0, 0), cov(1, 1));  // descending variance order
}

TEST(Pca, ZeroVarianceDataHandled) {
  const linalg::Matrix constant(20, 3, 5.0);
  Pca pca;
  pca.fit(constant, PcaPolicy{0, 0.9});
  EXPECT_GE(pca.components(), 1u);
  const auto reduced = pca.transform(constant.row(0));
  for (double v : reduced) EXPECT_NEAR(v, 0.0, 1e-12);
}

// The scratch overloads and the single-pass matrix transform are the
// hot-path forms of the allocating API; all three must agree exactly.
TEST(Pca, TransformIntoMatchesAllocatingTransform) {
  Rng rng(311);
  const auto cloud = line_cloud(60, rng);
  Pca pca;
  pca.fit(cloud, PcaPolicy{2, 0.9});

  const auto all = pca.transform(cloud);  // single-pass matrix transform
  linalg::Vector reduced_scratch;
  std::vector<double> rebuilt(3);
  for (std::size_t r = 0; r < cloud.rows(); ++r) {
    const auto reference = pca.transform(cloud.row(r));
    pca.transform_into(cloud.row(r), reduced_scratch);
    ASSERT_EQ(reduced_scratch.size(), reference.size());
    for (std::size_t c = 0; c < reference.size(); ++c) {
      EXPECT_EQ(reduced_scratch[c], reference[c]) << "row " << r;
      EXPECT_EQ(all(r, c), reference[c]) << "row " << r;
    }
    const auto rebuilt_ref = pca.inverse_transform(reference);
    pca.inverse_transform_into(reference, rebuilt);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(rebuilt[c], rebuilt_ref[c]) << "row " << r;
    }
  }
}

TEST(Pca, TransformIntoValidatesSpans) {
  Rng rng(313);
  Pca pca;
  pca.fit(line_cloud(40, rng), PcaPolicy{2, 0.9});
  std::vector<double> sample{1.0, 2.0, 3.0};
  std::vector<double> wrong_out(3);  // components() is 2
  EXPECT_THROW(pca.transform_into(sample, std::span<double>(wrong_out)),
               InvalidArgument);
  std::vector<double> bad_sample{1.0, 2.0};
  std::vector<double> out(2);
  EXPECT_THROW(pca.transform_into(bad_sample, std::span<double>(out)),
               InvalidArgument);
}

TEST(Pca, PaperConfigurationWindowToTwoComponents) {
  // The paper's setting: windows of m = 16 reduced to n = 2.
  Rng rng(110);
  linalg::Matrix windows(200, 16);
  for (std::size_t r = 0; r < windows.rows(); ++r) {
    double prev = rng.normal();
    for (std::size_t c = 0; c < 16; ++c) {
      prev = 0.9 * prev + rng.normal(0.0, 0.2);
      windows(r, c) = prev;
    }
  }
  Pca pca;
  pca.fit(windows, PcaPolicy{2, 0.9});
  EXPECT_EQ(pca.components(), 2u);
  const auto reduced = pca.transform(windows);
  EXPECT_EQ(reduced.cols(), 2u);
}

}  // namespace
}  // namespace larp::ml
