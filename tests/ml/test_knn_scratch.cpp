// Parity tests for the allocation-free kNN query paths: the scratch-based
// neighbors()/classify() overloads must agree neighbour-for-neighbour with
// the allocating reference implementations, across both search backends and
// through interleaved online add()s.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/kdtree.hpp"
#include "ml/knn.hpp"
#include "util/rng.hpp"

namespace larp::ml {
namespace {

linalg::Matrix random_points(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal(0.0, 2.0);
  }
  return m;
}

std::vector<std::size_t> cyclic_labels(std::size_t n, std::size_t classes) {
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % classes;
  return labels;
}

void expect_same_neighbors(std::span<const Neighbor> scratch_result,
                           const std::vector<Neighbor>& reference,
                           const char* context) {
  ASSERT_EQ(scratch_result.size(), reference.size()) << context;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(scratch_result[i].index, reference[i].index)
        << context << " rank " << i;
    EXPECT_EQ(scratch_result[i].squared_distance, reference[i].squared_distance)
        << context << " rank " << i;
  }
}

class KnnScratchParity : public ::testing::TestWithParam<KnnBackend> {};

TEST_P(KnnScratchParity, NeighborsAndClassifyMatchAllocatingPath) {
  const std::size_t dims = 3, n = 64, k = 5;
  KnnClassifier knn(k, GetParam());
  knn.fit(random_points(n, dims, 99), cyclic_labels(n, 3));

  NeighborScratch scratch;
  Rng rng(123);
  for (int q = 0; q < 50; ++q) {
    std::vector<double> query(dims);
    for (auto& x : query) x = rng.normal(0.0, 2.5);

    expect_same_neighbors(knn.neighbors(query, scratch), knn.neighbors(query),
                          "static index");
    EXPECT_EQ(knn.classify(query, scratch), knn.classify(query));
  }
}

TEST_P(KnnScratchParity, ParityHoldsAcrossInterleavedAdds) {
  const std::size_t dims = 2, k = 3;
  KnnClassifier knn(k, GetParam());
  knn.fit(random_points(8, dims, 7), cyclic_labels(8, 3));

  NeighborScratch scratch;
  Rng rng(31);
  for (int round = 0; round < 40; ++round) {
    std::vector<double> point(dims);
    for (auto& x : point) x = rng.normal(0.0, 2.0);
    // Grow the index (online learning), with labels beyond the fitted range
    // so the flat vote table has to track the running max label.
    knn.add(point, static_cast<std::size_t>(round % 5));

    std::vector<double> query(dims);
    for (auto& x : query) x = rng.normal(0.0, 2.0);
    expect_same_neighbors(knn.neighbors(query, scratch), knn.neighbors(query),
                          "growing index");
    EXPECT_EQ(knn.classify(query, scratch), knn.classify(query));
  }
}

TEST_P(KnnScratchParity, FewerPointsThanK) {
  KnnClassifier knn(7, GetParam());
  knn.fit(random_points(4, 2, 17), cyclic_labels(4, 2));
  NeighborScratch scratch;
  const std::vector<double> query{0.1, -0.2};
  expect_same_neighbors(knn.neighbors(query, scratch), knn.neighbors(query),
                        "N < k");
  EXPECT_EQ(knn.classify(query, scratch), knn.classify(query));
}

// Duplicate points force distance ties; both paths must break them toward
// the lower training-point index.
TEST_P(KnnScratchParity, TiedDistancesBreakIdentically) {
  linalg::Matrix points(6, 2);
  for (std::size_t r = 0; r < 6; ++r) {
    points(r, 0) = static_cast<double>(r % 2);  // three copies of two points
    points(r, 1) = 0.0;
  }
  KnnClassifier knn(4, GetParam());
  knn.fit(std::move(points), cyclic_labels(6, 3));
  NeighborScratch scratch;
  const std::vector<double> query{0.5, 0.0};
  expect_same_neighbors(knn.neighbors(query, scratch), knn.neighbors(query),
                        "ties");
  EXPECT_EQ(knn.classify(query, scratch), knn.classify(query));
}

INSTANTIATE_TEST_SUITE_P(Backends, KnnScratchParity,
                         ::testing::Values(KnnBackend::BruteForce,
                                           KnnBackend::KdTree),
                         [](const auto& info) {
                           return info.param == KnnBackend::BruteForce
                                      ? "BruteForce"
                                      : "KdTree";
                         });

// The kd-tree's own scratch overload, exercised directly.
TEST(KdTreeScratch, NearestMatchesAllocatingPath) {
  const std::size_t dims = 4, n = 100;
  const auto points = random_points(n, dims, 55);
  KdTree tree(points);
  NeighborScratch scratch;
  Rng rng(77);
  for (int q = 0; q < 30; ++q) {
    std::vector<double> query(dims);
    for (auto& x : query) x = rng.normal(0.0, 2.0);
    for (std::size_t k : {1UL, 3UL, 10UL}) {
      expect_same_neighbors(tree.nearest(query, k, scratch),
                            tree.nearest(query, k), "kd-tree direct");
    }
  }
}

}  // namespace
}  // namespace larp::ml
