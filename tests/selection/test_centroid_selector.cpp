// Tests for the centroid-based selection strategy and the LarConfig
// classifier switch.
#include "selection/centroid_selector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/lar_predictor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::selection {
namespace {

TEST(CentroidSelector, RequiresFittedComponents) {
  EXPECT_THROW(CentroidSelector(ml::Pca{}, ml::NearestCentroidClassifier{}),
               InvalidArgument);
}

TEST(CentroidSelector, SelectsByWindowShape) {
  // Rising windows labeled 1, flat windows labeled 0 (same scenario as the
  // KnnSelector test, so both strategies are covered identically).
  linalg::Matrix windows(40, 4);
  std::vector<std::size_t> labels(40);
  for (std::size_t i = 0; i < 40; ++i) {
    const bool rising = i % 2 == 0;
    for (std::size_t j = 0; j < 4; ++j) {
      windows(i, j) = rising ? static_cast<double>(j) + 0.01 * i
                             : 1.5 + 0.01 * i;
    }
    labels[i] = rising ? 1 : 0;
  }
  ml::Pca pca;
  pca.fit(windows, ml::PcaPolicy{2, 0.9});
  ml::NearestCentroidClassifier classifier;
  classifier.fit(pca.transform(windows), labels);
  CentroidSelector sel(std::move(pca), std::move(classifier));

  EXPECT_EQ(sel.select(std::vector<double>{0, 1, 2, 3}), 1u);
  EXPECT_EQ(sel.select(std::vector<double>{1.5, 1.5, 1.5, 1.5}), 0u);
  EXPECT_EQ(sel.name(), "LAR(centroid)");
  EXPECT_EQ(sel.clone()->select(std::vector<double>{0, 1, 2, 3}), 1u);
}

std::vector<double> mixed_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  double dev = 0.0;
  bool smooth = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 50 == 0) smooth = !smooth;
    if (smooth) {
      dev = 0.9 * dev + rng.normal();
      xs.push_back(40.0 + dev);
    } else {
      xs.push_back(rng.bernoulli(0.4) ? 70.0 + rng.normal(0, 3)
                                      : 30.0 + rng.normal(0, 3));
    }
  }
  return xs;
}

TEST(CentroidSelector, LarPredictorSupportsBothClassifiers) {
  const auto series = mixed_series(400, 21);
  for (const auto kind : {core::ClassifierKind::Knn,
                          core::ClassifierKind::NearestCentroid}) {
    core::LarConfig config;
    config.window = 5;
    config.classifier = kind;
    core::LarPredictor lar(predictors::make_paper_pool(5), config);
    lar.train(series);
    const auto forecast = lar.predict_next();
    EXPECT_LT(forecast.label, 3u);
    EXPECT_TRUE(std::isfinite(forecast.value));
    // The polymorphic selector is exposed and usable.
    auto cloned = lar.selector().clone();
    EXPECT_LT(cloned->select(std::vector<double>(5, 0.0)), 3u);
  }
}

TEST(CentroidSelector, ExperimentRunnerSupportsBothClassifiers) {
  const auto series = mixed_series(300, 22);
  const auto pool = predictors::make_paper_pool(5);
  core::LarConfig knn_config, centroid_config;
  knn_config.window = centroid_config.window = 5;
  centroid_config.classifier = core::ClassifierKind::NearestCentroid;

  const auto knn_result = core::evaluate_fold(series, 150, pool, knn_config);
  const auto centroid_result =
      core::evaluate_fold(series, 150, pool, centroid_config);

  // Both produce valid fold results with identical oracle/baselines (the
  // classifier only changes the LAR row).
  EXPECT_DOUBLE_EQ(knn_result.mse_oracle, centroid_result.mse_oracle);
  EXPECT_DOUBLE_EQ(knn_result.mse_nws, centroid_result.mse_nws);
  EXPECT_GE(centroid_result.mse_lar, centroid_result.mse_oracle - 1e-12);
  EXPECT_GE(centroid_result.lar_accuracy, 0.0);
  EXPECT_LE(centroid_result.lar_accuracy, 1.0);
}

}  // namespace
}  // namespace larp::selection
