// Tests for the selector strategy layer (oracle / NWS / windowed / static /
// k-NN).
#include <gtest/gtest.h>

#include <vector>

#include "ml/framing.hpp"
#include "selection/knn_selector.hpp"
#include "selection/nws_selector.hpp"
#include "selection/oracle_selector.hpp"
#include "selection/static_selector.hpp"
#include "util/error.hpp"

namespace larp::selection {
namespace {

const std::vector<double> kWindow{1.0, 2.0, 3.0};

TEST(ArgminLabel, SmallestWithLowIndexTies) {
  EXPECT_EQ(argmin_label(std::vector<double>{3, 1, 2}), 1u);
  EXPECT_EQ(argmin_label(std::vector<double>{1, 1, 1}), 0u);
  EXPECT_EQ(argmin_label(std::vector<double>{2, 1, 1}), 1u);
  EXPECT_THROW((void)argmin_label(std::vector<double>{}), InvalidArgument);
}

TEST(BestForecastLabel, ClosestToActual) {
  // forecasts {0.5, 2.0, 5.0} vs actual 1.8 -> label 1.
  EXPECT_EQ(best_forecast_label(std::vector<double>{0.5, 2.0, 5.0}, 1.8), 1u);
  // Exact tie in |error| resolves to the lower label.
  EXPECT_EQ(best_forecast_label(std::vector<double>{1.0, 3.0}, 2.0), 0u);
}

TEST(StaticSelector, AlwaysSameLabel) {
  StaticSelector sel(2, "SW_AVG");
  EXPECT_EQ(sel.select(kWindow), 2u);
  sel.record(std::vector<double>{0, 0, 100}, 0.0);
  EXPECT_EQ(sel.select(kWindow), 2u);
  EXPECT_EQ(sel.name(), "STATIC(SW_AVG)");
  EXPECT_FALSE(sel.needs_hindsight());
  EXPECT_EQ(sel.clone()->select(kWindow), 2u);
}

TEST(OracleSelector, HindsightPicksSmallestError) {
  OracleSelector oracle;
  EXPECT_TRUE(oracle.needs_hindsight());
  EXPECT_EQ(oracle.select_hindsight(std::vector<double>{5.0, 1.1, 0.0}, 1.0), 1u);
}

TEST(OracleSelector, CausalModeIsPersistence) {
  OracleSelector oracle;
  EXPECT_EQ(oracle.select(kWindow), 0u);  // cold start
  oracle.record(std::vector<double>{9.0, 1.0}, 1.0);
  EXPECT_EQ(oracle.select(kWindow), 1u);  // last step's best
  oracle.reset();
  EXPECT_EQ(oracle.select(kWindow), 0u);
}

TEST(CumulativeMse, ValidatesPoolSize) {
  EXPECT_THROW(CumulativeMseSelector(0), InvalidArgument);
}

TEST(CumulativeMse, ColdStartPicksLabelZero) {
  CumulativeMseSelector sel(3);
  EXPECT_EQ(sel.select(kWindow), 0u);
}

TEST(CumulativeMse, TracksLowestCumulativeError) {
  CumulativeMseSelector sel(2);
  // Member 0 errs by 2 each step, member 1 by 1.
  sel.record(std::vector<double>{2.0, 1.0}, 0.0);
  EXPECT_EQ(sel.select(kWindow), 1u);
  // One huge error for member 1 flips the cumulative ranking.
  sel.record(std::vector<double>{2.0, 10.0}, 0.0);
  EXPECT_EQ(sel.select(kWindow), 0u);
  const auto errors = sel.errors();
  EXPECT_DOUBLE_EQ(errors[0], 4.0);
  EXPECT_DOUBLE_EQ(errors[1], (1.0 + 100.0) / 2.0);
}

TEST(CumulativeMse, CumulativeMemoryIsSlowToForgive) {
  // The paper's criticism: cumulative MSE adapts slowly after a regime
  // change because all history weighs in.
  CumulativeMseSelector cum(2);
  WindowedCumMseSelector win(2, 2);
  // Long stretch where member 0 is best.
  for (int i = 0; i < 50; ++i) {
    cum.record(std::vector<double>{0.1, 5.0}, 0.0);
    win.record(std::vector<double>{0.1, 5.0}, 0.0);
  }
  // Regime flips: member 1 becomes best.
  for (int i = 0; i < 3; ++i) {
    cum.record(std::vector<double>{5.0, 0.1}, 0.0);
    win.record(std::vector<double>{5.0, 0.1}, 0.0);
  }
  EXPECT_EQ(cum.select(kWindow), 0u);  // still stuck on stale history
  EXPECT_EQ(win.select(kWindow), 1u);  // windowed variant adapted
}

TEST(CumulativeMse, RecordValidatesForecastCount) {
  CumulativeMseSelector sel(3);
  EXPECT_THROW(sel.record(std::vector<double>{1.0}, 0.0), InvalidArgument);
}

TEST(CumulativeMse, ResetClearsHistory) {
  CumulativeMseSelector sel(2);
  sel.record(std::vector<double>{9.0, 0.0}, 0.0);
  EXPECT_EQ(sel.select(kWindow), 1u);
  sel.reset();
  EXPECT_EQ(sel.select(kWindow), 0u);
}

TEST(CumulativeMse, CloneCarriesState) {
  CumulativeMseSelector sel(2);
  sel.record(std::vector<double>{9.0, 0.0}, 0.0);
  const auto copy = sel.clone();
  EXPECT_EQ(copy->select(kWindow), 1u);
}

TEST(EwmaMse, Validation) {
  EXPECT_THROW(EwmaMseSelector(0, 0.9), InvalidArgument);
  EXPECT_THROW(EwmaMseSelector(3, 0.0), InvalidArgument);
  EXPECT_THROW(EwmaMseSelector(3, 1.0), InvalidArgument);
}

TEST(EwmaMse, ColdStartPicksLabelZero) {
  EwmaMseSelector sel(3, 0.9);
  EXPECT_EQ(sel.select(kWindow), 0u);
}

TEST(EwmaMse, RecentErrorsDominateWithFastDecay) {
  // decay 0.1: essentially the last error decides.
  EwmaMseSelector sel(2, 0.1);
  for (int i = 0; i < 20; ++i) sel.record(std::vector<double>{0.1, 5.0}, 0.0);
  EXPECT_EQ(sel.select(kWindow), 0u);
  sel.record(std::vector<double>{5.0, 0.1}, 0.0);  // one flip is enough
  EXPECT_EQ(sel.select(kWindow), 1u);
}

TEST(EwmaMse, SlowDecayApproachesCumulativeBehaviour) {
  // decay 0.995 barely forgets: after a long stretch favouring member 0,
  // a few contrary steps cannot flip it — same stickiness as Cum.MSE.
  EwmaMseSelector sel(2, 0.995);
  for (int i = 0; i < 200; ++i) sel.record(std::vector<double>{0.1, 5.0}, 0.0);
  for (int i = 0; i < 3; ++i) sel.record(std::vector<double>{5.0, 0.1}, 0.0);
  EXPECT_EQ(sel.select(kWindow), 0u);
}

TEST(EwmaMse, RecordValidatesAndResets) {
  EwmaMseSelector sel(2, 0.5);
  EXPECT_THROW(sel.record(std::vector<double>{1.0}, 0.0), InvalidArgument);
  sel.record(std::vector<double>{9.0, 0.0}, 0.0);
  EXPECT_EQ(sel.select(kWindow), 1u);
  sel.reset();
  EXPECT_EQ(sel.select(kWindow), 0u);
  EXPECT_EQ(sel.clone()->select(kWindow), 0u);
}

TEST(WindowedCumMse, NameIncludesWindow) {
  WindowedCumMseSelector sel(3, 2);
  EXPECT_EQ(sel.name(), "W-Cum.MSE(2)");
}

TEST(WindowedCumMse, OnlyRecentErrorsCount) {
  WindowedCumMseSelector sel(2, 2);
  sel.record(std::vector<double>{10.0, 0.0}, 0.0);  // member 0 bad
  sel.record(std::vector<double>{0.0, 0.1}, 0.0);
  sel.record(std::vector<double>{0.0, 0.1}, 0.0);
  // The window-2 view no longer contains member 0's disaster.
  EXPECT_EQ(sel.select(kWindow), 0u);
}

TEST(KnnSelector, RequiresFittedComponents) {
  EXPECT_THROW(KnnSelector(ml::Pca{}, ml::KnnClassifier{3}), InvalidArgument);
}

TEST(KnnSelector, ClassifiesWindowsThroughPca) {
  // Two window shapes: rising windows labeled 1, flat windows labeled 0.
  linalg::Matrix windows(40, 4);
  std::vector<std::size_t> labels(40);
  for (std::size_t i = 0; i < 40; ++i) {
    const bool rising = i % 2 == 0;
    for (std::size_t j = 0; j < 4; ++j) {
      windows(i, j) = rising ? static_cast<double>(j) +
                                   0.01 * static_cast<double>(i)
                             : 1.5 + 0.01 * static_cast<double>(i);
    }
    labels[i] = rising ? 1 : 0;
  }
  ml::Pca pca;
  pca.fit(windows, ml::PcaPolicy{2, 0.9});
  ml::KnnClassifier knn(3);
  knn.fit(pca.transform(windows), labels);
  KnnSelector sel(std::move(pca), std::move(knn));

  EXPECT_EQ(sel.select(std::vector<double>{0, 1, 2, 3}), 1u);
  EXPECT_EQ(sel.select(std::vector<double>{1.5, 1.5, 1.5, 1.5}), 0u);
  EXPECT_EQ(sel.name(), "LAR(kNN)");
  EXPECT_FALSE(sel.needs_hindsight());
  EXPECT_EQ(sel.clone()->select(std::vector<double>{0, 1, 2, 3}), 1u);
}

TEST(Selector, DefaultHindsightAvailableToAll) {
  StaticSelector sel(0);
  EXPECT_EQ(sel.select_hindsight(std::vector<double>{3.0, 1.0}, 1.2), 1u);
}

}  // namespace
}  // namespace larp::selection
