// Tests for the O(1) fast-tier selectors (tournament / perceptron /
// global-history), the TieredSelector routing, and the NaN-labeling /
// select_weights_into hardening in the Selector base.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "persist/io.hpp"
#include "selection/history_selector.hpp"
#include "selection/nws_selector.hpp"
#include "selection/perceptron_selector.hpp"
#include "selection/static_selector.hpp"
#include "selection/tiered_selector.hpp"
#include "selection/tournament_selector.hpp"
#include "util/error.hpp"

namespace larp::selection {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> window5() { return {1.0, 2.0, 3.0, 2.0, 1.0}; }

// -- NaN-labeling regression (selector.cpp) ---------------------------------
//
// A NaN forecast at index 0 used to poison every `error < best_error`
// comparison (NaN compares false), silently pinning the hindsight label to 0.

TEST(BestForecastLabel, SkipsNaNAtIndexZero) {
  const std::vector<double> forecasts = {kNaN, 1.0, 5.0};
  EXPECT_EQ(best_forecast_label(forecasts, 0.0), 1u);
}

TEST(BestForecastLabel, SkipsNaNInTheMiddle) {
  const std::vector<double> forecasts = {5.0, kNaN, 1.0};
  EXPECT_EQ(best_forecast_label(forecasts, 0.0), 2u);
}

TEST(BestForecastLabel, SkipsInfiniteForecasts) {
  const std::vector<double> forecasts = {kInf, -kInf, 3.0};
  EXPECT_EQ(best_forecast_label(forecasts, 0.0), 2u);
}

TEST(BestForecastLabel, ThrowsWhenAllForecastsNonFinite) {
  const std::vector<double> forecasts = {kNaN, kInf, -kInf};
  EXPECT_THROW((void)best_forecast_label(forecasts, 0.0), InvalidArgument);
}

TEST(BestForecastLabel, NonFiniteActualThrows) {
  // Every |forecast - NaN| is NaN, so the all-non-finite guard fires.
  const std::vector<double> forecasts = {1.0, 2.0};
  EXPECT_THROW((void)best_forecast_label(forecasts, kNaN), InvalidArgument);
}

TEST(ArgminLabel, SkipsNonFiniteValues) {
  const std::vector<double> values = {kNaN, 4.0, 2.0};
  EXPECT_EQ(argmin_label(values), 2u);
}

TEST(ArgminLabel, ThrowsWhenAllValuesNonFinite) {
  const std::vector<double> values = {kNaN, kNaN};
  EXPECT_THROW((void)argmin_label(values), InvalidArgument);
}

TEST(ArgminLabel, LowestLabelWinsTies) {
  const std::vector<double> values = {kNaN, 1.0, 1.0};
  EXPECT_EQ(argmin_label(values), 1u);
}

// -- select_weights_into hardening ------------------------------------------

// A selector that misbehaves: select() returns a label outside the pool.
class RogueSelector final : public Selector {
 public:
  [[nodiscard]] std::string name() const override { return "Rogue"; }
  [[nodiscard]] std::size_t select(std::span<const double>) override {
    return 99;
  }
  [[nodiscard]] std::unique_ptr<Selector> clone() const override {
    return std::make_unique<RogueSelector>();
  }
};

TEST(SelectWeightsInto, ValidatesBeforeTouchingOutput) {
  RogueSelector rogue;
  std::vector<double> out = {0.25, 0.75};  // pre-existing caller state
  const auto win = window5();
  EXPECT_THROW(rogue.select_weights_into(win, 2, out), InvalidArgument);
  // The buffer must be untouched by the failed call — previously it was
  // cleared and zero-filled before the pick was validated.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.75);
}

TEST(SelectWeightsInto, DefaultWritesOneHot) {
  StaticSelector fixed(1);
  std::vector<double> out;
  const auto win = window5();
  fixed.select_weights_into(win, 3, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
}

// -- EwmaMseSelector cold-start (nws_selector.cpp) --------------------------

TEST(EwmaMseSelector, FallsBackToZeroBeforeAnyFeedback) {
  EwmaMseSelector selector(3, 0.9);
  EXPECT_EQ(selector.select(window5()), 0u);
}

TEST(EwmaMseSelector, ScoredMembersBeatTheColdFallback) {
  EwmaMseSelector selector(3, 0.9);
  const std::vector<double> forecasts = {3.0, 1.0, 2.0};
  selector.record(forecasts, 0.0);
  EXPECT_EQ(selector.select(window5()), 1u);
}

TEST(EwmaMseSelector, CloneAndResetKeepSeenStateInParity) {
  EwmaMseSelector selector(3, 0.9);
  const std::vector<double> forecasts = {3.0, 1.0, 2.0};
  selector.record(forecasts, 0.0);

  // clone() carries both the weighted errors AND the seen flags.
  auto copy = selector.clone();
  EXPECT_EQ(copy->select(window5()), selector.select(window5()));

  // reset() clears both, restoring the documented label-0 cold start.
  selector.reset();
  EXPECT_EQ(selector.select(window5()), 0u);
  for (double e : selector.errors()) EXPECT_DOUBLE_EQ(e, 0.0);
}

// -- TournamentSelector ------------------------------------------------------

TEST(TournamentSelector, ValidatesConstruction) {
  EXPECT_THROW(TournamentSelector(0), InvalidArgument);
  EXPECT_THROW(TournamentSelector(3, 0), InvalidArgument);
  EXPECT_THROW(TournamentSelector(3, 17), InvalidArgument);
}

TEST(TournamentSelector, StartsAtTheMidpointAndBreaksTiesLow) {
  TournamentSelector selector(3, 2);
  for (std::uint16_t c : selector.counters()) EXPECT_EQ(c, 1);  // (2^2-1)/2
  EXPECT_EQ(selector.select(window5()), 0u);
}

TEST(TournamentSelector, CountersSaturateWithoutWrapping) {
  TournamentSelector selector(2, 2);
  const std::vector<double> zero_wins = {0.0, 10.0};  // member 0 is exact
  for (int i = 0; i < 20; ++i) selector.record(zero_wins, 0.0);
  // Stick at max/min; 20 updates would have wrapped 2-bit counters 5 times.
  EXPECT_EQ(selector.counters()[0], 3);
  EXPECT_EQ(selector.counters()[1], 0);
  selector.record(zero_wins, 0.0);
  EXPECT_EQ(selector.counters()[0], 3);
  EXPECT_EQ(selector.counters()[1], 0);
  EXPECT_EQ(selector.select(window5()), 0u);
}

TEST(TournamentSelector, FollowsTheHindsightWinner) {
  TournamentSelector selector(3, 2);
  const std::vector<double> two_wins = {9.0, 7.0, 0.1};
  for (int i = 0; i < 4; ++i) selector.record(two_wins, 0.0);
  EXPECT_EQ(selector.select(window5()), 2u);
}

TEST(TournamentSelector, LearnAbsorbsLabelsAndValidates) {
  TournamentSelector selector(3, 2);
  EXPECT_TRUE(selector.supports_online_learning());
  for (int i = 0; i < 4; ++i) selector.learn(window5(), 1);
  EXPECT_EQ(selector.select(window5()), 1u);
  EXPECT_THROW(selector.learn(window5(), 3), InvalidArgument);
}

TEST(TournamentSelector, RecordValidatesForecastCount) {
  TournamentSelector selector(3, 2);
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(selector.record(wrong, 0.0), InvalidArgument);
}

TEST(TournamentSelector, CostReportsConstantClassAndReadiness) {
  TournamentSelector selector(3, 2, /*min_records=*/4);
  EXPECT_EQ(selector.cost().select_cost, SelectCostClass::kConstant);
  EXPECT_FALSE(selector.cost().ready());
  const std::vector<double> forecasts = {1.0, 2.0, 3.0};
  for (int i = 0; i < 4; ++i) selector.record(forecasts, 0.0);
  EXPECT_TRUE(selector.cost().ready());
}

TEST(TournamentSelector, SaveLoadRoundTripsExactState) {
  TournamentSelector selector(3, 3, 5);
  const std::vector<double> forecasts = {2.0, 0.5, 9.0};
  for (int i = 0; i < 3; ++i) selector.record(forecasts, 0.0);

  persist::io::Writer w;
  selector.save(w);
  persist::io::Reader r(w.bytes());
  auto restored = TournamentSelector::loaded(r);
  EXPECT_EQ(restored.counters(), selector.counters());
  EXPECT_EQ(restored.select(window5()), selector.select(window5()));
  EXPECT_EQ(restored.cost().records_seen, selector.cost().records_seen);
}

// -- PerceptronSelector ------------------------------------------------------

TEST(PerceptronSelector, LearnsAPersistentWinner) {
  PerceptronSelector selector(3);
  const std::vector<double> one_wins = {5.0, 0.0, -5.0};
  const auto win = window5();
  for (int i = 0; i < 50; ++i) {
    (void)selector.select(win);  // cache the window features
    selector.record(one_wins, 0.0);
  }
  EXPECT_EQ(selector.select(win), 1u);
}

TEST(PerceptronSelector, WeightsStayClippedUnderAdversarialFeedback) {
  PerceptronSelector::Config config;
  config.clip = 8.0;
  PerceptronSelector selector(2, config);
  // Huge feature magnitudes + a winner that flips every step: without the
  // clip the weights would diverge; with it every weight stays bounded.
  const std::vector<double> big_window = {500.0, -500.0, 900.0, -900.0, 700.0};
  const std::vector<double> zero_wins = {0.0, 100.0};
  const std::vector<double> one_wins = {100.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    (void)selector.select(big_window);
    selector.record(i % 2 == 0 ? zero_wins : one_wins, 0.0);
  }
  for (double weight : selector.weights()) {
    EXPECT_LE(std::abs(weight), config.clip);
    EXPECT_TRUE(std::isfinite(weight));
  }
}

TEST(PerceptronSelector, CostReportsConstantClassAndReadiness) {
  PerceptronSelector::Config config;
  config.min_records = 3;
  PerceptronSelector selector(2, config);
  EXPECT_EQ(selector.cost().select_cost, SelectCostClass::kConstant);
  EXPECT_FALSE(selector.cost().ready());
  const std::vector<double> forecasts = {1.0, 2.0};
  for (int i = 0; i < 3; ++i) selector.record(forecasts, 0.0);
  EXPECT_TRUE(selector.cost().ready());
}

TEST(PerceptronSelector, SaveLoadRoundTripsExactState) {
  PerceptronSelector selector(3);
  const std::vector<double> one_wins = {5.0, 0.0, -5.0};
  const auto win = window5();
  for (int i = 0; i < 10; ++i) {
    (void)selector.select(win);
    selector.record(one_wins, 0.0);
  }
  persist::io::Writer w;
  selector.save(w);
  persist::io::Reader r(w.bytes());
  auto restored = PerceptronSelector::loaded(r);
  EXPECT_EQ(restored.weights(), selector.weights());
  EXPECT_EQ(restored.select(win), selector.select(win));
}

// -- GlobalHistorySelector ---------------------------------------------------

TEST(GlobalHistorySelector, ValidatesConstruction) {
  EXPECT_THROW(GlobalHistorySelector(0), InvalidArgument);
  EXPECT_THROW(GlobalHistorySelector(3, 0), InvalidArgument);
  EXPECT_THROW(GlobalHistorySelector(3, 4, 0), InvalidArgument);
  EXPECT_THROW(GlobalHistorySelector(3, 4, 64, 0), InvalidArgument);
}

TEST(GlobalHistorySelector, LearnsAlternatingWinners) {
  // Winners strictly alternate 0,1,0,1...; a 2-deep history over a roomy
  // table learns "after (…,0) comes 1" and vice versa.
  GlobalHistorySelector selector(2, /*history_length=*/2, /*table_rows=*/16);
  const auto win = window5();
  for (int i = 0; i < 100; ++i) {
    selector.learn(win, static_cast<std::size_t>(i % 2));
  }
  // The last learned winner was 1 (i = 99), so the next winner is 0.
  EXPECT_EQ(selector.select(win), 0u);
  selector.learn(win, 0);
  EXPECT_EQ(selector.select(win), 1u);
}

TEST(GlobalHistorySelector, SingleRowTableAliasesEveryHistory) {
  // table_rows = 1: every history pattern addresses row 0, so training in
  // one context destructively interferes with every other — the documented
  // pattern-history-table aliasing tradeoff.
  GlobalHistorySelector selector(2, 4, /*table_rows=*/1);
  const auto win = window5();
  for (int i = 0; i < 8; ++i) {
    selector.learn(win, static_cast<std::size_t>(i % 2));
    EXPECT_EQ(selector.current_row(), 0u);
  }
  // With alternating winners collapsing onto one row, the shared counters
  // see both members bumped equally often: the row cannot learn the
  // pattern a 2-row table would separate.
  GlobalHistorySelector roomy(2, 1, /*table_rows=*/2);
  for (int i = 0; i < 100; ++i) {
    selector.learn(win, static_cast<std::size_t>(i % 2));
    roomy.learn(win, static_cast<std::size_t>(i % 2));
  }
  EXPECT_EQ(roomy.select(win), 0u);  // last winner 1 -> row predicts 0 next
}

TEST(GlobalHistorySelector, RecordFollowsHindsightWinners) {
  GlobalHistorySelector selector(3, 2, 16);
  const std::vector<double> two_wins = {9.0, 7.0, 0.1};
  for (int i = 0; i < 8; ++i) selector.record(two_wins, 0.0);
  EXPECT_EQ(selector.select(window5()), 2u);
}

TEST(GlobalHistorySelector, CostReportsConstantClassAndReadiness) {
  GlobalHistorySelector selector(3, 4, 64, 2, /*min_records=*/2);
  EXPECT_EQ(selector.cost().select_cost, SelectCostClass::kConstant);
  EXPECT_FALSE(selector.cost().ready());
  const std::vector<double> forecasts = {1.0, 2.0, 3.0};
  selector.record(forecasts, 0.0);
  selector.record(forecasts, 0.0);
  EXPECT_TRUE(selector.cost().ready());
}

TEST(GlobalHistorySelector, SaveLoadRoundTripsExactState) {
  GlobalHistorySelector selector(3, 3, 8);
  const std::vector<double> forecasts = {2.0, 0.5, 9.0};
  for (int i = 0; i < 7; ++i) selector.record(forecasts, 0.0);

  persist::io::Writer w;
  selector.save(w);
  persist::io::Reader r(w.bytes());
  auto restored = GlobalHistorySelector::loaded(r);
  EXPECT_EQ(restored.current_row(), selector.current_row());
  EXPECT_EQ(restored.select(window5()), selector.select(window5()));
}

// -- fast-selector polymorphic serialization ---------------------------------

TEST(FastSelectorIo, RoundTripsEveryTier) {
  const FastTierConfig config;
  for (const FastTier tier : {FastTier::Tournament, FastTier::Perceptron,
                              FastTier::GlobalHistory}) {
    auto selector = make_fast_selector(tier, 3, config);
    const std::vector<double> forecasts = {4.0, 0.5, 2.0};
    const auto win = window5();
    for (int i = 0; i < 6; ++i) {
      (void)selector->select(win);
      selector->record(forecasts, 0.0);
    }
    persist::io::Writer w;
    save_fast_selector(w, *selector);
    persist::io::Reader r(w.bytes());
    auto restored = load_fast_selector(r);
    EXPECT_EQ(restored->name(), selector->name());
    EXPECT_EQ(restored->select(win), selector->select(win));
    EXPECT_EQ(restored->cost().records_seen, selector->cost().records_seen);
  }
}

TEST(FastSelectorIo, RejectsNonFastSelectorsAndUnknownTags) {
  persist::io::Writer w;
  StaticSelector fixed(0);
  EXPECT_THROW(save_fast_selector(w, fixed), StateError);

  persist::io::Writer bad;
  bad.u8(42);
  persist::io::Reader r(bad.bytes());
  EXPECT_THROW((void)load_fast_selector(r), persist::CorruptData);
}

TEST(FastSelectorIo, MakeFastSelectorRejectsNone) {
  EXPECT_THROW((void)make_fast_selector(FastTier::None, 3), InvalidArgument);
}

// -- TieredSelector ----------------------------------------------------------

TEST(TieredSelector, ServesFromTheFastTierUntilPromotion) {
  TieredSelector tiered(std::make_unique<TournamentSelector>(3));
  EXPECT_FALSE(tiered.serving_primary());
  EXPECT_EQ(tiered.cost().select_cost, SelectCostClass::kConstant);

  // Train the fast tier toward member 2.
  const std::vector<double> two_wins = {9.0, 7.0, 0.1};
  for (int i = 0; i < 8; ++i) tiered.record(two_wins, 0.0);
  EXPECT_EQ(tiered.select(window5()), 2u);

  // Promote a ready primary: every call routes there from now on.
  tiered.promote(std::make_unique<StaticSelector>(1));
  EXPECT_TRUE(tiered.serving_primary());
  EXPECT_EQ(tiered.select(window5()), 1u);

  // Handoff is bit-identical to the primary alone.
  StaticSelector alone(1);
  std::vector<double> tiered_weights;
  std::vector<double> alone_weights;
  const auto win = window5();
  tiered.select_weights_into(win, 3, tiered_weights);
  alone.select_weights_into(win, 3, alone_weights);
  EXPECT_EQ(tiered_weights, alone_weights);
}

TEST(TieredSelector, RequiresAFastTierAndAValidPromotion) {
  EXPECT_THROW(TieredSelector(nullptr), InvalidArgument);
  TieredSelector tiered(std::make_unique<TournamentSelector>(2));
  EXPECT_THROW(tiered.promote(nullptr), InvalidArgument);
}

TEST(TieredSelector, CloneIsDeepOnBothTiers) {
  TieredSelector tiered(std::make_unique<TournamentSelector>(2));
  auto copy = tiered.clone();
  const std::vector<double> zero_wins = {0.0, 9.0};
  for (int i = 0; i < 8; ++i) tiered.record(zero_wins, 0.0);
  // The original learned member 0; the clone's counters are untouched.
  EXPECT_EQ(tiered.select(window5()), 0u);
  auto* tiered_copy = dynamic_cast<TieredSelector*>(copy.get());
  ASSERT_NE(tiered_copy, nullptr);
  const auto& fast =
      dynamic_cast<const TournamentSelector&>(tiered_copy->fast_tier());
  for (std::uint16_t c : fast.counters()) EXPECT_EQ(c, 1);
}

TEST(TieredSelector, NameShowsBothTiers) {
  TieredSelector tiered(std::make_unique<TournamentSelector>(2));
  EXPECT_NE(tiered.name().find("->-"), std::string::npos);
  tiered.promote(std::make_unique<StaticSelector>(0, "LAST"));
  EXPECT_NE(tiered.name().find("LAST"), std::string::npos);
}

}  // namespace
}  // namespace larp::selection
