// Reproduction-shape tests: the qualitative findings of §7 must hold on the
// synthetic catalog.  These are the "does the paper's story survive our
// substrate" checks; exact numbers live in EXPERIMENTS.md, shapes here.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/experiment.hpp"
#include "tracegen/catalog.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace larp {
namespace {

core::LarConfig config_for(const std::string& vm_id) {
  core::LarConfig config;
  // Paper: prediction order 16 for the 30-minute VM1 trace, 5 elsewhere.
  config.window = vm_id == "VM1" ? 16 : 5;
  // The benchmark calibration (bench/bench_common.hpp): min-fraction-variance
  // PCA policy and §6.1 window-MSE labeling.
  config.pca_components = 0;
  config.pca_min_variance = 0.85;
  return config;
}

// Cross-validates one catalog trace with the paper's protocol.
core::TraceResult run_trace(const std::string& vm_id, const std::string& metric,
                            std::uint64_t seed) {
  const auto trace = tracegen::make_trace(vm_id, metric, seed);
  const auto config = config_for(vm_id);
  const auto pool = predictors::make_paper_pool(config.window);
  ml::CrossValidationPlan plan;
  plan.folds = 5;  // fewer than the paper's 10 to keep tests fast
  Rng rng(seed * 31 + 7);
  return core::cross_validate(trace.values, pool, config, plan, rng);
}

TEST(Reproduction, Finding1_NoSingleModelBestForAllMetricsOfOneVm) {
  // Paper finding 1: within one VM's metric suite, different metrics are won
  // by different single predictors.
  std::map<std::size_t, int> winners;
  for (const auto& metric : tracegen::paper_metrics()) {
    const auto result = run_trace("VM2", metric, 1);
    if (result.degenerate) continue;
    ++winners[result.best_single_label()];
  }
  EXPECT_GE(winners.size(), 2u)
      << "a single predictor won every VM2 metric — catalog lost its variety";
}

TEST(Reproduction, Finding2_BestModelVariesAcrossVmsForSameMetric) {
  // Paper finding 2: for a fixed metric, the winning model changes with the
  // VM's workload character — checked across the metric x VM grid: at least
  // one metric must have non-uniform winners across VMs.
  bool found_varying_metric = false;
  for (const auto& metric : {"NIC2_received", "VD2_read", "Memory_size"}) {
    std::map<std::size_t, int> winners;
    for (const auto& vm : tracegen::paper_vms()) {
      const auto result = run_trace(vm.vm_id, metric, 2);
      if (result.degenerate) continue;
      ++winners[result.best_single_label()];
    }
    if (winners.size() >= 2) found_varying_metric = true;
  }
  EXPECT_TRUE(found_varying_metric);
}

TEST(Reproduction, Finding3_BestPredictorChangesOverTime) {
  // Paper finding 3 (Figs. 4/5): within one trace the per-step best
  // predictor is not constant.
  const auto trace = tracegen::make_trace("VM2", "load15", 3, 288);
  const auto pool = predictors::make_paper_pool(5);
  const auto fold =
      core::evaluate_fold(trace.values, 144, pool, config_for("VM2"));
  std::map<std::size_t, int> counts;
  for (std::size_t label : fold.observed_best) ++counts[label];
  EXPECT_GE(counts.size(), 2u);
  // And no class dominates completely.
  for (const auto& [label, count] : counts) {
    EXPECT_LT(count, static_cast<int>(fold.steps()));
  }
}

TEST(Reproduction, LarForecastingAccuracyBeatsNwsOnAverage) {
  // §7.1 headline: the k-NN selector's best-predictor forecasting accuracy
  // exceeds the cumulative-MSE selector's on average across the trace set.
  // (Paper: 55.98% vs 35.8%; we require the ordering plus a margin.)
  double lar_acc = 0.0, nws_acc = 0.0;
  int counted = 0;
  const std::vector<std::pair<std::string, std::string>> traces = {
      {"VM2", "CPU_usedsec"}, {"VM2", "NIC1_received"}, {"VM4", "CPU_usedsec"},
      {"VM4", "NIC1_transmitted"}, {"VM3", "CPU_usedsec"}, {"VM5", "NIC2_received"},
  };
  const auto results = parallel_map(traces.size(), [&](std::size_t i) {
    return run_trace(traces[i].first, traces[i].second, 5 + i);
  });
  for (const auto& result : results) {
    if (result.degenerate) continue;
    lar_acc += result.lar_accuracy;
    nws_acc += result.nws_accuracy;
    ++counted;
  }
  ASSERT_GT(counted, 3);
  EXPECT_GT(lar_acc / counted, nws_acc / counted)
      << "LAR selection accuracy did not beat the NWS baseline";
  // Above chance (1/3) on a 3-class problem.
  EXPECT_GT(lar_acc / counted, 1.0 / 3.0);
}

TEST(Reproduction, OracleShowsHeadroomOverNws) {
  // §7.2.2: the perfect LARPredictor achieves materially lower MSE than the
  // cumulative-MSE selection (paper: 18.6% lower on average).
  double oracle = 0.0, nws = 0.0;
  int counted = 0;
  for (const auto& metric : {"CPU_usedsec", "NIC1_received", "VD1_write"}) {
    const auto result = run_trace("VM4", metric, 11);
    if (result.degenerate) continue;
    oracle += result.mse_oracle;
    nws += result.mse_nws;
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(oracle, nws * 0.95);
}

TEST(Reproduction, DegenerateCellsMatchIdleDevices) {
  // Table 3's NaN cells: idle devices produce degenerate (NaN) results.
  EXPECT_TRUE(run_trace("VM3", "NIC2_received", 13).degenerate);
  EXPECT_TRUE(run_trace("VM5", "NIC1_received", 13).degenerate);
  EXPECT_FALSE(run_trace("VM3", "CPU_usedsec", 13).degenerate);
}

TEST(Reproduction, LarBeatsWorstExpertEverywhere) {
  // A weak but universal guarantee behind the paper's integration pitch:
  // adaptive selection never does worse than the worst pool member.
  for (const auto& vm : {"VM2", "VM4"}) {
    for (const auto& metric : {"CPU_usedsec", "NIC1_received"}) {
      const auto result = run_trace(vm, metric, 17);
      if (result.degenerate) continue;
      const double worst =
          *std::max_element(result.mse_single.begin(), result.mse_single.end());
      EXPECT_LE(result.mse_lar, worst + 1e-9) << vm << "/" << metric;
    }
  }
}

TEST(Reproduction, SomeTracesBeatBestSingleExpert) {
  // §7.2.1 finding 3: LAR achieves better-than-best-expert performance on a
  // meaningful fraction of traces (paper: 44.23%).  Require at least one
  // occurrence across the sample set — the shape, not the exact rate.
  int better = 0, total = 0;
  for (const auto& vm : {"VM1", "VM2", "VM4"}) {
    for (const auto& metric :
         {"CPU_usedsec", "CPU_ready", "NIC1_received", "VD1_write"}) {
      const auto result = run_trace(vm, metric, 23);
      if (result.degenerate) continue;
      ++total;
      if (result.lar_beats_best_single()) ++better;
    }
  }
  ASSERT_GT(total, 6);
  EXPECT_GT(better, 0) << "LAR never beat the best single expert on " << total
                       << " traces";
}

}  // namespace
}  // namespace larp
