// End-to-end integration tests of the Figure-1 prototype: monitoring agent →
// round-robin performance database → profiler → LARPredictor → prediction
// database → Quality Assuror.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>

#include "monitor/agent.hpp"
#include "monitor/host_model.hpp"
#include "qa/prediction_service.hpp"
#include "tracegen/catalog.hpp"
#include "tracegen/models.hpp"
#include "util/error.hpp"

namespace larp {
namespace {

// Shared fixture: one host with two catalog guests, monitored minute-by-
// minute into a vmkusage-style RRD.
class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : db_(tsdb::make_vmkusage_config()), host_(400.0), rng_(20070325) {
    host_.add_guest(monitor::make_catalog_guest("VM2"));
    host_.add_guest(monitor::make_catalog_guest("VM4"));
    agent_.emplace(host_, db_);
  }

  // Runs the monitor for `minutes` and returns the next start timestamp.
  Timestamp monitor_for(Timestamp start, int minutes) {
    return agent_->run(start, minutes, rng_);
  }

  qa::ServiceConfig service_config() {
    qa::ServiceConfig config;
    config.lar.window = 5;
    config.interval = kFiveMinutes;
    config.train_samples = 96;  // 8 hours of five-minute bins
    config.audit_every = 12;
    return config;
  }

  tsdb::RoundRobinDatabase db_;
  monitor::HostServer host_;
  std::optional<monitor::MonitoringAgent> agent_;
  Rng rng_;
};

TEST_F(PipelineTest, TrainRequiresEnoughRetainedData) {
  qa::PredictionService service(db_, predictors::make_paper_pool(5),
                                service_config());
  const tsdb::SeriesKey key{"VM2", "cpu", "CPU_usedsec"};
  (void)monitor_for(0, 60);  // only 12 five-minute bins < 96 required
  EXPECT_THROW(service.train(key), Error);
}

TEST_F(PipelineTest, TrainPredictResolveLoop) {
  // 10 hours of monitoring -> 120 five-minute bins.
  Timestamp t = monitor_for(0, 600);

  qa::PredictionService service(db_, predictors::make_paper_pool(5),
                                service_config());
  const tsdb::SeriesKey key{"VM2", "cpu", "CPU_usedsec"};
  EXPECT_FALSE(service.is_trained(key));
  service.train(key);
  EXPECT_TRUE(service.is_trained(key));

  // Nothing new yet: advance consumes zero samples.
  EXPECT_EQ(service.advance(key), 0u);

  // Two more hours of monitoring -> 24 new bins to consume.
  t = monitor_for(t, 120);
  const std::size_t processed = service.advance(key);
  EXPECT_EQ(processed, 24u);

  // One forecast pending for the next interval; all previous ones resolved.
  const auto pending = service.pending_forecast(key);
  ASSERT_TRUE(pending.has_value());
  EXPECT_TRUE(std::isfinite(pending->value));
  EXPECT_LT(pending->label, 3u);

  // The prediction DB holds 24 records; 23 resolved + 1 pending.
  EXPECT_EQ(service.prediction_db().size(), 24u);
  const auto resolved = service.prediction_db().resolved_range(
      key, 0, std::numeric_limits<Timestamp>::max());
  EXPECT_EQ(resolved.size(), 23u);
}

TEST_F(PipelineTest, AdvanceBeforeTrainThrows) {
  (void)monitor_for(0, 600);
  qa::PredictionService service(db_, predictors::make_paper_pool(5),
                                service_config());
  const tsdb::SeriesKey key{"VM4", "cpu", "CPU_usedsec"};
  EXPECT_THROW((void)service.advance(key), StateError);
}

TEST_F(PipelineTest, MultipleStreamsIndependent) {
  Timestamp t = monitor_for(0, 600);
  qa::PredictionService service(db_, predictors::make_paper_pool(5),
                                service_config());
  const tsdb::SeriesKey cpu{"VM2", "cpu", "CPU_usedsec"};
  const tsdb::SeriesKey nic{"VM4", "nic1", "NIC1_received"};
  service.train(cpu);
  service.train(nic);
  t = monitor_for(t, 60);
  EXPECT_EQ(service.advance(cpu), 12u);
  EXPECT_EQ(service.advance(nic), 12u);
  EXPECT_TRUE(service.pending_forecast(cpu).has_value());
  EXPECT_TRUE(service.pending_forecast(nic).has_value());
}

TEST_F(PipelineTest, QualityAssurorAuditsOnCadence) {
  Timestamp t = monitor_for(0, 600);
  qa::PredictionService service(db_, predictors::make_paper_pool(5),
                                service_config());
  const tsdb::SeriesKey key{"VM2", "nic1", "NIC1_received"};
  service.train(key);
  t = monitor_for(t, 300);  // 60 new bins, audit_every = 12
  (void)service.advance(key);
  EXPECT_GE(service.quality_assuror().audits_performed(), 3u);
}

TEST_F(PipelineTest, QaOrdersRetrainingWhenPredictionsDegrade) {
  // Train the service, then replace the monitored host with one whose CPU
  // behaves wildly differently: the QA audits must breach and trigger
  // re-training through the profiler (the §3.2 loop, end to end).
  Timestamp t = monitor_for(0, 600);
  auto config = service_config();
  // The prediction DB stores raw forecasts; pick a threshold between the
  // calm regime's raw MSE and the wild regime's.
  config.quality.mse_threshold = 200.0;
  config.quality.audit_window = 24;
  config.quality.min_records = 12;
  config.audit_every = 8;
  qa::PredictionService service(db_, predictors::make_paper_pool(5), config);
  const tsdb::SeriesKey key{"VM2", "cpu", "CPU_usedsec"};
  service.train(key);

  // Calm continuation: the regime-switching VM2 CPU may trip an occasional
  // audit, so record the baseline rather than demanding zero.
  t = monitor_for(t, 120);
  (void)service.advance(key);
  const std::size_t calm_retrains = service.retrains();

  // Regime change: a replacement host whose VM2 CPU is violent.
  monitor::HostServer wild_host(4000.0);
  monitor::GuestVm wild_vm("VM2");
  {
    tracegen::OnOffBurst::Params p;
    p.off_level = 5.0;
    p.off_noise = 2.0;
    p.pareto_scale = 400.0;
    p.pareto_shape = 1.5;
    p.p_enter_on = 0.3;
    p.p_exit_on = 0.3;
    wild_vm.set_metric_model("CPU_usedsec",
                             std::make_unique<tracegen::OnOffBurst>(p));
  }
  wild_host.add_guest(std::move(wild_vm));
  monitor::MonitoringAgent wild_agent(wild_host, db_);
  for (int rounds = 0; rounds < 6; ++rounds) {
    t = wild_agent.run(t, 120, rng_);
    (void)service.advance(key);
  }
  EXPECT_GT(service.retrains(), calm_retrains)
      << "QA never ordered a re-train across a violent regime change";
  EXPECT_GT(service.quality_assuror().retrains_ordered(), 0u);
}

TEST_F(PipelineTest, ForecastsLandNearObservationsOnSmoothStream) {
  // CPU on VM2 is regime-switching but mostly smooth; the resolved
  // prediction errors should be far smaller than the raw signal scale.
  Timestamp t = monitor_for(0, 600);
  qa::PredictionService service(db_, predictors::make_paper_pool(5),
                                service_config());
  const tsdb::SeriesKey key{"VM2", "memory", "Memory_size"};
  service.train(key);
  t = monitor_for(t, 300);
  (void)service.advance(key);

  const auto resolved = service.prediction_db().resolved_range(
      key, 0, std::numeric_limits<Timestamp>::max());
  ASSERT_GT(resolved.size(), 10u);
  double err_acc = 0.0, scale_acc = 0.0;
  for (const auto& [ts, record] : resolved) {
    err_acc += std::sqrt(record.squared_error());
    scale_acc += std::abs(*record.observed);
  }
  EXPECT_LT(err_acc, scale_acc);  // average error below average magnitude
}

}  // namespace
}  // namespace larp
