// Failure-injection tests: corrupted inputs (NaN/Inf samples, truncated
// data, out-of-order feeds) must be rejected loudly at the boundary instead
// of silently poisoning downstream estimates.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/experiment.hpp"
#include "core/lar_predictor.hpp"
#include "qa/prediction_service.hpp"
#include "tracegen/catalog.hpp"
#include "tsdb/rrd.hpp"
#include "util/error.hpp"

namespace larp {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FailureInjection, RrdRejectsNonFiniteSamples) {
  tsdb::RoundRobinDatabase db(tsdb::make_vmkusage_config());
  const tsdb::SeriesKey key{"VM1", "cpu", "CPU_usedsec"};
  db.update(key, 0, 1.0);
  EXPECT_THROW(db.update(key, kMinute, kNan), InvalidArgument);
  EXPECT_THROW(db.update(key, kMinute, kInf), InvalidArgument);
  EXPECT_THROW(db.update(key, kMinute, -kInf), InvalidArgument);
  // The stream is still usable after the rejected sample.
  EXPECT_NO_THROW(db.update(key, kMinute, 2.0));
}

TEST(FailureInjection, LarTrainRejectsNonFiniteSeries) {
  core::LarConfig config;
  config.window = 5;
  core::LarPredictor lar(predictors::make_paper_pool(5), config);
  std::vector<double> series(100, 1.0);
  series[1] = 2.0;  // non-constant
  series[50] = kNan;
  EXPECT_THROW(lar.train(series), InvalidArgument);
  series[50] = kInf;
  EXPECT_THROW(lar.train(series), InvalidArgument);
  series[50] = 1.5;
  EXPECT_NO_THROW(lar.train(series));
}

TEST(FailureInjection, LarObserveRejectsNonFiniteSample) {
  const auto trace = tracegen::make_trace("VM2", "CPU_usedsec", 1);
  core::LarConfig config;
  config.window = 5;
  core::LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(trace.values);
  EXPECT_THROW(lar.observe(kNan), InvalidArgument);
  EXPECT_THROW(lar.observe(kInf), InvalidArgument);
  // State unharmed: the predictor still forecasts finitely.
  lar.observe(trace.values.back());
  EXPECT_TRUE(std::isfinite(lar.predict_next().value));
}

TEST(FailureInjection, RrdRejectsOutOfOrderAndGappedFeeds) {
  tsdb::RoundRobinDatabase db(tsdb::make_vmkusage_config());
  const tsdb::SeriesKey key{"VM2", "nic1", "NIC1_received"};
  db.update(key, 10 * kMinute, 1.0);
  EXPECT_THROW(db.update(key, 9 * kMinute, 1.0), InvalidArgument);   // backwards
  EXPECT_THROW(db.update(key, 10 * kMinute, 1.0), InvalidArgument);  // duplicate
  EXPECT_THROW(db.update(key, 12 * kMinute, 1.0), InvalidArgument);  // gap
  EXPECT_NO_THROW(db.update(key, 11 * kMinute, 1.0));
}

TEST(FailureInjection, ServiceSurvivesTrainOnInsufficientData) {
  tsdb::RoundRobinDatabase db(tsdb::make_vmkusage_config());
  const tsdb::SeriesKey key{"VM3", "cpu", "CPU_usedsec"};
  for (int i = 0; i < 30; ++i) db.update(key, i * kMinute, 5.0 + i % 3);

  qa::ServiceConfig config;
  config.lar.window = 5;
  config.train_samples = 100;  // far more than the 6 closed 5-min bins
  qa::PredictionService service(db, predictors::make_paper_pool(5), config);
  EXPECT_THROW(service.train(key), Error);
  EXPECT_FALSE(service.is_trained(key));
  // More data arrives; training then succeeds.
  for (int i = 30; i < 600; ++i) db.update(key, i * kMinute, 5.0 + i % 7);
  EXPECT_NO_THROW(service.train(key));
  EXPECT_TRUE(service.is_trained(key));
}

TEST(FailureInjection, EvaluateFoldSurvivesPathologicalSplits) {
  const auto trace = tracegen::make_trace("VM2", "CPU_usedsec", 2);
  const auto pool = predictors::make_paper_pool(5);
  core::LarConfig config;
  config.window = 5;
  // Smallest legal training side.
  EXPECT_NO_THROW(
      (void)core::evaluate_fold(trace.values, 6, pool, config));
  // Largest legal split (exactly one test target).
  EXPECT_NO_THROW((void)core::evaluate_fold(
      trace.values, trace.values.size() - 1, pool, config));
}

TEST(FailureInjection, ConstantTrainingHalfReportedNotCrashed) {
  // First half constant, second half active: the fold must throw StateError
  // (caught and skipped by cross_validate), never divide by zero.
  std::vector<double> series(200, 1.0);
  Rng rng(3);
  for (std::size_t i = 100; i < 200; ++i) series[i] = rng.uniform(0, 10);
  const auto pool = predictors::make_paper_pool(5);
  core::LarConfig config;
  config.window = 5;
  EXPECT_THROW((void)core::evaluate_fold(series, 100, pool, config), StateError);

  ml::CrossValidationPlan plan;
  plan.folds = 5;
  plan.min_fraction = 0.45;
  plan.max_fraction = 0.55;
  Rng cv_rng(4);
  EXPECT_NO_THROW(
      (void)core::cross_validate(series, pool, config, plan, cv_rng));
}

TEST(FailureInjection, PredictorsRejectShortWindows) {
  auto pool = predictors::make_extended_pool(5);
  const auto trace = tracegen::make_trace("VM4", "CPU_usedsec", 5);
  pool.fit_all(trace.values);
  const std::vector<double> tiny{1.0};
  // Members requiring more than one value must throw, not read out of range.
  EXPECT_THROW((void)pool.at(pool.label_of("AR")).predict(tiny),
               InvalidArgument);
  EXPECT_THROW((void)pool.at(pool.label_of("TENDENCY")).predict(tiny),
               InvalidArgument);
  EXPECT_THROW((void)pool.at(pool.label_of("POLY_FIT(d2)")).predict(tiny),
               InvalidArgument);
}

}  // namespace
}  // namespace larp
