// Grid-wide invariants: every (VM, metric) cell of the paper's evaluation
// grid must satisfy the structural guarantees the reproduction rests on —
// parameterized over all 60 traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/experiment.hpp"
#include "tracegen/catalog.hpp"
#include "util/stats.hpp"

namespace larp {
namespace {

struct Cell {
  std::string vm;
  std::string metric;
};

std::vector<Cell> full_grid() {
  std::vector<Cell> grid;
  for (const auto& vm : tracegen::paper_vms()) {
    for (const auto& metric : tracegen::paper_metrics()) {
      grid.push_back({vm.vm_id, metric});
    }
  }
  return grid;
}

class GridInvariants : public ::testing::TestWithParam<Cell> {};

TEST_P(GridInvariants, HoldOnThisTrace) {
  const auto& cell = GetParam();
  const auto trace = tracegen::make_trace(cell.vm, cell.metric, /*seed=*/31);

  // Trace-level guarantees.
  ASSERT_EQ(trace.size(), tracegen::vm_spec(cell.vm).samples);
  for (double v : trace.values) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 0.0);  // resource metrics are non-negative
  }

  core::LarConfig config;
  config.window = cell.vm == "VM1" ? 16 : 5;
  config.pca_components = 0;
  config.pca_min_variance = 0.85;
  const auto pool = predictors::make_paper_pool(config.window);
  ml::CrossValidationPlan plan;
  plan.folds = 2;
  Rng rng(17);
  const auto result =
      core::cross_validate(trace.values, pool, config, plan, rng);

  if (stats::variance(trace.values) == 0.0) {
    EXPECT_TRUE(result.degenerate) << "constant trace must be degenerate";
    return;
  }
  ASSERT_FALSE(result.degenerate);

  // Oracle bound: P-LAR is a lower bound on every strategy.
  EXPECT_LE(result.mse_oracle, result.mse_lar + 1e-9);
  EXPECT_LE(result.mse_oracle, result.mse_nws + 1e-9);
  EXPECT_LE(result.mse_oracle, result.mse_wnws + 1e-9);
  for (double single : result.mse_single) {
    EXPECT_LE(result.mse_oracle, single + 1e-9);
  }
  // LAR never exceeds the worst expert.
  const double worst =
      *std::max_element(result.mse_single.begin(), result.mse_single.end());
  EXPECT_LE(result.mse_lar, worst + 1e-9);
  // Accuracies are probabilities.
  for (double a :
       {result.lar_accuracy, result.nws_accuracy, result.wnws_accuracy}) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  // All MSEs are finite and non-negative.
  for (double m : {result.mse_oracle, result.mse_lar, result.mse_nws,
                   result.mse_wnws}) {
    EXPECT_TRUE(std::isfinite(m));
    EXPECT_GE(m, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSixtyTraces, GridInvariants, ::testing::ValuesIn(full_grid()),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return info.param.vm + "_" + info.param.metric;
    });

}  // namespace
}  // namespace larp
