// Fault injection on the persist write path: the durability layer must not
// assume write(2) transfers a whole group-commit buffer in one call.  Once a
// network front-end shares the process, signals (EINTR) and memory pressure
// make short writes real; these tests force them through the
// persist::testing hooks and assert WAL replay still finds a contiguous
// checksum-valid prefix — i.e. framing survives any transfer split.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "persist/file.hpp"
#include "persist/wal.hpp"
#include "util/error.hpp"

namespace larp::persist {
namespace {

namespace fs = std::filesystem;

// Hook state is process-global (the hook is a plain function pointer), so
// the counters live in file-scope atomics the hooks read.
std::atomic<std::size_t> g_write_calls{0};
std::atomic<std::size_t> g_eintr_injected{0};
std::atomic<std::size_t> g_sync_eintr_left{0};
std::atomic<std::size_t> g_cap_bytes{5};
std::atomic<long long> g_fail_after_bytes{-1};  // <0: never fail
std::atomic<long long> g_bytes_written{0};

// Short-write injector: every third call is interrupted before transferring
// anything; successful calls transfer at most g_cap_bytes.  Optionally turns
// into a hard EIO failure once g_fail_after_bytes have been transferred —
// the "crash mid-group" case.
ssize_t short_write_hook(int fd, const void* buf, std::size_t count) {
  const std::size_t call = g_write_calls.fetch_add(1);
  if (call % 3 == 2) {
    g_eintr_injected.fetch_add(1);
    errno = EINTR;
    return -1;
  }
  const long long budget = g_fail_after_bytes.load();
  if (budget >= 0 && g_bytes_written.load() >= budget) {
    errno = EIO;
    return -1;
  }
  std::size_t n = std::min(count, g_cap_bytes.load());
  if (budget >= 0) {
    const long long left = budget - g_bytes_written.load();
    n = std::min(n, static_cast<std::size_t>(left));
    if (n == 0) {
      errno = EIO;
      return -1;
    }
  }
  const ssize_t wrote = ::write(fd, buf, n);
  if (wrote > 0) g_bytes_written.fetch_add(wrote);
  return wrote;
}

// Sync injector: fails with EINTR a configured number of times, then
// succeeds.  AppendFile::sync()/sync_handle()/sync_directory() must retry —
// a sync interrupted by a signal has NOT made the data durable.
int eintr_sync_hook(int fd) {
  if (g_sync_eintr_left.load() > 0) {
    g_sync_eintr_left.fetch_sub(1);
    errno = EINTR;
    return -1;
  }
  return ::fdatasync(fd);
}

class ShortWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("larp_shortwrite_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    g_write_calls = 0;
    g_eintr_injected = 0;
    g_sync_eintr_left = 0;
    g_cap_bytes = 5;
    g_fail_after_bytes = -1;
    g_bytes_written = 0;
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<std::byte> payload(const std::string& s) {
    std::vector<std::byte> out(s.size());
    std::memcpy(out.data(), s.data(), s.size());
    return out;
  }

  std::vector<std::uint64_t> replay_seqs(std::uint32_t shard) {
    std::vector<std::uint64_t> seqs;
    last_report_ = replay_wal(dir_, shard, 0,
                              [&](const WalFrame& f) { seqs.push_back(f.seq); });
    return seqs;
  }

  fs::path dir_;
  WalReplayReport last_report_;
};

TEST_F(ShortWriteTest, GroupCommitSurvivesShortWritesAndEintr) {
  constexpr std::size_t kGroups = 8;
  constexpr std::size_t kFramesPerGroup = 4;
  {
    // The WalWriter is constructed before the hook goes in so the segment
    // header is not part of the experiment; every group-commit write after
    // that is chopped into <= 5-byte pieces with EINTR storms in between.
    WalConfig config;
    config.fsync = FsyncPolicy::EveryN;
    config.fsync_every_n = 2;
    WalWriter writer(dir_, 0, config);
    testing::FaultInjectionGuard guard(&short_write_hook, &eintr_sync_hook);
    for (std::size_t g = 0; g < kGroups; ++g) {
      for (std::size_t f = 0; f < kFramesPerGroup; ++f) {
        (void)writer.stage(payload("group" + std::to_string(g) + "-frame" +
                                   std::to_string(f) + "-padding-padding"));
      }
      writer.commit();
    }
    writer.sync();
  }
  // The injector must actually have split the transfers, or this test
  // proves nothing: one group is ~50+ bytes, the cap is 5.
  EXPECT_GT(g_write_calls.load(), kGroups * kFramesPerGroup);
  EXPECT_GT(g_eintr_injected.load(), 0u);

  const auto seqs = replay_seqs(0);
  ASSERT_EQ(seqs.size(), kGroups * kFramesPerGroup);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
  EXPECT_FALSE(last_report_.truncated_tail);
  EXPECT_EQ(last_report_.next_seq, kGroups * kFramesPerGroup);
}

TEST_F(ShortWriteTest, ShortWritesAcrossSegmentRotation) {
  // Tiny segments force mid-group rotation while every write is split; the
  // segment-contiguity invariant (segment k+1 starts where k ends) must
  // still hold.
  WalConfig config;
  config.segment_bytes = 96;
  {
    WalWriter writer(dir_, 3, config);
    testing::FaultInjectionGuard guard(&short_write_hook, &eintr_sync_hook);
    for (std::size_t g = 0; g < 6; ++g) {
      for (std::size_t f = 0; f < 3; ++f) {
        (void)writer.stage(payload("rotating-payload-" + std::to_string(g)));
      }
      writer.commit();
    }
    writer.flush();
  }
  EXPECT_GE(list_wal_segments(dir_, 3).size(), 2u);
  const auto seqs = replay_seqs(3);
  ASSERT_EQ(seqs.size(), 18u);
  EXPECT_FALSE(last_report_.truncated_tail);
}

TEST_F(ShortWriteTest, HardFailureMidGroupLeavesValidPrefix) {
  constexpr std::size_t kGoodGroups = 4;
  constexpr std::size_t kFramesPerGroup = 3;
  std::uint64_t committed = 0;
  {
    WalConfig config;
    WalWriter writer(dir_, 0, config);
    {
      testing::FaultInjectionGuard guard(&short_write_hook, nullptr);
      for (std::size_t g = 0; g < kGoodGroups; ++g) {
        for (std::size_t f = 0; f < kFramesPerGroup; ++f) {
          (void)writer.stage(payload("durable-group-" + std::to_string(g)));
        }
        writer.commit();
      }
      committed = writer.published_seq();
      // The disk "fills up" 20 bytes into the next group: commit() must
      // throw, leaving a torn frame on the tail at worst.
      g_fail_after_bytes = g_bytes_written.load() + 20;
      for (std::size_t f = 0; f < kFramesPerGroup; ++f) {
        (void)writer.stage(payload("doomed-group-payload-x"));
      }
      EXPECT_THROW(writer.commit(), IoError);
    }
  }
  ASSERT_EQ(committed, kGoodGroups * kFramesPerGroup);

  // Replay trusts exactly the contiguous valid prefix: every frame of the
  // committed groups, none past the torn tail.
  const auto seqs = replay_seqs(0);
  ASSERT_GE(seqs.size(), committed);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);

  // A writer reopening the directory repairs the tail and continues where
  // the valid prefix ended — the log never forks.
  {
    WalConfig config;
    WalWriter writer(dir_, 0, config);
    EXPECT_EQ(writer.next_seq(), last_report_.next_seq);
    (void)writer.append(payload("after-recovery"));
    writer.sync();
  }
  const auto after = replay_seqs(0);
  ASSERT_EQ(after.size(), last_report_.next_seq);
  EXPECT_FALSE(last_report_.truncated_tail);
  for (std::size_t i = 0; i < after.size(); ++i) EXPECT_EQ(after[i], i);
}

TEST_F(ShortWriteTest, SyncRetriesEintr) {
  // Three injected EINTRs ahead of the real fdatasync: sync() must retry
  // through all of them and leave the durable watermark advanced.
  WalConfig config;
  config.fsync = FsyncPolicy::EveryN;
  config.fsync_every_n = 1000;  // keep policy syncs out of the way
  WalWriter writer(dir_, 0, config);
  (void)writer.append(payload("needs-sync"));
  g_sync_eintr_left = 3;
  testing::FaultInjectionGuard guard(nullptr, &eintr_sync_hook);
  writer.sync();
  EXPECT_EQ(g_sync_eintr_left.load(), 0u);
  EXPECT_EQ(writer.durable_seq(), writer.published_seq());
}

TEST_F(ShortWriteTest, PublishFileSurvivesShortWrites) {
  // publish_file (snapshot publication) shares AppendFile::append, so a
  // snapshot payload must also come back bit-identical under split writes.
  std::vector<std::byte> blob(1337);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>(i * 31 + 7);
  }
  ensure_directory(dir_);
  const auto path = dir_ / "payload.bin";
  {
    testing::FaultInjectionGuard guard(&short_write_hook, &eintr_sync_hook);
    publish_file(path, blob);
  }
  EXPECT_GT(g_write_calls.load(), blob.size() / 5);
  EXPECT_EQ(read_file(path), blob);
}

}  // namespace
}  // namespace larp::persist
