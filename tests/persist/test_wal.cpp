// Tests for the per-shard write-ahead log: append/replay round trips,
// segment rotation, fsync policies, and fault injection on the tail.
#include "persist/wal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace larp::persist {
namespace {

namespace fs = std::filesystem;

/// Injectable time source: tests advance it explicitly, so Interval-policy
/// and deadline behaviour is asserted exactly instead of raced against the
/// scheduler.  Copyable into a WalConfig; the atomic makes it safe to read
/// from a syncer thread while the test advances it.
struct FakeClock {
  std::shared_ptr<std::atomic<std::int64_t>> ms =
      std::make_shared<std::atomic<std::int64_t>>(0);
  [[nodiscard]] WalClock fn() const {
    auto ticks = ms;
    return [ticks] {
      return std::chrono::steady_clock::time_point{} +
             std::chrono::milliseconds(ticks->load());
    };
  }
  void advance(std::chrono::milliseconds d) { ms->fetch_add(d.count()); }
};

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("larp_wal_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<std::byte> payload(const std::string& s) {
    std::vector<std::byte> out(s.size());
    std::memcpy(out.data(), s.data(), s.size());
    return out;
  }

  std::vector<std::pair<std::uint64_t, std::string>> replay_all(
      std::uint32_t shard, std::uint64_t from_seq = 0) {
    std::vector<std::pair<std::uint64_t, std::string>> frames;
    last_report_ = replay_wal(dir_, shard, from_seq, [&](const WalFrame& f) {
      frames.emplace_back(
          f.seq, std::string(reinterpret_cast<const char*>(f.payload.data()),
                             f.payload.size()));
    });
    return frames;
  }

  fs::path dir_;
  WalReplayReport last_report_;
};

TEST_F(WalTest, AppendReplayRoundTrip) {
  WalConfig config;
  {
    WalWriter writer(dir_, 0, config);
    EXPECT_EQ(writer.append(payload("alpha")), 0u);
    EXPECT_EQ(writer.append(payload("beta")), 1u);
    EXPECT_EQ(writer.append(payload("")), 2u);  // empty payloads are legal
    writer.sync();
  }
  const auto frames = replay_all(0);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], (std::pair<std::uint64_t, std::string>{0, "alpha"}));
  EXPECT_EQ(frames[1], (std::pair<std::uint64_t, std::string>{1, "beta"}));
  EXPECT_EQ(frames[2], (std::pair<std::uint64_t, std::string>{2, ""}));
  EXPECT_EQ(last_report_.next_seq, 3u);
  EXPECT_FALSE(last_report_.truncated_tail);
}

TEST_F(WalTest, ShardsAreIndependentLogs) {
  WalConfig config;
  WalWriter a(dir_, 0, config);
  WalWriter b(dir_, 1, config);
  a.append(payload("a0"));
  b.append(payload("b0"));
  b.append(payload("b1"));
  a.sync();
  b.sync();
  EXPECT_EQ(replay_all(0).size(), 1u);
  EXPECT_EQ(replay_all(1).size(), 2u);
}

TEST_F(WalTest, ReopenContinuesSequence) {
  WalConfig config;
  {
    WalWriter writer(dir_, 0, config);
    writer.append(payload("one"));
    writer.append(payload("two"));
  }  // destructor path: no explicit sync — buffered bytes still reach the file
  {
    WalWriter writer(dir_, 0, config);
    EXPECT_EQ(writer.next_seq(), 2u);
    EXPECT_EQ(writer.append(payload("three")), 2u);
    writer.sync();
  }
  const auto frames = replay_all(0);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[2].second, "three");
}

TEST_F(WalTest, FromSeqSkipsCoveredPrefix) {
  WalConfig config;
  WalWriter writer(dir_, 0, config);
  for (int i = 0; i < 10; ++i) writer.append(payload(std::to_string(i)));
  writer.sync();
  const auto frames = replay_all(0, 7);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].first, 7u);
  EXPECT_EQ(last_report_.frames_skipped, 7u);
  EXPECT_EQ(last_report_.frames_delivered, 3u);
}

TEST_F(WalTest, RotatesSegmentsAndReplaysAcrossThem) {
  WalConfig config;
  config.segment_bytes = 128;  // force rotation every few frames
  WalWriter writer(dir_, 0, config);
  const std::string blob(40, 'x');
  for (int i = 0; i < 20; ++i) writer.append(payload(blob));
  writer.sync();
  const auto segments = list_wal_segments(dir_, 0);
  ASSERT_GT(segments.size(), 2u);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_GT(segments[i].start_seq, segments[i - 1].start_seq);
  }
  EXPECT_EQ(replay_all(0).size(), 20u);
  EXPECT_EQ(last_report_.next_seq, 20u);
}

TEST_F(WalTest, FsyncPoliciesKeepEveryFrame) {
  for (const auto policy :
       {FsyncPolicy::Always, FsyncPolicy::EveryN, FsyncPolicy::Interval}) {
    WalConfig config;
    config.fsync = policy;
    config.fsync_every_n = 3;
    const auto shard = static_cast<std::uint32_t>(policy);
    {
      WalWriter writer(dir_, shard, config);
      for (int i = 0; i < 8; ++i) writer.append(payload(std::to_string(i)));
      writer.sync();
    }
    EXPECT_EQ(replay_all(shard).size(), 8u) << "policy " << int(policy);
  }
}

// -- group commit -----------------------------------------------------------

TEST_F(WalTest, GroupCommitRoundTrip) {
  WalConfig config;
  {
    WalWriter writer(dir_, 0, config);
    EXPECT_EQ(writer.stage(payload("g0")), 0u);
    EXPECT_EQ(writer.stage(payload("g1")), 1u);
    EXPECT_EQ(writer.stage(payload("")), 2u);  // empty payloads stay legal
    writer.commit();
    writer.commit();  // committing an empty group is a no-op
    EXPECT_EQ(writer.append(payload("single")), 3u);  // append after a group
    writer.sync();
  }
  const auto frames = replay_all(0);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0], (std::pair<std::uint64_t, std::string>{0, "g0"}));
  EXPECT_EQ(frames[1], (std::pair<std::uint64_t, std::string>{1, "g1"}));
  EXPECT_EQ(frames[2], (std::pair<std::uint64_t, std::string>{2, ""}));
  EXPECT_EQ(frames[3], (std::pair<std::uint64_t, std::string>{3, "single"}));
  EXPECT_EQ(last_report_.next_seq, 4u);
  EXPECT_FALSE(last_report_.truncated_tail);
}

TEST_F(WalTest, GroupCommitCountsFramesTowardEveryN) {
  WalConfig config;
  config.fsync = FsyncPolicy::EveryN;
  config.fsync_every_n = 4;
  WalWriter writer(dir_, 0, config);
  for (int i = 0; i < 3; ++i) writer.stage(payload("x"));
  writer.commit();
  EXPECT_EQ(writer.unsynced_appends(), 3u);  // 3 < n: no sync yet
  for (int i = 0; i < 2; ++i) writer.stage(payload("y"));
  writer.commit();
  EXPECT_EQ(writer.unsynced_appends(), 0u);  // 5 >= n: group synced
}

// A group larger than the rotation threshold must be split at the segment
// boundary so the next segment's start_seq equals the previous segment's
// valid end — the contiguity invariant replay() enforces.
TEST_F(WalTest, GroupCommitSplitsAtRotationBoundary) {
  WalConfig config;
  config.segment_bytes = 128;
  {
    WalWriter writer(dir_, 0, config);
    const std::string blob(40, 'x');
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 5; ++i) writer.stage(payload(blob));
      writer.commit();  // each ~280-byte group spans >1 segment
    }
    writer.sync();
  }
  const auto segments = list_wal_segments(dir_, 0);
  ASSERT_GT(segments.size(), 2u);
  EXPECT_EQ(replay_all(0).size(), 20u);
  EXPECT_EQ(last_report_.next_seq, 20u);
  EXPECT_FALSE(last_report_.truncated_tail);
}

// Compressed block frames carry many logical records in one frame, staged
// with an explicit weight.  EveryN and the backlog gauge must count records
// (the durability contract is "lose at most n-1 RECORDS"), not frames.
TEST_F(WalTest, WeightedStagingCountsRecordsNotFrames) {
  WalConfig config;
  config.fsync = FsyncPolicy::EveryN;
  config.fsync_every_n = 10;
  WalWriter writer(dir_, 0, config);
  writer.stage(payload("block-a"), /*weight=*/4);
  writer.commit();
  EXPECT_EQ(writer.unsynced_appends(), 4u);  // 4 records, 1 frame
  writer.stage(payload("block-b"), /*weight=*/5);
  writer.commit();
  EXPECT_EQ(writer.unsynced_appends(), 9u);  // still below n
  writer.stage(payload("block-c"), /*weight=*/1);
  writer.commit();
  EXPECT_EQ(writer.unsynced_appends(), 0u);  // 10 >= n: group synced
  EXPECT_EQ(replay_all(0).size(), 3u);       // weights never invent frames
  EXPECT_EQ(last_report_.next_seq, 3u);
}

// Variable-length weighted frames (the compressed-payload shape: early
// frames ship key dictionaries and are large, steady-state frames are tiny)
// across forced rotations: group splits at segment boundaries must keep the
// contiguity invariant, prune must land on exact frame boundaries, and the
// record-weighted backlog must survive rotation splits.
TEST_F(WalTest, WeightedVariableLengthFramesAcrossRotationAndPrune) {
  WalConfig config;
  config.segment_bytes = 256;
  config.fsync = FsyncPolicy::EveryN;
  config.fsync_every_n = 1000;  // keep sync manual; backlog stays observable
  WalWriter writer(dir_, 0, config);
  std::size_t frames = 0;
  for (int round = 0; round < 12; ++round) {
    // First frame of a round is dictionary-heavy, the rest are small.
    for (int i = 0; i < 4; ++i) {
      const std::size_t size = i == 0 ? 150 : 10 + 7 * i;
      writer.stage(payload(std::string(size, char('a' + i))), /*weight=*/6);
      ++frames;
    }
    writer.commit();
    // Publication and mid-group rotation syncs both land on whole-frame
    // boundaries, so the record backlog is always a multiple of the frame
    // weight — a fractional frame would mean a split tore a frame apart.
    EXPECT_EQ(writer.unsynced_appends() % 6, 0u);
    EXPECT_LE(writer.unsynced_appends(), frames * 6);
  }
  writer.sync();
  EXPECT_EQ(writer.unsynced_appends(), 0u);

  const auto segments = list_wal_segments(dir_, 0);
  ASSERT_GT(segments.size(), 2u);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_GT(segments[i].start_seq, segments[i - 1].start_seq);
  }
  EXPECT_EQ(replay_all(0).size(), frames);
  EXPECT_EQ(last_report_.next_seq, frames);
  EXPECT_FALSE(last_report_.truncated_tail);

  // Prune to a mid-log segment head: replay from the cut still reaches the
  // exact tail, and frames below the cut are gone wholesale.
  const std::uint64_t cut = segments[segments.size() / 2].start_seq;
  writer.prune_below(cut);
  EXPECT_LT(list_wal_segments(dir_, 0).size(), segments.size());
  const auto replayed = replay_all(0, cut);
  ASSERT_FALSE(replayed.empty());
  EXPECT_EQ(replayed.front().first, cut);
  EXPECT_EQ(replayed.back().first, frames - 1);
  EXPECT_EQ(last_report_.next_seq, frames);
  EXPECT_FALSE(last_report_.truncated_tail);
}

// Crash mid-group: a tear inside the third frame of a five-frame group must
// recover exactly the frames before it, bit-identically, and a reopened
// writer resumes at the cut.
TEST_F(WalTest, TornMidGroupTailRecoversValidPrefix) {
  WalConfig config;
  {
    WalWriter writer(dir_, 0, config);
    writer.append(payload("pre"));
    for (int i = 0; i < 5; ++i) {
      writer.stage(payload("group" + std::to_string(i)));
    }
    writer.commit();
    writer.sync();
  }
  // Each "groupN" frame is 4 (len) + 4 (crc) + 8 (seq) + 6 (payload) = 22
  // bytes; chopping 2 frames + 3 bytes lands the tear mid-frame inside the
  // group (frame seq 3 torn, 4-5 gone entirely).
  const auto segments = list_wal_segments(dir_, 0);
  ASSERT_EQ(segments.size(), 1u);
  const auto size = fs::file_size(segments[0].path);
  fs::resize_file(segments[0].path, size - (2 * 22 + 3));

  const auto frames = replay_all(0);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[1].second, "group0");
  EXPECT_EQ(frames[2].second, "group1");
  EXPECT_TRUE(last_report_.truncated_tail);
  EXPECT_EQ(last_report_.next_seq, 3u);

  WalWriter writer(dir_, 0, config);
  EXPECT_EQ(writer.next_seq(), 3u);
  writer.append(payload("resumed"));
  writer.sync();
  const auto after = replay_all(0);
  ASSERT_EQ(after.size(), 4u);
  EXPECT_EQ(after[3].second, "resumed");
  EXPECT_FALSE(last_report_.truncated_tail);
}

// -- durability policy hooks ------------------------------------------------

TEST_F(WalTest, SyncIfDueIsANoOpOutsideIntervalPolicy) {
  WalConfig config;
  config.fsync = FsyncPolicy::EveryN;
  config.fsync_every_n = 100;
  WalWriter writer(dir_, 0, config);
  writer.append(payload("x"));
  EXPECT_EQ(writer.unsynced_appends(), 1u);
  EXPECT_FALSE(writer.sync_if_due());  // EveryN's window is frames, not time
  EXPECT_EQ(writer.unsynced_appends(), 1u);
}

TEST_F(WalTest, SyncIfDueBoundsTheIdleLossWindow) {
  FakeClock clock;
  WalConfig config;
  config.fsync = FsyncPolicy::Interval;
  config.fsync_interval = std::chrono::milliseconds(50);
  config.clock = clock.fn();
  WalWriter writer(dir_, 0, config);

  EXPECT_FALSE(writer.sync_if_due());  // nothing unsynced yet
  writer.append(payload("idle"));
  // Without the hook this frame would stay unsynced until the NEXT append —
  // the unbounded idle-writer loss window.
  EXPECT_EQ(writer.unsynced_appends(), 1u);
  clock.advance(std::chrono::milliseconds(49));
  EXPECT_FALSE(writer.sync_if_due());  // interval has not elapsed
  EXPECT_EQ(writer.unsynced_appends(), 1u);

  clock.advance(std::chrono::milliseconds(1));  // exactly the interval
  EXPECT_TRUE(writer.sync_if_due());
  EXPECT_EQ(writer.unsynced_appends(), 0u);
  EXPECT_FALSE(writer.sync_if_due());  // already durable: no repeat sync
}

TEST_F(WalTest, IntervalPolicySyncsOnAppendOnceElapsed) {
  FakeClock clock;
  WalConfig config;
  config.fsync = FsyncPolicy::Interval;
  config.fsync_interval = std::chrono::milliseconds(50);
  config.clock = clock.fn();
  WalWriter writer(dir_, 0, config);

  writer.append(payload("a"));  // inside the window: stays unsynced
  writer.append(payload("b"));
  EXPECT_EQ(writer.unsynced_appends(), 2u);
  clock.advance(std::chrono::milliseconds(50));
  writer.append(payload("c"));  // interval elapsed: this append syncs all 3
  EXPECT_EQ(writer.unsynced_appends(), 0u);
  EXPECT_EQ(writer.durable_seq(), 3u);
}

// -- async durability mode --------------------------------------------------

TEST_F(WalTest, AsyncModeNeverSyncsInline) {
  WalConfig config;
  config.fsync = FsyncPolicy::EveryN;
  config.fsync_every_n = 2;  // would sync every other append under Sync
  config.mode = DurabilityMode::Async;
  WalWriter writer(dir_, 0, config);

  for (int i = 0; i < 5; ++i) writer.append(payload("x"));
  EXPECT_EQ(writer.published_seq(), 5u);
  EXPECT_EQ(writer.durable_seq(), 0u);  // no inline sync happened
  EXPECT_EQ(writer.unsynced_appends(), 5u);
  EXPECT_FALSE(writer.sync_if_due());  // the syncer owns the deadline

  // The syncer-side call makes the published watermark durable.
  EXPECT_EQ(writer.sync_published(), 5u);
  EXPECT_EQ(writer.durable_seq(), 5u);
  EXPECT_EQ(writer.unsynced_appends(), 0u);
  // Nothing new published: a second call is a cheap no-op at the watermark.
  EXPECT_EQ(writer.sync_published(), 5u);
}

TEST_F(WalTest, AsyncModeIntervalPolicyDoesNotSyncOnAppend) {
  FakeClock clock;
  WalConfig config;
  config.fsync = FsyncPolicy::Interval;
  config.fsync_interval = std::chrono::milliseconds(1);
  config.mode = DurabilityMode::Async;
  config.clock = clock.fn();
  WalWriter writer(dir_, 0, config);

  writer.append(payload("a"));
  clock.advance(std::chrono::milliseconds(10));  // interval long elapsed
  writer.append(payload("b"));  // Sync mode would fdatasync here
  EXPECT_EQ(writer.unsynced_appends(), 2u);
  EXPECT_EQ(writer.flush(), 2u);  // flush works regardless of mode
  EXPECT_EQ(writer.unsynced_appends(), 0u);
}

TEST_F(WalTest, AsyncStagedFramesAreNotPublishedUntilCommit) {
  WalConfig config;
  config.mode = DurabilityMode::Async;
  WalWriter writer(dir_, 0, config);

  writer.stage(payload("g0"));
  writer.stage(payload("g1"));
  EXPECT_EQ(writer.published_seq(), 0u);  // staged frames never hit write(2)
  EXPECT_EQ(writer.sync_published(), 0u);  // nothing for the syncer to do
  writer.commit();
  EXPECT_EQ(writer.published_seq(), 2u);
  EXPECT_EQ(writer.durable_seq(), 0u);
  EXPECT_EQ(writer.sync_published(), 2u);
}

// Rotation must keep the "only the current segment holds non-durable bytes"
// invariant even under Async: the outgoing segment is synced inline at the
// switch, so durable_seq can never lag behind a closed segment.
TEST_F(WalTest, AsyncRotationSyncsTheOutgoingSegment) {
  WalConfig config;
  config.segment_bytes = 128;
  config.fsync = FsyncPolicy::EveryN;
  config.fsync_every_n = 1000;  // policy alone would never sync
  config.mode = DurabilityMode::Async;
  WalWriter writer(dir_, 0, config);

  const std::string blob(40, 'x');
  for (int i = 0; i < 20; ++i) writer.append(payload(blob));
  const auto segments = list_wal_segments(dir_, 0);
  ASSERT_GT(segments.size(), 2u);
  // Everything up to the newest segment's start is durable; only current-
  // segment frames can be in the loss window.
  EXPECT_GE(writer.durable_seq(), segments.back().start_seq);
  EXPECT_EQ(writer.published_seq(), 20u);
  EXPECT_LE(writer.unsynced_appends(), 20u - segments.back().start_seq);

  writer.sync_published();
  EXPECT_EQ(writer.durable_seq(), 20u);
  EXPECT_EQ(replay_all(0).size(), 20u);
}

TEST_F(WalTest, AlwaysPolicyStaysInlineUnderAsync) {
  WalConfig config;
  config.fsync = FsyncPolicy::Always;
  config.mode = DurabilityMode::Async;  // must be ignored for Always
  WalWriter writer(dir_, 0, config);
  writer.append(payload("x"));
  EXPECT_EQ(writer.unsynced_appends(), 0u);  // synced on the append itself
  EXPECT_EQ(writer.durable_seq(), 1u);
}

// -- segment listing --------------------------------------------------------

// Regression: the listing used to slice the start_seq digits at a hardcoded
// offset 9 ("wal-%04u-" for 4-digit shards), so shards >= 10000 — whose
// printed prefix is wider — parsed as garbage and silently vanished from
// replay and prune.
TEST_F(WalTest, FiveDigitShardIdSegmentsAreListed) {
  WalConfig config;
  config.segment_bytes = 128;
  const std::uint32_t shard = 12345;
  WalWriter writer(dir_, shard, config);
  const std::string blob(40, 'w');
  for (int i = 0; i < 10; ++i) writer.append(payload(blob));
  writer.sync();

  const auto segments = list_wal_segments(dir_, shard);
  ASSERT_GT(segments.size(), 1u);
  EXPECT_EQ(segments.front().start_seq, 0u);
  EXPECT_EQ(replay_all(shard).size(), 10u);
  EXPECT_EQ(last_report_.next_seq, 10u);

  // Pruning runs off the same listing.
  writer.prune_below(segments.back().start_seq);
  EXPECT_LT(list_wal_segments(dir_, shard).size(), segments.size());

  // A shard whose printed id is a digit-prefix of another must not adopt its
  // neighbour's segments (the "-" separator disambiguates).
  WalWriter neighbour(dir_, 1234, config);
  neighbour.append(payload("n"));
  neighbour.sync();
  EXPECT_EQ(list_wal_segments(dir_, 1234).size(), 1u);
  EXPECT_EQ(replay_all(1234).size(), 1u);
}

// The invariant behind replay's next_seq bookkeeping: a frameless first
// segment (header only) still reports its start_seq, not zero.
TEST_F(WalTest, HeaderOnlyFirstSegmentReportsStartSeq) {
  WalConfig config;
  { WalWriter writer(dir_, 0, config, 7); }  // opens segment 7, writes nothing
  const auto frames = replay_all(0);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(last_report_.next_seq, 7u);
  EXPECT_FALSE(last_report_.truncated_tail);
}

// -- fault injection --------------------------------------------------------

TEST_F(WalTest, TornTailIsTruncatedOnReplayAndReopen) {
  WalConfig config;
  {
    WalWriter writer(dir_, 0, config);
    for (int i = 0; i < 5; ++i) writer.append(payload("frame" + std::to_string(i)));
    writer.sync();
  }
  // Tear the last frame: chop 3 bytes off the segment, as a crash mid-write
  // would.
  const auto segments = list_wal_segments(dir_, 0);
  ASSERT_EQ(segments.size(), 1u);
  const auto size = fs::file_size(segments[0].path);
  fs::resize_file(segments[0].path, size - 3);

  const auto frames = replay_all(0);
  ASSERT_EQ(frames.size(), 4u);  // the torn 5th frame is gone
  EXPECT_TRUE(last_report_.truncated_tail);
  EXPECT_EQ(last_report_.next_seq, 4u);

  // Reopening the writer repairs the tail and resumes at the cut.
  WalWriter writer(dir_, 0, config);
  EXPECT_EQ(writer.next_seq(), 4u);
  writer.append(payload("replacement"));
  writer.sync();
  const auto after = replay_all(0);
  ASSERT_EQ(after.size(), 5u);
  EXPECT_EQ(after[4].second, "replacement");
  EXPECT_FALSE(last_report_.truncated_tail);
}

TEST_F(WalTest, BitFlipStopsReplayAtLastValidFrame) {
  WalConfig config;
  {
    WalWriter writer(dir_, 0, config);
    for (int i = 0; i < 6; ++i) writer.append(payload("payload" + std::to_string(i)));
    writer.sync();
  }
  const auto segments = list_wal_segments(dir_, 0);
  ASSERT_EQ(segments.size(), 1u);
  // Flip one bit roughly two-thirds into the file: frames before the flip
  // replay, everything at or past it is untrusted.
  const auto size = fs::file_size(segments[0].path);
  const auto at = static_cast<std::streamoff>(size * 2 / 3);
  std::fstream f(segments[0].path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(at);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  f.seekp(at);
  f.write(&byte, 1);
  f.close();

  const auto frames = replay_all(0);
  EXPECT_LT(frames.size(), 6u);
  EXPECT_TRUE(last_report_.truncated_tail);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].second, "payload" + std::to_string(i));
  }
}

TEST_F(WalTest, RepairDiscardsSuffixSegments) {
  WalConfig config;
  config.segment_bytes = 128;
  {
    WalWriter writer(dir_, 0, config);
    const std::string blob(40, 'y');
    for (int i = 0; i < 20; ++i) writer.append(payload(blob));
    writer.sync();
  }
  ASSERT_GT(list_wal_segments(dir_, 0).size(), 2u);
  repair_wal(dir_, 0, 5);
  const auto frames = replay_all(0);
  EXPECT_EQ(frames.size(), 5u);
  EXPECT_EQ(last_report_.next_seq, 5u);
  // A writer opened at the repaired position continues without forking.
  WalWriter writer(dir_, 0, config, 5);
  EXPECT_EQ(writer.next_seq(), 5u);
}

TEST_F(WalTest, ExpectedSeqMismatchFailsLoudly) {
  WalConfig config;
  {
    WalWriter writer(dir_, 0, config);
    for (int i = 0; i < 4; ++i) writer.append(payload("x"));
    writer.sync();
  }
  EXPECT_THROW(WalWriter(dir_, 0, config, 2), Error);
  EXPECT_NO_THROW(WalWriter(dir_, 0, config, 4));
}

TEST_F(WalTest, PruneBelowDropsWholeCoveredSegments) {
  WalConfig config;
  config.segment_bytes = 128;
  WalWriter writer(dir_, 0, config);
  const std::string blob(40, 'z');
  for (int i = 0; i < 20; ++i) writer.append(payload(blob));
  writer.sync();
  const auto before = list_wal_segments(dir_, 0);
  ASSERT_GT(before.size(), 2u);

  const std::uint64_t cut = before[before.size() / 2].start_seq;
  writer.prune_below(cut);
  const auto after = list_wal_segments(dir_, 0);
  EXPECT_LT(after.size(), before.size());
  // Replay from the prune point is unaffected.
  const auto frames = replay_all(0, cut);
  EXPECT_EQ(last_report_.next_seq, 20u);
  EXPECT_FALSE(last_report_.truncated_tail);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.front().first, cut);
  EXPECT_EQ(frames.back().first, 19u);
}

TEST_F(WalTest, MissingDirectoryReplaysEmpty) {
  const auto report = replay_wal(dir_ / "nope", 0, 0, [](const WalFrame&) {
    FAIL() << "no frames expected";
  });
  EXPECT_EQ(report.frames_delivered, 0u);
  EXPECT_EQ(report.next_seq, 0u);
  EXPECT_FALSE(report.truncated_tail);
}

}  // namespace
}  // namespace larp::persist
