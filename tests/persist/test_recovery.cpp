// Engine-level crash-recovery integration tests: an engine restored from
// snapshot + WAL must continue the forecast sequence BIT-identically to an
// uninterrupted reference engine fed the same stream — doubles compared as
// IEEE-754 bit patterns, not within a tolerance.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "persist/io.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"
#include "serve/prediction_engine.hpp"
#include "util/rng.hpp"

namespace larp::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kSeries = 6;
constexpr std::size_t kTrain = 40;

tsdb::SeriesKey key_of(std::size_t s) {
  return {"host" + std::to_string(s / 2), "dev" + std::to_string(s % 2), "cpu"};
}

EngineConfig base_config() {
  EngineConfig config;
  config.lar.window = 5;
  config.shards = 4;
  config.threads = 1;
  config.train_samples = kTrain;
  config.audit_every = 8;  // exercise QA audits through the WAL replay too
  return config;
}

EngineConfig durable_config(const fs::path& dir) {
  EngineConfig config = base_config();
  config.durability.data_dir = dir;
  // Always-fsync so "destroy the engine" is indistinguishable from a crash:
  // every appended frame was already durable before the teardown.
  config.durability.wal.fsync = persist::FsyncPolicy::Always;
  return config;
}

/// Drives `steps` rounds of predict-all + observe-all with a deterministic
/// AR(1) stream per series, continuing from `*step_state` so two engines fed
/// via the same state object see the same values at the same offsets.
struct StreamState {
  std::vector<Rng> rngs;
  std::vector<double> level;
  StreamState() : level(kSeries, 0.0) {
    Rng parent(2007);
    for (std::size_t s = 0; s < kSeries; ++s) rngs.push_back(parent.split(s));
  }
  double sample(std::size_t s) {
    level[s] = 0.8 * level[s] + rngs[s].normal(0.0, 2.0);
    return 50.0 + level[s];
  }
};

void drive(PredictionEngine& engine, StreamState& stream, std::size_t steps,
           bool with_predict) {
  std::vector<tsdb::SeriesKey> keys;
  for (std::size_t s = 0; s < kSeries; ++s) keys.push_back(key_of(s));
  std::vector<Observation> batch(kSeries);
  for (std::size_t i = 0; i < steps; ++i) {
    if (with_predict) (void)engine.predict(keys);
    for (std::size_t s = 0; s < kSeries; ++s) {
      batch[s] = {keys[s], stream.sample(s)};
    }
    engine.observe(batch);
  }
}

/// Bit-exact comparison, treating NaN == NaN (early uncertainty is NaN).
void expect_bit_identical(const Prediction& got, const Prediction& want,
                          std::size_t series, std::size_t step) {
  EXPECT_EQ(got.ready, want.ready) << "series " << series << " step " << step;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.value),
            std::bit_cast<std::uint64_t>(want.value))
      << "series " << series << " step " << step;
  EXPECT_EQ(got.label, want.label) << "series " << series << " step " << step;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.uncertainty),
            std::bit_cast<std::uint64_t>(want.uncertainty))
      << "series " << series << " step " << step;
}

/// Feeds both engines the same post-recovery stream and asserts every
/// forecast of every series matches bit-for-bit.
void expect_identical_future(PredictionEngine& restored,
                             PredictionEngine& reference, StreamState& stream_a,
                             StreamState& stream_b, std::size_t steps) {
  std::vector<tsdb::SeriesKey> keys;
  for (std::size_t s = 0; s < kSeries; ++s) keys.push_back(key_of(s));
  std::vector<Observation> batch(kSeries);
  for (std::size_t i = 0; i < steps; ++i) {
    const auto got = restored.predict(keys);
    const auto want = reference.predict(keys);
    for (std::size_t s = 0; s < kSeries; ++s) {
      expect_bit_identical(got[s], want[s], s, i);
    }
    for (std::size_t s = 0; s < kSeries; ++s) {
      batch[s] = {keys[s], stream_a.sample(s)};
      ASSERT_EQ(batch[s].value, stream_b.sample(s));
    }
    restored.observe(batch);
    reference.observe(batch);
  }
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("larp_recovery_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// The headline contract: snapshot mid-stream, keep serving (WAL only), crash,
// restore — the restored engine and an uninterrupted reference then agree on
// every future forecast, bit for bit.
TEST_F(RecoveryTest, SnapshotPlusWalReplayIsBitIdentical) {
  StreamState stream_a;
  StreamState stream_b;
  auto reference = std::make_unique<PredictionEngine>(
      predictors::make_paper_pool(5), base_config());
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             durable_config(dir_));
    drive(durable, stream_a, kTrain + 10, /*with_predict=*/true);
    (void)durable.snapshot();
    // 17 more rounds after the snapshot live only in the WAL.
    drive(durable, stream_a, 17, /*with_predict=*/true);
  }  // "crash"
  drive(*reference, stream_b, kTrain + 10 + 17, /*with_predict=*/true);

  auto restored =
      PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  const auto restored_stats = restored->stats();
  const auto reference_stats = reference->stats();
  EXPECT_EQ(restored_stats.observations, reference_stats.observations);
  EXPECT_EQ(restored_stats.predictions, reference_stats.predictions);
  EXPECT_EQ(restored_stats.trains, reference_stats.trains);
  EXPECT_EQ(restored_stats.resolved, reference_stats.resolved);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(restored_stats.mean_squared_error),
            std::bit_cast<std::uint64_t>(reference_stats.mean_squared_error));

  expect_identical_future(*restored, *reference, stream_a, stream_b, 25);
}

// No snapshot was ever taken: recovery replays the whole log from zero.
TEST_F(RecoveryTest, WalOnlyRecoveryFromEmptySnapshotDir) {
  StreamState stream_a;
  StreamState stream_b;
  auto reference = std::make_unique<PredictionEngine>(
      predictors::make_paper_pool(5), base_config());
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             durable_config(dir_));
    drive(durable, stream_a, kTrain + 12, /*with_predict=*/true);
  }
  drive(*reference, stream_b, kTrain + 12, /*with_predict=*/true);

  ASSERT_TRUE(persist::list_snapshots(dir_).empty());
  // With no snapshot there is no stored identity: the override supplies the
  // full configuration, which must match what the crashed engine ran with.
  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir_, base_config());
  EXPECT_EQ(restored->stats().trains, reference->stats().trains);
  expect_identical_future(*restored, *reference, stream_a, stream_b, 20);
}

// Restoring an empty directory yields a fresh, working durable engine.
TEST_F(RecoveryTest, RestoreOfEmptyDirectoryStartsFresh) {
  auto engine = PredictionEngine::restore(predictors::make_paper_pool(5), dir_,
                                          base_config());
  EXPECT_EQ(engine->series_count(), 0u);
  StreamState stream;
  drive(*engine, stream, kTrain + 2, /*with_predict=*/true);
  EXPECT_EQ(engine->stats().trains, kSeries);
  EXPECT_GT(engine->snapshot(), 0u);
}

// A bit-flipped newest snapshot must be rejected; recovery falls back to the
// previous valid snapshot and replays the (longer) WAL suffix past it.
TEST_F(RecoveryTest, BitFlippedSnapshotFallsBackToPreviousValid) {
  StreamState stream_a;
  StreamState stream_b;
  auto reference = std::make_unique<PredictionEngine>(
      predictors::make_paper_pool(5), base_config());
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             durable_config(dir_));
    drive(durable, stream_a, kTrain + 5, /*with_predict=*/true);
    (void)durable.snapshot();  // epoch 1 (valid fallback)
    drive(durable, stream_a, 9, /*with_predict=*/true);
    (void)durable.snapshot();  // epoch 2 (to be corrupted)
    drive(durable, stream_a, 4, /*with_predict=*/true);
  }
  drive(*reference, stream_b, kTrain + 5 + 9 + 4, /*with_predict=*/true);

  const auto snapshots = persist::list_snapshots(dir_);
  ASSERT_EQ(snapshots.size(), 2u);
  ASSERT_EQ(snapshots.back().epoch, 2u);
  {
    std::fstream f(snapshots.back().path,
                   std::ios::in | std::ios::out | std::ios::binary);
    const auto at =
        static_cast<std::streamoff>(fs::file_size(snapshots.back().path) / 3);
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(at);
    f.write(&byte, 1);
  }

  auto restored =
      PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  EXPECT_EQ(restored->stats().observations,
            reference->stats().observations);
  expect_identical_future(*restored, *reference, stream_a, stream_b, 15);
}

// A torn WAL tail (crash mid-append) recovers to the last valid frame; the
// restored engine equals a reference that never saw the torn observations.
TEST_F(RecoveryTest, TornWalTailRecoversToLastValidFrame) {
  StreamState stream_a;
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             durable_config(dir_));
    drive(durable, stream_a, kTrain + 8, /*with_predict=*/true);
  }
  // Tear bytes off the end of every shard's newest segment.
  std::size_t torn_shards = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const auto segments = persist::list_wal_segments(dir_, s);
    if (segments.empty()) continue;
    const auto& tail = segments.back().path;
    const auto size = fs::file_size(tail);
    ASSERT_GT(size, 5u);
    fs::resize_file(tail, size - 5);
    ++torn_shards;
  }
  ASSERT_GT(torn_shards, 0u);

  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir_, base_config());
  // One torn frame per shard at most: nothing threw, state is serviceable,
  // and the repaired log accepts appends at the recovered position.
  EXPECT_EQ(restored->series_count(), kSeries);
  StreamState ignored;
  drive(*restored, ignored, 5, /*with_predict=*/true);
  restored.reset();

  // The repaired directory restores cleanly a second time.
  auto again = PredictionEngine::restore(predictors::make_paper_pool(5), dir_,
                                         base_config());
  EXPECT_EQ(again->series_count(), kSeries);
}

// Crash mid-group: with one shard, every batched observe()/predict() call
// stages one multi-frame WAL group, committed with a single write.  A tear
// landing inside such a group must recover exactly the checksum-valid frame
// prefix — asserted by restoring twice and demanding bit-identical state
// (same replay cut, same accumulated error sums) both times.
TEST_F(RecoveryTest, TornMidGroupTailRecoversValidPrefix) {
  EngineConfig config = durable_config(dir_);
  config.shards = 1;  // all kSeries frames of a batch land in one group
  StreamState stream;
  {
    PredictionEngine durable(predictors::make_paper_pool(5), config);
    drive(durable, stream, kTrain + 6, /*with_predict=*/true);
  }
  const auto count_frames = [&] {
    return persist::replay_wal(dir_, 0, 0, [](const persist::WalFrame&) {});
  };
  const auto before = count_frames();
  ASSERT_FALSE(before.truncated_tail);
  ASSERT_GT(before.next_seq, 2 * kSeries);

  // Tear into the middle of the final group: each batch commits one block
  // frame carrying kSeries ops, so chopping 60 bytes removes at least one
  // whole frame and tears another mid-frame.
  const auto segments = persist::list_wal_segments(dir_, 0);
  ASSERT_FALSE(segments.empty());
  const auto& tail = segments.back().path;
  const auto size = fs::file_size(tail);
  ASSERT_GT(size, 100u);
  fs::resize_file(tail, size - 60);

  const auto torn = count_frames();
  EXPECT_TRUE(torn.truncated_tail);
  EXPECT_LT(torn.next_seq, before.next_seq);
  EXPECT_GT(torn.next_seq, 0u);

  EngineConfig restore_config = base_config();
  restore_config.shards = 1;
  EngineStats first_stats;
  {
    auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                              dir_, restore_config);
    EXPECT_EQ(restored->series_count(), kSeries);
    first_stats = restored->stats();
    // The tear cost frames: fewer ops replayed than the run issued (each
    // block frame carries kSeries ops, so next_seq counts frames, not ops).
    EXPECT_LT(first_stats.observations + first_stats.predictions,
              2 * (kTrain + 6) * kSeries);
  }
  // The first restore repaired the torn suffix on disk; a second restore of
  // the same directory must land on the exact same prefix.
  auto again = PredictionEngine::restore(predictors::make_paper_pool(5), dir_,
                                         restore_config);
  const auto second_stats = again->stats();
  EXPECT_EQ(second_stats.observations, first_stats.observations);
  EXPECT_EQ(second_stats.predictions, first_stats.predictions);
  EXPECT_EQ(second_stats.resolved, first_stats.resolved);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(second_stats.mean_squared_error),
            std::bit_cast<std::uint64_t>(first_stats.mean_squared_error));
  // And the repaired log accepts appends at the recovered position.
  StreamState ignored;
  drive(*again, ignored, 3, /*with_predict=*/true);
}

// Crash in the middle of a background snapshot: the publication protocol
// writes snapshot-<epoch>.snap.tmp and renames only after a full fsync, so a
// kill mid-write leaves an orphaned .tmp (possibly torn) next to the
// previous retained snapshot.  Recovery must ignore the orphan, restore from
// the previous snapshot, replay the WAL past it, and match an uninterrupted
// reference bit for bit.
TEST_F(RecoveryTest, CrashDuringSnapshotFallsBackToRetained) {
  StreamState stream_a;
  StreamState stream_b;
  auto reference = std::make_unique<PredictionEngine>(
      predictors::make_paper_pool(5), base_config());
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             durable_config(dir_));
    drive(durable, stream_a, kTrain + 6, /*with_predict=*/true);
    (void)durable.snapshot();  // epoch 1: the survivor
    drive(durable, stream_a, 8, /*with_predict=*/true);
  }  // crash "during" the epoch-2 snapshot, simulated below
  drive(*reference, stream_b, kTrain + 6 + 8, /*with_predict=*/true);

  // Fabricate the orphan the killed snapshot would leave: the first half of
  // a would-be epoch-2 file (no trailing checksum, never renamed).
  const auto snapshots = persist::list_snapshots(dir_);
  ASSERT_EQ(snapshots.size(), 1u);
  std::vector<char> half;
  {
    std::ifstream in(snapshots[0].path, std::ios::binary);
    half.resize(static_cast<std::size_t>(fs::file_size(snapshots[0].path)) / 2);
    in.read(half.data(), static_cast<std::streamsize>(half.size()));
  }
  const fs::path orphan =
      dir_ / "snapshot-00000000000000000002.snap.tmp";
  {
    std::ofstream out(orphan, std::ios::binary);
    out.write(half.data(), static_cast<std::streamsize>(half.size()));
  }

  // The orphan is invisible to snapshot discovery...
  ASSERT_EQ(persist::list_snapshots(dir_).size(), 1u);
  // ...and recovery = retained snapshot + full WAL suffix, bit-identical.
  auto restored =
      PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  EXPECT_EQ(restored->stats().observations, reference->stats().observations);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(restored->stats().mean_squared_error),
            std::bit_cast<std::uint64_t>(reference->stats().mean_squared_error));
  expect_identical_future(*restored, *reference, stream_a, stream_b, 15);

  // The next snapshot reclaims the epoch the orphan squatted on (publish
  // removes a stale .tmp before writing).
  EXPECT_EQ(restored->snapshot(), 2u);
  EXPECT_EQ(persist::list_snapshots(dir_).size(), 2u);
}

// erase() is WAL-logged: a restored engine must not resurrect the series.
TEST_F(RecoveryTest, EraseSurvivesRecovery) {
  StreamState stream;
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             durable_config(dir_));
    drive(durable, stream, kTrain + 4, /*with_predict=*/true);
    EXPECT_TRUE(durable.erase(key_of(0)));
    EXPECT_FALSE(durable.erase(key_of(0)));  // second erase is a no-op
    EXPECT_EQ(durable.series_count(), kSeries - 1);
  }
  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir_, base_config());
  EXPECT_EQ(restored->series_count(), kSeries - 1);
  EXPECT_FALSE(restored->is_trained(key_of(0)));
  EXPECT_TRUE(restored->is_trained(key_of(1)));
  EXPECT_EQ(restored->stats().erases, 1u);
}

// The restore-time override contributes runtime knobs only; the snapshot's
// identity fields (window, shards, train cadence) win.
TEST_F(RecoveryTest, OverrideCannotChangeIdentityFields) {
  StreamState stream;
  {
    PredictionEngine durable(predictors::make_paper_pool(5),
                             durable_config(dir_));
    drive(durable, stream, kTrain + 2, /*with_predict=*/false);
    (void)durable.snapshot();
  }
  EngineConfig override_config = base_config();
  override_config.lar.window = 9;   // identity: must be ignored
  override_config.shards = 2;       // identity: must be ignored
  override_config.threads = 2;      // runtime: must be honored
  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir_, override_config);
  EXPECT_EQ(restored->config().lar.window, 5u);
  EXPECT_EQ(restored->config().shards, 4u);
  EXPECT_EQ(restored->config().durability.data_dir, dir_);
}

// snapshot() into the configured data_dir prunes WAL segments the snapshot
// made obsolete (whole segments only).
TEST_F(RecoveryTest, SnapshotPrunesCoveredWalSegments) {
  auto config = durable_config(dir_);
  config.durability.wal.segment_bytes = 512;  // force frequent rotation
  StreamState stream;
  {
    PredictionEngine durable(predictors::make_paper_pool(5), config);
    drive(durable, stream, kTrain + 20, /*with_predict=*/true);
    std::size_t before = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
      before += persist::list_wal_segments(dir_, s).size();
    }
    ASSERT_GT(before, 4u);  // rotation actually happened
    (void)durable.snapshot();
    std::size_t after = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
      after += persist::list_wal_segments(dir_, s).size();
    }
    EXPECT_LT(after, before);
  }
  // And the pruned directory still restores.
  auto restored =
      PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  EXPECT_EQ(restored->series_count(), kSeries);
}

// Cross-version migration tripwire (ROADMAP: "add one before the first
// format change"): a complete durable data directory — engine snapshot plus
// post-snapshot WAL frames — produced by the v1 format is committed under
// testdata/ and must keep restoring.  When the engine payload or WAL format
// evolves, either the new reader still accepts v1 (this test proves it) or
// the version constants were bumped without a migration path (this test
// fails before the release does).
TEST_F(RecoveryTest, GoldenV1EngineDirectoryStillRestores) {
  const fs::path fixture =
      fs::path(LARP_PERSIST_TESTDATA_DIR) / "engine-v1";
  ASSERT_TRUE(fs::exists(fixture)) << "missing committed fixture " << fixture;
  // Restore mutates the directory (WAL writers open, torn tails repaired),
  // so work on a copy and leave the committed fixture pristine.
  fs::copy(fixture, dir_, fs::copy_options::recursive);

  auto restored =
      PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  const auto stats = restored->stats();
  // Exact values baked in at fixture generation time (kTrain + 6 rounds,
  // snapshot, 5 more rounds that live only in the WAL).
  EXPECT_EQ(restored->series_count(), kSeries);
  EXPECT_EQ(stats.trains, kSeries);
  EXPECT_EQ(stats.observations, (kTrain + 11) * kSeries);
  EXPECT_EQ(stats.predictions, (kTrain + 11) * kSeries);
  EXPECT_EQ(restored->config().lar.window, 5u);
  EXPECT_EQ(restored->config().shards, 4u);
  // The restored engine serves: every series is past training and forecasts.
  std::vector<tsdb::SeriesKey> keys;
  for (std::size_t s = 0; s < kSeries; ++s) keys.push_back(key_of(s));
  for (const auto& p : restored->predict(keys)) EXPECT_TRUE(p.ready);
}

// The compress_payloads knob changes WAL bytes, never semantics: an engine
// recovered from a compressed log and one recovered from a raw log fed the
// same stream must forecast bit-identically forever after.
TEST_F(RecoveryTest, CompressedAndRawWalRecoverBitIdentically) {
  const fs::path comp_dir = dir_ / "comp";
  const fs::path raw_dir = dir_ / "raw";
  StreamState stream_a;
  StreamState stream_b;
  {
    PredictionEngine engine(predictors::make_paper_pool(5),
                            durable_config(comp_dir));
    drive(engine, stream_a, kTrain + 6, /*with_predict=*/true);
  }
  {
    EngineConfig raw = durable_config(raw_dir);
    raw.durability.compress_payloads = false;
    PredictionEngine engine(predictors::make_paper_pool(5), raw);
    drive(engine, stream_b, kTrain + 6, /*with_predict=*/true);
  }
  // The raw log holds one frame per op, the compressed one a frame per
  // batch — materially fewer bytes for the same record count.
  const auto dir_bytes = [](const fs::path& dir) {
    std::uintmax_t total = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".log") total += fs::file_size(e.path());
    }
    return total;
  };
  EXPECT_LT(dir_bytes(comp_dir), dir_bytes(raw_dir) / 2);

  // WAL-only directories carry no stored identity: the override must supply
  // the configuration the logs were written under.
  auto restored_comp = PredictionEngine::restore(
      predictors::make_paper_pool(5), comp_dir, durable_config(comp_dir));
  EngineConfig raw_restore = durable_config(raw_dir);
  raw_restore.durability.compress_payloads = false;
  auto restored_raw = PredictionEngine::restore(predictors::make_paper_pool(5),
                                                raw_dir, raw_restore);
  EXPECT_EQ(restored_comp->stats().observations,
            restored_raw->stats().observations);
  EXPECT_EQ(restored_comp->stats().predictions,
            restored_raw->stats().predictions);
  expect_identical_future(*restored_comp, *restored_raw, stream_a, stream_b,
                          15);
}

// A WAL-only directory cannot carry the shard count, and replaying it under
// a different one silently strands whole shard logs.  Restore must refuse
// instead of quietly losing data.
TEST_F(RecoveryTest, WalOnlyRestoreUnderWrongShardCountIsRefused) {
  StreamState stream;
  {
    PredictionEngine engine(predictors::make_paper_pool(5),
                            durable_config(dir_));  // 4 shards
    drive(engine, stream, 8, /*with_predict=*/true);
  }
  EngineConfig wrong = durable_config(dir_);
  wrong.shards = 2;
  EXPECT_THROW((void)PredictionEngine::restore(predictors::make_paper_pool(5),
                                               dir_, wrong),
               persist::CorruptData);
  wrong.shards = 8;
  EXPECT_THROW((void)PredictionEngine::restore(predictors::make_paper_pool(5),
                                               dir_, wrong),
               persist::CorruptData);
  // The matching count restores everything.
  auto restored = PredictionEngine::restore(predictors::make_paper_pool(5),
                                            dir_, durable_config(dir_));
  EXPECT_EQ(restored->stats().observations, 8 * kSeries);
}

// Same tripwire for the last pre-compression format: a v3 directory (raw
// payload sections, per-op WAL frames) written right before the v4 codec
// landed.  The v4 reader must keep accepting both the old snapshot layout
// and the legacy WAL frame format, including the mixed timeline where block
// frames start appearing after the first post-upgrade write.
TEST_F(RecoveryTest, GoldenV3EngineDirectoryStillRestores) {
  const fs::path fixture =
      fs::path(LARP_PERSIST_TESTDATA_DIR) / "engine-v3";
  ASSERT_TRUE(fs::exists(fixture)) << "missing committed fixture " << fixture;
  fs::copy(fixture, dir_, fs::copy_options::recursive);

  auto restored =
      PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  const auto stats = restored->stats();
  EXPECT_EQ(restored->series_count(), kSeries);
  EXPECT_EQ(stats.trains, kSeries);
  EXPECT_EQ(stats.observations, (kTrain + 11) * kSeries);
  EXPECT_EQ(stats.predictions, (kTrain + 11) * kSeries);
  std::vector<tsdb::SeriesKey> keys;
  for (std::size_t s = 0; s < kSeries; ++s) keys.push_back(key_of(s));
  for (const auto& p : restored->predict(keys)) EXPECT_TRUE(p.ready);

  // The post-upgrade timeline: new traffic appends COMPRESSED block frames
  // after the v3 per-op frames, and a second recovery replays the mix.
  StreamState drained;
  for (std::size_t i = 0; i < (kTrain + 11) * 1; ++i) {
    for (std::size_t s = 0; s < kSeries; ++s) (void)drained.sample(s);
  }
  drive(*restored, drained, 4, /*with_predict=*/true);
  const auto continued_stats = restored->stats();
  restored.reset();
  auto again = PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  EXPECT_EQ(again->stats().observations, continued_stats.observations);
  EXPECT_EQ(again->stats().predictions, continued_stats.predictions);
}

// And the current format: a v4 directory (compressed snapshot sections +
// block WAL frames) must restore and expose its byte accounting through
// describe_payload — the tripwire that locks today's writer output.
TEST_F(RecoveryTest, GoldenV4EngineDirectoryStillRestores) {
  const fs::path fixture =
      fs::path(LARP_PERSIST_TESTDATA_DIR) / "engine-v4";
  ASSERT_TRUE(fs::exists(fixture)) << "missing committed fixture " << fixture;
  fs::copy(fixture, dir_, fs::copy_options::recursive);

  {
    const auto loaded = persist::load_newest_valid(dir_);
    ASSERT_TRUE(loaded.has_value());
    const auto desc = PredictionEngine::describe_payload(loaded->payload);
    EXPECT_EQ(desc.payload_version, 4u);
    EXPECT_EQ(desc.shards, 4u);
    ASSERT_EQ(desc.watermarks.size(), 4u);
    ASSERT_EQ(desc.raw_bytes.size(), 4u);
    ASSERT_EQ(desc.encoded_bytes.size(), 4u);
    for (std::size_t s = 0; s < 4; ++s) {
      // Every shard held series when the fixture was cut, so compression
      // must have bought actual bytes.
      EXPECT_LT(desc.encoded_bytes[s], desc.raw_bytes[s]) << "shard " << s;
    }
  }

  auto restored =
      PredictionEngine::restore(predictors::make_paper_pool(5), dir_);
  const auto stats = restored->stats();
  EXPECT_EQ(restored->series_count(), kSeries);
  EXPECT_EQ(stats.trains, kSeries);
  EXPECT_EQ(stats.observations, (kTrain + 11) * kSeries);
  EXPECT_EQ(stats.predictions, (kTrain + 11) * kSeries);
  std::vector<tsdb::SeriesKey> keys;
  for (std::size_t s = 0; s < kSeries; ++s) keys.push_back(key_of(s));
  for (const auto& p : restored->predict(keys)) EXPECT_TRUE(p.ready);
}

// A payload from the future must be refused loudly — silently misreading a
// newer layout would corrupt instead of failing.
TEST_F(RecoveryTest, FutureEnginePayloadVersionIsRejected) {
  persist::io::Writer w;
  w.u32(99);  // far past kEnginePayloadVersion
  w.u64(0);
  persist::ensure_directory(dir_);
  persist::publish_snapshot(dir_, 1, w.bytes());
  EXPECT_THROW((void)PredictionEngine::restore(predictors::make_paper_pool(5),
                                               dir_),
               persist::CorruptData);
  const auto loaded = persist::load_newest_valid(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_THROW((void)PredictionEngine::describe_payload(loaded->payload),
               persist::CorruptData);
}

}  // namespace
}  // namespace larp::serve
