// Property tests for persist::codec — the Gorilla-style bit-packing layer
// under engine payload v4 (DESIGN.md §11).  The single invariant that
// matters is BIT-EXACT round-trip for every input: random streams, the
// adversarial values the escape hatch exists for (NaN payloads, ±Inf,
// denormals), irregular and backward timestamps, and degenerate block
// shapes (empty, single sample).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "persist/codec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::persist::codec {
namespace {

std::vector<std::byte> to_bytes(BlockWriter& w) {
  const auto span = w.bytes();
  return {span.begin(), span.end()};
}

void expect_f64_roundtrip(const std::vector<double>& xs, const char* what) {
  BlockWriter w;
  encode_f64_block(w, xs);
  const auto bytes = to_bytes(w);
  BlockReader r(bytes);
  std::vector<double> back;
  (void)decode_f64_block(r, xs.size(), back);
  ASSERT_EQ(back.size(), xs.size()) << what;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Bit pattern comparison: NaN != NaN arithmetically, and -0.0 == 0.0,
    // so value comparison would miss exactly the cases the escape covers.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(xs[i]))
        << what << " at index " << i;
  }
}

void expect_i64_roundtrip(const std::vector<std::int64_t>& xs,
                          const char* what) {
  BlockWriter w;
  encode_i64_block(w, xs);
  const auto bytes = to_bytes(w);
  BlockReader r(bytes);
  std::vector<std::int64_t> back;
  decode_i64_block(r, xs.size(), back);
  ASSERT_EQ(back.size(), xs.size()) << what;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(back[i], xs[i]) << what << " at index " << i;
  }
}

TEST(BlockStreamTest, BitsRoundTripAcrossAccumulatorBoundaries) {
  // Widths straddling the 64-bit accumulator are where a masking bug hides.
  Rng rng(11);
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BlockWriter w;
  for (int i = 0; i < 2000; ++i) {
    const auto width = static_cast<unsigned>(rng.uniform_int(1, 64));
    std::uint64_t value = rng();
    if (width < 64) value &= (1ull << width) - 1ull;
    fields.emplace_back(value, width);
    w.bits(value, width);
  }
  const auto bytes = to_bytes(w);
  BlockReader r(bytes);
  for (const auto& [value, width] : fields) {
    EXPECT_EQ(r.bits(width), value);
  }
}

TEST(BlockStreamTest, UvarintRoundTripIncludingExtremes) {
  BlockWriter w;
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, 1ull << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : values) w.uvarint(v);
  const auto bytes = to_bytes(w);
  BlockReader r(bytes);
  for (const auto v : values) EXPECT_EQ(r.uvarint(), v);
}

TEST(BlockStreamTest, ReadPastEndThrows) {
  BlockWriter w;
  w.bits(0x2A, 7);
  const auto bytes = to_bytes(w);
  BlockReader r(bytes);
  (void)r.bits(7);
  (void)r.bits(1);  // zero padding of the final byte
  EXPECT_THROW((void)r.bits(1), CorruptData);
}

TEST(ZigzagTest, RoundTripsExtremes) {
  const std::vector<std::int64_t> values = {
      0, 1, -1, 63, -64, std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (const auto v : values) EXPECT_EQ(unzigzag(zigzag(v)), v);
}

TEST(DodCodecTest, RegularCadenceCostsOneBitPerStep) {
  // 5-minute cadence: constant delta, so every post-header step is the
  // single '0' dod bucket — the whole point of delta-of-delta.
  std::vector<std::int64_t> ts;
  for (int i = 0; i < 1024; ++i) ts.push_back(1700000000 + 300 * i);
  BlockWriter w;
  encode_i64_block(w, ts);
  const auto bytes = to_bytes(w);
  // header varint + delta varint + ~1 bit per remaining step.
  EXPECT_LE(bytes.size(), 16u + 1024 / 8);
  BlockReader r(bytes);
  std::vector<std::int64_t> back;
  decode_i64_block(r, ts.size(), back);
  EXPECT_EQ(back, ts);
}

TEST(DodCodecTest, IrregularAndBackwardTimestampsRoundTrip) {
  Rng rng(22);
  std::vector<std::int64_t> ts;
  std::int64_t t = 1700000000;
  for (int i = 0; i < 512; ++i) {
    // Jittered cadence with occasional large forward leaps and BACKWARD
    // jumps (clock resets) — dod buckets must fall back, not clamp.
    t += rng.uniform_int(-600, 600);
    if (rng.bernoulli(0.05)) t -= rng.uniform_int(0, 1 << 20);
    if (rng.bernoulli(0.05)) t += rng.uniform_int(0, 1ll << 40);
    ts.push_back(t);
  }
  expect_i64_roundtrip(ts, "irregular timestamps");
}

TEST(DodCodecTest, Int64ExtremesRoundTrip) {
  expect_i64_roundtrip(
      {std::numeric_limits<std::int64_t>::min(),
       std::numeric_limits<std::int64_t>::max(),
       std::numeric_limits<std::int64_t>::min(), 0,
       std::numeric_limits<std::int64_t>::max(), -1, 1},
      "int64 extremes");
}

TEST(DodCodecTest, RandomSequencesRoundTrip) {
  Rng rng(33);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::int64_t> xs;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 300));
    for (std::size_t i = 0; i < n; ++i) {
      xs.push_back(static_cast<std::int64_t>(rng()));
    }
    expect_i64_roundtrip(xs, "random int64");
  }
}

TEST(XorCodecTest, SlowlyVaryingSeriesCompresses) {
  // The shape the codec is built for: an AR(1)-ish metric stream quantized
  // the way samplers emit it (fixed decimation, here 1/8 steps — exact in
  // binary).  Assert both exact round-trip AND that it beats raw doubles;
  // unquantized noise would leave the mantissa incompressible.
  Rng rng(44);
  std::vector<double> xs;
  double level = 50.0;
  for (int i = 0; i < 4096; ++i) {
    level = 0.95 * level + rng.normal(0.0, 0.5) + 2.5;
    xs.push_back(std::round(level * 8.0) / 8.0);
  }
  BlockWriter w;
  encode_f64_block(w, xs);
  const auto bytes = to_bytes(w);
  EXPECT_LT(bytes.size(), xs.size() * sizeof(double) / 2);
  BlockReader r(bytes);
  std::vector<double> back;
  (void)decode_f64_block(r, xs.size(), back);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(back[i], xs[i]);
}

TEST(XorCodecTest, ConstantSeriesCostsOneBitPerValue) {
  const std::vector<double> xs(2048, 42.125);
  BlockWriter w;
  encode_f64_block(w, xs);
  const auto bytes = to_bytes(w);
  // First value pays the escape, every repeat is a single '0' bit.
  EXPECT_LE(bytes.size(), 16u + 2048 / 8);
  expect_f64_roundtrip(xs, "constant series");
}

TEST(XorCodecTest, AdversarialValuesRoundTripBitExact) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double snan = std::numeric_limits<double>::signaling_NaN();
  const double payload_nan =
      std::bit_cast<double>(0x7FF8DEADBEEF1234ull);  // NaN payload bits
  const double negative_nan = std::bit_cast<double>(0xFFF8000000000001ull);
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double big_denorm = std::bit_cast<double>(0x000FFFFFFFFFFFFFull);
  expect_f64_roundtrip(
      {qnan, snan, payload_nan, negative_nan, inf, -inf, denorm, -denorm,
       big_denorm, 0.0, -0.0, 1.0, -1.0,
       std::numeric_limits<double>::max(), std::numeric_limits<double>::min(),
       std::numeric_limits<double>::lowest()},
      "adversarial values");
}

TEST(XorCodecTest, MixedNormalAndAdversarialStreamRoundTrips) {
  // The fuzz shape that caught real Gorilla implementations out: escapes
  // interleaved with compressible values, so window state churns through
  // establish/reuse/escape transitions in every order.
  Rng rng(55);
  const std::vector<double> specials = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -0.0,
      0.0};
  for (int round = 0; round < 20; ++round) {
    std::vector<double> xs;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 400));
    double level = 100.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double roll = rng.uniform();
      if (roll < 0.15) {
        xs.push_back(
            specials[static_cast<std::size_t>(rng.uniform_int(0, 5))]);
      } else if (roll < 0.25) {
        xs.push_back(std::bit_cast<double>(rng()));  // arbitrary bit pattern
      } else {
        level = 0.9 * level + rng.normal(0.0, 3.0);
        xs.push_back(level);
      }
    }
    expect_f64_roundtrip(xs, "mixed adversarial stream");
  }
}

TEST(XorCodecTest, SingleSampleAndEmptyBlocksRoundTrip) {
  expect_f64_roundtrip({}, "empty block");
  expect_f64_roundtrip({3.14159}, "single sample");
  expect_f64_roundtrip({std::numeric_limits<double>::quiet_NaN()},
                       "single NaN");
  expect_i64_roundtrip({}, "empty int block");
  expect_i64_roundtrip({-7}, "single int sample");
}

TEST(XorCodecTest, ChainStateSpansBlocks) {
  // The serving engine persists XorState mid-chain; encoding the second
  // half from saved state must decode against the same saved state.
  Rng rng(66);
  std::vector<double> xs;
  double level = 10.0;
  for (int i = 0; i < 200; ++i) {
    level += rng.normal(0.0, 1.0);
    xs.push_back(level);
  }
  XorState enc_state;
  BlockWriter first;
  for (int i = 0; i < 100; ++i) XorEncoder::put(first, enc_state, xs[i]);
  const auto first_bytes = to_bytes(first);

  // Persist the mid-chain state through the io layer, as a snapshot would.
  io::Writer w;
  enc_state.save(w);
  io::Reader r{w.bytes()};
  XorState resumed;
  resumed.load(r);

  BlockWriter second;
  for (int i = 100; i < 200; ++i) XorEncoder::put(second, resumed, xs[i]);
  const auto second_bytes = to_bytes(second);

  XorState dec_state;
  BlockReader first_r(first_bytes);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(XorDecoder::get(first_r, dec_state), xs[i]);
  }
  BlockReader second_r(second_bytes);
  for (int i = 100; i < 200; ++i) {
    EXPECT_EQ(XorDecoder::get(second_r, dec_state), xs[i]);
  }
}

TEST(XorCodecTest, CorruptStateAndStreamsAreRejected) {
  {
    io::Writer w;
    w.u64(0);
    w.u8(65);  // lead > 63
    w.u8(1);
    io::Reader r{w.bytes()};
    XorState s;
    EXPECT_THROW(s.load(r), CorruptData);
  }
  {
    // Window-reuse control bits before any window was established.
    BlockWriter w;
    w.bits(0b01u, 2);
    const auto bytes = to_bytes(w);
    BlockReader r(bytes);
    XorState s;
    EXPECT_THROW((void)XorDecoder::get(r, s), CorruptData);
  }
  {
    // lead + length overflowing 64 in the explicit window header.
    BlockWriter w;
    w.bits(0b11u, 2);
    w.bits(63, 6);  // lead = 63
    w.bits(63, 6);  // length = 64
    w.bits(0, 63);  // filler so the reader does not hit EOF first
    const auto bytes = to_bytes(w);
    BlockReader r(bytes);
    XorState s;
    EXPECT_THROW((void)XorDecoder::get(r, s), CorruptData);
  }
}

TEST(CodecFuzzTest, RandomByteStreamsNeverCrashTheDecoders) {
  // Decoders must either produce values or throw CorruptData — never read
  // out of bounds or loop forever (ASan/TSan runs of this suite are the
  // teeth; see .github/workflows/ci.yml sanitizer jobs).
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::byte> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk) b = static_cast<std::byte>(rng() & 0xFF);
    try {
      BlockReader r(junk);
      std::vector<double> out;
      (void)decode_f64_block(r, 32, out);
    } catch (const CorruptData&) {
    }
    try {
      BlockReader r(junk);
      std::vector<std::int64_t> out;
      decode_i64_block(r, 32, out);
    } catch (const CorruptData&) {
    }
  }
}

}  // namespace
}  // namespace larp::persist::codec
