// Tests for the versioned, checksummed snapshot files: atomic publication,
// total validation, fallback past corrupt files, and retention.
#include "persist/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "persist/crc32c.hpp"
#include "persist/file.hpp"

namespace larp::persist {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("larp_snap_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<std::byte> payload(const std::string& s) {
    std::vector<std::byte> out(s.size());
    std::memcpy(out.data(), s.data(), s.size());
    return out;
  }

  static std::string text(const std::vector<std::byte>& bytes) {
    return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
  }

  static void flip_bit(const fs::path& path, std::streamoff at) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(at);
    f.write(&byte, 1);
  }

  fs::path dir_;
};

TEST_F(SnapshotTest, PublishLoadRoundTrip) {
  const auto path = publish_snapshot(dir_, 7, payload("engine state"));
  const auto loaded = load_snapshot(path);
  EXPECT_EQ(loaded.epoch, 7u);
  EXPECT_EQ(loaded.version, kSnapshotFormatVersion);
  EXPECT_EQ(text(loaded.payload), "engine state");
}

TEST_F(SnapshotTest, EmptyPayloadIsValid) {
  const auto path = publish_snapshot(dir_, 1, {});
  EXPECT_TRUE(load_snapshot(path).payload.empty());
}

TEST_F(SnapshotTest, ListSortsByEpochAndIgnoresForeignFiles) {
  publish_snapshot(dir_, 3, payload("c"));
  publish_snapshot(dir_, 1, payload("a"));
  publish_snapshot(dir_, 2, payload("b"));
  std::ofstream(dir_ / "snapshot-x.snap") << "not a snapshot name";
  std::ofstream(dir_ / "readme.txt") << "ignore me";
  std::ofstream(dir_ / "snapshot-00000000000000000009.snap.tmp") << "torn tmp";
  const auto infos = list_snapshots(dir_);
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].epoch, 1u);
  EXPECT_EQ(infos[1].epoch, 2u);
  EXPECT_EQ(infos[2].epoch, 3u);
}

TEST_F(SnapshotTest, ListOfMissingDirectoryIsEmpty) {
  EXPECT_TRUE(list_snapshots(dir_ / "never_created").empty());
}

TEST_F(SnapshotTest, ListSkipsStrayNonNumericNames) {
  // Regression for the hardcoded substr(9, ...) parse: every name here
  // shares the snapshot prefix and/or suffix but is NOT a snapshot, and the
  // digits must be validated as digits end to end (mixed, signed, empty, or
  // overlong numerals all disqualify — with no throw on any of them).
  publish_snapshot(dir_, 5, payload("real"));
  std::ofstream(dir_ / "snapshot-.snap") << "empty digits";
  std::ofstream(dir_ / "snapshot-12ab34.snap") << "mixed digits";
  std::ofstream(dir_ / "snapshot--5.snap") << "signed";
  std::ofstream(dir_ / "snapshot-+7.snap") << "signed";
  std::ofstream(dir_ / "snapshot-backup.snap") << "words";
  std::ofstream(dir_ / "snapshot-99999999999999999999999999.snap")
      << "overflows u64";
  std::ofstream(dir_ / "snapshot") << "prefix only, no suffix";
  std::ofstream(dir_ / ".snap") << "suffix only";
  const auto infos = list_snapshots(dir_);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].epoch, 5u);
  // The stray files must not break recovery either: newest-valid still finds
  // the real snapshot.
  const auto loaded = load_newest_valid(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 5u);
}

// Validation is total: a flip anywhere — header, payload, or trailing
// checksum — must reject the file.
TEST_F(SnapshotTest, AnySingleBitFlipRejects) {
  const auto path =
      publish_snapshot(dir_, 1, payload("sensitive model coefficients"));
  const auto size = static_cast<std::streamoff>(fs::file_size(path));
  for (std::streamoff at = 0; at < size; at += 7) {
    flip_bit(path, at);
    EXPECT_THROW((void)load_snapshot(path), CorruptData) << "offset " << at;
    flip_bit(path, at);  // restore
  }
  EXPECT_NO_THROW((void)load_snapshot(path));
}

TEST_F(SnapshotTest, TruncatedFileRejects) {
  const auto path = publish_snapshot(dir_, 1, payload("some payload"));
  fs::resize_file(path, fs::file_size(path) - 2);
  EXPECT_THROW((void)load_snapshot(path), CorruptData);
}

TEST_F(SnapshotTest, NewestValidFallsBackPastCorruption) {
  publish_snapshot(dir_, 1, payload("oldest"));
  publish_snapshot(dir_, 2, payload("middle"));
  const auto newest = publish_snapshot(dir_, 3, payload("newest"));

  auto loaded = load_newest_valid(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 3u);

  // Corrupt the newest: recovery silently falls back one epoch.
  flip_bit(newest, static_cast<std::streamoff>(fs::file_size(newest) / 2));
  loaded = load_newest_valid(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_EQ(text(loaded->payload), "middle");
}

TEST_F(SnapshotTest, NewestValidIsEmptyWhenAllCorrupt) {
  const auto a = publish_snapshot(dir_, 1, payload("a"));
  const auto b = publish_snapshot(dir_, 2, payload("b"));
  flip_bit(a, 4);
  flip_bit(b, 4);
  EXPECT_FALSE(load_newest_valid(dir_).has_value());
  EXPECT_FALSE(load_newest_valid(dir_ / "missing").has_value());
}

// A crash between temp write and rename leaves a .tmp orphan; it must be
// invisible to every reader.
TEST_F(SnapshotTest, PartialTempFileIsIgnored) {
  publish_snapshot(dir_, 5, payload("good"));
  std::ofstream(dir_ / "snapshot-00000000000000000006.snap.tmp",
                std::ios::binary)
      << "half-written future snapshot";
  const auto infos = list_snapshots(dir_);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].epoch, 5u);
  const auto loaded = load_newest_valid(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 5u);
}

TEST_F(SnapshotTest, RetainKeepsNewestValidating) {
  for (std::uint64_t e = 1; e <= 5; ++e) {
    publish_snapshot(dir_, e, payload("epoch " + std::to_string(e)));
  }
  retain_snapshots(dir_, 2);
  const auto infos = list_snapshots(dir_);
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].epoch, 4u);
  EXPECT_EQ(infos[1].epoch, 5u);
}

// Corrupt files do not count toward the retained set — otherwise two flipped
// bits could erase every restorable snapshot.
TEST_F(SnapshotTest, RetainDoesNotCountCorruptFiles) {
  publish_snapshot(dir_, 1, payload("good old"));
  const auto b = publish_snapshot(dir_, 2, payload("bad"));
  const auto c = publish_snapshot(dir_, 3, payload("bad too"));
  flip_bit(b, 6);
  flip_bit(c, 6);
  retain_snapshots(dir_, 2);
  const auto loaded = load_newest_valid(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
}

// -- format evolution -------------------------------------------------------

// A golden v1 snapshot committed to the repo must load forever: any change
// to the container layout either bumps the format version (and keeps a v1
// reader) or it is a corruption bug this test catches before release.
TEST_F(SnapshotTest, GoldenV1FixtureStillLoads) {
  const fs::path golden =
      fs::path(LARP_PERSIST_TESTDATA_DIR) / "golden-v1.snap";
  ASSERT_TRUE(fs::exists(golden)) << "missing committed fixture " << golden;
  const auto loaded = load_snapshot(golden);
  EXPECT_EQ(loaded.version, 1u);
  EXPECT_EQ(loaded.epoch, 42u);
  EXPECT_EQ(text(loaded.payload),
            "LARPredictor golden snapshot payload (format v1)\n");
}

// A snapshot from a FUTURE format version must be rejected by the version
// gate specifically — the file below is structurally perfect (valid magic,
// size, recomputed checksum) except for version = current + 1.
TEST_F(SnapshotTest, FutureFormatVersionRejectsWithClearError) {
  const auto path = publish_snapshot(dir_, 1, payload("from the future"));
  auto contents = read_file(path);
  const std::uint32_t future = kSnapshotFormatVersion + 1;
  for (std::size_t i = 0; i < 4; ++i) {  // version u32 sits after the magic
    contents[8 + i] = static_cast<std::byte>((future >> (8 * i)) & 0xFFu);
  }
  const auto body = std::span(contents).first(contents.size() - 4);
  const std::uint32_t crc = crc32c_mask(crc32c(body));
  for (std::size_t i = 0; i < 4; ++i) {
    contents[contents.size() - 4 + i] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xFFu);
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(contents.data()),
            static_cast<std::streamsize>(contents.size()));
  }
  try {
    (void)load_snapshot(path);
    FAIL() << "a future-version snapshot must not load";
  } catch (const CorruptData& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << "rejection should name the version gate, got: " << e.what();
  }
}

TEST_F(SnapshotTest, PublicationIsAtomicOverExisting) {
  publish_snapshot(dir_, 9, payload("first"));
  publish_snapshot(dir_, 9, payload("second"));  // overwrite same epoch
  const auto loaded = load_newest_valid(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(text(loaded->payload), "second");
  // No temp orphan left behind on the happy path.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp");
  }
}

}  // namespace
}  // namespace larp::persist
