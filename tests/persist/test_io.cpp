// Tests for the persist byte-level primitives: the little-endian io
// encoder/decoder and the CRC32C checksum.
#include "persist/io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "persist/crc32c.hpp"
#include "util/rng.hpp"

namespace larp::persist {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// The canonical check vector from the iSCSI CRC32C specification.
TEST(Crc32c, MatchesKnownVectors) {
  EXPECT_EQ(crc32c(as_bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(as_bytes("")), 0x00000000u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(as_bytes(zeros)), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t state = crc32c_init();
    state = crc32c_update(state, as_bytes(data.substr(0, split)));
    state = crc32c_update(state, as_bytes(data.substr(split)));
    EXPECT_EQ(crc32c_finish(state), crc32c(as_bytes(data)));
  }
}

TEST(Crc32c, MaskRoundTrips) {
  for (std::uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, 0xE3069283u}) {
    EXPECT_EQ(crc32c_unmask(crc32c_mask(crc)), crc);
    EXPECT_NE(crc32c_mask(crc), crc);  // masking must actually change it
  }
}

TEST(IoWriter, RoundTripsEveryType) {
  io::Writer w;
  w.u8(0x7F);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");
  w.f64_span(std::vector<double>{1.5, -2.5, 0.0});
  const std::vector<std::size_t> labels{0, 7, 123456789};
  w.u64_span(labels);

  io::Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0x7F);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.f64_vector(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.u64_vector(), labels);
  EXPECT_TRUE(r.exhausted());
}

// Doubles travel as IEEE-754 bit patterns: the round trip must be
// bit-identical, not just approximately equal.
TEST(IoWriter, DoublesAreBitIdentical) {
  Rng rng(7);
  io::Writer w;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.normal(0.0, 1e12));
  values.push_back(-0.0);
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(std::numeric_limits<double>::denorm_min());
  for (double v : values) w.f64(v);
  io::Reader r{w.bytes()};
  for (double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got), std::bit_cast<std::uint64_t>(v));
  }
}

TEST(IoWriter, LittleEndianOnTheWire) {
  io::Writer w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(w.bytes()[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(w.bytes()[3]), 0x01);
}

TEST(IoWriter, PatchU64FillsReservedSlot) {
  io::Writer w;
  w.u8(0xAA);
  const auto slot = w.reserve_u64();
  w.u8(0xBB);
  w.patch_u64(slot, 0xFEEDFACEull);
  io::Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xAA);
  EXPECT_EQ(r.u64(), 0xFEEDFACEull);
  EXPECT_EQ(r.u8(), 0xBB);
}

TEST(IoReader, ThrowsOnOverrun) {
  io::Writer w;
  w.u32(1);
  io::Reader r{w.bytes()};
  EXPECT_THROW((void)r.u64(), CorruptData);
}

TEST(IoReader, ThrowsOnBadBoolean) {
  io::Writer w;
  w.u8(2);
  io::Reader r{w.bytes()};
  EXPECT_THROW((void)r.boolean(), CorruptData);
}

// A corrupt length prefix must be rejected before any allocation happens —
// this is the guard against reserving gigabytes off four flipped bytes.
TEST(IoReader, ThrowsOnImpossibleLengthPrefix) {
  io::Writer w;
  w.u64(std::numeric_limits<std::uint64_t>::max());
  {
    io::Reader r{w.bytes()};
    EXPECT_THROW((void)r.str(), CorruptData);
  }
  {
    io::Reader r{w.bytes()};
    EXPECT_THROW((void)r.f64_vector(), CorruptData);
  }
  {
    io::Reader r{w.bytes()};
    EXPECT_THROW((void)r.u64_vector(), CorruptData);
  }
}

TEST(IoWriter, ClearReusesBuffer) {
  io::Writer w;
  w.u64(1);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  w.u8(9);
  io::Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 9);
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace larp::persist
