// WalSyncer policy tests.  poll() is driven directly with an injected clock
// so backlog/deadline decisions are asserted deterministically; one smoke
// test runs the real background thread end to end.
#include "persist/wal_syncer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "persist/wal.hpp"

namespace larp::persist {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct FakeClock {
  std::shared_ptr<std::atomic<std::int64_t>> ms =
      std::make_shared<std::atomic<std::int64_t>>(0);
  [[nodiscard]] WalClock fn() const {
    auto ticks = ms;
    return [ticks] {
      return std::chrono::steady_clock::time_point{} +
             std::chrono::milliseconds(ticks->load());
    };
  }
  void advance(std::chrono::milliseconds d) { ms->fetch_add(d.count()); }
};

std::vector<std::byte> payload(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

class WalSyncerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("larp_wal_syncer_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// An Async-mode writer wired to the shared fake clock.
  std::unique_ptr<WalWriter> make_writer(std::uint32_t shard) {
    WalConfig config;
    config.fsync = FsyncPolicy::EveryN;
    config.fsync_every_n = 1 << 20;  // the policy itself must never fire
    config.mode = DurabilityMode::Async;
    config.clock = clock_.fn();
    return std::make_unique<WalWriter>(dir_, shard, config);
  }

  WalSyncer::Config syncer_config(std::size_t backlog,
                                  std::chrono::milliseconds deadline) {
    WalSyncer::Config config;
    config.backlog_frames = backlog;
    config.deadline = deadline;
    config.clock = clock_.fn();
    return config;
  }

  fs::path dir_;
  FakeClock clock_;
};

TEST_F(WalSyncerTest, PollSyncsOnBacklogThreshold) {
  auto writer = make_writer(0);
  WalSyncer syncer({writer.get()}, syncer_config(4, std::chrono::hours(1)));

  for (int i = 0; i < 3; ++i) writer->append(payload("x"));
  EXPECT_EQ(syncer.poll(), 0u);  // 3 < 4: below the backlog trigger
  EXPECT_EQ(writer->unsynced_appends(), 3u);

  writer->append(payload("x"));
  EXPECT_EQ(syncer.poll(), 1u);  // 4 >= 4: synced
  EXPECT_EQ(writer->unsynced_appends(), 0u);
  EXPECT_EQ(writer->durable_seq(), 4u);
  EXPECT_EQ(syncer.syncs_performed(), 1u);
}

TEST_F(WalSyncerTest, PollSyncsOnDeadline) {
  auto writer = make_writer(0);
  WalSyncer syncer({writer.get()}, syncer_config(1000, 50ms));

  writer->append(payload("one"));
  EXPECT_EQ(syncer.poll(), 0u);  // 1 frame, deadline not elapsed
  clock_.advance(49ms);
  EXPECT_EQ(syncer.poll(), 0u);
  clock_.advance(1ms);  // exactly the deadline since the last sync advance
  EXPECT_EQ(syncer.poll(), 1u);
  EXPECT_EQ(writer->unsynced_appends(), 0u);
}

TEST_F(WalSyncerTest, PollSkipsCleanWriters) {
  auto a = make_writer(0);
  auto b = make_writer(1);
  WalSyncer syncer({a.get(), b.get()}, syncer_config(1, 1ms));
  clock_.advance(std::chrono::hours(1));  // deadlines long past...
  EXPECT_EQ(syncer.poll(), 0u);  // ...but with zero backlog there is no work
  EXPECT_EQ(syncer.syncs_performed(), 0u);
}

TEST_F(WalSyncerTest, PollTreatsWritersIndependently) {
  auto hot = make_writer(0);
  auto warm = make_writer(1);
  auto idle = make_writer(2);
  WalSyncer syncer({hot.get(), warm.get(), idle.get()},
                   syncer_config(4, std::chrono::hours(1)));
  for (int i = 0; i < 5; ++i) hot->append(payload("h"));
  warm->append(payload("w"));
  EXPECT_EQ(syncer.poll(), 1u);  // only `hot` crossed the backlog
  EXPECT_EQ(hot->unsynced_appends(), 0u);
  EXPECT_EQ(warm->unsynced_appends(), 1u);
  EXPECT_EQ(idle->unsynced_appends(), 0u);
}

TEST_F(WalSyncerTest, FlushSyncsEveryWriterUnconditionally) {
  auto a = make_writer(0);
  auto b = make_writer(1);
  WalSyncer syncer({a.get(), b.get()},
                   syncer_config(1000, std::chrono::hours(1)));
  a->append(payload("a"));
  b->append(payload("b"));
  b->append(payload("b"));
  syncer.flush();  // neither trigger fired, flush syncs anyway
  EXPECT_EQ(a->unsynced_appends(), 0u);
  EXPECT_EQ(b->unsynced_appends(), 0u);
  EXPECT_EQ(syncer.syncs_performed(), 2u);
}

TEST_F(WalSyncerTest, TickHookRunsOnEveryPass) {
  auto writer = make_writer(0);
  int ticks = 0;
  auto config = syncer_config(1000, std::chrono::hours(1));
  config.tick = [&ticks] { ++ticks; };
  WalSyncer syncer({writer.get()}, config);
  EXPECT_EQ(syncer.poll(), 0u);
  EXPECT_EQ(syncer.poll(), 0u);
  EXPECT_EQ(ticks, 2);  // the hook runs even when no writer needs a sync
}

// End-to-end smoke with the real thread and real clock: backlog-crossing
// appends plus a notify() must become durable without any explicit sync.
TEST_F(WalSyncerTest, BackgroundThreadDrainsBacklog) {
  WalConfig wal_config;
  wal_config.fsync = FsyncPolicy::EveryN;
  wal_config.fsync_every_n = 1 << 20;
  wal_config.mode = DurabilityMode::Async;
  WalWriter writer(dir_, 0, wal_config);  // real clock on purpose

  WalSyncer::Config config;
  config.backlog_frames = 8;
  config.deadline = 5ms;
  WalSyncer syncer({&writer}, config);
  syncer.start();

  for (int i = 0; i < 32; ++i) writer.append(payload("frame"));
  syncer.notify();
  // Bounded wait, not a sleep-and-hope: the deadline pass alone must drain
  // the backlog within the timeout even if the notify was consumed early.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (writer.unsynced_appends() > 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(writer.unsynced_appends(), 0u);
  EXPECT_EQ(writer.durable_seq(), 32u);
  EXPECT_GE(syncer.syncs_performed(), 1u);
  syncer.stop();
  syncer.stop();  // idempotent
}

}  // namespace
}  // namespace larp::persist
