// Behavior tests for streaming WAL replication: the WalTailer position
// reader, follower engine invariants, and full leader/follower convergence
// over loopback TCP — including the two chaos cases the subsystem exists to
// survive (follower killed mid-stream, leader torn mid-group by a write
// fault) and the staleness bound on follower reads.
//
// The convergence oracle is bit-identity: once a follower's position covers
// the leader's, both engines forecast the same keys and every Prediction
// field must match to the last bit (compared through std::bit_cast, so NaN
// payloads count too).  Replication ships the leader's WAL bytes verbatim
// and the follower replays them through the same deterministic code path as
// crash recovery, so anything weaker than bit-identity is a bug.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "persist/file.hpp"
#include "persist/wal.hpp"
#include "predictors/pool.hpp"
#include "replication/log.hpp"
#include "replication/replica.hpp"
#include "replication/server.hpp"
#include "serve/prediction_engine.hpp"
#include "util/error.hpp"

namespace larp::replication {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

fs::path test_dir(const char* tag) {
  return fs::path(::testing::TempDir()) /
         ("larp_repl_" +
          std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
          "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name() +
          "_" + tag);
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

// ---------------------------------------------------------------------------
// WalTailer
// ---------------------------------------------------------------------------

class WalTailerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test_dir("wal");
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(WalTailerTest, DeliversCommittedFramesAndWaits) {
  persist::WalWriter writer(dir_, 0, persist::WalConfig{}, 0);
  for (int i = 0; i < 5; ++i) {
    writer.append(bytes_of("frame-" + std::to_string(i)));
  }

  WalTailer tailer(dir_, 0, 0);
  std::vector<TailedFrame> frames;
  ASSERT_EQ(tailer.poll(frames, 1u << 20), TailStatus::kFrames);
  ASSERT_EQ(frames.size(), 5u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].seq, i);
    const std::string expect = "frame-" + std::to_string(i);
    ASSERT_EQ(frames[i].payload.size(), expect.size());
    EXPECT_EQ(std::memcmp(frames[i].payload.data(), expect.data(),
                          expect.size()),
              0);
  }
  EXPECT_EQ(tailer.position(), 5u);

  // Nothing new: the tailer holds its position and keeps polling.
  EXPECT_EQ(tailer.poll(frames, 1u << 20), TailStatus::kUpToDate);
  EXPECT_EQ(tailer.position(), 5u);

  // A live append shows up on the next poll.
  writer.append(bytes_of("frame-5"));
  ASSERT_EQ(tailer.poll(frames, 1u << 20), TailStatus::kFrames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].seq, 5u);
}

TEST_F(WalTailerTest, FollowsSegmentRotation) {
  persist::WalConfig config;
  config.segment_bytes = 64;  // force rotation every couple of frames
  persist::WalWriter writer(dir_, 0, config, 0);
  for (int i = 0; i < 20; ++i) {
    writer.append(bytes_of("rotating-payload-" + std::to_string(i)));
  }
  ASSERT_GT(persist::list_wal_segments(dir_, 0).size(), 2u);

  WalTailer tailer(dir_, 0, 0);
  std::vector<TailedFrame> frames;
  std::uint64_t next = 0;
  while (tailer.poll(frames, 1u << 20) == TailStatus::kFrames) {
    for (const auto& f : frames) EXPECT_EQ(f.seq, next++);
  }
  EXPECT_EQ(next, 20u);
  EXPECT_EQ(tailer.position(), 20u);
}

TEST_F(WalTailerTest, RespectsByteBudgetAcrossPolls) {
  persist::WalWriter writer(dir_, 0, persist::WalConfig{}, 0);
  for (int i = 0; i < 10; ++i) {
    writer.append(bytes_of(std::string(10, 'x')));
  }

  WalTailer tailer(dir_, 0, 0);
  std::vector<TailedFrame> frames;
  std::uint64_t delivered = 0;
  int polls = 0;
  while (tailer.poll(frames, 25) == TailStatus::kFrames) {
    EXPECT_FALSE(frames.empty());
    EXPECT_LE(frames.size(), 3u);  // 25-byte budget over 10-byte payloads
    delivered += frames.size();
    ++polls;
  }
  EXPECT_EQ(delivered, 10u);
  EXPECT_GE(polls, 4);
}

TEST_F(WalTailerTest, PrunedPositionNeedsBootstrap) {
  persist::WalConfig config;
  config.segment_bytes = 64;
  persist::WalWriter writer(dir_, 0, config, 0);
  for (int i = 0; i < 20; ++i) {
    writer.append(bytes_of("rotating-payload-" + std::to_string(i)));
  }
  writer.prune_below(15);
  ASSERT_GT(persist::list_wal_segments(dir_, 0).front().start_seq, 0u);

  WalTailer stale(dir_, 0, 0);
  std::vector<TailedFrame> frames;
  EXPECT_EQ(stale.poll(frames, 1u << 20), TailStatus::kNeedsBootstrap);

  // A position inside the retained range still reads fine.
  const std::uint64_t oldest =
      persist::list_wal_segments(dir_, 0).front().start_seq;
  WalTailer live(dir_, 0, oldest);
  std::uint64_t next = oldest;
  while (live.poll(frames, 1u << 20) == TailStatus::kFrames) {
    for (const auto& f : frames) EXPECT_EQ(f.seq, next++);
  }
  EXPECT_EQ(next, 20u);
}

TEST_F(WalTailerTest, TornTailReadsAsUpToDate) {
  persist::WalWriter writer(dir_, 0, persist::WalConfig{}, 0);
  for (int i = 0; i < 4; ++i) {
    writer.append(bytes_of("frame-" + std::to_string(i)));
  }
  // Fake an append in flight: garbage bytes at the end of the newest
  // segment that cannot parse as a complete frame.
  const auto segments = persist::list_wal_segments(dir_, 0);
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream torn(segments.back().path,
                       std::ios::binary | std::ios::app);
    const char junk[] = {0x40, 0x00, 0x00, 0x00, 0x13, 0x37};
    torn.write(junk, sizeof junk);
  }

  WalTailer tailer(dir_, 0, 0);
  std::vector<TailedFrame> frames;
  ASSERT_EQ(tailer.poll(frames, 1u << 20), TailStatus::kFrames);
  EXPECT_EQ(frames.size(), 4u);
  // The torn suffix is "no more frames yet", not corruption: the tailer
  // holds position 4 and waits for the writer (or repair) to finish it.
  EXPECT_EQ(tailer.poll(frames, 1u << 20), TailStatus::kUpToDate);
  EXPECT_EQ(tailer.position(), 4u);
}

TEST_F(WalTailerTest, DamageMidSequenceIsCorrupt) {
  persist::WalConfig config;
  config.segment_bytes = 64;
  persist::WalWriter writer(dir_, 0, config, 0);
  for (int i = 0; i < 20; ++i) {
    writer.append(bytes_of("rotating-payload-" + std::to_string(i)));
  }
  const auto segments = persist::list_wal_segments(dir_, 0);
  ASSERT_GT(segments.size(), 2u);

  // Flip one payload byte in the FIRST segment: a successor exists, so this
  // cannot be a tail in progress — it must surface as corruption.
  {
    std::fstream f(segments.front().path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(24 + 16 + 2);  // segment header + first frame header + 2
    char b = 0;
    f.seekg(24 + 16 + 2);
    f.get(b);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(24 + 16 + 2);
    f.put(b);
  }

  WalTailer tailer(dir_, 0, 0);
  std::vector<TailedFrame> frames;
  EXPECT_EQ(tailer.poll(frames, 1u << 20), TailStatus::kCorrupt);
  EXPECT_EQ(tailer.position(), 0u);
}

TEST(ReplicationLog, CoversAndTotalFrames) {
  const std::vector<std::uint64_t> a = {3, 7};
  const std::vector<std::uint64_t> b = {3, 5};
  const std::vector<std::uint64_t> c = {4, 4};
  EXPECT_TRUE(covers(a, b));
  EXPECT_TRUE(covers(a, a));
  EXPECT_FALSE(covers(b, a));
  EXPECT_FALSE(covers(a, c));  // mixed: ahead on one shard, behind on other
  EXPECT_FALSE(covers(c, a));
  const std::vector<std::uint64_t> short_table = {10};
  EXPECT_FALSE(covers(a, short_table));  // size mismatch never covers
  EXPECT_FALSE(covers(short_table, a));
  EXPECT_EQ(total_frames(a), 10u);
  EXPECT_EQ(total_frames({}), 0u);
}

// ---------------------------------------------------------------------------
// Leader/follower engines over loopback
// ---------------------------------------------------------------------------

serve::EngineConfig tiny_config() {
  serve::EngineConfig config;
  config.lar.window = 5;
  config.shards = 2;
  config.threads = 1;
  config.train_samples = 12;
  config.audit_every = 0;
  return config;
}

tsdb::SeriesKey key_of(std::size_t s) {
  return {"vm" + std::to_string(s), "dev0", "cpu"};
}

constexpr std::size_t kSeries = 8;

// Hook state for the leader-crash test (file-scope: hooks are plain
// function pointers).  While armed, writes transfer at most the remaining
// byte budget and then hard-fail with EIO — a crash mid group-commit that
// leaves a torn frame on disk.
std::atomic<bool> g_fault_armed{false};
std::atomic<long long> g_fault_budget{0};

ssize_t torn_write_hook(int fd, const void* buf, std::size_t count) {
  if (!g_fault_armed.load()) return ::write(fd, buf, count);
  const long long left = g_fault_budget.load();
  if (left <= 0) {
    errno = EIO;
    return -1;
  }
  const std::size_t n =
      std::min(count, static_cast<std::size_t>(left));
  const ssize_t wrote = ::write(fd, buf, n);
  if (wrote > 0) g_fault_budget.fetch_sub(wrote);
  return wrote;
}

int passthrough_sync_hook(int fd) { return ::fdatasync(fd); }

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    leader_dir_ = test_dir("leader");
    follower_dir_ = test_dir("follower");
    fs::remove_all(leader_dir_);
    fs::remove_all(follower_dir_);

    serve::EngineConfig config = tiny_config();
    config.durability.data_dir = leader_dir_;
    leader_ = std::make_unique<serve::PredictionEngine>(
        predictors::make_paper_pool(5), config);
    start_repl_server();
  }

  void TearDown() override {
    replica_.reset();
    repl_.reset();
    leader_.reset();
    fs::remove_all(leader_dir_);
    fs::remove_all(follower_dir_);
  }

  void start_repl_server() {
    ReplicationServerConfig config;
    config.heartbeat_interval = 20ms;
    config.poll_interval = 2ms;
    repl_ = std::make_unique<ReplicationServer>(*leader_, config);
    repl_->start();
  }

  std::unique_ptr<Replica> make_replica() {
    ReplicaConfig config;
    config.leader_port = repl_->port();
    config.data_dir = follower_dir_;
    config.engine.threads = 1;
    config.ack_interval = 5ms;
    config.reconnect_backoff = 20ms;
    return std::make_unique<Replica>(predictors::make_paper_pool(5),
                                     std::move(config));
  }

  /// Deterministic traffic: `rounds` observations per series, continuing
  /// from wherever previous feeds left off.
  void feed(std::size_t rounds) {
    std::vector<serve::Observation> batch(kSeries);
    for (std::size_t r = 0; r < rounds; ++r, ++tick_) {
      for (std::size_t s = 0; s < kSeries; ++s) {
        batch[s].key = key_of(s);
        batch[s].value =
            static_cast<double>(tick_) * 0.25 + static_cast<double>(s);
      }
      leader_->observe(batch);
    }
  }

  /// Blocks until the follower's position covers the leader's current one.
  [[nodiscard]] bool wait_covered(serve::PredictionEngine& follower,
                                  std::chrono::milliseconds timeout = 5s) {
    const auto target = leader_->wal_positions();
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (covers(follower.wal_positions(), target)) return true;
      std::this_thread::sleep_for(2ms);
    }
    return false;
  }

  static void expect_bit_identical(const serve::Prediction& a,
                                   const serve::Prediction& b) {
    EXPECT_EQ(a.ready, b.ready);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.value),
              std::bit_cast<std::uint64_t>(b.value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.uncertainty),
              std::bit_cast<std::uint64_t>(b.uncertainty));
  }

  /// Forecast every series on both engines and demand bit-identity.  The
  /// leader predicts first (the prediction itself appends kWalPredict
  /// frames), then the follower must cover that position before its
  /// read-only peek of the same keys.
  void expect_identical_forecasts(serve::PredictionEngine& follower) {
    std::vector<tsdb::SeriesKey> keys(kSeries);
    for (std::size_t s = 0; s < kSeries; ++s) keys[s] = key_of(s);
    const auto from_leader = leader_->predict(keys);
    ASSERT_TRUE(wait_covered(follower));
    std::vector<serve::Prediction> from_follower;
    follower.predict_into(keys, from_follower);
    ASSERT_EQ(from_follower.size(), from_leader.size());
    for (std::size_t s = 0; s < kSeries; ++s) {
      SCOPED_TRACE("series " + std::to_string(s));
      expect_bit_identical(from_leader[s], from_follower[s]);
    }
  }

  fs::path leader_dir_;
  fs::path follower_dir_;
  std::unique_ptr<serve::PredictionEngine> leader_;
  std::unique_ptr<ReplicationServer> repl_;
  std::unique_ptr<Replica> replica_;
  std::uint64_t tick_ = 0;
};

TEST_F(ReplicationTest, BootstrapConvergeBitIdenticalForecasts) {
  feed(16);  // past train_samples: forecasts are ready

  replica_ = make_replica();
  replica_->start();
  serve::PredictionEngine* follower = replica_->wait_until_ready(10s);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(replica_->stats().bootstraps, 1u);
  EXPECT_EQ(repl_->stats().snapshots_shipped, 1u);

  feed(4);  // live frames on top of the bootstrap snapshot
  expect_identical_forecasts(*follower);

  const auto stats = follower->stats();
  EXPECT_GT(stats.replicated_frames, 0u);
  EXPECT_EQ(stats.series, kSeries);

  // Heartbeats the follower has covered drive the staleness clock: the lag
  // gauge must come down from "never confirmed" to something recent.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline &&
         follower->stats().replication_lag_seconds > 1.0) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_LT(follower->stats().replication_lag_seconds, 1.0);
  EXPECT_TRUE(follower->stats().replication_fresh);
}

// WAL payloads are opaque to replication: the default leader above streams
// compressed block frames (every test here relays them), and a leader with
// compression off streams legacy per-op frames over the same wire — the
// follower applies either without knowing which it got.
TEST_F(ReplicationTest, RawFrameLeaderStreamsTransparently) {
  repl_.reset();
  leader_.reset();
  fs::remove_all(leader_dir_);
  serve::EngineConfig config = tiny_config();
  config.durability.data_dir = leader_dir_;
  config.durability.compress_payloads = false;
  leader_ = std::make_unique<serve::PredictionEngine>(
      predictors::make_paper_pool(5), config);
  start_repl_server();

  feed(16);
  replica_ = make_replica();
  replica_->start();
  serve::PredictionEngine* follower = replica_->wait_until_ready(10s);
  ASSERT_NE(follower, nullptr);
  feed(4);
  expect_identical_forecasts(*follower);
  EXPECT_GT(follower->stats().replicated_frames, 0u);
}

TEST_F(ReplicationTest, FollowerKilledMidStreamResumesWithoutRebootstrap) {
  feed(16);
  replica_ = make_replica();
  replica_->start();
  ASSERT_NE(replica_->wait_until_ready(10s), nullptr);
  ASSERT_TRUE(wait_covered(*replica_->engine()));

  // Kill the follower in the middle of a live stream: a feeder keeps the
  // leader appending while the replica is torn down mid-flight.
  std::atomic<bool> feeding{true};
  std::thread feeder([&] {
    while (feeding.load()) {
      feed(1);
      std::this_thread::sleep_for(1ms);
    }
  });
  std::this_thread::sleep_for(20ms);
  replica_.reset();  // SIGKILL equivalent minus the process boundary
  std::this_thread::sleep_for(20ms);
  feeding = false;
  feeder.join();

  // Restart over the same directory: the replica restores locally and
  // resumes the stream from its acked position — no snapshot re-ship.
  replica_ = make_replica();
  replica_->start();
  serve::PredictionEngine* follower = replica_->wait_until_ready(10s);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(replica_->stats().bootstraps, 0u);

  feed(4);
  expect_identical_forecasts(*follower);
  EXPECT_EQ(repl_->stats().snapshots_shipped, 1u);  // bootstrap only, once
  EXPECT_GE(repl_->stats().sessions_total, 2u);
}

TEST_F(ReplicationTest, LeaderTornMidGroupRecoversAndReconverges) {
  feed(16);
  replica_ = make_replica();
  replica_->start();
  ASSERT_NE(replica_->wait_until_ready(10s), nullptr);
  ASSERT_TRUE(wait_covered(*replica_->engine()));
  replica_.reset();  // follower down before the leader "crashes"

  // Crash the leader mid group-commit: the hook lets ~30 bytes of the next
  // WAL group reach disk, then fails hard.  observe() surfaces the failure;
  // the torn frame is exactly what a kill -9 would have left.
  {
    persist::testing::FaultInjectionGuard guard(torn_write_hook,
                                               passthrough_sync_hook);
    g_fault_budget = 30;
    g_fault_armed = true;
    EXPECT_THROW(feed(1), larp::Error);
    g_fault_armed = false;
  }
  repl_->stop();
  repl_.reset();
  const auto positions_at_crash = leader_->wal_positions();
  leader_.reset();  // destructor flush syncs the torn bytes; must not throw

  // Restore: recovery repairs the torn suffix, so the repaired log is a
  // prefix of what the follower may have seen — never behind it.
  serve::EngineConfig config = tiny_config();
  leader_ = serve::PredictionEngine::restore(predictors::make_paper_pool(5),
                                             leader_dir_, config);
  ASSERT_TRUE(covers(positions_at_crash, leader_->wal_positions()));
  start_repl_server();  // fresh ephemeral port

  // The follower restarts against the restored leader and reconverges.
  replica_ = make_replica();
  replica_->start();
  serve::PredictionEngine* follower = replica_->wait_until_ready(10s);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(replica_->stats().bootstraps, 0u);

  feed(6);
  expect_identical_forecasts(*follower);
}

// ---------------------------------------------------------------------------
// Follower engine invariants (no network)
// ---------------------------------------------------------------------------

TEST(FollowerEngine, RejectsLocalMutation) {
  serve::EngineConfig config = tiny_config();
  config.role = serve::EngineRole::kFollower;
  serve::PredictionEngine follower(predictors::make_paper_pool(5), config);
  EXPECT_THROW(follower.observe(key_of(0), 1.0), StateError);
  EXPECT_THROW((void)follower.erase(key_of(0)), StateError);
}

TEST(FollowerEngine, RejectsSequenceGaps) {
  const fs::path dir = test_dir("gap");
  fs::remove_all(dir);
  serve::EngineConfig config = tiny_config();
  config.durability.data_dir = dir;
  {
    serve::PredictionEngine leader(predictors::make_paper_pool(5), config);
    for (int i = 0; i < 4; ++i) leader.observe(key_of(0), 1.0 + i);
  }
  // Every shard has a segment file from engine startup; the single series
  // landed in exactly one of them — probe both and tail the one with frames.
  std::uint32_t shard = 0;
  {
    std::vector<TailedFrame> probe;
    for (std::uint32_t s = 0; s < 2; ++s) {
      WalTailer t(dir, s, 0);
      if (t.poll(probe, 1u << 20) == TailStatus::kFrames) {
        shard = s;
        break;
      }
    }
  }
  WalTailer tailer(dir, shard, 0);  // outlives `tailed` (payloads borrow it)
  std::vector<TailedFrame> tailed;
  ASSERT_EQ(tailer.poll(tailed, 1u << 20), TailStatus::kFrames);
  ASSERT_GE(tailed.size(), 2u);

  serve::EngineConfig follower_config = tiny_config();
  follower_config.role = serve::EngineRole::kFollower;
  serve::PredictionEngine follower(predictors::make_paper_pool(5),
                                   follower_config);
  // Opening with frame seq=1 while the shard expects 0 is a gap.
  const serve::ReplicatedFrame out_of_order[] = {
      {tailed[1].seq, tailed[1].payload}};
  EXPECT_THROW(follower.replicate_frames(shard, out_of_order), StateError);

  // In order applies cleanly and advances the shard position.
  const serve::ReplicatedFrame in_order[] = {{tailed[0].seq,
                                              tailed[0].payload},
                                             {tailed[1].seq,
                                              tailed[1].payload}};
  follower.replicate_frames(shard, in_order);
  EXPECT_EQ(follower.wal_positions()[shard], 2u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Staleness-bounded reads
// ---------------------------------------------------------------------------

TEST(StalenessBoundedReads, LocalAndOverTheWire) {
  serve::EngineConfig config = tiny_config();
  config.role = serve::EngineRole::kFollower;
  config.max_staleness = 50ms;
  serve::PredictionEngine follower(predictors::make_paper_pool(5), config);
  const std::vector<tsdb::SeriesKey> keys = {key_of(0)};
  std::vector<serve::Prediction> out;

  // Never confirmed caught-up: every bounded read refuses.
  EXPECT_THROW(follower.predict_into(keys, out), serve::StaleRead);
  EXPECT_FALSE(follower.stats().replication_fresh);

  follower.note_caught_up();
  EXPECT_NO_THROW(follower.predict_into(keys, out));
  EXPECT_TRUE(follower.stats().replication_fresh);

  std::this_thread::sleep_for(80ms);  // outlive the 50ms bound
  EXPECT_THROW(follower.predict_into(keys, out), serve::StaleRead);
  EXPECT_FALSE(follower.stats().replication_fresh);

  // The wire maps StaleRead onto ErrorCode::kStale so a remote reader can
  // tell "too stale here, try another replica" from a hard failure.
  net::ServerConfig server_config;
  net::Server server(follower, server_config);
  server.start();
  net::Client client("127.0.0.1", server.port());
  try {
    client.predict(keys, out);
    FAIL() << "stale read served over the wire";
  } catch (const net::ServerError& e) {
    EXPECT_EQ(e.code(), net::ErrorCode::kStale);
  }
  follower.note_caught_up();
  EXPECT_NO_THROW(client.predict(keys, out));
  server.stop();
}

}  // namespace
}  // namespace larp::replication
