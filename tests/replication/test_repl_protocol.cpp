// Replication wire-format tests: committed golden frames (byte-for-byte,
// including the masked CRC32C), encode/decode round trips, and rejection of
// truncated or corrupt payloads.  These frame layouts are protocol surface
// shared between leader and follower builds — any byte-level change breaks
// live replication streams and must trip here first.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/protocol.hpp"
#include "persist/crc32c.hpp"
#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::net {
namespace {

using persist::io::Reader;
using persist::io::Writer;

std::vector<std::byte> frame_of(const Writer& body) {
  std::vector<std::byte> out;
  append_frame(out, body.bytes());
  return out;
}

void push_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void expect_frame_bytes(const std::vector<std::byte>& frame,
                        const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> expected;
  push_u32(expected, static_cast<std::uint32_t>(body.size()));
  push_u32(expected, persist::crc32c_mask(persist::crc32c(
                         std::as_bytes(std::span(body)))));
  expected.insert(expected.end(), body.begin(), body.end());
  ASSERT_EQ(frame.size(), expected.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(std::to_integer<std::uint8_t>(frame[i]), expected[i])
        << "byte " << i;
  }
}

// -- golden frames ----------------------------------------------------------

// Hello: [type=0x10][id][proto u32][count u64][positions u64...].
TEST(ReplProtocol, GoldenHelloFrameBytes) {
  Writer body;
  const std::uint64_t positions[] = {7, 9};
  encode_repl_hello(body, 0x0102030405060708ull, kReplProtocolVersion,
                    positions);

  std::vector<std::uint8_t> expected_body = {0x10};
  push_u64(expected_body, 0x0102030405060708ull);
  push_u32(expected_body, 1);  // kReplProtocolVersion, pinned
  push_u64(expected_body, 2);
  push_u64(expected_body, 7);
  push_u64(expected_body, 9);
  expect_frame_bytes(frame_of(body), expected_body);
}

// The masked CRC literal itself, pinned: a polynomial or masking change
// would recompute consistently in the layout test above, so pin the exact
// value today's implementation produces.
TEST(ReplProtocol, GoldenHelloFrameCrcPinned) {
  Writer body;
  const std::uint64_t positions[] = {7, 9};
  encode_repl_hello(body, 0x0102030405060708ull, kReplProtocolVersion,
                    positions);
  EXPECT_EQ(persist::crc32c_mask(persist::crc32c(body.bytes())), 0xD555741Du);
}

// Ack: [type=0x11][id][count u64][positions u64...] — a bare position table.
TEST(ReplProtocol, GoldenAckFrameBytes) {
  Writer body;
  const std::uint64_t positions[] = {1, 0, 42};
  encode_repl_ack(body, 5, positions);

  std::vector<std::uint8_t> expected_body = {0x11};
  push_u64(expected_body, 5);
  push_u64(expected_body, 3);
  push_u64(expected_body, 1);
  push_u64(expected_body, 0);
  push_u64(expected_body, 42);
  expect_frame_bytes(frame_of(body), expected_body);
}

// SnapshotChunk: [0x90][id][epoch][total][offset][len u64][data...][last u8].
TEST(ReplProtocol, GoldenSnapshotChunkFrameBytes) {
  Writer body;
  const std::uint8_t data[] = {0xAA, 0xBB, 0xCC};
  encode_repl_snapshot_chunk(body, 2, /*epoch=*/4, /*total_bytes=*/10,
                             /*offset=*/7, std::as_bytes(std::span(data)),
                             /*last=*/true);

  std::vector<std::uint8_t> expected_body = {0x90};
  push_u64(expected_body, 2);
  push_u64(expected_body, 4);
  push_u64(expected_body, 10);
  push_u64(expected_body, 7);
  push_u64(expected_body, 3);
  expected_body.insert(expected_body.end(), {0xAA, 0xBB, 0xCC});
  expected_body.push_back(1);
  expect_frame_bytes(frame_of(body), expected_body);
}

// Frames: [0x91][id][shard u32][count u64] then per frame [seq][len][bytes].
TEST(ReplProtocol, GoldenFramesFrameBytes) {
  Writer body;
  const std::uint8_t payload[] = {0x01, 0x02, 0x03, 0x04, 0x05,
                                  0x06, 0x07, 0x08, 0x09};
  const ReplFrame frames[] = {{17, std::as_bytes(std::span(payload))}};
  encode_repl_frames(body, 3, /*shard=*/2, frames);

  std::vector<std::uint8_t> expected_body = {0x91};
  push_u64(expected_body, 3);
  push_u32(expected_body, 2);
  push_u64(expected_body, 1);
  push_u64(expected_body, 17);
  push_u64(expected_body, 9);
  expected_body.insert(expected_body.end(), std::begin(payload),
                       std::end(payload));
  expect_frame_bytes(frame_of(body), expected_body);
}

// Heartbeat: [0x92][id][leader_unix_ms u64][count u64][positions u64...].
TEST(ReplProtocol, GoldenHeartbeatFrameBytes) {
  Writer body;
  const std::uint64_t positions[] = {100};
  encode_repl_heartbeat(body, 9, /*leader_unix_ms=*/123456789, positions);

  std::vector<std::uint8_t> expected_body = {0x92};
  push_u64(expected_body, 9);
  push_u64(expected_body, 123456789);
  push_u64(expected_body, 1);
  push_u64(expected_body, 100);
  expect_frame_bytes(frame_of(body), expected_body);
}

// -- round trips ------------------------------------------------------------

TEST(ReplProtocol, HelloRoundTrip) {
  Writer body;
  const std::uint64_t positions[] = {0, 3, 99, ~0ull};
  encode_repl_hello(body, 77, kReplProtocolVersion, positions);

  Reader r(body.bytes());
  const FrameHeader h = decode_header(r);
  EXPECT_EQ(h.type, MsgType::kReplHello);
  EXPECT_EQ(h.id, 77u);
  const ReplHello hello = decode_repl_hello(r);
  EXPECT_EQ(hello.proto_version, kReplProtocolVersion);
  ASSERT_EQ(hello.positions.size(), 4u);
  EXPECT_EQ(hello.positions[2], 99u);
  EXPECT_EQ(hello.positions[3], ~0ull);
}

TEST(ReplProtocol, EmptyHelloMeansBootstrap) {
  Writer body;
  encode_repl_hello(body, 1, kReplProtocolVersion, {});
  Reader r(body.bytes());
  (void)decode_header(r);
  EXPECT_TRUE(decode_repl_hello(r).positions.empty());
}

TEST(ReplProtocol, AckRoundTrip) {
  Writer body;
  const std::uint64_t positions[] = {5, 6};
  encode_repl_ack(body, 8, positions);
  Reader r(body.bytes());
  EXPECT_EQ(decode_header(r).type, MsgType::kReplAck);
  const auto acked = decode_repl_ack(r);
  ASSERT_EQ(acked.size(), 2u);
  EXPECT_EQ(acked[0], 5u);
  EXPECT_EQ(acked[1], 6u);
}

TEST(ReplProtocol, SnapshotChunkRoundTrip) {
  Writer body;
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i & 0xFF);
  }
  encode_repl_snapshot_chunk(body, 11, 3, 5000, 2000, data, false);
  Reader r(body.bytes());
  EXPECT_EQ(decode_header(r).type, MsgType::kReplSnapshotChunk);
  const ReplSnapshotChunk chunk = decode_repl_snapshot_chunk(r);
  EXPECT_EQ(chunk.epoch, 3u);
  EXPECT_EQ(chunk.total_bytes, 5000u);
  EXPECT_EQ(chunk.offset, 2000u);
  EXPECT_FALSE(chunk.last);
  ASSERT_EQ(chunk.data.size(), data.size());
  EXPECT_EQ(chunk.data[999], static_cast<std::byte>(999 & 0xFF));
}

TEST(ReplProtocol, FramesRoundTrip) {
  Writer body;
  const std::uint8_t p1[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::uint8_t p2[] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  const ReplFrame frames[] = {{40, std::as_bytes(std::span(p1))},
                              {41, std::as_bytes(std::span(p2))}};
  encode_repl_frames(body, 6, 3, frames);

  Reader r(body.bytes());
  EXPECT_EQ(decode_header(r).type, MsgType::kReplFrames);
  std::vector<ReplFrame> out;
  EXPECT_EQ(decode_repl_frames(r, out), 3u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 40u);
  EXPECT_EQ(out[1].seq, 41u);
  ASSERT_EQ(out[1].payload.size(), 10u);
  EXPECT_EQ(out[1].payload[0], static_cast<std::byte>(9));
}

TEST(ReplProtocol, HeartbeatRoundTrip) {
  Writer body;
  const std::uint64_t positions[] = {12, 0};
  encode_repl_heartbeat(body, 2, 999, positions);
  Reader r(body.bytes());
  EXPECT_EQ(decode_header(r).type, MsgType::kReplHeartbeat);
  const ReplHeartbeat hb = decode_repl_heartbeat(r);
  EXPECT_EQ(hb.leader_unix_ms, 999u);
  ASSERT_EQ(hb.positions.size(), 2u);
  EXPECT_EQ(hb.positions[0], 12u);
}

// -- rejection --------------------------------------------------------------

// Every decoder must reject a body truncated at any byte: a reader running
// out of bytes mid-field throws CorruptData, never reads past the end.
TEST(ReplProtocol, TruncatedBodiesRejected) {
  Writer body;
  const std::uint64_t positions[] = {7, 9};
  encode_repl_hello(body, 1, kReplProtocolVersion, positions);
  for (std::size_t cut = 9; cut < body.bytes().size(); ++cut) {
    Reader r(body.bytes().first(cut));
    (void)decode_header(r);
    EXPECT_THROW((void)decode_repl_hello(r), persist::CorruptData)
        << "cut at " << cut;
  }

  body.clear();
  const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const ReplFrame frames[] = {{1, std::as_bytes(std::span(payload))}};
  encode_repl_frames(body, 1, 0, frames);
  for (std::size_t cut = 9; cut < body.bytes().size(); ++cut) {
    Reader r(body.bytes().first(cut));
    (void)decode_header(r);
    std::vector<ReplFrame> out;
    EXPECT_THROW((void)decode_repl_frames(r, out), persist::CorruptData)
        << "cut at " << cut;
  }
}

// Trailing bytes after a well-formed payload are corruption, not slack.
TEST(ReplProtocol, TrailingBytesRejected) {
  Writer body;
  const std::uint64_t positions[] = {4};
  encode_repl_ack(body, 1, positions);
  std::vector<std::byte> padded(body.bytes().begin(), body.bytes().end());
  padded.push_back(std::byte{0});
  Reader r(padded);
  (void)decode_header(r);
  EXPECT_THROW((void)decode_repl_ack(r), persist::CorruptData);
}

// A chunk whose data overruns its own declared container size lies about
// the transfer; the follower must never grow its buffer past total_bytes.
TEST(ReplProtocol, SnapshotChunkOverrunRejected) {
  Writer body;
  const std::uint8_t data[] = {1, 2, 3, 4};
  encode_repl_snapshot_chunk(body, 1, 1, /*total_bytes=*/5, /*offset=*/3,
                             std::as_bytes(std::span(data)), true);
  Reader r(body.bytes());
  (void)decode_header(r);
  EXPECT_THROW((void)decode_repl_snapshot_chunk(r), persist::CorruptData);
}

// An absurd frame count (length guard) must be rejected before allocation.
TEST(ReplProtocol, FramesCountGuarded) {
  Writer body;
  body.u8(static_cast<std::uint8_t>(MsgType::kReplFrames));
  body.u64(1);           // id
  body.u32(0);           // shard
  body.u64(~0ull >> 8);  // preposterous frame count
  Reader r(body.bytes());
  (void)decode_header(r);
  std::vector<ReplFrame> out;
  EXPECT_THROW((void)decode_repl_frames(r, out), persist::CorruptData);
}

// A corrupted frame on the wire (bit flip under the CRC) must surface as
// kCorrupt from the FrameDecoder, identically to the request protocol.
TEST(ReplProtocol, FlippedBitTripsFrameCrc) {
  Writer body;
  const std::uint64_t positions[] = {1, 2};
  encode_repl_heartbeat(body, 1, 42, positions);
  auto frame = frame_of(body);
  frame[frame.size() / 2] ^= std::byte{0x10};

  FrameDecoder decoder;
  decoder.feed(frame);
  std::span<const std::byte> out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kCorrupt);
}

}  // namespace
}  // namespace larp::net
