// Tests for the CSV reader/writer.
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace larp::csv {
namespace {

TEST(Csv, ReadsSimpleTable) {
  std::istringstream in("a,b,c\n1,2,3\n4,5,6\n");
  const Table t = read(in);
  ASSERT_EQ(t.header.size(), 3u);
  EXPECT_EQ(t.header[0], "a");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][2], "6");
}

TEST(Csv, EmptyStreamYieldsEmptyTable) {
  std::istringstream in("");
  const Table t = read(in);
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(Csv, HandlesQuotedCells) {
  std::istringstream in("name,note\nx,\"hello, world\"\ny,\"say \"\"hi\"\"\"\n");
  const Table t = read(in);
  EXPECT_EQ(t.rows[0][1], "hello, world");
  EXPECT_EQ(t.rows[1][1], "say \"hi\"");
}

TEST(Csv, PadsRaggedRows) {
  std::istringstream in("a,b,c\n1,2\n");
  const Table t = read(in);
  ASSERT_EQ(t.rows[0].size(), 3u);
  EXPECT_EQ(t.rows[0][2], "");
}

TEST(Csv, StripsCarriageReturns) {
  std::istringstream in("a,b\r\n1,2\r\n");
  const Table t = read(in);
  EXPECT_EQ(t.header[1], "b");
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(Csv, ColumnLookup) {
  std::istringstream in("x,y\n1,2\n");
  const Table t = read(in);
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_THROW((void)t.column("z"), NotFound);
}

TEST(Csv, NumericColumnParses) {
  std::istringstream in("x,v\na,1.5\nb,-2\nc,3e2\n");
  const Table t = read(in);
  const auto vs = t.numeric_column("v");
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_DOUBLE_EQ(vs[0], 1.5);
  EXPECT_DOUBLE_EQ(vs[1], -2.0);
  EXPECT_DOUBLE_EQ(vs[2], 300.0);
}

TEST(Csv, NumericColumnRejectsText) {
  std::istringstream in("v\nhello\n");
  const Table t = read(in);
  EXPECT_THROW((void)t.numeric_column("v"), InvalidArgument);
}

TEST(Csv, RoundTripPreservesContent) {
  Table t;
  t.header = {"metric", "value"};
  t.rows = {{"cpu, busy", "1.25"}, {"quote\"d", "-3"}};
  std::ostringstream out;
  write(out, t);
  std::istringstream in(out.str());
  const Table back = read(in);
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

TEST(Csv, WriteSeriesLayout) {
  std::ostringstream out;
  write_series(out, "load", {1.5, 2.5});
  std::istringstream in(out.str());
  const Table t = read(in);
  EXPECT_EQ(t.header, (std::vector<std::string>{"index", "load"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][0], "1");
}

TEST(Csv, ReadFileMissingThrows) {
  EXPECT_THROW((void)read_file("/nonexistent/file.csv"), NotFound);
}

}  // namespace
}  // namespace larp::csv
