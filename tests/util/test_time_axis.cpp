// Tests for the uniform sampling grid.
#include "util/time_axis.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp {
namespace {

TEST(TimeAxis, BasicAccessors) {
  const TimeAxis axis(100, kFiveMinutes, 4);
  EXPECT_EQ(axis.start(), 100);
  EXPECT_EQ(axis.step(), 300);
  EXPECT_EQ(axis.size(), 4u);
  EXPECT_EQ(axis.end(), 100 + 4 * 300);
  EXPECT_FALSE(axis.empty());
}

TEST(TimeAxis, RejectsNonPositiveStep) {
  EXPECT_THROW(TimeAxis(0, 0, 5), InvalidArgument);
  EXPECT_THROW(TimeAxis(0, -60, 5), InvalidArgument);
}

TEST(TimeAxis, AtAndIndexOfAreInverses) {
  const TimeAxis axis(60, kMinute, 10);
  for (std::size_t i = 0; i < axis.size(); ++i) {
    EXPECT_EQ(axis.index_of(axis.at(i)), i);
  }
}

TEST(TimeAxis, AtOutOfRangeThrows) {
  const TimeAxis axis(0, 60, 3);
  EXPECT_THROW((void)axis.at(3), InvalidArgument);
}

TEST(TimeAxis, ContainsChecksGridAndRange) {
  const TimeAxis axis(120, 60, 3);  // samples at 120, 180, 240
  EXPECT_TRUE(axis.contains(120));
  EXPECT_TRUE(axis.contains(240));
  EXPECT_FALSE(axis.contains(300));  // past the end
  EXPECT_FALSE(axis.contains(150));  // off-grid
  EXPECT_FALSE(axis.contains(60));   // before start
}

TEST(TimeAxis, IndexOfOffGridThrows) {
  const TimeAxis axis(0, 60, 3);
  EXPECT_THROW((void)axis.index_of(30), InvalidArgument);
  EXPECT_THROW((void)axis.index_of(180), InvalidArgument);
}

TEST(TimeAxis, SliceSelectsSubrange) {
  const TimeAxis axis(0, 60, 10);
  const TimeAxis part = axis.slice(3, 4);
  EXPECT_EQ(part.start(), 180);
  EXPECT_EQ(part.size(), 4u);
  EXPECT_EQ(part.step(), 60);
  EXPECT_THROW((void)axis.slice(8, 3), InvalidArgument);
}

TEST(TimeAxis, EqualityAndDescribe) {
  const TimeAxis a(0, 60, 5), b(0, 60, 5), c(60, 60, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.describe().empty());
}

TEST(TimeAxis, EmptyDefault) {
  const TimeAxis axis;
  EXPECT_TRUE(axis.empty());
  EXPECT_EQ(axis.end(), axis.start());
}

TEST(TimeAxis, PaperIntervals) {
  // The two extraction configurations used in §7.
  const TimeAxis vm2(0, kFiveMinutes, 288);
  EXPECT_EQ(vm2.end(), kDay);
  const TimeAxis vm1(0, kThirtyMinutes, 336);
  EXPECT_EQ(vm1.end(), 7 * kDay);
}

}  // namespace
}  // namespace larp
