// Tests for the experiment-sweep thread pool.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace larp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  pool.parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 37) throw std::logic_error("bad index");
                        }),
      std::logic_error);
}

TEST(ThreadPool, ParallelForSurvivesExceptionAndStaysUsable) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksAndIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&] { ++done; }));
  }
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  EXPECT_EQ(done.load(), 32);  // queued work ran before the join
  for (auto& f : futures) f.get();
  pool.shutdown();  // second call is a no-op
  EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ParallelForAfterShutdownThrowsWithoutHanging) {
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<int> count{0};
  EXPECT_THROW(pool.parallel_for(0, 10, [&](std::size_t) { ++count; }),
               std::runtime_error);
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ParallelForFewerIterationsThanChunkSlots) {
  // total < size()*4 requested chunks: every index must run exactly once and
  // the call must return (no lost completion credit for skipped slots).
  ThreadPool pool(8);
  for (std::size_t total : {1u, 2u, 3u, 5u, 7u}) {
    std::vector<std::atomic<int>> hits(total);
    pool.parallel_for(0, total, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ParallelForTailChunksPastEnd) {
  // Ceil-division overshoot regression: with 2 workers (8 chunk slots) and
  // 10 iterations, chunk_size is 2, so slots 5..7 start at or past `end`.
  // They used to submit anyway; now they must neither run fn out of range
  // nor deadlock the completion count.  Offsets exercise begin != 0.
  ThreadPool pool(2);
  for (std::size_t begin : {0u, 5u, 123u}) {
    const std::size_t total = 10;
    std::vector<std::atomic<int>> hits(total);
    pool.parallel_for(begin, begin + total, [&](std::size_t i) {
      ASSERT_GE(i, begin);
      ASSERT_LT(i, begin + total);
      hits[i - begin].fetch_add(1);
    });
    for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelMap, CollectsResultsInOrder) {
  const auto results = parallel_map(64, [](std::size_t i) {
    return static_cast<int>(i) * 3;
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 3);
  }
}

TEST(ParallelMap, SingleElementRunsInline) {
  const auto results = parallel_map(1, [](std::size_t) { return 7; });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 7);
}

TEST(ParallelMap, ZeroElements) {
  const auto results = parallel_map(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ThreadPool, DeterministicWorkWithSplitRngs) {
  // The canonical usage pattern: per-task private RNG streams make parallel
  // results independent of scheduling.
  const auto run = [] {
    Rng parent(2024);
    return parallel_map(16, [&](std::size_t i) {
      Rng rng = parent.split(i);
      double acc = 0.0;
      for (int j = 0; j < 100; ++j) acc += rng.uniform();
      return acc;
    });
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace larp
