// Tests for the leveled logger.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace larp::log {
namespace {

// RAII guard restoring the global logger state after each test.
class LogCapture {
 public:
  LogCapture() : previous_level_(level()) {
    set_sink(&buffer_);
    set_level(Level::Trace);
  }
  ~LogCapture() {
    set_sink(nullptr);
    set_level(previous_level_);
  }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  Level previous_level_;
};

TEST(Log, WritesFormattedLine) {
  LogCapture capture;
  write(Level::Info, "tsdb", "consolidated 5 bins");
  EXPECT_EQ(capture.text(), "[INFO] [tsdb] consolidated 5 bins\n");
}

TEST(Log, LevelThresholdFilters) {
  LogCapture capture;
  set_level(Level::Warn);
  write(Level::Debug, "core", "dropped");
  write(Level::Info, "core", "dropped");
  write(Level::Warn, "core", "kept");
  write(Level::Error, "core", "kept too");
  const auto text = capture.text();
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("kept"), std::string::npos);
  EXPECT_NE(text.find("kept too"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogCapture capture;
  set_level(Level::Off);
  write(Level::Error, "core", "even errors");
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, StreamingMacroBuildsMessage) {
  LogCapture capture;
  LARP_LOG_INFO("bench") << "ran " << 3 << " folds in " << 1.5 << "s";
  EXPECT_EQ(capture.text(), "[INFO] [bench] ran 3 folds in 1.5s\n");
}

TEST(Log, MacroShortCircuitsBelowThreshold) {
  LogCapture capture;
  set_level(Level::Error);
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return 1;
  };
  LARP_LOG_DEBUG("core") << count();
  EXPECT_EQ(evaluations, 0);  // operands not evaluated when filtered
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, LevelRoundTrip) {
  const Level before = level();
  set_level(Level::Debug);
  EXPECT_EQ(level(), Level::Debug);
  set_level(before);
}

}  // namespace
}  // namespace larp::log
