// Tests for descriptive statistics and the error-tracking accumulators.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::stats {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{-5}), -5.0);
}

TEST(Stats, VarianceConventions) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);          // population
  EXPECT_NEAR(sample_variance(xs), 32.0 / 7, 1e-12);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  // Accumulated rounding in the mean leaves variance at ~1e-29, not exactly
  // zero, for non-representable constants.
  const std::vector<double> xs(100, 3.14);
  EXPECT_NEAR(variance(xs), 0.0, 1e-24);
  EXPECT_NEAR(sample_variance(xs), 0.0, 1e-24);
  // Exactly representable constants give exactly zero.
  const std::vector<double> ys(100, 2.0);
  EXPECT_DOUBLE_EQ(variance(ys), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
  EXPECT_TRUE(std::isinf(min(std::vector<double>{})));
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{9}), 9.0);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 62.5), 35.0);
}

TEST(Stats, PercentileRejectsBadP) {
  const std::vector<double> xs{1, 2};
  EXPECT_THROW((void)percentile(xs, -1), InvalidArgument);
  EXPECT_THROW((void)percentile(xs, 101), InvalidArgument);
}

TEST(Stats, TrimmedMeanDropsOutliers) {
  const std::vector<double> xs{1, 2, 3, 4, 100};
  // 20% trim drops one from each tail: mean of {2,3,4}.
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.2), 3.0);
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.0), 22.0);
  EXPECT_THROW((void)trimmed_mean(xs, 0.5), InvalidArgument);
}

TEST(Stats, MseMatchesDefinition) {
  const std::vector<double> pred{1, 2, 3};
  const std::vector<double> obs{2, 2, 1};
  EXPECT_NEAR(mse(pred, obs), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(rmse(pred, obs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(mae(pred, obs), (1.0 + 0.0 + 2.0) / 3.0, 1e-12);
}

TEST(Stats, MseRejectsLengthMismatch) {
  const std::vector<double> a{1, 2}, b{1};
  EXPECT_THROW((void)mse(a, b), InvalidArgument);
  EXPECT_THROW((void)mae(a, b), InvalidArgument);
}

TEST(Stats, AutocorrelationLagZeroIsOne) {
  const std::vector<double> xs{1, 3, 2, 5, 4, 6};
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Stats, AutocorrelationOfAr1IsPhi) {
  // A long AR(1) series has acf(k) ~= phi^k.
  Rng rng(123);
  const double phi = 0.8;
  std::vector<double> xs(50000);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = phi * prev + rng.normal();
    x = prev;
  }
  EXPECT_NEAR(autocorrelation(xs, 1), phi, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 2), phi * phi, 0.03);
}

TEST(Stats, AutocorrelationConstantSeries) {
  const std::vector<double> xs(50, 2.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
  const auto acf = autocorrelations(xs, 3);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  EXPECT_DOUBLE_EQ(acf[1], 0.0);
}

TEST(Stats, AutocorrelationsVectorConsistent) {
  const std::vector<double> xs{1, 2, 1, 3, 2, 4, 3, 5};
  const auto acf = autocorrelations(xs, 3);
  ASSERT_EQ(acf.size(), 4u);
  for (std::size_t lag = 0; lag <= 3; ++lag) {
    EXPECT_DOUBLE_EQ(acf[lag], autocorrelation(xs, lag)) << "lag " << lag;
  }
}

TEST(RunningMoments, MatchesBatchStatistics) {
  Rng rng(55);
  std::vector<double> xs(1000);
  RunningMoments rm;
  for (auto& x : xs) {
    x = rng.normal(3.0, 2.0);
    rm.add(x);
  }
  EXPECT_EQ(rm.count(), xs.size());
  EXPECT_NEAR(rm.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rm.variance(), variance(xs), 1e-9);
  EXPECT_NEAR(rm.sample_variance(), sample_variance(xs), 1e-9);
}

TEST(RunningMoments, MergeEqualsSinglePass) {
  Rng rng(56);
  RunningMoments all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningMoments, MergeWithEmpty) {
  RunningMoments a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningMse, AccumulatesSquaredErrors) {
  RunningMse mse;
  EXPECT_DOUBLE_EQ(mse.value(), 0.0);
  mse.add(1.0, 2.0);   // err^2 = 1
  mse.add(0.0, -3.0);  // err^2 = 9
  EXPECT_EQ(mse.count(), 2u);
  EXPECT_DOUBLE_EQ(mse.value(), 5.0);
  mse.reset();
  EXPECT_EQ(mse.count(), 0u);
  EXPECT_DOUBLE_EQ(mse.value(), 0.0);
}

TEST(WindowedMse, KeepsOnlyRecentErrors) {
  WindowedMse wm(2);
  wm.add(0.0, 1.0);  // 1
  wm.add(0.0, 2.0);  // 4
  EXPECT_DOUBLE_EQ(wm.value(), 2.5);
  wm.add(0.0, 3.0);  // 9; evicts 1
  EXPECT_DOUBLE_EQ(wm.value(), 6.5);
  wm.add(0.0, 0.0);  // 0; evicts 4
  EXPECT_DOUBLE_EQ(wm.value(), 4.5);
}

TEST(WindowedMse, PartiallyFilledAveragesOverCount) {
  WindowedMse wm(10);
  wm.add(0.0, 2.0);
  EXPECT_DOUBLE_EQ(wm.value(), 4.0);
  EXPECT_EQ(wm.count(), 1u);
}

TEST(WindowedMse, RejectsZeroWindow) {
  EXPECT_THROW(WindowedMse(0), InvalidArgument);
}

TEST(WindowedMse, ResetClears) {
  WindowedMse wm(3);
  wm.add(1.0, 5.0);
  wm.reset();
  EXPECT_EQ(wm.count(), 0u);
  EXPECT_DOUBLE_EQ(wm.value(), 0.0);
  wm.add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(wm.value(), 1.0);
}

// Property sweep: WindowedMse with a huge window equals RunningMse.
class WindowedEqualsRunning : public ::testing::TestWithParam<int> {};

TEST_P(WindowedEqualsRunning, WhenWindowCoversEverything) {
  Rng rng(GetParam());
  RunningMse run;
  WindowedMse win(10000);
  for (int i = 0; i < 500; ++i) {
    const double p = rng.uniform(-1, 1);
    const double o = rng.uniform(-1, 1);
    run.add(p, o);
    win.add(p, o);
  }
  EXPECT_NEAR(run.value(), win.value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowedEqualsRunning,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace larp::stats
