// Tests for the deterministic RNG substrate.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace larp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsCloseToStandard) {
  Rng rng(13);
  std::vector<double> draws(100000);
  for (auto& d : draws) d = rng.normal();
  EXPECT_NEAR(stats::mean(draws), 0.0, 0.02);
  EXPECT_NEAR(stats::variance(draws), 1.0, 0.03);
}

TEST(Rng, NormalParametrized) {
  Rng rng(17);
  std::vector<double> draws(50000);
  for (auto& d : draws) d = rng.normal(10.0, 2.0);
  EXPECT_NEAR(stats::mean(draws), 10.0, 0.05);
  EXPECT_NEAR(stats::stddev(draws), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  std::vector<double> draws(50000);
  for (auto& d : draws) d = rng.exponential(0.5);
  EXPECT_NEAR(stats::mean(draws), 2.0, 0.1);
  for (double d : draws) EXPECT_GE(d, 0.0);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(5.0, 1.5), 5.0);
  }
}

TEST(Rng, ParetoMedianMatchesTheory) {
  // Median of Pareto(xm, alpha) is xm * 2^(1/alpha).
  Rng rng(29);
  std::vector<double> draws(40000);
  for (auto& d : draws) d = rng.pareto(1.0, 2.0);
  EXPECT_NEAR(stats::median(draws), std::pow(2.0, 0.5), 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng(37);
  double total = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) total += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(total / kDraws, 3.0, 0.1);
}

TEST(Rng, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(41);
  double total = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) total += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(total / kDraws, 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(47);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / double(kDraws), 0.6, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(1);
  Rng child_a_again = Rng(99).split(0);
  EXPECT_EQ(child_a(), child_a_again());
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a() != child_b()) ++differences;
  }
  EXPECT_GT(differences, 95);
}

TEST(Rng, SplitDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.split(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace larp
