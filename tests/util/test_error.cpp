// Tests for the exception hierarchy and the internal assertion macro.
#include "util/error.hpp"

#include <gtest/gtest.h>

namespace larp {
namespace {

TEST(Error, HierarchyIsCatchableAtEveryLevel) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw NotFound("x"), Error);
  EXPECT_THROW(throw StateError("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(Error, MessagePreserved) {
  try {
    throw InvalidArgument("window must be positive");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "window must be positive");
  }
}

TEST(Error, DistinctTypesDistinguishable) {
  try {
    throw NotFound("missing");
  } catch (const InvalidArgument&) {
    FAIL() << "NotFound caught as InvalidArgument";
  } catch (const NotFound&) {
    SUCCEED();
  }
}

TEST(LarpAssert, PassesOnTrue) {
  EXPECT_NO_THROW(LARP_ASSERT(1 + 1 == 2));
}

TEST(LarpAssert, ThrowsWithLocationOnFalse) {
  try {
    LARP_ASSERT(2 + 2 == 5);
    FAIL() << "assertion did not fire";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(message.find("test_error.cpp"), std::string::npos);
  }
}

TEST(LarpAssert, ActiveInReleaseBuilds) {
  // The reproduction's correctness claims rely on invariants staying armed
  // regardless of NDEBUG.
  bool fired = false;
  try {
    LARP_ASSERT(false);
  } catch (const Error&) {
    fired = true;
  }
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace larp
