// End-to-end loopback tests: a real epoll Server on an ephemeral port, real
// sockets, real frames.  These run under the sanitizer CI jobs (the target
// label puts them in the TSan set), so the accept handoff, per-loop
// ownership, and shutdown join are all exercised under race detection.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "persist/io.hpp"
#include "predictors/pool.hpp"
#include "serve/prediction_engine.hpp"

namespace larp::net {
namespace {

serve::EngineConfig tiny_config() {
  serve::EngineConfig config;
  config.lar.window = 5;
  config.shards = 4;
  config.threads = 1;
  config.train_samples = 12;
  config.audit_every = 0;
  return config;
}

tsdb::SeriesKey key_of(std::size_t s) {
  return {"vm" + std::to_string(s), "dev0", "cpu"};
}

class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<serve::PredictionEngine>(
        predictors::make_paper_pool(5), tiny_config());
    ServerConfig config;
    config.event_threads = 2;
    server_ = std::make_unique<Server>(*engine_, config);
    server_->start();
  }

  void TearDown() override {
    server_->stop();
  }

  [[nodiscard]] Client connect() { return {"127.0.0.1", server_->port()}; }

  std::unique_ptr<serve::PredictionEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(LoopbackTest, PingPong) {
  Client client = connect();
  client.ping();
  client.ping();
  const ServerStats stats = server_->stats();
  EXPECT_GE(stats.frames_in, 2u);
  EXPECT_GE(stats.frames_out, 2u);
}

TEST_F(LoopbackTest, ObserveUntilTrainedThenPredict) {
  Client client = connect();
  const std::size_t kSeries = 8;
  std::vector<serve::Observation> batch(kSeries);
  std::vector<tsdb::SeriesKey> keys(kSeries);
  for (std::size_t s = 0; s < kSeries; ++s) keys[s] = key_of(s);

  std::vector<serve::Prediction> predictions;
  for (std::size_t step = 0; step < 16; ++step) {
    for (std::size_t s = 0; s < kSeries; ++s) {
      batch[s].key = keys[s];
      batch[s].value =
          50.0 + 3.0 * std::sin(0.3 * static_cast<double>(step + s));
    }
    EXPECT_EQ(client.observe(batch), kSeries);
  }
  client.predict(keys, predictions);
  ASSERT_EQ(predictions.size(), kSeries);
  for (const auto& p : predictions) {
    EXPECT_TRUE(p.ready);
    EXPECT_TRUE(std::isfinite(p.value));
  }

  const WireStats wire = client.stats();
  EXPECT_EQ(wire.series, kSeries);
  EXPECT_EQ(wire.trained_series, kSeries);
  EXPECT_EQ(wire.observations, 16u * kSeries);
}

TEST_F(LoopbackTest, NetworkMatchesDirectEngineCalls) {
  // The wire adds framing, not semantics: predictions served over loopback
  // must be bit-identical to a directly-driven engine fed the same stream.
  serve::PredictionEngine direct(predictors::make_paper_pool(5),
                                 tiny_config());
  Client client = connect();
  const tsdb::SeriesKey key{"vm-parity", "dev0", "cpu"};
  std::vector<serve::Observation> one(1);
  std::vector<serve::Prediction> via_net;
  const std::vector<tsdb::SeriesKey> keys = {key};
  for (std::size_t step = 0; step < 20; ++step) {
    const double value = 10.0 + 0.5 * static_cast<double>(step % 7);
    one[0] = {key, value};
    ASSERT_EQ(client.observe(one), 1u);
    direct.observe(key, value);
  }
  client.predict(keys, via_net);
  const serve::Prediction direct_p = direct.predict(key);
  ASSERT_EQ(via_net.size(), 1u);
  EXPECT_EQ(via_net[0].ready, direct_p.ready);
  EXPECT_EQ(via_net[0].label, direct_p.label);
  // Bit-pattern equality, so an untrained NaN uncertainty also matches.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(via_net[0].value),
            std::bit_cast<std::uint64_t>(direct_p.value));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(via_net[0].uncertainty),
            std::bit_cast<std::uint64_t>(direct_p.uncertainty));
}

TEST_F(LoopbackTest, PipelinedFramesReplyInOrder) {
  // Fire a burst of requests without reading any reply, then collect:
  // replies must come back one per request, in request order, with the
  // coalesced run acking each frame separately.
  Client client = connect();
  persist::io::Writer body;
  std::vector<std::byte> burst;
  std::vector<serve::Observation> one = {{key_of(0), 1.0}};
  for (std::uint64_t id = 1; id <= 6; ++id) {
    encode_observe_request(body, id, one);
    append_frame(burst, body.bytes());
  }
  encode_ping(body, 7);
  append_frame(burst, body.bytes());
  client.send_raw(burst);

  std::vector<std::byte> reply;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    const FrameHeader h = client.read_reply(reply);
    EXPECT_EQ(h.type, MsgType::kObserveAck);
    EXPECT_EQ(h.id, id);
  }
  const FrameHeader pong = client.read_reply(reply);
  EXPECT_EQ(pong.type, MsgType::kPong);
  EXPECT_EQ(pong.id, 7u);
  // The six pipelined observes coalesced into fewer engine batches than
  // frames (exactly one when the whole burst arrived in one read).
  EXPECT_LT(server_->stats().observe_batches, 6u);
}

TEST_F(LoopbackTest, GarbageGetsErrorReplyThenClose) {
  Client client = connect();
  std::vector<std::byte> garbage(32);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::byte>(0xC0 + i);
  }
  client.send_raw(garbage);
  std::vector<std::byte> reply;
  const FrameHeader h = client.read_reply(reply);
  EXPECT_EQ(h.type, MsgType::kError);
  persist::io::Reader r(reply);
  (void)decode_header(r);
  EXPECT_EQ(decode_error(r).code, ErrorCode::kBadFrame);
  EXPECT_TRUE(client.eof());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(LoopbackTest, ValidFrameBadPayloadGetsBadRequest) {
  Client client = connect();
  persist::io::Writer body;
  body.u8(0x01);       // kObserve
  body.u64(99);        // id
  body.u64(1u << 20);  // count prefix with no items behind it
  std::vector<std::byte> frame;
  append_frame(frame, body.bytes());
  client.send_raw(frame);
  std::vector<std::byte> reply;
  const FrameHeader h = client.read_reply(reply);
  EXPECT_EQ(h.type, MsgType::kError);
  EXPECT_EQ(h.id, 99u);
  persist::io::Reader r(reply);
  (void)decode_header(r);
  EXPECT_EQ(decode_error(r).code, ErrorCode::kBadRequest);
  EXPECT_TRUE(client.eof());
}

TEST_F(LoopbackTest, UnknownMessageTypeGetsBadRequest) {
  Client client = connect();
  persist::io::Writer body;
  body.u8(0x6E);  // no such type
  body.u64(4);
  std::vector<std::byte> frame;
  append_frame(frame, body.bytes());
  client.send_raw(frame);
  std::vector<std::byte> reply;
  const FrameHeader h = client.read_reply(reply);
  EXPECT_EQ(h.type, MsgType::kError);
  EXPECT_EQ(h.id, 4u);
}

TEST_F(LoopbackTest, ManyConcurrentClients) {
  // One thread per client, all observing disjoint series across both event
  // loops; the engine must absorb every observation exactly once.
  const std::size_t kClients = 4;
  const std::size_t kSteps = 25;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c] {
      Client client("127.0.0.1", server_->port());
      std::vector<serve::Observation> one(1);
      for (std::size_t step = 0; step < kSteps; ++step) {
        one[0] = {key_of(100 + c), static_cast<double>(step)};
        ASSERT_EQ(client.observe(one), 1u);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(engine_->stats().observations, kClients * kSteps);
  EXPECT_GE(server_->stats().connections_accepted, kClients);
}

TEST_F(LoopbackTest, AbruptDisconnectLeavesServerServing) {
  {
    Client rude = connect();
    rude.ping();
  }  // destructor closes mid-session
  Client polite = connect();
  polite.ping();  // the loop that owned the dead conn still serves
}

}  // namespace
}  // namespace larp::net
