// Client failure-path regressions: a connect against a closed port must
// fail fast with NetError (not hang), a silent server must trip the
// configured read timeout, and a server that dies mid-reply must surface a
// NetError instead of blocking forever on the half-delivered frame.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"

namespace larp::net {
namespace {

using namespace std::chrono_literals;

// Bind-and-release: the kernel handed this port out moments ago, so nothing
// else is likely to be listening on it right after close.
std::uint16_t recently_closed_port() {
  const Fd listener = listen_tcp("127.0.0.1", 0);
  return local_port(listener);
}

// Blocks until the listener has a pending connection, then accepts it.
Fd accept_blocking(const Fd& listener) {
  pollfd pfd{listener.get(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 2000);
  EXPECT_EQ(rc, 1);
  return accept_conn(listener);
}

TEST(ClientTimeout, ClosedPortFailsFast) {
  const std::uint16_t port = recently_closed_port();
  ClientConfig config;
  config.connect_timeout = 500ms;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((Client{"127.0.0.1", port, config}), NetError);
  // Loopback refuses immediately; the bound is just "didn't hang".
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST(ClientTimeout, SilentServerTripsReadTimeout) {
  // A listener whose backlog completes the TCP handshake but whose owner
  // never replies: the read deadline is the only way out.
  const Fd listener = listen_tcp("127.0.0.1", 0);
  ClientConfig config;
  config.read_timeout = 100ms;
  Client client("127.0.0.1", local_port(listener), config);
  const Fd conn = accept_blocking(listener);
  ASSERT_TRUE(conn.valid());

  std::vector<std::byte> body;
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)client.read_reply(body);
    FAIL() << "read against a silent server returned";
  } catch (const NetError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, 50ms);
  EXPECT_LT(waited, 5s);
}

TEST(ClientTimeout, ServerDyingMidReplyIsAnError) {
  const Fd listener = listen_tcp("127.0.0.1", 0);
  ClientConfig config;
  config.read_timeout = 2000ms;
  Client client("127.0.0.1", local_port(listener), config);
  {
    const Fd conn = accept_blocking(listener);
    ASSERT_TRUE(conn.valid());
    // Half a frame: a length header promising 64 bytes, then the "server"
    // is gone.  accept_conn() hands back a non-blocking fd, but four bytes
    // into an empty socket buffer never short-write.
    const unsigned char partial[4] = {64, 0, 0, 0};
    ASSERT_EQ(::send(conn.get(), partial, sizeof partial, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof partial));
  }  // conn closes here — EOF mid-frame on the client side

  std::vector<std::byte> body;
  EXPECT_THROW((void)client.read_reply(body), NetError);
}

}  // namespace
}  // namespace larp::net
