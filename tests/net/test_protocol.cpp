// Wire-format tests: a committed golden frame (byte-for-byte, including the
// masked CRC32C), encode/decode round trips, and the FrameDecoder's three
// verdicts over truncated, corrupt, and pipelined streams.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "persist/crc32c.hpp"
#include "persist/io.hpp"

namespace larp::net {
namespace {

using persist::io::Reader;
using persist::io::Writer;

std::vector<std::byte> frame_of(const Writer& body) {
  std::vector<std::byte> out;
  append_frame(out, body.bytes());
  return out;
}

// -- golden frame -----------------------------------------------------------

// A ping with request id 0x1122334455667788 must encode to these exact
// bytes forever: [len=9 LE][masked crc LE][type=0][id LE].  Any layout or
// checksum change breaks deployed peers and must be caught here, not in
// production.
TEST(Protocol, GoldenPingFrameBytes) {
  Writer body;
  encode_ping(body, 0x1122334455667788ull);
  const auto frame = frame_of(body);

  const std::uint8_t expected_body[9] = {0x00, 0x88, 0x77, 0x66, 0x55,
                                         0x44, 0x33, 0x22, 0x11};
  const std::uint32_t crc = persist::crc32c_mask(persist::crc32c(
      std::as_bytes(std::span(expected_body))));
  std::vector<std::uint8_t> expected = {9, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    expected.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu));
  }
  expected.insert(expected.end(), std::begin(expected_body),
                  std::end(expected_body));

  ASSERT_EQ(frame.size(), expected.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(std::to_integer<std::uint8_t>(frame[i]), expected[i])
        << "byte " << i;
  }
}

// The CRC constant itself, pinned: recomputing it from a different
// polynomial or masking scheme would still pass the test above, so pin the
// exact masked value the reference implementation produces today.
TEST(Protocol, GoldenPingFrameCrcPinned) {
  Writer body;
  encode_ping(body, 0x1122334455667788ull);
  const std::uint32_t crc =
      persist::crc32c_mask(persist::crc32c(body.bytes()));
  EXPECT_EQ(crc, 0xB9021C01u);
}

// -- round trips ------------------------------------------------------------

TEST(Protocol, ObserveRequestRoundTrip) {
  std::vector<serve::Observation> batch = {
      {{"vm-1", "disk-0", "iops"}, 120.5},
      {{"vm-2", "", "cpu"}, -3.25},
  };
  Writer body;
  encode_observe_request(body, 42, batch);

  Reader r(body.bytes());
  const FrameHeader h = decode_header(r);
  EXPECT_EQ(h.type, MsgType::kObserve);
  EXPECT_EQ(h.id, 42u);

  std::vector<serve::Observation> decoded;
  const std::size_t used = decode_observe_items(r, decoded, 0);
  ASSERT_EQ(used, 2u);
  EXPECT_EQ(decoded[0].key, batch[0].key);
  EXPECT_EQ(decoded[0].value, 120.5);
  EXPECT_EQ(decoded[1].key, batch[1].key);
  EXPECT_EQ(decoded[1].value, -3.25);
}

TEST(Protocol, DecodeAppendsIntoScratchPastUsed) {
  // The coalescing path decodes several frames into one scratch vector;
  // items must land after the existing used count without disturbing it.
  std::vector<serve::Observation> batch1 = {{{"a", "b", "c"}, 1.0}};
  std::vector<serve::Observation> batch2 = {{{"d", "e", "f"}, 2.0}};
  Writer body;
  std::vector<serve::Observation> scratch;

  encode_observe_request(body, 1, batch1);
  Reader r1(body.bytes());
  (void)decode_header(r1);
  std::size_t used = decode_observe_items(r1, scratch, 0);

  encode_observe_request(body, 2, batch2);
  Reader r2(body.bytes());
  (void)decode_header(r2);
  used = decode_observe_items(r2, scratch, used);

  ASSERT_EQ(used, 2u);
  EXPECT_EQ(scratch[0].key.vm_id, "a");
  EXPECT_EQ(scratch[1].key.vm_id, "d");
}

TEST(Protocol, PredictRequestAndReplyRoundTrip) {
  std::vector<tsdb::SeriesKey> keys = {{"vm-9", "net-0", "rx_bytes"}};
  Writer body;
  encode_predict_request(body, 7, keys);
  Reader r(body.bytes());
  EXPECT_EQ(decode_header(r).type, MsgType::kPredict);
  std::vector<tsdb::SeriesKey> decoded_keys;
  ASSERT_EQ(decode_predict_keys(r, decoded_keys, 0), 1u);
  EXPECT_EQ(decoded_keys[0], keys[0]);

  std::vector<serve::Prediction> preds(1);
  preds[0].ready = true;
  preds[0].value = 3.5;
  preds[0].label = 4;
  preds[0].uncertainty = 0.25;
  encode_predict_reply(body, 7, preds);
  Reader rr(body.bytes());
  EXPECT_EQ(decode_header(rr).type, MsgType::kPredictReply);
  std::vector<serve::Prediction> decoded;
  decode_predict_reply(rr, decoded);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0].ready);
  EXPECT_EQ(decoded[0].value, 3.5);
  EXPECT_EQ(decoded[0].label, 4u);
  EXPECT_EQ(decoded[0].uncertainty, 0.25);
}

TEST(Protocol, ErrorReplyRoundTrip) {
  Writer body;
  encode_error(body, 13, ErrorCode::kBadRequest, "what even is this");
  Reader r(body.bytes());
  const FrameHeader h = decode_header(r);
  EXPECT_EQ(h.type, MsgType::kError);
  EXPECT_EQ(h.id, 13u);
  const WireError err = decode_error(r);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_EQ(err.message, "what even is this");
}

TEST(Protocol, StatsReplyRoundTrip) {
  serve::EngineStats stats;
  stats.series = 10;
  stats.trained_series = 7;
  stats.observations = 1000;
  stats.predictions = 900;
  stats.mean_absolute_error = 0.5;
  stats.mean_squared_error = 0.4;
  Writer body;
  encode_stats_reply(body, 3, stats);
  Reader r(body.bytes());
  (void)decode_header(r);
  const WireStats w = decode_stats_reply(r);
  EXPECT_EQ(w.series, 10u);
  EXPECT_EQ(w.trained_series, 7u);
  EXPECT_EQ(w.observations, 1000u);
  EXPECT_EQ(w.predictions, 900u);
  EXPECT_EQ(w.mean_absolute_error, 0.5);
  EXPECT_EQ(w.mean_squared_error, 0.4);
}

// -- decoder verdicts -------------------------------------------------------

TEST(FrameDecoderTest, TruncatedStreamNeedsMoreAtEveryPrefix) {
  Writer body;
  encode_ping(body, 99);
  const auto frame = frame_of(body);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(std::span(frame.data(), cut));
    std::span<const std::byte> out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::kNeedMore)
        << "prefix length " << cut;
  }
}

TEST(FrameDecoderTest, ByteAtATimeDeliveryStillDecodes) {
  Writer body;
  encode_ping(body, 5);
  const auto frame = frame_of(body);
  FrameDecoder dec;
  std::span<const std::byte> out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.feed(std::span(frame.data() + i, 1));
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::kNeedMore);
  }
  dec.feed(std::span(frame.data() + frame.size() - 1, 1));
  ASSERT_EQ(dec.next(out), FrameDecoder::Status::kFrame);
  Reader r(out);
  EXPECT_EQ(decode_header(r).id, 5u);
}

TEST(FrameDecoderTest, PipelinedFramesComeOutInOrder) {
  std::vector<std::byte> stream;
  Writer body;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    encode_ping(body, id);
    append_frame(stream, body.bytes());
  }
  FrameDecoder dec;
  dec.feed(stream);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    std::span<const std::byte> out;
    ASSERT_EQ(dec.next(out), FrameDecoder::Status::kFrame);
    Reader r(out);
    EXPECT_EQ(decode_header(r).id, id);
  }
  std::span<const std::byte> out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kNeedMore);
}

TEST(FrameDecoderTest, AnyFlippedBodyBitIsCorrupt) {
  Writer body;
  encode_ping(body, 77);
  auto frame = frame_of(body);
  for (std::size_t at = kFrameHeaderBytes; at < frame.size(); ++at) {
    auto copy = frame;
    copy[at] ^= std::byte{0x01};
    FrameDecoder dec;
    dec.feed(copy);
    std::span<const std::byte> out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::kCorrupt)
        << "flipped body byte " << at;
  }
}

TEST(FrameDecoderTest, ImpossibleLengthsAreCorruptNotAllocations) {
  // length below the minimum body...
  std::vector<std::byte> tiny = {std::byte{8}, std::byte{0}, std::byte{0},
                                 std::byte{0}, std::byte{0}, std::byte{0},
                                 std::byte{0}, std::byte{0}};
  FrameDecoder dec;
  dec.feed(tiny);
  std::span<const std::byte> out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kCorrupt);

  // ...and a length claiming 4 GiB: rejected from the 8-byte header alone,
  // before any buffering could try to honor it.
  std::vector<std::byte> huge = {std::byte{0xFF}, std::byte{0xFF},
                                 std::byte{0xFF}, std::byte{0xFF},
                                 std::byte{0},    std::byte{0},
                                 std::byte{0},    std::byte{0}};
  FrameDecoder dec2;
  dec2.feed(huge);
  EXPECT_EQ(dec2.next(out), FrameDecoder::Status::kCorrupt);
}

TEST(FrameDecoderTest, GarbageBytesAreCorrupt) {
  std::vector<std::byte> garbage(64);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::byte>(i * 37 + 11);
  }
  FrameDecoder dec;
  dec.feed(garbage);
  std::span<const std::byte> out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kCorrupt);
}

// -- payload validation -----------------------------------------------------

TEST(Protocol, ObserveCountBeyondPayloadThrows) {
  // A count prefix promising more items than the body holds must throw
  // before any per-item work reserves memory for it.
  Writer body;
  body.u8(static_cast<std::uint8_t>(MsgType::kObserve));
  body.u64(1);
  body.u64(1u << 20);  // claims a million observations, carries none
  Reader r(body.bytes());
  (void)decode_header(r);
  std::vector<serve::Observation> scratch;
  EXPECT_THROW((void)decode_observe_items(r, scratch, 0),
               persist::CorruptData);
}

TEST(Protocol, TrailingBytesAfterPayloadThrow) {
  std::vector<serve::Observation> batch = {{{"a", "b", "c"}, 1.0}};
  Writer body;
  encode_observe_request(body, 1, batch);
  body.u8(0xAB);  // smuggled trailing byte
  Reader r(body.bytes());
  (void)decode_header(r);
  std::vector<serve::Observation> scratch;
  EXPECT_THROW((void)decode_observe_items(r, scratch, 0),
               persist::CorruptData);
}

TEST(Protocol, OversizeBodyRefusesToEncode) {
  std::vector<std::byte> out;
  const std::vector<std::byte> body(kMaxFrameBytes + 1);
  EXPECT_THROW(append_frame(out, body), InvalidArgument);
}

}  // namespace
}  // namespace larp::net
