// Server::stop() lifecycle regressions: stop is idempotent, safe before
// start, safe after the destructor's implicit stop path, and safe while a
// client connection is still open (the connection is torn down, not leaked
// into a joined-thread deadlock).
#include <gtest/gtest.h>

#include <memory>

#include "net/client.hpp"
#include "net/server.hpp"
#include "predictors/pool.hpp"
#include "serve/prediction_engine.hpp"

namespace larp::net {
namespace {

serve::EngineConfig tiny_config() {
  serve::EngineConfig config;
  config.lar.window = 5;
  config.shards = 2;
  config.threads = 1;
  config.train_samples = 12;
  config.audit_every = 0;
  return config;
}

TEST(ServerStop, StopWithoutStartIsANoOp) {
  serve::PredictionEngine engine(predictors::make_paper_pool(5),
                                 tiny_config());
  Server server(engine, ServerConfig{});
  server.stop();
  server.stop();
}

TEST(ServerStop, StopIsIdempotentAfterServing) {
  serve::PredictionEngine engine(predictors::make_paper_pool(5),
                                 tiny_config());
  Server server(engine, ServerConfig{});
  server.start();
  {
    Client client("127.0.0.1", server.port());
    client.ping();
  }
  server.stop();
  server.stop();  // second stop must return immediately, not re-join
  EXPECT_GE(server.stats().frames_in, 1u);
}

TEST(ServerStop, StopWithLiveConnection) {
  serve::PredictionEngine engine(predictors::make_paper_pool(5),
                                 tiny_config());
  auto server = std::make_unique<Server>(engine, ServerConfig{});
  server->start();
  Client client("127.0.0.1", server->port());
  client.ping();
  server->stop();       // connection still open on the client side
  server.reset();       // destructor runs its own (now no-op) stop
  EXPECT_TRUE(client.eof());
}

}  // namespace
}  // namespace larp::net
