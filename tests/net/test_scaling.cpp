// Multi-loop scaling and edge-triggered backpressure tests: SO_REUSEPORT
// per-loop listeners must serve bit-identical results to the single-loop
// handoff design, and the EPOLLET + writev reply path must survive slow
// readers, injected partial writes, torn frames, and half-closed peers
// without dropping or reordering a single reply.  Runs under the TSan CI
// label with the rest of larp_tests_net.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "persist/io.hpp"
#include "predictors/pool.hpp"
#include "serve/prediction_engine.hpp"

namespace larp::net {
namespace {

serve::EngineConfig tiny_config() {
  serve::EngineConfig config;
  config.lar.window = 5;
  config.shards = 4;
  config.threads = 1;
  config.train_samples = 12;
  config.audit_every = 0;
  return config;
}

/// Scoped send_iov transfer clamp; always restored, even when an assertion
/// fails mid-test.
class TransferClamp {
 public:
  explicit TransferClamp(std::size_t bytes) {
    testing::set_max_transfer_bytes(bytes);
  }
  ~TransferClamp() { testing::set_max_transfer_bytes(0); }
  TransferClamp(const TransferClamp&) = delete;
  TransferClamp& operator=(const TransferClamp&) = delete;
};

/// Drives a fixed deterministic workload (4 connections x 4 series x 16
/// steps, then one predict per series) against a fresh engine + server in
/// the given accept mode and returns every prediction as raw bits.  Two
/// configurations serving the same workload must return identical vectors.
std::vector<std::uint64_t> run_workload(AcceptMode mode, std::size_t threads,
                                        bool& unsupported) {
  unsupported = false;
  serve::PredictionEngine engine(predictors::make_paper_pool(5), tiny_config());
  ServerConfig config;
  config.event_threads = threads;
  config.accept_mode = mode;
  Server server(engine, config);
  try {
    server.start();
  } catch (const NetError&) {
    unsupported = true;
    return {};
  }

  std::vector<std::uint64_t> bits;
  const std::size_t kConns = 4;
  const std::size_t kSeries = 4;
  const std::size_t kSteps = 16;
  for (std::size_t c = 0; c < kConns; ++c) {
    Client client("127.0.0.1", server.port());
    std::vector<tsdb::SeriesKey> keys(kSeries);
    for (std::size_t s = 0; s < kSeries; ++s) {
      keys[s] = {"conn" + std::to_string(c), "dev0", "m" + std::to_string(s)};
    }
    std::vector<serve::Observation> batch(kSeries);
    for (std::size_t step = 0; step < kSteps; ++step) {
      for (std::size_t s = 0; s < kSeries; ++s) {
        batch[s].key = keys[s];
        batch[s].value = 10.0 + static_cast<double>((3 * c + 5 * s + step) % 7);
      }
      EXPECT_EQ(client.observe(batch), kSeries);
    }
    std::vector<serve::Prediction> predictions;
    client.predict(keys, predictions);
    EXPECT_EQ(predictions.size(), kSeries);
    for (const auto& p : predictions) {
      bits.push_back(p.ready ? 1 : 0);
      bits.push_back(std::bit_cast<std::uint64_t>(p.value));
      bits.push_back(p.label);
      bits.push_back(std::bit_cast<std::uint64_t>(p.uncertainty));
    }
  }
  server.stop();
  return bits;
}

TEST(ReusePortTest, MultiLoopMatchesSingleLoopBitIdentical) {
  bool unsupported = false;
  const auto baseline = run_workload(AcceptMode::kHandoff, 1, unsupported);
  ASSERT_FALSE(unsupported);  // handoff has no kernel prerequisite
  ASSERT_FALSE(baseline.empty());

  const auto multi = run_workload(AcceptMode::kReusePort, 4, unsupported);
  if (unsupported) GTEST_SKIP() << "kernel lacks SO_REUSEPORT";
  EXPECT_EQ(multi, baseline);
}

TEST(ReusePortTest, InjectedPartialWritesStayBitIdentical) {
  // Same parity claim with every server send clamped to 9 bytes, so every
  // reply frame crosses several partial-writev resumes before reaching the
  // client whole.
  bool unsupported = false;
  const auto baseline = run_workload(AcceptMode::kHandoff, 1, unsupported);
  ASSERT_FALSE(unsupported);

  TransferClamp clamp(9);
  const auto clamped = run_workload(AcceptMode::kReusePort, 4, unsupported);
  if (unsupported) GTEST_SKIP() << "kernel lacks SO_REUSEPORT";
  EXPECT_EQ(clamped, baseline);
}

class BackpressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<serve::PredictionEngine>(
        predictors::make_paper_pool(5), tiny_config());
    ServerConfig config;
    config.event_threads = 1;
    // A cap far below one predict reply, so the server parks the connection
    // after every reply and must resume the paused read itself — the ET
    // invariant the header comment promises.
    config.write_backpressure_bytes = 256;
    server_ = std::make_unique<Server>(*engine_, config);
    server_->start();
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<serve::PredictionEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(BackpressureTest, SlowReaderLosesNothingUnderPartialWrites) {
  // 16 pipelined predict requests x 32 keys: each reply (~800 bytes) alone
  // exceeds the 256-byte backpressure cap, and the 33-byte transfer clamp
  // forces every flush to end mid-frame.  The slow reader then collects:
  // every reply must arrive, in request order, bit-exact enough to decode.
  TransferClamp clamp(33);
  Client client("127.0.0.1", server_->port());
  const std::size_t kKeys = 32;
  const std::uint64_t kRequests = 16;
  std::vector<tsdb::SeriesKey> keys(kKeys);
  for (std::size_t s = 0; s < kKeys; ++s) {
    keys[s] = {"bp", "dev0", "m" + std::to_string(s)};
  }
  persist::io::Writer body;
  std::vector<std::byte> burst;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    encode_predict_request(body, id, keys);
    append_frame(burst, body.bytes());
  }
  client.send_raw(burst);

  // Stay slow: let the server hit the cap and park before we read a byte.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<std::byte> reply;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    const FrameHeader h = client.read_reply(reply);
    EXPECT_EQ(h.type, MsgType::kPredictReply);
    EXPECT_EQ(h.id, id);
    persist::io::Reader r(reply);
    (void)decode_header(r);
    std::vector<serve::Prediction> predictions;
    decode_predict_reply(r, predictions);
    EXPECT_EQ(predictions.size(), kKeys);
  }
  EXPECT_GE(server_->stats().frames_out, kRequests);

  // No busy-spin: with everything drained and the connection idle, the
  // (edge-triggered) loop must block in epoll_wait, not whirl on a
  // level-triggered EPOLLOUT.  A spinning loop racks up thousands of
  // wakeups in 150 ms.
  const std::uint64_t before = server_->loop_stats()[0].wakeups;
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::uint64_t after = server_->loop_stats()[0].wakeups;
  EXPECT_LE(after - before, 10u);
}

TEST_F(BackpressureTest, CorruptFrameUnderClampStillErrorsAndCloses) {
  // The error-then-close path also rides the clamped writev: the kBadFrame
  // reply crosses partial writes, must still arrive whole, and the close
  // must wait for it.
  TransferClamp clamp(7);
  Client client("127.0.0.1", server_->port());
  client.ping();  // valid traffic first, over the clamped path
  std::vector<std::byte> garbage(48);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::byte>(0xA5 ^ i);
  }
  client.send_raw(garbage);
  std::vector<std::byte> reply;
  const FrameHeader h = client.read_reply(reply);
  EXPECT_EQ(h.type, MsgType::kError);
  persist::io::Reader r(reply);
  (void)decode_header(r);
  EXPECT_EQ(decode_error(r).code, ErrorCode::kBadFrame);
  EXPECT_TRUE(client.eof());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(BackpressureTest, HalfClosedPeerGetsEarnedRepliesThenTeardown) {
  // shutdown(SHUT_WR) raises EPOLLRDHUP at the server.  The contract: stop
  // reading promptly, but deliver every reply already earned, then close.
  const Fd fd = connect_tcp("127.0.0.1", server_->port());
  persist::io::Writer body;
  std::vector<std::byte> burst;
  const std::uint64_t kPings = 3;
  for (std::uint64_t id = 1; id <= kPings; ++id) {
    encode_ping(body, id);
    append_frame(burst, body.bytes());
  }
  std::size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t w = ::send(fd.get(), burst.data() + sent,
                             burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << "send failed: " << std::strerror(errno);
    sent += static_cast<std::size_t>(w);
  }
  ASSERT_EQ(::shutdown(fd.get(), SHUT_WR), 0);

  FrameDecoder decoder;
  std::uint64_t next_pong = 1;
  bool eof = false;
  std::byte buf[4096];
  while (!eof || next_pong <= kPings) {
    std::span<const std::byte> frame;
    const FrameDecoder::Status status = decoder.next(frame);
    ASSERT_NE(status, FrameDecoder::Status::kCorrupt);
    if (status == FrameDecoder::Status::kFrame) {
      persist::io::Reader r(frame);
      const FrameHeader h = decode_header(r);
      EXPECT_EQ(h.type, MsgType::kPong);
      EXPECT_EQ(h.id, next_pong);
      ++next_pong;
      continue;
    }
    ASSERT_FALSE(eof) << "connection closed before every reply arrived";
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n == 0) {
      eof = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << "read failed: " << std::strerror(errno);
    decoder.feed(std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
  }
  EXPECT_EQ(next_pong, kPings + 1);

  // The half-closed connection is torn down once its replies drained, not
  // held until process exit.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server_->stats().connections_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server_->stats().connections_closed, 1u);
}

}  // namespace
}  // namespace larp::net
