// Tests for the dense solver and least squares.
#include "linalg/lstsq.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::linalg {
namespace {

TEST(SolveDense, KnownSystem) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  const auto x = solve_dense(Matrix{{2, 1}, {1, -1}}, Vector{5, 1});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveDense, NeedsPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_dense(Matrix{{0, 1}, {1, 0}}, Vector{3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveDense, Validation) {
  EXPECT_THROW((void)solve_dense(Matrix(2, 3), Vector{1, 2}), InvalidArgument);
  EXPECT_THROW((void)solve_dense(Matrix(2, 2), Vector{1}), InvalidArgument);
  EXPECT_THROW((void)solve_dense(Matrix{{1, 1}, {1, 1}}, Vector{1, 2}),
               NumericalError);
}

TEST(SolveDense, RandomRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + trial % 6;
    Matrix a(n, n);
    for (auto& v : a.data()) v = rng.uniform(-2, 2);
    Vector truth(n);
    for (auto& v : truth) v = rng.uniform(-3, 3);
    const Vector b = a * truth;
    const auto x = solve_dense(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-8);
  }
}

TEST(LeastSquares, ExactSystemRecovered) {
  // Overdetermined but consistent: y = 3x - 1 sampled at 5 points.
  Matrix a(5, 2);
  Vector b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = i;
    a(i, 1) = 1.0;
    b[i] = 3.0 * i - 1.0;
  }
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-6);
  EXPECT_NEAR(x[1], -1.0, 1e-6);
}

TEST(LeastSquares, NoisyRegressionCloseToTruth) {
  Rng rng(2);
  const double slope = 1.5, intercept = -2.0;
  Matrix a(500, 2);
  Vector b(500);
  for (std::size_t i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 5);
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = slope * x + intercept + rng.normal(0.0, 0.2);
  }
  const auto coeffs = solve_least_squares(a, b);
  EXPECT_NEAR(coeffs[0], slope, 0.02);
  EXPECT_NEAR(coeffs[1], intercept, 0.03);
}

TEST(LeastSquares, ResidualIsOrthogonalToColumns) {
  Rng rng(3);
  Matrix a(50, 3);
  Vector b(50);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x = solve_least_squares(a, b, 0.0);
  // r = b - a x must satisfy aᵀ r ~ 0 (normal equations).
  Vector residual = b;
  const Vector ax = a * x;
  for (std::size_t i = 0; i < residual.size(); ++i) residual[i] -= ax[i];
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(dot(a.col(c), residual), 0.0, 1e-8) << "column " << c;
  }
}

TEST(LeastSquares, RidgeHandlesCollinearColumns) {
  // Two identical columns: singular normal equations without the ridge.
  Matrix a(10, 2);
  Vector b(10);
  for (std::size_t i = 0; i < 10; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = static_cast<double>(i);
    b[i] = 2.0 * static_cast<double>(i);
  }
  const auto x = solve_least_squares(a, b);  // default ridge
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-4);       // any split summing to 2 is fine
}

TEST(LeastSquares, Validation) {
  EXPECT_THROW((void)solve_least_squares(Matrix(3, 2), Vector{1, 2}),
               InvalidArgument);
  EXPECT_THROW((void)solve_least_squares(Matrix(2, 3), Vector{1, 2}),
               InvalidArgument);
}

}  // namespace
}  // namespace larp::linalg
