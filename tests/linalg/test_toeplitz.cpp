// Tests for the Levinson–Durbin recursion and Yule–Walker fitting.
#include "linalg/toeplitz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::linalg {
namespace {

// Direct dense solve of the Yule-Walker system R psi = r for cross-checking
// (Gaussian elimination, no pivot issues for positive-definite R).
Vector solve_yule_walker_dense(const std::vector<double>& acf, std::size_t p) {
  Matrix r_matrix(p, p);
  Vector rhs(p);
  for (std::size_t i = 0; i < p; ++i) {
    rhs[i] = acf[i + 1];
    for (std::size_t j = 0; j < p; ++j) {
      r_matrix(i, j) = acf[i > j ? i - j : j - i];
    }
  }
  // Gaussian elimination.
  for (std::size_t col = 0; col < p; ++col) {
    for (std::size_t row = col + 1; row < p; ++row) {
      const double f = r_matrix(row, col) / r_matrix(col, col);
      for (std::size_t k = col; k < p; ++k) r_matrix(row, k) -= f * r_matrix(col, k);
      rhs[row] -= f * rhs[col];
    }
  }
  Vector x(p, 0.0);
  for (std::size_t i = p; i-- > 0;) {
    double acc = rhs[i];
    for (std::size_t k = i + 1; k < p; ++k) acc -= r_matrix(i, k) * x[k];
    x[i] = acc / r_matrix(i, i);
  }
  return x;
}

TEST(Levinson, Ar1Analytic) {
  // For AR(1) with parameter phi, acf = {1, phi, phi^2, ...};
  // Levinson must recover psi_1 = phi exactly at order 1.
  const double phi = 0.6;
  const std::vector<double> acf{1.0, phi};
  const auto sol = levinson_durbin(acf);
  ASSERT_EQ(sol.coefficients.size(), 1u);
  EXPECT_NEAR(sol.coefficients[0], phi, 1e-14);
  EXPECT_NEAR(sol.innovation_variance, 1.0 - phi * phi, 1e-14);
  EXPECT_NEAR(sol.reflection[0], phi, 1e-14);
}

TEST(Levinson, Ar1FittedAtHigherOrderHasZeroExtraCoefficients) {
  // acf of a true AR(1) fitted at order 3: psi = (phi, 0, 0).
  const double phi = 0.7;
  const std::vector<double> acf{1.0, phi, phi * phi, phi * phi * phi};
  const auto sol = levinson_durbin(acf);
  ASSERT_EQ(sol.coefficients.size(), 3u);
  EXPECT_NEAR(sol.coefficients[0], phi, 1e-12);
  EXPECT_NEAR(sol.coefficients[1], 0.0, 1e-12);
  EXPECT_NEAR(sol.coefficients[2], 0.0, 1e-12);
}

TEST(Levinson, MatchesDenseSolveOnRandomAcf) {
  // Generate a valid acf from a random series, compare against dense solve.
  Rng rng(31337);
  std::vector<double> series(4000);
  double a = 0.0, b = 0.0;
  for (auto& x : series) {
    const double next = 0.5 * a - 0.3 * b + rng.normal();
    b = a;
    a = next;
    x = next;
  }
  for (std::size_t order : {1u, 2u, 4u, 8u}) {
    const auto acf = stats::autocorrelations(series, order);
    const auto fast = levinson_durbin(acf);
    const auto dense = solve_yule_walker_dense(acf, order);
    for (std::size_t i = 0; i < order; ++i) {
      EXPECT_NEAR(fast.coefficients[i], dense[i], 1e-9)
          << "order " << order << " coefficient " << i;
    }
  }
}

TEST(Levinson, RejectsShortInput) {
  EXPECT_THROW((void)levinson_durbin(std::vector<double>{1.0}), InvalidArgument);
}

TEST(Levinson, RejectsNonPositiveR0) {
  EXPECT_THROW((void)levinson_durbin(std::vector<double>{0.0, 0.5}),
               NumericalError);
  EXPECT_THROW((void)levinson_durbin(std::vector<double>{-1.0, 0.5}),
               NumericalError);
}

TEST(Levinson, PerfectlyPredictableSeriesClampsVariance) {
  // acf of a deterministic alternating series: r_k = (-1)^k.
  const std::vector<double> acf{1.0, -1.0, 1.0};
  const auto sol = levinson_durbin(acf);
  EXPECT_DOUBLE_EQ(sol.innovation_variance, 0.0);
  EXPECT_NEAR(sol.coefficients[0], -1.0, 1e-12);
}

TEST(YuleWalker, RecoversAr2Coefficients) {
  Rng rng(4242);
  const double psi1 = 0.5, psi2 = -0.3;
  std::vector<double> series(60000);
  double a = 0.0, b = 0.0;
  for (auto& x : series) {
    const double next = psi1 * a + psi2 * b + rng.normal();
    b = a;
    a = next;
    x = next;
  }
  const auto sol = yule_walker(series, 2);
  EXPECT_NEAR(sol.coefficients[0], psi1, 0.02);
  EXPECT_NEAR(sol.coefficients[1], psi2, 0.02);
  // yule_walker runs on autocorrelations, so the innovation variance is the
  // FRACTION of series variance left unexplained:
  //   1 - (psi1*rho1 + psi2*rho2), with rho1 = psi1/(1-psi2) = 0.3846 and
  //   rho2 = psi1*rho1 + psi2 = -0.1077  ->  0.7754.
  EXPECT_NEAR(sol.innovation_variance, 0.7754, 0.02);
  // Equivalent absolute statement: fraction x measured variance = sigma^2.
  EXPECT_NEAR(sol.innovation_variance * stats::variance(series), 1.0, 0.05);
}

TEST(YuleWalker, ConstantSeriesDegeneratesToZeroCoefficients) {
  const std::vector<double> series(100, 5.0);
  const auto sol = yule_walker(series, 4);
  for (double c : sol.coefficients) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_DOUBLE_EQ(sol.innovation_variance, 0.0);
}

TEST(YuleWalker, ArgumentValidation) {
  const std::vector<double> series{1, 2, 3};
  EXPECT_THROW((void)yule_walker(series, 0), InvalidArgument);
  EXPECT_THROW((void)yule_walker(series, 3), InvalidArgument);
  EXPECT_NO_THROW((void)yule_walker(series, 2));
}

TEST(SelectArOrder, Validation) {
  const std::vector<double> series{1, 2, 3};
  EXPECT_THROW((void)select_ar_order(series, 0), InvalidArgument);
  EXPECT_THROW((void)select_ar_order(series, 3), InvalidArgument);
}

TEST(SelectArOrder, ConstantSeriesReturnsOne) {
  EXPECT_EQ(select_ar_order(std::vector<double>(100, 2.0), 8), 1u);
}

TEST(SelectArOrder, FindsTrueArOrder) {
  // FPE should identify the generating order for clean AR(p) processes.
  Rng rng(2024);
  {
    std::vector<double> series(20000);
    double prev = 0.0;
    for (auto& x : series) {
      prev = 0.7 * prev + rng.normal();
      x = prev;
    }
    EXPECT_EQ(select_ar_order(series, 10), 1u);
  }
  {
    std::vector<double> series(40000);
    double a = 0.0, b = 0.0;
    for (auto& x : series) {
      const double next = 0.5 * a - 0.4 * b + rng.normal();
      b = a;
      a = next;
      x = next;
    }
    EXPECT_EQ(select_ar_order(series, 10), 2u);
  }
}

TEST(SelectArOrder, WhiteNoiseGainIsNegligible) {
  // On pure noise the FPE landscape is flat and the argmin lands on a
  // spurious lag; what must hold is that whatever order it picks buys
  // essentially nothing over order 1.
  Rng rng(2025);
  std::vector<double> noise(20000);
  for (auto& x : noise) x = rng.normal();
  const std::size_t chosen = select_ar_order(noise, 16);
  const double var_chosen = yule_walker(noise, chosen).innovation_variance;
  const double var_one = yule_walker(noise, 1).innovation_variance;
  EXPECT_GT(var_chosen, 0.995 * var_one);
}

// Property: reflection coefficients lie in [-1, 1] for valid acfs, and the
// innovation variance never increases with order.
class LevinsonStability : public ::testing::TestWithParam<int> {};

TEST_P(LevinsonStability, ReflectionBoundedAndVarianceMonotone) {
  Rng rng(GetParam() * 1009);
  std::vector<double> series(3000);
  double prev = 0.0;
  for (auto& x : series) {
    prev = rng.uniform(0.2, 0.9) * prev + rng.normal();
    x = prev;
  }
  const auto acf = stats::autocorrelations(series, 12);
  const auto sol = levinson_durbin(acf);
  for (double k : sol.reflection) {
    EXPECT_LE(std::abs(k), 1.0 + 1e-12);
  }
  // Re-run at increasing orders: variance must be non-increasing.
  double last_var = acf[0];
  for (std::size_t order = 1; order <= 12; ++order) {
    const auto partial = levinson_durbin(
        std::span<const double>(acf.data(), order + 1));
    EXPECT_LE(partial.innovation_variance, last_var + 1e-12);
    last_var = partial.innovation_variance;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevinsonStability, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace larp::linalg
