// Tests for the vectorized hot-path kernels: correctness against naive
// references across awkward tail sizes, the dispatch-override API, and the
// bit-identity contract between the scalar and AVX2 variants.
#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::linalg::kernels {
namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(0.0, 3.0);
  return xs;
}

double naive_dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double naive_sqdist(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// Sizes chosen to hit the empty case, pure-tail cases (< one 4-wide step),
// exact multiples of the vector width, and multiples plus every tail length.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33};

TEST(Kernels, DotMatchesNaive) {
  for (std::size_t n : kSizes) {
    const auto a = random_vec(n, 11 + n);
    const auto b = random_vec(n, 29 + n);
    const double expected = naive_dot(a, b);
    EXPECT_NEAR(dot(a.data(), b.data(), n), expected,
                1e-12 * (1.0 + std::abs(expected)))
        << "n=" << n;
  }
}

TEST(Kernels, DotCenteredMatchesNaive) {
  for (std::size_t n : kSizes) {
    const auto a = random_vec(n, 101 + n);
    const auto b = random_vec(n, 211 + n);
    const double center = 0.75;
    double expected = 0.0;
    for (std::size_t i = 0; i < n; ++i) expected += a[i] * (b[i] - center);
    EXPECT_NEAR(dot_centered(a.data(), b.data(), n, center), expected,
                1e-12 * (1.0 + std::abs(expected)))
        << "n=" << n;
  }
}

TEST(Kernels, SquaredDistanceMatchesNaive) {
  for (std::size_t n : kSizes) {
    const auto a = random_vec(n, 3 + n);
    const auto b = random_vec(n, 7 + n);
    const double expected = naive_sqdist(a, b);
    EXPECT_NEAR(squared_distance(a.data(), b.data(), n), expected,
                1e-12 * (1.0 + expected))
        << "n=" << n;
    // A distance is non-negative and zero against itself, exactly.
    EXPECT_EQ(squared_distance(a.data(), a.data(), n), 0.0);
  }
}

TEST(Kernels, BatchSquaredDistanceMatchesPerPointKernel) {
  // dims == 2 exercises the vectorized fast path (including the < 4-point
  // tail); the other dims exercise the generic per-point path.
  for (std::size_t dims : {1UL, 2UL, 3UL, 5UL, 8UL}) {
    for (std::size_t n_points : {0UL, 1UL, 2UL, 3UL, 4UL, 5UL, 7UL, 33UL}) {
      const auto points = random_vec(n_points * dims, 71 + n_points + dims);
      const auto query = random_vec(dims, 73 + dims);
      std::vector<double> out(n_points, std::nan(""));
      batch_squared_distance(points.data(), n_points, dims, query.data(),
                             out.data());
      for (std::size_t i = 0; i < n_points; ++i) {
        // Bit-identical to the per-point kernel, per the header contract.
        EXPECT_EQ(out[i],
                  squared_distance(points.data() + i * dims, query.data(), dims))
            << "dims=" << dims << " i=" << i;
      }
    }
  }
}

TEST(Kernels, AxpyMatchesNaive) {
  for (std::size_t n : kSizes) {
    const auto x = random_vec(n, 13 + n);
    auto y = random_vec(n, 17 + n);
    auto expected = y;
    const double alpha = -1.25;
    for (std::size_t i = 0; i < n; ++i) expected[i] += alpha * x[i];
    axpy(alpha, x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y[i], expected[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, ZscoreRoundTrip) {
  for (std::size_t n : kSizes) {
    const auto x = random_vec(n, 41 + n);
    const double mean = 2.5, stddev = 1.75;
    std::vector<double> z(n), back(n);
    zscore(x.data(), n, mean, stddev, z.data());
    for (std::size_t i = 0; i < n; ++i) {
      // Elementwise ops: exactly the scalar normalizer's (x - mean) / stddev.
      EXPECT_EQ(z[i], (x[i] - mean) / stddev) << "n=" << n << " i=" << i;
    }
    zscore_inverse(z.data(), n, mean, stddev, back.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(back[i], mean + z[i] * stddev) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, ProjectCenteredMatchesNaive) {
  // Rectangular shapes including degenerate dimensions.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {3, 2}, {5, 2}, {8, 8}, {16, 3}, {17, 5}, {2, 9}};
  for (const auto& [m, n] : shapes) {
    const auto x = random_vec(m, 51 + m);
    const auto mu = random_vec(m, 53 + m);
    const auto basis = random_vec(m * n, 57 + m * n);  // row-major m x n
    std::vector<double> out(n, std::nan(""));
    project_centered(x.data(), mu.data(), basis.data(), m, n, out.data());
    for (std::size_t j = 0; j < n; ++j) {
      double expected = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        expected += (x[i] - mu[i]) * basis[i * n + j];
      }
      EXPECT_NEAR(out[j], expected, 1e-12 * (1.0 + std::abs(expected)))
          << "m=" << m << " n=" << n << " j=" << j;
    }
  }
}

TEST(Kernels, DispatchOverrideApi) {
  const Isa detected = detected_isa();
  EXPECT_EQ(active_isa(), detected);

  force_isa(Isa::Scalar);
  EXPECT_EQ(active_isa(), Isa::Scalar);
  force_isa(std::nullopt);
  EXPECT_EQ(active_isa(), detected);

  if (avx2_available()) {
    IsaOverrideGuard guard(Isa::Avx2);
    EXPECT_EQ(active_isa(), Isa::Avx2);
  } else {
    EXPECT_THROW(force_isa(Isa::Avx2), InvalidArgument);
    EXPECT_EQ(active_isa(), detected);
  }
  EXPECT_EQ(active_isa(), detected);
}

// The load-bearing contract: both variants accumulate in the same four lanes,
// reduce in the same order, and never contract into FMA — so every kernel is
// bit-identical across ISAs, and forecasts cannot depend on the host CPU.
TEST(Kernels, ScalarAndAvx2AreBitIdentical) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host/build";
  for (std::size_t n : kSizes) {
    const auto a = random_vec(n, 61 + n);
    const auto b = random_vec(n, 67 + n);

    double dot_s, dotc_s, dist_s;
    std::vector<double> axpy_s = b, z_s(n), zi_s(n);
    std::vector<double> batch2_s(n / 2), batch3_s(n / 3);
    {
      IsaOverrideGuard guard(Isa::Scalar);
      dot_s = dot(a.data(), b.data(), n);
      dotc_s = dot_centered(a.data(), b.data(), n, 0.5);
      dist_s = squared_distance(a.data(), b.data(), n);
      axpy(1.5, a.data(), axpy_s.data(), n);
      zscore(a.data(), n, 0.25, 2.0, z_s.data());
      zscore_inverse(a.data(), n, 0.25, 2.0, zi_s.data());
      batch_squared_distance(a.data(), n / 2, 2, b.data(), batch2_s.data());
      batch_squared_distance(a.data(), n / 3, 3, b.data(), batch3_s.data());
    }

    double dot_v, dotc_v, dist_v;
    std::vector<double> axpy_v = b, z_v(n), zi_v(n);
    std::vector<double> batch2_v(n / 2), batch3_v(n / 3);
    {
      IsaOverrideGuard guard(Isa::Avx2);
      dot_v = dot(a.data(), b.data(), n);
      dotc_v = dot_centered(a.data(), b.data(), n, 0.5);
      dist_v = squared_distance(a.data(), b.data(), n);
      axpy(1.5, a.data(), axpy_v.data(), n);
      zscore(a.data(), n, 0.25, 2.0, z_v.data());
      zscore_inverse(a.data(), n, 0.25, 2.0, zi_v.data());
      batch_squared_distance(a.data(), n / 2, 2, b.data(), batch2_v.data());
      batch_squared_distance(a.data(), n / 3, 3, b.data(), batch3_v.data());
    }

    EXPECT_EQ(dot_s, dot_v) << "n=" << n;
    EXPECT_EQ(dotc_s, dotc_v) << "n=" << n;
    EXPECT_EQ(dist_s, dist_v) << "n=" << n;
    EXPECT_EQ(axpy_s, axpy_v) << "n=" << n;
    EXPECT_EQ(z_s, z_v) << "n=" << n;
    EXPECT_EQ(zi_s, zi_v) << "n=" << n;
    EXPECT_EQ(batch2_s, batch2_v) << "n=" << n;
    EXPECT_EQ(batch3_s, batch3_v) << "n=" << n;
  }
}

}  // namespace
}  // namespace larp::linalg::kernels
