// Tests for the Jacobi symmetric eigensolver.
#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace larp::linalg {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.uniform(-5, 5);
      m(r, c) = v;
      m(c, r) = v;
    }
  }
  return m;
}

TEST(Eigen, DiagonalMatrixEigenvaluesSortedDescending) {
  const Matrix d{{1, 0, 0}, {0, 5, 0}, {0, 0, 3}};
  const auto eig = eigen_symmetric(d);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1), (1,-1).
  const Matrix m{{2, 1}, {1, 2}};
  const auto eig = eigen_symmetric(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(eig.vectors(1, 0)), inv_sqrt2, 1e-10);
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW((void)eigen_symmetric(Matrix(2, 3)), InvalidArgument);
}

TEST(Eigen, RejectsAsymmetric) {
  const Matrix m{{1, 2}, {0, 1}};
  EXPECT_THROW((void)eigen_symmetric(m), InvalidArgument);
}

TEST(Eigen, IdentityHasUnitEigenvalues) {
  const auto eig = eigen_symmetric(Matrix::identity(4));
  for (double v : eig.values) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Eigen, SignConventionDeterministic) {
  const Matrix m{{4, 1}, {1, 3}};
  const auto a = eigen_symmetric(m);
  const auto b = eigen_symmetric(m);
  EXPECT_EQ(a.vectors, b.vectors);
  // Largest-magnitude component of each eigenvector is positive.
  for (std::size_t j = 0; j < 2; ++j) {
    double best = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      if (std::abs(a.vectors(i, j)) > std::abs(best)) best = a.vectors(i, j);
    }
    EXPECT_GT(best, 0.0);
  }
}

// Property suite over random symmetric matrices of several sizes.
class EigenProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EigenProperty, ReconstructsAndIsOrthonormal) {
  const auto [size, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + size);
  const Matrix a = random_symmetric(size, rng);
  const auto eig = eigen_symmetric(a);

  const std::size_t n = a.rows();
  // 1. Orthonormal eigenvectors: V^T V = I.
  const Matrix vtv = eig.vectors.transposed() * eig.vectors;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(vtv(r, c), r == c ? 1.0 : 0.0, 1e-9)
          << "V^T V not identity at (" << r << "," << c << ")";
    }
  }
  // 2. Reconstruction: V diag(lambda) V^T = A.
  Matrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = eig.values[i];
  const Matrix rebuilt = eig.vectors * lambda * eig.vectors.transposed();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-8);
    }
  }
  // 3. Sorted descending.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i] - 1e-12);
  }
  // 4. Trace preserved (sum of eigenvalues == trace).
  double trace = 0.0, eig_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    eig_sum += eig.values[i];
  }
  EXPECT_NEAR(trace, eig_sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, EigenProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 32),
                       ::testing::Values(1, 2, 3)));

TEST(Eigen, RankDeficientCovarianceStyleMatrix) {
  // Outer product v v^T has one non-zero eigenvalue = |v|^2.
  const Vector v{1, 2, 2};
  Matrix m(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v[r] * v[c];
  }
  const auto eig = eigen_symmetric(m);
  EXPECT_NEAR(eig.values[0], 9.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 0.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 0.0, 1e-10);
}

TEST(Eigen, EmptyMatrix) {
  const auto eig = eigen_symmetric(Matrix(0, 0));
  EXPECT_TRUE(eig.values.empty());
}

}  // namespace
}  // namespace larp::linalg
