// Tests for covariance estimation.
#include "linalg/covariance.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp::linalg {
namespace {

TEST(Covariance, ColumnMeans) {
  const Matrix samples{{1, 10}, {3, 20}, {5, 30}};
  const auto means = column_means(samples);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
  EXPECT_THROW((void)column_means(Matrix(0, 3)), InvalidArgument);
}

TEST(Covariance, DiagonalMatchesSampleVariance) {
  Rng rng(77);
  Matrix samples(200, 3);
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    samples(r, 0) = rng.normal(0, 1);
    samples(r, 1) = rng.normal(5, 2);
    samples(r, 2) = rng.normal(-3, 0.5);
  }
  const Matrix cov = covariance(samples);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(cov(c, c), stats::sample_variance(samples.col(c)), 1e-10);
  }
}

TEST(Covariance, PerfectlyCorrelatedColumns) {
  // y = 2x => cov(x,y) = 2 var(x).
  Matrix samples(50, 2);
  for (std::size_t r = 0; r < 50; ++r) {
    const double x = static_cast<double>(r);
    samples(r, 0) = x;
    samples(r, 1) = 2.0 * x;
  }
  const Matrix cov = covariance(samples);
  EXPECT_NEAR(cov(0, 1), 2.0 * cov(0, 0), 1e-9);
  EXPECT_NEAR(cov(1, 1), 4.0 * cov(0, 0), 1e-9);
}

TEST(Covariance, IndependentColumnsNearZeroOffDiagonal) {
  Rng rng(78);
  Matrix samples(20000, 2);
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    samples(r, 0) = rng.normal();
    samples(r, 1) = rng.normal();
  }
  const Matrix cov = covariance(samples);
  EXPECT_NEAR(cov(0, 1), 0.0, 0.03);
}

TEST(Covariance, SymmetricResult) {
  Rng rng(79);
  Matrix samples(40, 5);
  for (auto& v : samples.data()) v = rng.uniform(-1, 1);
  const Matrix cov = covariance(samples);
  EXPECT_TRUE(cov.is_symmetric(1e-12));
}

TEST(Covariance, PrecomputedMeansAgree) {
  const Matrix samples{{1, 2}, {3, 4}, {5, 9}};
  const auto means = column_means(samples);
  EXPECT_EQ(covariance(samples), covariance(samples, means));
  EXPECT_THROW((void)covariance(samples, Vector{1.0}), InvalidArgument);
}

TEST(Covariance, SingleRowUsesNDenominator) {
  const Matrix samples{{1, 2}};
  const Matrix cov = covariance(samples);
  EXPECT_DOUBLE_EQ(cov(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cov(1, 1), 0.0);
}

TEST(Covariance, CenteredRemovesMeans) {
  const Matrix samples{{1, 10}, {3, 20}};
  Vector means;
  const Matrix c = centered(samples, means);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(c(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 5.0);
  const auto post_means = column_means(c);
  EXPECT_NEAR(post_means[0], 0.0, 1e-12);
  EXPECT_NEAR(post_means[1], 0.0, 1e-12);
}

}  // namespace
}  // namespace larp::linalg
