// Tests for the dense matrix substrate.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace larp::linalg {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
  const Matrix filled(2, 2, 7.5);
  EXPECT_DOUBLE_EQ(filled(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_THROW((void)Matrix::from_rows({{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, BoundsCheckedAccess) {
  Matrix m(2, 2);
  EXPECT_NO_THROW((void)m.at(1, 1));
  EXPECT_THROW((void)m.at(2, 0), InvalidArgument);
  EXPECT_THROW((void)m.at(0, 2), InvalidArgument);
}

TEST(Matrix, RowSpanIsMutableView) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
  EXPECT_THROW((void)m.row(2), InvalidArgument);
}

TEST(Matrix, ColumnCopy) {
  const Matrix m{{1, 2}, {3, 4}};
  const auto col = m.col(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[1], 4.0);
}

TEST(Matrix, Transpose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatch) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)(a * b), InvalidArgument);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a * Matrix::identity(3), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Vector x{5, 6};
  const Vector y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
  EXPECT_THROW((void)(a * Vector{1, 2, 3}), InvalidArgument);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{10, 20}, {30, 40}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 44.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 9.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
  EXPECT_THROW(a += Matrix(3, 2), InvalidArgument);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, SymmetryChecks) {
  const Matrix sym{{1, 2}, {2, 1}};
  const Matrix asym{{1, 2}, {3, 1}};
  EXPECT_TRUE(sym.is_symmetric());
  EXPECT_FALSE(asym.is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
  EXPECT_DOUBLE_EQ(asym.max_off_diagonal(), 3.0);
}

TEST(VectorOps, DotAndNorm) {
  const Vector a{1, 2, 3}, b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm(Vector{3, 4}), 5.0);
  EXPECT_THROW((void)dot(a, Vector{1}), InvalidArgument);
}

TEST(VectorOps, Distances) {
  const Vector a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_THROW((void)squared_distance(a, Vector{1}), InvalidArgument);
}

TEST(Matrix, AppendRowGrowsMatrix) {
  Matrix m(1, 2);
  m(0, 0) = 1.0;
  m.append_row(Vector{3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_THROW(m.append_row(Vector{1.0}), InvalidArgument);
}

TEST(Matrix, AppendRowToEmptyAdoptsWidth) {
  Matrix m;
  m.append_row(Vector{1.0, 2.0, 3.0});
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_THROW(m.append_row(Vector{1.0}), InvalidArgument);
}

TEST(Matrix, DescribeIsInformative) {
  const Matrix m{{1, 2}, {3, 4}};
  const auto desc = m.describe();
  EXPECT_NE(desc.find("2x2"), std::string::npos);
}

}  // namespace
}  // namespace larp::linalg
