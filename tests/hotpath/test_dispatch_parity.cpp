// End-to-end dispatch parity: an entire train + online forecast run produces
// BIT-IDENTICAL results whether the kernels dispatch to the scalar or the
// AVX2 variants.  This is the system-level consequence of the kernel-level
// bit-identity contract (tests/linalg/test_kernels.cpp) — forecasts must not
// depend on the host CPU.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/lar_predictor.hpp"
#include "linalg/kernels.hpp"
#include "predictors/pool.hpp"
#include "util/rng.hpp"

namespace larp::core {
namespace {

namespace kernels = linalg::kernels;

std::vector<double> noisy_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = 0.85 * dev + rng.normal(0.0, 4.0);
    x = 60.0 + dev;
  }
  return xs;
}

struct RunResult {
  std::vector<double> values;
  std::vector<std::size_t> labels;
  std::vector<std::size_t> training_labels;
};

RunResult run_pipeline(kernels::Isa isa, const LarConfig& config) {
  kernels::IsaOverrideGuard guard(isa);
  const auto train = noisy_series(200, 1234);
  const auto live = noisy_series(120, 5678);

  LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(train);

  RunResult result;
  result.training_labels = lar.training_labels();
  for (double value : live) {
    const auto forecast = lar.predict_next();
    result.values.push_back(forecast.value);
    result.labels.push_back(forecast.label);
    lar.observe(value);
  }
  return result;
}

class DispatchParity : public ::testing::TestWithParam<bool> {};

TEST_P(DispatchParity, ScalarAndAvx2ForecastsBitIdentical) {
  if (!kernels::avx2_available()) {
    GTEST_SKIP() << "no AVX2 on this host/build";
  }
  LarConfig config;
  config.knn_backend =
      GetParam() ? ml::KnnBackend::KdTree : ml::KnnBackend::BruteForce;

  const RunResult scalar = run_pipeline(kernels::Isa::Scalar, config);
  const RunResult avx2 = run_pipeline(kernels::Isa::Avx2, config);

  EXPECT_EQ(scalar.training_labels, avx2.training_labels);
  EXPECT_EQ(scalar.labels, avx2.labels);
  ASSERT_EQ(scalar.values.size(), avx2.values.size());
  for (std::size_t i = 0; i < scalar.values.size(); ++i) {
    // operator== on double: exact bit-level agreement, not a tolerance.
    EXPECT_EQ(scalar.values[i], avx2.values[i]) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, DispatchParity, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "KdTree" : "BruteForce";
                         });

}  // namespace
}  // namespace larp::core
