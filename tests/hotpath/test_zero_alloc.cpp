// Asserts the ISSUE's zero-allocation contract: once a trained LarPredictor
// has warmed its scratch capacities, the steady-state observe()/predict_next()
// loop performs ZERO heap allocations.  Counting is done by the global
// operator-new override in alloc_counter.cpp (linked only into this binary).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "alloc_counter.hpp"
#include "core/lar_predictor.hpp"
#include "predictors/pool.hpp"
#include "util/rng.hpp"

namespace larp::core {
namespace {

std::vector<double> ar1_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = 0.8 * dev + rng.normal(0.0, 5.0);
    x = 50.0 + dev;
  }
  return xs;
}

// Drives a predict/observe loop and returns the allocations counted over the
// measured cycles, after `warmup` unmeasured cycles grow every scratch buffer
// to its steady-state capacity (the residual window alone needs 32 resolved
// forecasts, so warmup must comfortably exceed that).
std::size_t allocations_over_steady_state(LarPredictor& lar,
                                          std::span<const double> live,
                                          std::size_t warmup,
                                          std::size_t measured) {
  std::size_t i = 0;
  for (; i < warmup; ++i) {
    (void)lar.predict_next();
    lar.observe(live[i]);
  }
  larp::testing::AllocationCount bracket;
  for (; i < warmup + measured; ++i) {
    (void)lar.predict_next();
    lar.observe(live[i]);
  }
  return bracket.count();
}

class ZeroAllocSteadyState : public ::testing::TestWithParam<LarConfig> {};

TEST_P(ZeroAllocSteadyState, ObservePredictLoopDoesNotAllocate) {
  const auto train = ar1_series(240, 42);
  const auto live = ar1_series(200, 43);

  LarPredictor lar(predictors::make_paper_pool(5), GetParam());
  lar.train(train);

  const std::size_t allocations =
      allocations_over_steady_state(lar, live, /*warmup=*/80, /*measured=*/100);
  EXPECT_EQ(allocations, 0u)
      << "steady-state observe/predict allocated on the heap";
}

LarConfig config_default() { return LarConfig{}; }

LarConfig config_kdtree() {
  LarConfig config;
  config.knn_backend = ml::KnnBackend::KdTree;
  return config;
}

LarConfig config_soft_vote() {
  LarConfig config;
  config.soft_vote = true;
  return config;
}

LarConfig config_pca_space() {
  LarConfig config;
  config.predict_in_pca_space = true;
  return config;
}

LarConfig config_centroid() {
  LarConfig config;
  config.classifier = ClassifierKind::NearestCentroid;
  return config;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ZeroAllocSteadyState,
    ::testing::Values(config_default(), config_kdtree(), config_soft_vote(),
                      config_pca_space(), config_centroid()),
    [](const auto& info) {
      switch (info.index) {
        case 0: return "BruteForce";
        case 1: return "KdTree";
        case 2: return "SoftVote";
        case 3: return "PcaSpaceWindow";
        default: return "NearestCentroid";
      }
    });

// Sanity check on the instrumentation itself: an allocation inside the
// bracket must be counted, so a passing zero-alloc test cannot be the
// counter silently not working.
TEST(AllocationCounter, CountsInsideBracket) {
  larp::testing::AllocationCount bracket;
  auto* p = new std::vector<double>(128);
  delete p;
  EXPECT_GE(bracket.count(), 1u);
}

// Online learning is the documented exception: growing the classifier index
// must allocate eventually, but only for index growth — this test pins the
// contract that the default path stays clean even right after an
// online-learning run warmed the same scratch.
TEST(ZeroAlloc, OnlineLearningOnlyAllocatesForIndexGrowth) {
  const auto train = ar1_series(240, 7);
  const auto live = ar1_series(400, 8);

  LarConfig config;
  config.online_learning = true;
  LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(train);

  // Warm, then measure with online learning active: allocations may happen
  // (index growth), but must be bounded by a few per step, not per-neighbour
  // or per-window temporaries.
  std::size_t i = 0;
  for (; i < 80; ++i) {
    (void)lar.predict_next();
    lar.observe(live[i]);
  }
  larp::testing::AllocationCount bracket;
  const std::size_t measured = 100;
  for (; i < 180; ++i) {
    (void)lar.predict_next();
    lar.observe(live[i]);
  }
  EXPECT_LE(bracket.count(), 4 * measured)
      << "online-learning steps should allocate O(1) for index growth only";
}

}  // namespace
}  // namespace larp::core
