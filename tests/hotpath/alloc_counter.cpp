#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed atomics: the hotpath tests are single-threaded; the atomics only
// guard against background threads (logging, gtest internals) racing the
// counter itself.
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Replaceable global allocation functions ([new.delete]): covering the plain
// and nothrow forms is enough — the aligned forms fall back here only for
// over-aligned types, which the hot path does not allocate.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace larp::testing {

std::size_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

AllocationCount::AllocationCount() {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
}

AllocationCount::~AllocationCount() {
  g_counting.store(false, std::memory_order_relaxed);
}

std::size_t AllocationCount::count() const noexcept {
  return allocation_count();
}

}  // namespace larp::testing
