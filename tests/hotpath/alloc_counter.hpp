// Global-operator-new instrumentation for the zero-allocation tests.
//
// The overriding operator new/delete definitions live in alloc_counter.cpp
// and are linked ONLY into the larp_tests_hotpath binary, so no other test
// target pays for the counting.  Counting is off by default; AllocationCount
// brackets a region and reports how many heap allocations happened inside.
#pragma once

#include <cstddef>

namespace larp::testing {

/// Number of operator-new calls since counting was last enabled.
std::size_t allocation_count() noexcept;

/// RAII bracket: zeroes the counter and enables counting for its lifetime.
class AllocationCount {
 public:
  AllocationCount();
  ~AllocationCount();
  AllocationCount(const AllocationCount&) = delete;
  AllocationCount& operator=(const AllocationCount&) = delete;

  /// Allocations observed since construction.
  [[nodiscard]] std::size_t count() const noexcept;
};

}  // namespace larp::testing
