// Tests for the five-VM trace catalog.
#include "tracegen/catalog.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::tracegen {
namespace {

TEST(Catalog, PaperMetricListMatchesTable2) {
  const auto& metrics = paper_metrics();
  ASSERT_EQ(metrics.size(), 12u);
  EXPECT_EQ(metrics.front(), "CPU_usedsec");
  EXPECT_EQ(metrics.back(), "VD2_write");
}

TEST(Catalog, FiveVmsWithPaperExtractionShapes) {
  const auto& vms = paper_vms();
  ASSERT_EQ(vms.size(), 5u);
  // VM1: 7 days at 30 minutes; VM2-5: 24 h at 5 minutes.
  EXPECT_EQ(vms[0].interval, kThirtyMinutes);
  EXPECT_EQ(vms[0].samples, 336u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(vms[i].interval, kFiveMinutes);
    EXPECT_EQ(vms[i].samples, 288u);
  }
}

TEST(Catalog, VmSpecLookup) {
  EXPECT_EQ(vm_spec("VM3").vm_id, "VM3");
  EXPECT_THROW((void)vm_spec("VM9"), NotFound);
}

TEST(Catalog, DeviceMapping) {
  EXPECT_EQ(device_of_metric("CPU_ready"), "cpu");
  EXPECT_EQ(device_of_metric("Memory_size"), "memory");
  EXPECT_EQ(device_of_metric("NIC2_received"), "nic2");
  EXPECT_EQ(device_of_metric("VD1_write"), "vd1");
  EXPECT_EQ(device_of_metric("load15"), "cpu");
  EXPECT_EQ(device_of_metric("PktIn"), "nic1");
  EXPECT_THROW((void)device_of_metric("bogus"), NotFound);
}

TEST(Catalog, EveryVmMetricPairHasAModel) {
  for (const auto& vm : paper_vms()) {
    for (const auto& metric : paper_metrics()) {
      EXPECT_NO_THROW((void)make_metric_model(vm.vm_id, metric))
          << vm.vm_id << "/" << metric;
    }
  }
  // Fig. 4/5 special traces live on VM2 only.
  EXPECT_NO_THROW((void)make_metric_model("VM2", "load15"));
  EXPECT_NO_THROW((void)make_metric_model("VM2", "PktIn"));
  EXPECT_THROW((void)make_metric_model("VM1", "load15"), NotFound);
  EXPECT_THROW((void)make_metric_model("VM9", "CPU_ready"), NotFound);
}

TEST(Catalog, TracesAreDeterministicPerSeed) {
  const auto a = make_trace("VM2", "CPU_usedsec", 7);
  const auto b = make_trace("VM2", "CPU_usedsec", 7);
  const auto c = make_trace("VM2", "CPU_usedsec", 8);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.values, c.values);
}

TEST(Catalog, DistinctMetricsGetDistinctStreams) {
  const auto a = make_trace("VM4", "VD1_read", 7);
  const auto b = make_trace("VM4", "VD1_write", 7);
  EXPECT_NE(a.values, b.values);
}

TEST(Catalog, TraceShapesFollowVmSpec) {
  const auto vm1 = make_trace("VM1", "CPU_usedsec", 1);
  EXPECT_EQ(vm1.size(), 336u);
  EXPECT_EQ(vm1.axis.step(), kThirtyMinutes);
  const auto vm5 = make_trace("VM5", "CPU_usedsec", 1);
  EXPECT_EQ(vm5.size(), 288u);
  EXPECT_EQ(vm5.axis.step(), kFiveMinutes);
  const auto custom = make_trace("VM5", "CPU_usedsec", 1, 100);
  EXPECT_EQ(custom.size(), 100u);
}

TEST(Catalog, IdleDevicesAreConstant) {
  // The NaN cells of Table 3: VM3's unattached devices and VM5's NIC1.
  for (const auto& metric :
       {"Memory_swapped", "NIC2_received", "NIC2_transmitted", "VD1_read",
        "VD1_write"}) {
    const auto trace = make_trace("VM3", metric, 3);
    EXPECT_DOUBLE_EQ(stats::variance(trace.values), 0.0) << "VM3/" << metric;
  }
  for (const auto& metric : {"NIC1_received", "NIC1_transmitted", "VD2_read"}) {
    const auto trace = make_trace("VM5", metric, 3);
    EXPECT_DOUBLE_EQ(stats::variance(trace.values), 0.0) << "VM5/" << metric;
  }
}

TEST(Catalog, ActiveMetricsHaveVariance) {
  for (const auto& vm : paper_vms()) {
    const auto cpu = make_trace(vm.vm_id, "CPU_usedsec", 5);
    EXPECT_GT(stats::variance(cpu.values), 0.0) << vm.vm_id;
  }
}

TEST(Catalog, CpuTracesAreAutocorrelated) {
  // Smooth-CPU character preserved through the catalog parameters.
  const auto trace = make_trace("VM3", "CPU_usedsec", 11, 2000);
  EXPECT_GT(stats::autocorrelation(trace.values, 1), 0.5);
}

TEST(Catalog, NicTracesAreBurstier) {
  const auto nic = make_trace("VM2", "NIC1_received", 11, 5000);
  const double med = stats::median(nic.values);
  const double p99 = stats::percentile(nic.values, 99);
  EXPECT_GT(p99, 3.0 * (med + 1.0));
}

TEST(Catalog, SuiteContainsAllTwelveMetrics) {
  const auto suite = make_vm_suite("VM4", 9);
  ASSERT_EQ(suite.size(), 12u);
  for (const auto& [key, series] : suite) {
    EXPECT_EQ(key.vm_id, "VM4");
    EXPECT_EQ(series.size(), 288u);
    EXPECT_EQ(key.device_id, device_of_metric(key.metric));
  }
}

TEST(Catalog, NonNegativeResourceValues) {
  for (const auto& vm : paper_vms()) {
    for (const auto& metric : paper_metrics()) {
      const auto trace = make_trace(vm.vm_id, metric, 13);
      for (double v : trace.values) {
        ASSERT_GE(v, 0.0) << vm.vm_id << "/" << metric;
      }
    }
  }
}

}  // namespace
}  // namespace larp::tracegen
