// Tests for the Hurst estimator and the trace-characterization fingerprint.
#include "tracegen/characterize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tracegen/catalog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace larp {
namespace {

TEST(Hurst, RequiresEnoughPoints) {
  EXPECT_THROW((void)stats::hurst_exponent(std::vector<double>(31, 1.0)),
               InvalidArgument);
}

TEST(Hurst, ConstantSeriesIsNeutral) {
  EXPECT_DOUBLE_EQ(stats::hurst_exponent(std::vector<double>(100, 7.0)), 0.5);
}

TEST(Hurst, WhiteNoiseNearHalf) {
  Rng rng(1);
  std::vector<double> xs(8192);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(stats::hurst_exponent(xs), 0.5, 0.12);
}

TEST(Hurst, PersistentSeriesAboveHalf) {
  // A random walk's R/S scales with H ~ 1 (fully persistent increments).
  Rng rng(2);
  std::vector<double> xs(8192);
  double level = 0.0;
  for (auto& x : xs) {
    level += rng.normal();
    x = level;
  }
  EXPECT_GT(stats::hurst_exponent(xs), 0.8);
}

TEST(Hurst, AntiPersistentSeriesBelowNoiseAndWalk) {
  // Strongly negatively-correlated AR(1): successive deviations cancel.
  // The R/S estimator has a known positive small-sample bias, so assert the
  // ordering (anti-persistent < noise < walk) rather than an absolute bound.
  Rng rng(3);
  std::vector<double> seesaw(8192), noise(8192), walk(8192);
  double prev = 0.0, level = 0.0;
  for (std::size_t i = 0; i < seesaw.size(); ++i) {
    prev = -0.7 * prev + rng.normal();
    seesaw[i] = prev;
    noise[i] = rng.normal();
    level += rng.normal();
    walk[i] = level;
  }
  const double h_seesaw = stats::hurst_exponent(seesaw);
  const double h_noise = stats::hurst_exponent(noise);
  const double h_walk = stats::hurst_exponent(walk);
  EXPECT_LT(h_seesaw, h_noise);
  EXPECT_LT(h_noise, h_walk);
  EXPECT_LT(h_seesaw, 0.5);
}

TEST(Characterize, Validation) {
  EXPECT_THROW((void)tracegen::characterize(std::vector<double>(10, 1.0)),
               InvalidArgument);
}

TEST(Characterize, ConstantTraceFlagged) {
  const auto c = tracegen::characterize(std::vector<double>(100, 2.0));
  EXPECT_TRUE(c.constant);
  EXPECT_EQ(c.family(), "idle");
}

TEST(Characterize, CatalogFamiliesMatchDesign) {
  // The substitution record's per-class characters must be measurable on
  // the traces themselves.
  const auto idle = tracegen::characterize(
      tracegen::make_trace("VM3", "NIC2_received", 1, 500).values);
  EXPECT_EQ(idle.family(), "idle");

  const auto smooth = tracegen::characterize(
      tracegen::make_trace("VM3", "CPU_usedsec", 1, 2000).values);
  EXPECT_GT(smooth.acf1, 0.5);
  EXPECT_FALSE(smooth.constant);

  const auto memory = tracegen::characterize(
      tracegen::make_trace("VM1", "Memory_size", 1, 2000).values);
  EXPECT_GT(memory.acf1, 0.8);          // near-random-walk footprint
  EXPECT_GT(memory.hurst, 0.6);          // persistent

  const auto bursty = tracegen::characterize(
      tracegen::make_trace("VM2", "NIC1_received", 1, 4000).values);
  EXPECT_GT(bursty.spike_ratio, 3.0);    // heavy-tailed network traffic
}

TEST(Characterize, DindaStyleCpuPersistence) {
  // Dinda [6]: host load is strongly correlated over time.  Our smooth CPU
  // class must show persistent Hurst behaviour.
  const auto trace = tracegen::make_trace("VM5", "CPU_usedsec", 5, 4096);
  const auto c = tracegen::characterize(trace.values);
  EXPECT_GT(c.hurst, 0.55);
  EXPECT_GT(c.acf1, 0.5);
}

TEST(Characterize, SpikeRatioSeparatesFamilies) {
  const auto memory = tracegen::characterize(
      tracegen::make_trace("VM1", "Memory_size", 2, 1000).values);
  const auto network = tracegen::characterize(
      tracegen::make_trace("VM2", "NIC1_received", 2, 1000).values);
  EXPECT_LT(memory.spike_ratio, network.spike_ratio);
}

TEST(Characterize, StreamOutputContainsFields) {
  const auto c = tracegen::characterize(
      tracegen::make_trace("VM4", "CPU_usedsec", 3, 500).values);
  std::ostringstream os;
  os << c;
  const auto text = os.str();
  EXPECT_NE(text.find("acf1="), std::string::npos);
  EXPECT_NE(text.find("H="), std::string::npos);
  EXPECT_NE(text.find("family="), std::string::npos);
}

}  // namespace
}  // namespace larp
