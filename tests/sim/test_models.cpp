// Tests for the stochastic metric models — each must exhibit the trace
// character it stands in for (DESIGN.md substitution record).
#include "tracegen/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::tracegen {
namespace {

std::vector<double> run(MetricModel& model, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = model.next(rng);
  return xs;
}

TEST(ArProcess, Validation) {
  ArProcess::Params p;
  p.coefficients.clear();
  EXPECT_THROW(ArProcess{p}, InvalidArgument);
  p.coefficients = {0.5};
  p.noise_sigma = -1.0;
  EXPECT_THROW(ArProcess{p}, InvalidArgument);
}

TEST(ArProcess, StronglyAutocorrelated) {
  // The CPU-load character: Dinda's "strongly correlated over time".
  ArProcess::Params p;
  p.coefficients = {0.9};
  p.mean = 50.0;
  p.noise_sigma = 3.0;
  ArProcess model(p);
  const auto xs = run(model, 20000, 1);
  EXPECT_GT(stats::autocorrelation(xs, 1), 0.8);
  EXPECT_NEAR(stats::mean(xs), 50.0, 2.0);
}

TEST(ArProcess, RespectsClamps) {
  ArProcess::Params p;
  p.coefficients = {0.5};
  p.mean = 1.0;
  p.noise_sigma = 10.0;
  p.clamp_min = 0.0;
  p.clamp_max = 100.0;
  ArProcess model(p);
  for (double x : run(model, 5000, 2)) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(ArProcess, ResetRestoresInitialState) {
  ArProcess::Params p;
  p.coefficients = {0.8};
  p.noise_sigma = 1.0;
  ArProcess model(p);
  const auto first = run(model, 100, 42);
  model.reset();
  const auto second = run(model, 100, 42);
  EXPECT_EQ(first, second);
}

TEST(OnOffBurst, Validation) {
  OnOffBurst::Params p;
  p.p_enter_on = 1.5;
  EXPECT_THROW(OnOffBurst{p}, InvalidArgument);
  p = {};
  p.pareto_scale = 0.0;
  EXPECT_THROW(OnOffBurst{p}, InvalidArgument);
}

TEST(OnOffBurst, BurstyHeavyTailedCharacter) {
  // Network character: long quiet periods punctuated by large bursts, so the
  // max dwarfs the median and the distribution is right-skewed.
  OnOffBurst::Params p;
  OnOffBurst model(p);
  const auto xs = run(model, 50000, 3);
  const double med = stats::median(xs);
  const double p99 = stats::percentile(xs, 99);
  EXPECT_GT(p99, 5.0 * med);
  for (double x : xs) EXPECT_GE(x, 0.0);
}

TEST(OnOffBurst, OffLevelDominatesWhenOnIsRare) {
  OnOffBurst::Params p;
  p.p_enter_on = 0.001;
  p.p_exit_on = 0.9;
  p.off_level = 5.0;
  p.off_noise = 0.1;
  OnOffBurst model(p);
  const auto xs = run(model, 10000, 4);
  EXPECT_NEAR(stats::median(xs), 5.0, 0.5);
}

TEST(StepLevel, PlateausWithJumps) {
  StepLevel::Params p;
  p.initial_level = 100.0;
  p.jump_probability = 0.02;
  p.jump_sigma = 50.0;
  p.hold_noise = 0.0;
  StepLevel model(p);
  const auto xs = run(model, 5000, 5);
  // Count distinct levels: many consecutive equal values, few changes.
  std::size_t changes = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] != xs[i - 1]) ++changes;
  }
  EXPECT_GT(changes, 20u);
  EXPECT_LT(changes, 500u);
}

TEST(StepLevel, FloorRespected) {
  StepLevel::Params p;
  p.initial_level = 1.0;
  p.jump_probability = 0.5;
  p.jump_sigma = 100.0;
  p.floor = 0.0;
  StepLevel model(p);
  for (double x : run(model, 2000, 6)) EXPECT_GE(x, 0.0);
}

TEST(StepLevel, ZeroDynamicsIsExactlyConstant) {
  // The idle-device configuration behind Table 3's NaN cells.
  StepLevel::Params p;
  p.initial_level = 0.0;
  p.jump_probability = 0.0;
  p.jump_sigma = 0.0;
  p.hold_noise = 0.0;
  StepLevel model(p);
  const auto xs = run(model, 1000, 7);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
}

TEST(PoissonSpikes, Validation) {
  PoissonSpikes::Params p;
  p.decay = 1.0;
  EXPECT_THROW(PoissonSpikes{p}, InvalidArgument);
  p = {};
  p.arrival_rate = -0.1;
  EXPECT_THROW(PoissonSpikes{p}, InvalidArgument);
}

TEST(PoissonSpikes, SpikesDecayBackToBaseline) {
  PoissonSpikes::Params p;
  p.base_level = 5.0;
  p.base_noise = 0.1;
  p.arrival_rate = 0.01;
  p.spike_mean = 200.0;
  p.decay = 0.5;
  PoissonSpikes model(p);
  const auto xs = run(model, 50000, 8);
  // Most samples hug the baseline; spikes exist.
  EXPECT_NEAR(stats::median(xs), 5.0, 1.0);
  EXPECT_GT(stats::max(xs), 50.0);
}

TEST(Diurnal, AddsPeriodicComponent) {
  // A diurnal wrap over a constant child is a clean sinusoid.
  StepLevel::Params flat;
  flat.initial_level = 50.0;
  flat.jump_probability = 0.0;
  flat.hold_noise = 0.0;
  Diurnal model(std::make_unique<StepLevel>(flat), 100.0, 10.0);
  const auto xs = run(model, 400, 9);
  // Autocorrelation at one full period is high; at half period, negative.
  // (The biased estimator scales lag-k values by ~(N-k)/N, so the bounds
  // account for N=400: acf(100) ~ 0.75, acf(50) ~ -0.875.)
  EXPECT_GT(stats::autocorrelation(xs, 100), 0.7);
  EXPECT_LT(stats::autocorrelation(xs, 50), -0.8);
}

TEST(Diurnal, Validation) {
  EXPECT_THROW(Diurnal(nullptr, 100.0, 1.0), InvalidArgument);
  StepLevel::Params flat;
  EXPECT_THROW(Diurnal(std::make_unique<StepLevel>(flat), 0.0, 1.0),
               InvalidArgument);
}

TEST(RegimeSwitching, Validation) {
  std::vector<std::unique_ptr<MetricModel>> none;
  EXPECT_THROW(RegimeSwitching(std::move(none), 10.0), InvalidArgument);
}

TEST(RegimeSwitching, SwitchesBetweenRegimes) {
  // Two constant regimes far apart: the output must visit both.
  StepLevel::Params low, high;
  low.initial_level = 0.0;
  low.jump_probability = 0.0;
  low.hold_noise = 0.0;
  high = low;
  high.initial_level = 100.0;
  std::vector<std::unique_ptr<MetricModel>> regimes;
  regimes.push_back(std::make_unique<StepLevel>(low));
  regimes.push_back(std::make_unique<StepLevel>(high));
  RegimeSwitching model(std::move(regimes), 20.0);
  const auto xs = run(model, 2000, 10);
  std::size_t at_low = 0, at_high = 0;
  for (double x : xs) {
    if (x == 0.0) ++at_low;
    if (x == 100.0) ++at_high;
  }
  EXPECT_EQ(at_low + at_high, xs.size());
  EXPECT_GT(at_low, 100u);
  EXPECT_GT(at_high, 100u);
}

TEST(RegimeSwitching, DwellTimeRoughlyGeometric) {
  StepLevel::Params a, b;
  a.initial_level = 0.0;
  a.jump_probability = 0.0;
  a.hold_noise = 0.0;
  b = a;
  b.initial_level = 1.0;
  std::vector<std::unique_ptr<MetricModel>> regimes;
  regimes.push_back(std::make_unique<StepLevel>(a));
  regimes.push_back(std::make_unique<StepLevel>(b));
  const double dwell = 25.0;
  RegimeSwitching model(std::move(regimes), dwell);
  const auto xs = run(model, 100000, 11);
  std::size_t switches = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] != xs[i - 1]) ++switches;
  }
  const double mean_dwell = static_cast<double>(xs.size()) / (switches + 1);
  EXPECT_NEAR(mean_dwell, dwell, dwell * 0.2);
}

std::unique_ptr<MetricModel> flat(double level) {
  StepLevel::Params p;
  p.initial_level = level;
  p.jump_probability = 0.0;
  p.hold_noise = 0.0;
  return std::make_unique<StepLevel>(p);
}

TEST(ScriptedSequence, Validation) {
  EXPECT_THROW(ScriptedSequence(std::vector<ScriptedSequence::Phase>{}),
               InvalidArgument);
  std::vector<ScriptedSequence::Phase> bad;
  bad.push_back({nullptr, 5});
  EXPECT_THROW(ScriptedSequence(std::move(bad)), InvalidArgument);
  std::vector<ScriptedSequence::Phase> zero;
  zero.push_back({flat(1.0), 0});
  EXPECT_THROW(ScriptedSequence(std::move(zero)), InvalidArgument);
}

TEST(ScriptedSequence, PlaysPhasesInOrderAndCycles) {
  std::vector<ScriptedSequence::Phase> phases;
  phases.push_back({flat(1.0), 3});
  phases.push_back({flat(2.0), 2});
  ScriptedSequence model(std::move(phases));
  const auto xs = run(model, 12, 1);
  const std::vector<double> expected{1, 1, 1, 2, 2, 1, 1, 1, 2, 2, 1, 1};
  EXPECT_EQ(xs, expected);
}

TEST(ScriptedSequence, ResetRestartsSchedule) {
  std::vector<ScriptedSequence::Phase> phases;
  phases.push_back({flat(1.0), 2});
  phases.push_back({flat(2.0), 2});
  ScriptedSequence model(std::move(phases));
  Rng rng(2);
  (void)model.next(rng);
  (void)model.next(rng);
  (void)model.next(rng);  // into phase 2
  EXPECT_EQ(model.active_phase(), 1u);
  model.reset();
  EXPECT_EQ(model.active_phase(), 0u);
  EXPECT_DOUBLE_EQ(model.next(rng), 1.0);
}

TEST(ScriptedSequence, CloneContinuesMidPhase) {
  std::vector<ScriptedSequence::Phase> phases;
  phases.push_back({flat(1.0), 3});
  phases.push_back({flat(2.0), 3});
  ScriptedSequence model(std::move(phases));
  Rng rng(3);
  (void)model.next(rng);
  (void)model.next(rng);
  const auto copy = model.clone();
  Rng ra(4), rb(4);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(model.next(ra), copy->next(rb)) << "step " << i;
  }
}

TEST(Superposition, SumsWeightedComponents) {
  StepLevel::Params five, three;
  five.initial_level = 5.0;
  five.jump_probability = 0.0;
  five.hold_noise = 0.0;
  three = five;
  three.initial_level = 3.0;
  std::vector<Superposition::Component> parts;
  parts.push_back({std::make_unique<StepLevel>(five), 1.0});
  parts.push_back({std::make_unique<StepLevel>(three), 2.0});
  Superposition model(std::move(parts));
  Rng rng(12);
  EXPECT_DOUBLE_EQ(model.next(rng), 11.0);
}

TEST(Superposition, Validation) {
  EXPECT_THROW(Superposition(std::vector<Superposition::Component>{}),
               InvalidArgument);
}

TEST(AllModels, CloneProducesEqualFuture) {
  OnOffBurst::Params p;
  OnOffBurst model(p);
  Rng warm(13);
  for (int i = 0; i < 100; ++i) (void)model.next(warm);
  const auto copy = model.clone();
  Rng ra(14), rb(14);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(model.next(ra), copy->next(rb));
  }
}

TEST(Generate, DrivesModelOverAxis) {
  StepLevel::Params p;
  p.initial_level = 2.0;
  p.jump_probability = 0.0;
  p.hold_noise = 0.0;
  StepLevel model(p);
  Rng rng(15);
  const auto series = generate(model, TimeAxis(0, kFiveMinutes, 12), rng);
  EXPECT_EQ(series.size(), 12u);
  EXPECT_EQ(series.axis.step(), kFiveMinutes);
  for (double v : series.values) EXPECT_DOUBLE_EQ(v, 2.0);
}

}  // namespace
}  // namespace larp::tracegen
