// Tests for the VM1 batch job-mix simulator (310 jobs / 7 days, §7).
#include "tracegen/jobmix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::tracegen {
namespace {

TEST(JobMix, Validation) {
  JobMixParams p;
  p.expected_jobs = 0.0;
  EXPECT_THROW(JobMix{p}, InvalidArgument);

  p = JobMixParams{};
  p.classes.clear();
  EXPECT_THROW(JobMix{p}, InvalidArgument);

  p = JobMixParams{};
  p.classes[0].probability = 0.5;  // probabilities no longer sum to 1
  EXPECT_THROW(JobMix{p}, InvalidArgument);

  p = JobMixParams{};
  p.classes[0].max_duration_s = 0.5;  // max < min
  EXPECT_THROW(JobMix{p}, InvalidArgument);
}

TEST(JobMix, JobCountCalibratedToPaper) {
  // Over the full 7-day trace the expected number of started jobs is 310;
  // Poisson arrivals put the realized count within a few sigma.
  JobMix model{JobMixParams{}};
  Rng rng(2007);
  const std::size_t steps = 7 * 24 * 2;  // 30-minute steps over 7 days
  for (std::size_t i = 0; i < steps; ++i) (void)model.next(rng);
  EXPECT_NEAR(static_cast<double>(model.jobs_started()), 310.0, 60.0);
}

TEST(JobMix, AveragedOverSeedsHitsExpectation) {
  double total = 0.0;
  const int runs = 20;
  for (int s = 0; s < runs; ++s) {
    JobMix model{JobMixParams{}};
    Rng rng(1000 + s);
    for (std::size_t i = 0; i < 7 * 24 * 2; ++i) (void)model.next(rng);
    total += static_cast<double>(model.jobs_started());
  }
  EXPECT_NEAR(total / runs, 310.0, 15.0);
}

TEST(JobMix, UtilizationNonNegativeAndMostlyIdle) {
  // 93.55% of jobs last 1-2 seconds against a 1800-second step: most steps
  // carry near-zero job load, matching a batch head node's profile.
  JobMix model{JobMixParams{}};
  Rng rng(77);
  std::vector<double> xs(7 * 24 * 2);
  for (auto& x : xs) x = model.next(rng);
  for (double x : xs) EXPECT_GE(x, 0.0);
  EXPECT_LT(stats::median(xs), 1.0);
  EXPECT_GT(stats::max(xs), 5.0);  // long jobs leave visible plateaus
}

TEST(JobMix, LongJobSpansMultipleSteps) {
  // Force every job to be a 45-50 minute job with intensity 100: once one
  // arrives, utilization persists across at least two 30-minute steps.
  JobMixParams p;
  p.expected_jobs = 40.0;
  p.trace_duration_s = 7.0 * 24 * 3600;
  p.classes = {{1.0, 2700.0, 3000.0, 100.0}};
  JobMix model(p);
  Rng rng(88);
  std::vector<double> xs(7 * 24 * 2);
  for (auto& x : xs) x = model.next(rng);
  // Find a step with significant load and confirm the neighbour also loaded.
  bool found_pair = false;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i] > 30.0 && xs[i + 1] > 10.0) {
      found_pair = true;
      break;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(JobMix, ResetClearsActiveJobs) {
  JobMix model{JobMixParams{}};
  Rng rng(99);
  for (int i = 0; i < 50; ++i) (void)model.next(rng);
  model.reset();
  EXPECT_EQ(model.jobs_started(), 0u);
}

TEST(JobMix, CloneCarriesActiveJobs) {
  JobMixParams p;
  p.classes = {{1.0, 2700.0, 3000.0, 100.0}};
  p.expected_jobs = 500.0;  // frequent long jobs
  JobMix model(p);
  Rng warm(111);
  for (int i = 0; i < 100; ++i) (void)model.next(warm);
  const auto copy = model.clone();
  Rng ra(5), rb(5);
  EXPECT_DOUBLE_EQ(model.next(ra), copy->next(rb));
}

}  // namespace
}  // namespace larp::tracegen
