// Tests for the host/VM contention model and the monitoring agent.
#include <gtest/gtest.h>

#include "monitor/agent.hpp"
#include "monitor/host_model.hpp"
#include "tracegen/models.hpp"
#include "util/error.hpp"

namespace larp::monitor {
namespace {

std::unique_ptr<tracegen::MetricModel> constant(double level) {
  tracegen::StepLevel::Params p;
  p.initial_level = level;
  p.jump_probability = 0.0;
  p.hold_noise = 0.0;
  return std::make_unique<tracegen::StepLevel>(p);
}

TEST(GuestVm, Validation) {
  EXPECT_THROW(GuestVm(""), InvalidArgument);
  GuestVm vm("VM1");
  EXPECT_THROW(vm.set_metric_model("CPU_usedsec", nullptr), InvalidArgument);
  Rng rng(1);
  EXPECT_THROW((void)vm.sample_demand("CPU_usedsec", rng), NotFound);
}

TEST(GuestVm, MetricRegistry) {
  GuestVm vm("VM1");
  vm.set_metric_model("CPU_usedsec", constant(10.0));
  EXPECT_TRUE(vm.has_metric("CPU_usedsec"));
  EXPECT_FALSE(vm.has_metric("CPU_ready"));
  EXPECT_EQ(vm.metrics().size(), 1u);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(vm.sample_demand("CPU_usedsec", rng), 10.0);
}

TEST(GuestVm, CatalogGuestCarriesAllPaperMetrics) {
  const GuestVm vm = make_catalog_guest("VM2");
  EXPECT_EQ(vm.metrics().size(), 12u);
}

TEST(HostServer, Validation) {
  EXPECT_THROW(HostServer(0.0), InvalidArgument);
  HostServer host(100.0);
  GuestVm a("VM1"), b("VM1");
  host.add_guest(std::move(a));
  EXPECT_THROW(host.add_guest(std::move(b)), InvalidArgument);
}

TEST(HostServer, NoContentionPassesDemandThrough) {
  HostServer host(100.0);
  GuestVm vm("VM1");
  vm.set_metric_model("CPU_usedsec", constant(30.0));
  vm.set_metric_model("CPU_ready", constant(1.0));
  host.add_guest(std::move(vm));
  Rng rng(3);
  const auto observed = host.step(rng);
  EXPECT_DOUBLE_EQ(observed.at("VM1").at("CPU_usedsec"), 30.0);
  EXPECT_DOUBLE_EQ(observed.at("VM1").at("CPU_ready"), 1.0);
}

TEST(HostServer, ContentionScalesSharesAndRaisesReady) {
  // Two guests demanding 80 + 40 = 120 against capacity 100: each gets a
  // proportional 5/6 share, the unmet 1/6 shows up as CPU_ready.
  HostServer host(100.0);
  GuestVm a("VM1"), b("VM2");
  a.set_metric_model("CPU_usedsec", constant(80.0));
  a.set_metric_model("CPU_ready", constant(0.0));
  b.set_metric_model("CPU_usedsec", constant(40.0));
  b.set_metric_model("CPU_ready", constant(0.0));
  host.add_guest(std::move(a));
  host.add_guest(std::move(b));

  Rng rng(4);
  const auto observed = host.step(rng);
  const double granted_a = observed.at("VM1").at("CPU_usedsec");
  const double granted_b = observed.at("VM2").at("CPU_usedsec");
  EXPECT_NEAR(granted_a, 80.0 * 100.0 / 120.0, 1e-9);
  EXPECT_NEAR(granted_b, 40.0 * 100.0 / 120.0, 1e-9);
  // Capacity conserved.
  EXPECT_NEAR(granted_a + granted_b, 100.0, 1e-9);
  // Unmet demand surfaces as ready time (Table 1's CPU_Ready definition).
  EXPECT_NEAR(observed.at("VM1").at("CPU_ready"), 80.0 / 6.0, 1e-9);
  EXPECT_NEAR(observed.at("VM2").at("CPU_ready"), 40.0 / 6.0, 1e-9);
}

TEST(HostServer, NonCpuMetricsUnaffectedByContention) {
  HostServer host(50.0);
  GuestVm vm("VM1");
  vm.set_metric_model("CPU_usedsec", constant(200.0));
  vm.set_metric_model("NIC1_received", constant(33.0));
  host.add_guest(std::move(vm));
  Rng rng(5);
  const auto observed = host.step(rng);
  EXPECT_DOUBLE_EQ(observed.at("VM1").at("NIC1_received"), 33.0);
  EXPECT_DOUBLE_EQ(observed.at("VM1").at("CPU_usedsec"), 50.0);
}

TEST(MonitoringAgent, WritesEveryGuestMetricPerTick) {
  tsdb::RoundRobinDatabase db(tsdb::make_vmkusage_config());
  HostServer host(400.0);
  host.add_guest(make_catalog_guest("VM1"));
  host.add_guest(make_catalog_guest("VM2"));
  MonitoringAgent agent(host, db);

  Rng rng(6);
  const Timestamp next = agent.run(0, 10, rng);
  EXPECT_EQ(next, 10 * kMinute);
  EXPECT_EQ(agent.samples_written(), 10u * 2u * 12u);
  EXPECT_EQ(db.key_count(), 24u);

  const tsdb::SeriesKey key{"VM1", "cpu", "CPU_usedsec"};
  const auto raw = db.fetch(key, kMinute, 0, 10 * kMinute);
  EXPECT_EQ(raw.size(), 10u);
}

TEST(MonitoringAgent, ResumesFromReturnedTimestamp) {
  tsdb::RoundRobinDatabase db(tsdb::make_vmkusage_config());
  HostServer host(400.0);
  host.add_guest(make_catalog_guest("VM3"));
  MonitoringAgent agent(host, db);
  Rng rng(7);
  Timestamp t = agent.run(0, 5, rng);
  t = agent.run(t, 5, rng);
  EXPECT_EQ(t, 10 * kMinute);
  const tsdb::SeriesKey key{"VM3", "cpu", "CPU_usedsec"};
  EXPECT_NO_THROW((void)db.fetch(key, kMinute, 0, 10 * kMinute));
}

TEST(MonitoringAgent, FiveMinuteArchiveFillsThroughConsolidation) {
  // End-to-end vmkusage semantics: minute sampling, 5-minute AVERAGE tier.
  tsdb::RoundRobinDatabase db(tsdb::make_vmkusage_config());
  HostServer host(400.0);
  host.add_guest(make_catalog_guest("VM4"));
  MonitoringAgent agent(host, db);
  Rng rng(8);
  (void)agent.run(0, 25, rng);
  const tsdb::SeriesKey key{"VM4", "memory", "Memory_size"};
  const auto consolidated = db.fetch(key, kFiveMinutes, 0, 5 * kFiveMinutes);
  EXPECT_EQ(consolidated.size(), 5u);
}

}  // namespace
}  // namespace larp::monitor
