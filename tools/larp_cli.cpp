// larp_cli: command-line driver over the library's public API, for running
// the LARPredictor machinery on externally collected traces (CSV).
//
//   larp_cli characterize <csv> <column>      trace fingerprint
//   larp_cli assess       <csv> <column>      §8 applicability report
//   larp_cli evaluate     <csv> <column>      cross-validated strategy table
//   larp_cli forecast     <csv> <column>      stream one-step forecasts (CSV)
//   larp_cli walk         <csv> <column>      rolling-origin evaluation
//   larp_cli export       <vm>  <out.csv>     write a catalog VM's trace suite
//   larp_cli serve-sim                        multi-series PredictionEngine sim
//   larp_cli serve                            epoll TCP front-end over an engine
//   larp_cli replicate                        leader: serve + stream WAL to followers
//   larp_cli follow                           follower: bootstrap + serve reads
//   larp_cli loadgen                          drive a serve instance over TCP
//   larp_cli snapshot     <data-dir>          restore + write a fresh snapshot
//   larp_cli restore      <data-dir>          restore an engine, print stats
//   larp_cli inspect-snapshot <data-dir>      validate snapshots / list WAL
//
// Common options:
//   --window N       prediction window m            (default 5)
//   --k N            k-NN neighbours                 (default 3)
//   --folds N        cross-validation repetitions    (default 10)
//   --pool NAME      paper | extended                (default paper)
//   --seed N         RNG seed                        (default 2007)
//   --train-frac F   forecast: training prefix share (default 0.5)
//   --series N       serve-sim: concurrent series    (default 256)
//   --steps N        serve-sim: post-warm-up steps   (default 96)
//   --threads N      serve-sim: worker threads (0 = all cores)
//   --shards N       serve-sim: engine shards        (default 16)
//   --data-dir P     serve-sim: durability directory (snapshots + WAL)
//   --snapshot-every N  serve-sim: snapshot cadence in steps (0 = end only)
//   --durability M   serve-sim: sync | async — inline fsync policy vs the
//                    background WalSyncer thread (default sync)
//   --host H         serve/loadgen: bind/connect address (default 127.0.0.1)
//   --port N         serve/loadgen: TCP port (serve: 0 = ephemeral)
//   --net-threads N  serve: epoll event-loop threads   (default 1)
//   --max-seconds N  serve: stop after N seconds (0 = until SIGINT/SIGTERM)
//   --threads N      loadgen: worker threads            (default 1)
//   --connections N  loadgen: pipelined connections per worker thread
//                    (default 1; the thread keeps all of them in flight)
//   --batch N        loadgen: series per request frame  (default 64)
//   --repl-port N    replicate: replication listener port (0 = ephemeral)
//   --leader-host H  follow: leader's replication address
//   --leader-port N  follow: leader's replication port
//   --max-staleness-ms N  follow: reject reads older than this (0 = no bound)
//   --read-from-follower N  loadgen: send predicts to this port instead
//                    (observes still go to --port; kStale counted per reply)
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "core/applicability.hpp"
#include "core/experiment.hpp"
#include "core/lar_predictor.hpp"
#include "core/report.hpp"
#include "core/rolling.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"
#include "replication/replica.hpp"
#include "replication/server.hpp"
#include "serve/prediction_engine.hpp"
#include "tracegen/catalog.hpp"
#include "tracegen/characterize.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace larp;

struct Options {
  std::string command;
  std::vector<std::string> positional;
  std::size_t window = 5;
  std::size_t k = 3;
  std::size_t folds = 10;
  std::string pool = "paper";
  std::uint64_t seed = 2007;
  double train_fraction = 0.5;
  std::size_t series = 256;
  std::size_t steps = 96;
  std::size_t threads = 0;
  std::size_t shards = 16;
  std::string data_dir;
  std::size_t snapshot_every = 0;
  persist::DurabilityMode durability_mode = persist::DurabilityMode::Sync;
  std::string host = "127.0.0.1";
  std::size_t port = 0;
  std::size_t net_threads = 1;
  std::size_t max_seconds = 0;
  std::size_t connections = 1;
  std::size_t batch = 64;
  std::size_t repl_port = 0;
  std::string leader_host = "127.0.0.1";
  std::size_t leader_port = 0;
  std::size_t max_staleness_ms = 0;
  std::size_t read_from_follower = 0;
};

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: larp_cli <command> [args] [options]\n"
               "  characterize <csv> <column>\n"
               "  assess       <csv> <column>\n"
               "  evaluate     <csv> <column>\n"
               "  forecast     <csv> <column>\n"
               "  walk         <csv> <column>\n"
               "  export       <vm>  <out.csv>\n"
               "  serve-sim\n"
               "  serve\n"
               "  replicate\n"
               "  follow\n"
               "  loadgen\n"
               "  snapshot     <data-dir>\n"
               "  restore      <data-dir>\n"
               "  inspect-snapshot <data-dir>\n"
               "options: --window N --k N --folds N --pool paper|extended\n"
               "         --seed N --train-frac F\n"
               "         --series N --steps N --threads N --shards N (serve-sim)\n"
               "         --data-dir PATH --snapshot-every N "
               "--durability sync|async (durability)\n"
               "         --host H --port N --net-threads N --max-seconds N "
               "(serve)\n"
               "         --threads N --connections N --batch N "
               "--read-from-follower N (loadgen)\n"
               "         --repl-port N (replicate)\n"
               "         --leader-host H --leader-port N --max-staleness-ms N "
               "(follow)\n");
  std::exit(2);
}

// Strict numeric flag parsing: the whole value must convert, no sign tricks,
// no trailing garbage — anything else is a usage error (exit 2), never an
// uncaught std::invalid_argument.
std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  std::size_t consumed = 0;
  try {
    if (value.empty() || value[0] == '-' || value[0] == '+') throw 0;
    const unsigned long long v = std::stoull(value, &consumed);
    if (consumed != value.size()) throw 0;
    return v;
  } catch (...) {
    usage((flag + " expects a non-negative integer, got '" + value + "'")
              .c_str());
  }
}

std::size_t parse_size(const std::string& flag, const std::string& value) {
  return static_cast<std::size_t>(parse_u64(flag, value));
}

double parse_f64(const std::string& flag, const std::string& value) {
  std::size_t consumed = 0;
  try {
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw 0;
    return v;
  } catch (...) {
    usage((flag + " expects a number, got '" + value + "'").c_str());
  }
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage();
  Options options;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--window") options.window = parse_size(arg, next());
    else if (arg == "--k") options.k = parse_size(arg, next());
    else if (arg == "--folds") options.folds = parse_size(arg, next());
    else if (arg == "--pool") options.pool = next();
    else if (arg == "--seed") options.seed = parse_u64(arg, next());
    else if (arg == "--train-frac") options.train_fraction = parse_f64(arg, next());
    else if (arg == "--series") options.series = parse_size(arg, next());
    else if (arg == "--steps") options.steps = parse_size(arg, next());
    else if (arg == "--threads") options.threads = parse_size(arg, next());
    else if (arg == "--shards") options.shards = parse_size(arg, next());
    else if (arg == "--host") options.host = next();
    else if (arg == "--port") {
      options.port = parse_size(arg, next());
      if (options.port > 65535) usage("--port must fit in 16 bits");
    }
    else if (arg == "--net-threads") options.net_threads = parse_size(arg, next());
    else if (arg == "--max-seconds") options.max_seconds = parse_size(arg, next());
    else if (arg == "--connections") options.connections = parse_size(arg, next());
    else if (arg == "--batch") options.batch = parse_size(arg, next());
    else if (arg == "--repl-port") {
      options.repl_port = parse_size(arg, next());
      if (options.repl_port > 65535) usage("--repl-port must fit in 16 bits");
    }
    else if (arg == "--leader-host") options.leader_host = next();
    else if (arg == "--leader-port") {
      options.leader_port = parse_size(arg, next());
      if (options.leader_port > 65535) usage("--leader-port must fit in 16 bits");
    }
    else if (arg == "--max-staleness-ms")
      options.max_staleness_ms = parse_size(arg, next());
    else if (arg == "--read-from-follower") {
      options.read_from_follower = parse_size(arg, next());
      if (options.read_from_follower > 65535) {
        usage("--read-from-follower must fit in 16 bits");
      }
    }
    else if (arg == "--data-dir") options.data_dir = next();
    else if (arg == "--snapshot-every")
      options.snapshot_every = parse_size(arg, next());
    else if (arg == "--durability") {
      const std::string mode = next();
      if (mode == "sync") options.durability_mode = persist::DurabilityMode::Sync;
      else if (mode == "async")
        options.durability_mode = persist::DurabilityMode::Async;
      else usage("--durability must be sync or async");
    }
    else if (arg.rfind("--", 0) == 0) usage(("unknown option " + arg).c_str());
    else options.positional.push_back(arg);
  }
  return options;
}

std::vector<double> load_column(const Options& options) {
  if (options.positional.size() < 2) usage("need <csv> <column>");
  const auto table = csv::read_file(options.positional[0]);
  return table.numeric_column(options.positional[1]);
}

predictors::PredictorPool make_pool(const Options& options) {
  if (options.pool == "paper") return predictors::make_paper_pool(options.window);
  if (options.pool == "extended") {
    return predictors::make_extended_pool(options.window);
  }
  usage("--pool must be 'paper' or 'extended'");
}

core::LarConfig make_config(const Options& options) {
  core::LarConfig config;
  config.window = options.window;
  config.knn_k = options.k;
  config.pca_components = 0;
  config.pca_min_variance = 0.85;
  return config;
}

int cmd_characterize(const Options& options) {
  const auto series = load_column(options);
  const auto c = tracegen::characterize(series);
  std::cout << options.positional[1] << ": " << c << '\n';
  return 0;
}

int cmd_assess(const Options& options) {
  const auto series = load_column(options);
  const auto pool = make_pool(options);
  ml::CrossValidationPlan plan;
  plan.folds = options.folds;
  Rng rng(options.seed);
  const auto report = core::assess_applicability(series, pool,
                                                 make_config(options), plan, rng);
  std::printf("verdict: %s\n", core::to_string(report.verdict));
  if (report.verdict != core::ApplicabilityVerdict::NotApplicable) {
    std::printf("best single expert: %s (MSE %.6g)\n",
                pool.name(report.best_single_label).c_str(),
                report.mse_best_single);
    std::printf("oracle headroom:    %.1f%% (P-LAR MSE %.6g)\n",
                100.0 * report.oracle_headroom, report.mse_oracle);
    std::printf("realized gain:      %.1f%% (LAR MSE %.6g)\n",
                100.0 * report.realized_gain, report.mse_lar);
    std::printf("selection accuracy: %.1f%% (chance %.1f%%)\n",
                100.0 * report.selection_accuracy,
                100.0 * report.chance_accuracy);
    std::printf("label churn:        %.1f%%   label entropy: %.1f%%\n",
                100.0 * report.label_churn, 100.0 * report.label_entropy);
  }
  std::printf("%s\n", report.explanation.c_str());
  return 0;
}

int cmd_evaluate(const Options& options) {
  const auto series = load_column(options);
  const auto pool = make_pool(options);
  ml::CrossValidationPlan plan;
  plan.folds = options.folds;
  Rng rng(options.seed);
  const auto result = core::cross_validate(series, pool, make_config(options),
                                           plan, rng);
  if (result.degenerate) {
    std::printf("degenerate trace (zero variance): nothing to evaluate\n");
    return 0;
  }
  core::TextTable table({"strategy", "normalized MSE", "accuracy"});
  table.add_row({"P-LAR (oracle)", core::TextTable::num(result.mse_oracle), "-"});
  table.add_row({"LAR (k-NN)", core::TextTable::num(result.mse_lar),
                 core::TextTable::pct(result.lar_accuracy)});
  table.add_row({"NWS Cum.MSE", core::TextTable::num(result.mse_nws),
                 core::TextTable::pct(result.nws_accuracy)});
  table.add_row({"NWS W-Cum.MSE(2)", core::TextTable::num(result.mse_wnws),
                 core::TextTable::pct(result.wnws_accuracy)});
  for (std::size_t p = 0; p < pool.size(); ++p) {
    table.add_row({pool.name(p), core::TextTable::num(result.mse_single[p]), "-"});
  }
  table.print(std::cout);
  std::printf("\nLAR %s the best single expert; LAR %s the NWS selection "
              "(%zu folds).\n",
              result.lar_beats_best_single() ? "matched/beat" : "trailed",
              result.lar_beats_nws() ? "beat" : "trailed", result.folds);
  return 0;
}

int cmd_forecast(const Options& options) {
  const auto series = load_column(options);
  if (options.train_fraction <= 0.0 || options.train_fraction >= 1.0) {
    usage("--train-frac must be in (0, 1)");
  }
  const std::size_t split =
      static_cast<std::size_t>(series.size() * options.train_fraction);
  core::LarPredictor lar(make_pool(options), make_config(options));
  lar.train(std::span<const double>(series.data(), split));

  const auto pool_names = lar.pool().names();
  csv::write_row(std::cout, {"index", "actual", "forecast", "expert",
                             "uncertainty"});
  for (std::size_t t = split; t < series.size(); ++t) {
    const auto forecast = lar.predict_next();
    csv::write_row(std::cout,
                   {std::to_string(t), std::to_string(series[t]),
                    std::to_string(forecast.value), pool_names[forecast.label],
                    std::to_string(forecast.uncertainty)});
    lar.observe(series[t]);
  }
  return 0;
}

int cmd_walk(const Options& options) {
  const auto series = load_column(options);
  const auto pool = make_pool(options);
  core::RollingOriginConfig config;
  config.lar = make_config(options);
  config.initial_train = static_cast<std::size_t>(
      series.size() * options.train_fraction);
  config.retrain_every = 48;
  const auto r = core::rolling_origin_evaluate(series, pool, config);

  core::TextTable table({"strategy", "raw MSE"});
  table.add_row({"P-LAR (oracle)", core::TextTable::num(r.mse_oracle, 3)});
  table.add_row({"LAR (deployed)", core::TextTable::num(r.mse_lar, 3)});
  table.add_row({"NWS Cum.MSE", core::TextTable::num(r.mse_nws, 3)});
  table.add_row({"NWS W-Cum.MSE(2)", core::TextTable::num(r.mse_wnws, 3)});
  for (std::size_t p = 0; p < pool.size(); ++p) {
    table.add_row({pool.name(p), core::TextTable::num(r.mse_single[p], 3)});
  }
  table.print(std::cout);
  std::printf("\nwalked %zu steps, re-trained %zu times; expert usage:",
              r.steps, r.retrains);
  for (std::size_t p = 0; p < pool.size(); ++p) {
    std::printf(" %s=%zu", pool.name(p).c_str(), r.expert_usage[p]);
  }
  std::printf("\n");
  return 0;
}

int cmd_serve_sim(const Options& options) {
  if (options.series == 0 || options.steps == 0) {
    usage("--series and --steps must be positive");
  }
  serve::EngineConfig config;
  config.lar = make_config(options);
  config.shards = options.shards;
  config.threads = options.threads;
  // Raw units.  The AR(1) streams below have a one-step forecast MSE around
  // 4.4, so this fires only on genuinely degraded series, not on the noise
  // floor.
  config.quality.mse_threshold = 6.5;
  if (!options.data_dir.empty()) {
    config.durability.data_dir = options.data_dir;
    config.durability.wal.mode = options.durability_mode;
  }

  serve::PredictionEngine engine(make_pool(options), config);

  // One synthetic AR(1) stream per (host, metric) series, each with a
  // private RNG split so results are independent of batch composition.
  Rng parent(options.seed);
  std::vector<tsdb::SeriesKey> keys(options.series);
  std::vector<Rng> rngs;
  std::vector<double> level(options.series, 0.0);
  rngs.reserve(options.series);
  for (std::size_t s = 0; s < options.series; ++s) {
    keys[s] = {"host" + std::to_string(s / 8), "dev" + std::to_string(s % 8),
               "metric"};
    rngs.push_back(parent.split(s));
  }
  const auto sample = [&](std::size_t s) {
    level[s] = 0.8 * level[s] + rngs[s].normal(0.0, 2.0);
    return 50.0 + level[s];
  };

  std::vector<serve::Observation> batch(options.series);
  const auto fill_batch = [&] {
    for (std::size_t s = 0; s < options.series; ++s) {
      batch[s] = {keys[s], sample(s)};
    }
  };

  // Warm-up: feed until every series has lazily trained itself.
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < config.train_samples; ++i) {
    fill_batch();
    engine.observe(batch);
  }

  // Steady state: one predict + observe round per step, all series batched.
  std::size_t snapshots_written = 0;
  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < options.steps; ++i) {
    (void)engine.predict(keys);
    fill_batch();
    engine.observe(batch);
    // No maintenance tick here: the engine's own WalSyncer thread bounds
    // the Interval-policy (and async-mode) loss windows.
    if (!options.data_dir.empty() && options.snapshot_every > 0 &&
        (i + 1) % options.snapshot_every == 0) {
      (void)engine.snapshot();
      ++snapshots_written;
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  if (!options.data_dir.empty()) {
    const auto epoch = engine.snapshot();
    ++snapshots_written;
    std::printf("durability: %zu snapshot(s) into %s (final epoch %llu)\n",
                snapshots_written, options.data_dir.c_str(),
                static_cast<unsigned long long>(epoch));
  }

  const auto stats = engine.stats();
  const double steady_sec =
      std::chrono::duration<double>(t2 - t1).count();
  const double series_steps = static_cast<double>(options.series) *
                              static_cast<double>(options.steps);
  std::printf("serve-sim: %zu series x %zu steps, %zu shards, %zu threads\n",
              options.series, options.steps, options.shards, engine.threads());
  std::printf("  warm-up           %.3f s (%zu samples/series)\n",
              std::chrono::duration<double>(t1 - t0).count(),
              config.train_samples);
  std::printf("  steady state      %.3f s -> %.0f series-steps/s\n",
              steady_sec, series_steps / steady_sec);
  std::printf("  trained series    %zu/%zu (trains %zu, retrains %zu, audits %zu)\n",
              stats.trained_series, stats.series, stats.trains, stats.retrains,
              stats.audits);
  std::printf("  resolved          %zu forecasts, MAE %.4f, MSE %.4f\n",
              stats.resolved, stats.mean_absolute_error,
              stats.mean_squared_error);
  std::printf("  engine time       observe %.3f s, predict %.3f s\n",
              stats.observe_seconds, stats.predict_seconds);
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal_handler(int) { g_serve_stop = 1; }

int cmd_serve(const Options& options) {
  serve::EngineConfig config;
  config.lar = make_config(options);
  config.shards = options.shards;
  config.threads = options.threads;
  if (!options.data_dir.empty()) {
    config.durability.data_dir = options.data_dir;
    config.durability.wal.mode = options.durability_mode;
  }
  serve::PredictionEngine engine(make_pool(options), config);

  net::ServerConfig server_config;
  server_config.host = options.host;
  server_config.port = static_cast<std::uint16_t>(options.port);
  server_config.event_threads = options.net_threads;
  net::Server server(engine, server_config);
  server.start();
  // The bound port on its own line, flushed immediately, so wrapper scripts
  // binding port 0 can read it before any client connects.
  std::printf("listening on %s:%u\n", options.host.c_str(), server.port());
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  const auto t0 = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (options.max_seconds > 0 &&
        std::chrono::steady_clock::now() - t0 >=
            std::chrono::seconds(options.max_seconds)) {
      break;
    }
  }
  const double served_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  const auto net_stats = server.stats();
  const auto loop_stats = server.loop_stats();
  const auto engine_stats = engine.stats();
  std::printf("served: %llu connections, %llu frames in, %llu frames out "
              "(%s accept)\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.frames_in),
              static_cast<unsigned long long>(net_stats.frames_out),
              net_stats.reuseport ? "reuseport" : "handoff");
  std::printf("  batching          %llu observe batches, %llu predict "
              "batches, %llu protocol errors\n",
              static_cast<unsigned long long>(net_stats.observe_batches),
              static_cast<unsigned long long>(net_stats.predict_batches),
              static_cast<unsigned long long>(net_stats.protocol_errors));
  for (std::size_t i = 0; i < loop_stats.size(); ++i) {
    const auto& loop = loop_stats[i];
    std::printf("  loop %-2zu           %llu conns, %llu frames in, "
                "%llu wakeups, %.1f%% busy\n",
                i, static_cast<unsigned long long>(loop.connections),
                static_cast<unsigned long long>(loop.frames_in),
                static_cast<unsigned long long>(loop.wakeups),
                served_seconds > 0.0
                    ? 100.0 * loop.busy_seconds / served_seconds
                    : 0.0);
  }
  std::printf("  engine            %zu series, %zu observations, "
              "%zu predictions\n",
              engine_stats.series, engine_stats.observations,
              engine_stats.predictions);
  std::printf("  shard contention  %zu contended locks, %.3f s blocked\n",
              engine_stats.contended_locks, engine_stats.lock_wait_seconds);
  if (!options.data_dir.empty()) {
    const auto epoch = engine.snapshot();
    std::printf("  final snapshot    epoch %llu into %s\n",
                static_cast<unsigned long long>(epoch),
                options.data_dir.c_str());
  }
  return 0;
}

// Leader mode: a normal serve front-end plus a replication listener that
// streams the engine's WAL to followers.  The data dir is required (that
// WAL is what gets shipped); an existing dir is restored, a fresh one
// starts empty.
int cmd_replicate(const Options& options) {
  if (options.data_dir.empty()) usage("replicate needs --data-dir");
  serve::EngineConfig config;
  config.lar = make_config(options);
  config.shards = options.shards;
  config.threads = options.threads;
  config.durability.data_dir = options.data_dir;
  config.durability.wal.mode = options.durability_mode;
  const auto engine = serve::PredictionEngine::restore(
      make_pool(options), options.data_dir, config);

  net::ServerConfig server_config;
  server_config.host = options.host;
  server_config.port = static_cast<std::uint16_t>(options.port);
  server_config.event_threads = options.net_threads;
  net::Server server(*engine, server_config);
  server.start();

  replication::ReplicationServerConfig repl_config;
  repl_config.host = options.host;
  repl_config.port = static_cast<std::uint16_t>(options.repl_port);
  replication::ReplicationServer repl(*engine, repl_config);
  repl.start();

  std::printf("listening on %s:%u\n", options.host.c_str(), server.port());
  std::printf("replicating on %s:%u\n", options.host.c_str(), repl.port());
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  const auto t0 = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (options.max_seconds > 0 &&
        std::chrono::steady_clock::now() - t0 >=
            std::chrono::seconds(options.max_seconds)) {
      break;
    }
  }
  repl.stop();
  server.stop();

  const auto repl_stats = repl.stats();
  std::printf("replication: %zu sessions (%zu live at stop), %zu frames "
              "shipped, %zu snapshots shipped, %zu heartbeats\n",
              repl_stats.sessions_total, repl_stats.followers_connected,
              repl_stats.frames_shipped, repl_stats.snapshots_shipped,
              repl_stats.heartbeats_sent);
  const auto epoch = engine->snapshot();
  std::printf("final snapshot epoch %llu into %s\n",
              static_cast<unsigned long long>(epoch),
              options.data_dir.c_str());
  return 0;
}

// Follower mode: bootstrap/resume from the leader, then serve staleness-
// bounded reads over the normal front-end (observes are rejected — they
// must reach the leader).
int cmd_follow(const Options& options) {
  if (options.data_dir.empty()) usage("follow needs --data-dir");
  if (options.leader_port == 0) usage("follow needs --leader-port");

  replication::ReplicaConfig config;
  config.leader_host = options.leader_host;
  config.leader_port = static_cast<std::uint16_t>(options.leader_port);
  config.data_dir = options.data_dir;
  config.engine.lar = make_config(options);
  config.engine.shards = options.shards;
  config.engine.threads = options.threads;
  config.engine.durability.wal.mode = options.durability_mode;
  config.engine.max_staleness =
      std::chrono::milliseconds(options.max_staleness_ms);

  replication::Replica replica(make_pool(options), config);
  replica.start();
  serve::PredictionEngine* engine =
      replica.wait_until_ready(std::chrono::seconds(30));
  if (engine == nullptr) {
    std::fprintf(stderr, "error: follower failed to bootstrap from %s:%zu\n",
                 options.leader_host.c_str(), options.leader_port);
    return 1;
  }

  net::ServerConfig server_config;
  server_config.host = options.host;
  server_config.port = static_cast<std::uint16_t>(options.port);
  server_config.event_threads = options.net_threads;
  net::Server server(*engine, server_config);
  server.start();
  std::printf("listening on %s:%u\n", options.host.c_str(), server.port());
  std::printf("following %s:%zu\n", options.leader_host.c_str(),
              options.leader_port);
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  const auto t0 = std::chrono::steady_clock::now();
  while (g_serve_stop == 0 && !replica.stats().failed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (options.max_seconds > 0 &&
        std::chrono::steady_clock::now() - t0 >=
            std::chrono::seconds(options.max_seconds)) {
      break;
    }
  }
  server.stop();
  replica.stop();

  const auto replica_stats = replica.stats();
  const auto engine_stats = engine->stats();
  std::printf("follower: %zu bootstraps, %zu reconnects%s\n",
              replica_stats.bootstraps, replica_stats.reconnects,
              replica_stats.failed ? " (FAILED: restart to re-bootstrap)" : "");
  std::printf("  replication       %zu frames applied, lag %.3f s, %s\n",
              engine_stats.replicated_frames,
              engine_stats.replication_lag_seconds,
              engine_stats.replication_fresh ? "fresh" : "stale");
  std::printf("  engine            %zu series, %zu predictions served\n",
              engine_stats.series, engine_stats.predictions);
  return replica_stats.failed ? 1 : 0;
}

int cmd_loadgen(const Options& options) {
  if (options.port == 0) usage("loadgen needs --port");
  if (options.connections == 0 || options.series == 0 || options.steps == 0 ||
      options.batch == 0) {
    usage("--connections, --series, --steps, --batch must be positive");
  }
  // --threads worker threads, each fanning out over --connections pipelined
  // connections: a round starts the request on every connection before
  // finishing any, so one thread keeps C requests in flight — enough
  // offered concurrency to exercise a multi-loop server without paying one
  // OS thread per connection on the loadgen side.
  const std::size_t threads = options.threads == 0 ? 1 : options.threads;
  struct ConnResult {
    std::vector<double> latencies_us;  // per request round trip
    std::uint64_t series_steps = 0;
    std::uint64_t stale_replies = 0;  // follower kStale refusals
  };
  struct WorkerResult {
    std::vector<ConnResult> conns;
    std::string error;
  };
  std::vector<WorkerResult> results(threads);
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      WorkerResult& result = results[t];
      result.conns.resize(options.connections);
      try {
        std::vector<std::unique_ptr<net::Client>> clients;
        // With --read-from-follower, predicts go to the follower's port on
        // their own connections; observes still go to the leader (--port).
        std::vector<std::unique_ptr<net::Client>> follower_clients;
        std::vector<net::Client*> readers(options.connections);
        // Disjoint key space per (thread, connection) so shard contention
        // comes from concurrency, not key collisions.
        std::vector<std::vector<tsdb::SeriesKey>> keys(options.connections);
        for (std::size_t c = 0; c < options.connections; ++c) {
          clients.push_back(std::make_unique<net::Client>(
              options.host, static_cast<std::uint16_t>(options.port)));
          if (options.read_from_follower != 0) {
            follower_clients.push_back(std::make_unique<net::Client>(
                options.host,
                static_cast<std::uint16_t>(options.read_from_follower)));
            readers[c] = follower_clients.back().get();
          } else {
            readers[c] = clients.back().get();
          }
          keys[c].resize(options.series);
          for (std::size_t s = 0; s < options.series; ++s) {
            keys[c][s] = {"lg" + std::to_string(t) + "c" + std::to_string(c),
                          "dev" + std::to_string(s % 8),
                          "m" + std::to_string(s)};
          }
          result.conns[c].latencies_us.reserve(options.steps * 2);
        }
        Rng rng(options.seed + t);
        std::vector<serve::Observation> batch(options.batch);
        std::vector<serve::Prediction> predictions;
        std::vector<std::uint64_t> ids(options.connections);
        std::vector<std::chrono::steady_clock::time_point> started(
            options.connections);
        const auto finish_round = [&](bool predicts, std::size_t n) {
          for (std::size_t c = 0; c < options.connections; ++c) {
            if (predicts) {
              try {
                readers[c]->finish_predict(ids[c], n, predictions);
              } catch (const net::ServerError& e) {
                // A follower refusing a read for lag is load-sheddable, not
                // fatal: count it and keep the connection.
                if (e.code() != net::ErrorCode::kStale) throw;
                ++result.conns[c].stale_replies;
              }
            } else {
              (void)clients[c]->finish_observe(ids[c]);
            }
            result.conns[c].latencies_us.push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - started[c])
                    .count());
          }
        };
        for (std::size_t step = 0; step < options.steps; ++step) {
          for (std::size_t lo = 0; lo < options.series; lo += options.batch) {
            const std::size_t n =
                std::min(options.batch, options.series - lo);
            for (std::size_t c = 0; c < options.connections; ++c) {
              for (std::size_t i = 0; i < n; ++i) {
                batch[i] = {keys[c][lo + i], 50.0 + rng.normal(0.0, 2.0)};
              }
              started[c] = std::chrono::steady_clock::now();
              ids[c] = clients[c]->start_observe(
                  std::span<const serve::Observation>(batch.data(), n));
            }
            finish_round(/*predicts=*/false, n);
            for (std::size_t c = 0; c < options.connections; ++c) {
              started[c] = std::chrono::steady_clock::now();
              ids[c] = readers[c]->start_predict(
                  std::span<const tsdb::SeriesKey>(keys[c].data() + lo, n));
            }
            finish_round(/*predicts=*/true, n);
            for (std::size_t c = 0; c < options.connections; ++c) {
              result.conns[c].series_steps += n;
            }
          }
        }
      } catch (const std::exception& e) {
        result.error = e.what();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto pct = [](const std::vector<double>& sorted, double p) {
    const auto at = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[at];
  };
  std::vector<double> all;
  std::vector<double> conn_p50s;
  std::vector<double> conn_p99s;
  std::uint64_t series_steps = 0;
  std::uint64_t stale_replies = 0;
  for (auto& result : results) {
    if (!result.error.empty()) {
      std::fprintf(stderr, "error: loadgen worker failed: %s\n",
                   result.error.c_str());
      return 1;
    }
    for (auto& conn : result.conns) {
      stale_replies += conn.stale_replies;
      if (conn.latencies_us.empty()) continue;
      std::sort(conn.latencies_us.begin(), conn.latencies_us.end());
      conn_p50s.push_back(pct(conn.latencies_us, 0.50));
      conn_p99s.push_back(pct(conn.latencies_us, 0.99));
      all.insert(all.end(), conn.latencies_us.begin(),
                 conn.latencies_us.end());
      series_steps += conn.series_steps;
    }
  }
  std::sort(all.begin(), all.end());
  std::printf("loadgen: %zu threads x %zu connections x %zu series x %zu "
              "steps (batch %zu) against %s:%zu\n",
              threads, options.connections, options.series, options.steps,
              options.batch, options.host.c_str(), options.port);
  std::printf("  observe+predict   %.3f s -> %.0f series-steps/s\n", wall,
              static_cast<double>(series_steps) / wall);
  std::printf("  request latency   p50 %.1f us  p95 %.1f us  p99 %.1f us "
              "(%zu requests)\n",
              pct(all, 0.50), pct(all, 0.95), pct(all, 0.99), all.size());
  const auto minmax_p50 = std::minmax_element(conn_p50s.begin(), conn_p50s.end());
  const auto minmax_p99 = std::minmax_element(conn_p99s.begin(), conn_p99s.end());
  std::printf("  per-connection    p50 %.1f..%.1f us  p99 %.1f..%.1f us "
              "(%zu connections)\n",
              *minmax_p50.first, *minmax_p50.second, *minmax_p99.first,
              *minmax_p99.second, conn_p50s.size());
  if (options.read_from_follower != 0) {
    std::printf("  follower reads    port %zu, %llu stale refusals\n",
                options.read_from_follower,
                static_cast<unsigned long long>(stale_replies));
  }
  return 0;
}

// The pool prototype must match the one used when the snapshot was written
// (pool composition is not serialized); --pool/--window select it, with the
// same defaults serve-sim uses.
std::unique_ptr<serve::PredictionEngine> restore_engine(const Options& options) {
  if (options.positional.empty()) usage("need <data-dir>");
  return serve::PredictionEngine::restore(make_pool(options),
                                          options.positional[0]);
}

void print_engine_summary(const serve::PredictionEngine& engine) {
  const auto stats = engine.stats();
  std::printf("engine: %zu shards, %zu series (%zu trained)\n",
              engine.config().shards, stats.series, stats.trained_series);
  std::printf("  lifetime          %zu observations, %zu predictions, "
              "%zu erases\n",
              stats.observations, stats.predictions, stats.erases);
  std::printf("  training          %zu trains, %zu retrains, %zu audits\n",
              stats.trains, stats.retrains, stats.audits);
  std::printf("  resolved          %zu forecasts, MAE %.4f, MSE %.4f\n",
              stats.resolved, stats.mean_absolute_error,
              stats.mean_squared_error);
}

int cmd_restore(const Options& options) {
  const auto engine = restore_engine(options);
  std::printf("restored from %s\n", options.positional[0].c_str());
  print_engine_summary(*engine);
  return 0;
}

// Offline compaction: restore (snapshot + WAL replay), then publish a fresh
// snapshot, which also prunes the WAL segments it makes obsolete.
int cmd_snapshot(const Options& options) {
  const auto engine = restore_engine(options);
  const auto epoch = engine->snapshot();
  std::printf("wrote snapshot epoch %llu to %s\n",
              static_cast<unsigned long long>(epoch),
              options.positional[0].c_str());
  print_engine_summary(*engine);
  return 0;
}

int cmd_inspect_snapshot(const Options& options) {
  if (options.positional.empty()) usage("need <data-dir>");
  const std::filesystem::path dir = options.positional[0];
  const auto snapshots = persist::list_snapshots(dir);
  if (snapshots.empty()) std::printf("no snapshots in %s\n", dir.c_str());
  bool any_valid = false;
  for (const auto& info : snapshots) {
    try {
      const auto loaded = persist::load_snapshot(info.path);
      // The container version is fixed; the engine payload carries its own
      // layout version (v1: global counters, v2: per-shard watermark table,
      // v4: compressed sections + byte accounting), parsed header-only —
      // inspect never deserializes the shard sections.
      const auto desc = serve::PredictionEngine::describe_payload(
          loaded.payload);
      std::printf(
          "%s  epoch %llu  format %u  engine-payload v%u  %zu payload bytes"
          "  OK\n",
          info.path.filename().c_str(),
          static_cast<unsigned long long>(loaded.epoch), loaded.version,
          desc.payload_version, loaded.payload.size());
      for (std::size_t s = 0; s < desc.raw_bytes.size(); ++s) {
        const double ratio =
            desc.encoded_bytes[s] > 0
                ? static_cast<double>(desc.raw_bytes[s]) /
                      static_cast<double>(desc.encoded_bytes[s])
                : 0.0;
        std::printf(
            "  shard %zu  raw %llu bytes  encoded %llu bytes  (%.2fx)\n", s,
            static_cast<unsigned long long>(desc.raw_bytes[s]),
            static_cast<unsigned long long>(desc.encoded_bytes[s]), ratio);
      }
      any_valid = true;
    } catch (const larp::Error& e) {
      std::printf("%s  CORRUPT: %s\n", info.path.filename().c_str(), e.what());
    }
  }
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const auto name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 || entry.path().extension() != ".log") {
      continue;
    }
    std::printf("%s  %llu bytes\n", name.c_str(),
                static_cast<unsigned long long>(entry.file_size()));
  }
  return (snapshots.empty() || any_valid) ? 0 : 1;
}

int cmd_export(const Options& options) {
  if (options.positional.size() < 2) usage("need <vm> <out.csv>");
  const auto suite = tracegen::make_vm_suite(options.positional[0],
                                             options.seed);
  csv::Table table;
  table.header.push_back("timestamp");
  for (const auto& [key, series] : suite) table.header.push_back(key.metric);
  const auto& axis = suite.front().second.axis;
  for (std::size_t i = 0; i < axis.size(); ++i) {
    std::vector<std::string> row{std::to_string(axis.at(i))};
    for (const auto& [key, series] : suite) {
      row.push_back(std::to_string(series.values[i]));
    }
    table.rows.push_back(std::move(row));
  }
  std::ofstream out(options.positional[1]);
  if (!out) usage("cannot open output file");
  csv::write(out, table);
  std::printf("wrote %zu samples x %zu metrics to %s\n", table.rows.size(),
              suite.size(), options.positional[1].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  try {
    if (options.command == "characterize") return cmd_characterize(options);
    if (options.command == "assess") return cmd_assess(options);
    if (options.command == "evaluate") return cmd_evaluate(options);
    if (options.command == "forecast") return cmd_forecast(options);
    if (options.command == "walk") return cmd_walk(options);
    if (options.command == "export") return cmd_export(options);
    if (options.command == "serve-sim") return cmd_serve_sim(options);
    if (options.command == "serve") return cmd_serve(options);
    if (options.command == "replicate") return cmd_replicate(options);
    if (options.command == "follow") return cmd_follow(options);
    if (options.command == "loadgen") return cmd_loadgen(options);
    if (options.command == "snapshot") return cmd_snapshot(options);
    if (options.command == "restore") return cmd_restore(options);
    if (options.command == "inspect-snapshot") {
      return cmd_inspect_snapshot(options);
    }
    usage(("unknown command " + options.command).c_str());
  } catch (const larp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
