#!/usr/bin/env bash
# Runs every benchmark binary and archives outputs under results/.
# Usage: scripts/run_benchmarks.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  echo "== $name"
  case "$name" in
    bench_fig4_selection_cpu|bench_fig5_selection_net)
      # Figure benches also dump their plotted series as CSV.
      "$bench" "$RESULTS_DIR/$name.csv" | tee "$RESULTS_DIR/$name.txt"
      ;;
    *)
      "$bench" | tee "$RESULTS_DIR/$name.txt"
      ;;
  esac
  echo
done

echo "all benchmark outputs archived under $RESULTS_DIR/"
