#!/usr/bin/env bash
# Runs every benchmark binary and archives outputs under results/.
# Usage: scripts/run_benchmarks.sh [--hotpath-only] [--quick] [build-dir] [results-dir]
#
# The hot-path emitters (bench_micro_complexity --hotpath_json,
# bench_serve_throughput --json) each write a JSON fragment; this script
# merges them into $RESULTS_DIR/BENCH_hotpath.json — the recorded perf
# trajectory (see docs/PERFORMANCE.md).  --hotpath-only runs just those two
# emitters (the CI smoke job); --quick shrinks their workloads.
set -euo pipefail

HOTPATH_ONLY=0
QUICK=0
while [ $# -gt 0 ]; do
  case "$1" in
    --hotpath-only) HOTPATH_ONLY=1; shift ;;
    --quick) QUICK=1; shift ;;
    *) break ;;
  esac
done

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"

emit_hotpath_json() {
  local micro_args=("--hotpath_json=$RESULTS_DIR/.hotpath_micro.json" "--hotpath_only")
  local serve_args=("--json" "$RESULTS_DIR/.hotpath_serve.json" "--net")
  if [ "$QUICK" = 1 ]; then
    micro_args+=("--hotpath_quick")
    serve_args+=("--quick")
  fi
  echo "== hotpath: bench_micro_complexity"
  "$BUILD_DIR/bench/bench_micro_complexity" "${micro_args[@]}"
  echo "== hotpath: bench_serve_throughput"
  "$BUILD_DIR/bench/bench_serve_throughput" "${serve_args[@]}"

  # Merge the two fragments (each a complete JSON object) into one document.
  {
    echo "{"
    echo "  \"micro\": $(cat "$RESULTS_DIR/.hotpath_micro.json"),"
    echo "  \"serve\": $(cat "$RESULTS_DIR/.hotpath_serve.json")"
    echo "}"
  } > "$RESULTS_DIR/BENCH_hotpath.json"
  rm -f "$RESULTS_DIR/.hotpath_micro.json" "$RESULTS_DIR/.hotpath_serve.json"
  echo "hot-path trajectory written to $RESULTS_DIR/BENCH_hotpath.json"
}

if [ "$HOTPATH_ONLY" = 1 ]; then
  emit_hotpath_json
  exit 0
fi

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  echo "== $name"
  case "$name" in
    bench_fig4_selection_cpu|bench_fig5_selection_net)
      # Figure benches also dump their plotted series as CSV.
      "$bench" "$RESULTS_DIR/$name.csv" | tee "$RESULTS_DIR/$name.txt"
      ;;
    bench_selector_cost)
      # Also regenerates the committed selector cost/accuracy grid.
      "$bench" --json "$RESULTS_DIR/BENCH_selectors.json" | tee "$RESULTS_DIR/$name.txt"
      ;;
    *)
      "$bench" | tee "$RESULTS_DIR/$name.txt"
      ;;
  esac
  echo
done

emit_hotpath_json

echo "all benchmark outputs archived under $RESULTS_DIR/"
