#!/usr/bin/env bash
# End-to-end replication smoke over loopback: a larp_cli leader (serve port
# + replication port, both ephemeral), a follower bootstrapping from it, and
# a loadgen that observes against the leader while reading predictions from
# the follower.  Asserts the follower actually applied replicated frames and
# that every process exits cleanly.
# Usage: scripts/repl_smoke.sh [path-to-larp_cli] [workdir]
set -euo pipefail

CLI="${1:-build/tools/larp_cli}"
WORK="${2:-$(mktemp -d "${TMPDIR:-/tmp}/larp_repl_smoke.XXXXXX")}"

if [ ! -x "$CLI" ]; then
  echo "error: $CLI not found or not executable; build larp_cli first" >&2
  exit 1
fi
mkdir -p "$WORK"
LEADER_LOG="$WORK/leader.log"
FOLLOWER_LOG="$WORK/follower.log"

cleanup() {
  [ -n "${FOLLOWER_PID:-}" ] && kill "$FOLLOWER_PID" 2>/dev/null || true
  [ -n "${LEADER_PID:-}" ] && kill "$LEADER_PID" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Polls a log for "<tag> ...:<port>" (the CLI flushes these lines as soon as
# the sockets are bound) and echoes the port.
wait_port() { # log tag
  local log="$1" tag="$2" line=""
  for _ in $(seq 1 100); do
    line=$(grep -m1 "^$tag " "$log" 2>/dev/null || true)
    if [ -n "$line" ]; then
      echo "${line##*:}"
      return 0
    fi
    sleep 0.1
  done
  echo "error: no '$tag' line in $log after 10s" >&2
  cat "$log" >&2 || true
  return 1
}

"$CLI" replicate --data-dir "$WORK/leader" --port 0 --repl-port 0 \
  --shards 4 --max-seconds 20 >"$LEADER_LOG" 2>&1 &
LEADER_PID=$!
LEADER_PORT=$(wait_port "$LEADER_LOG" "listening on")
REPL_PORT=$(wait_port "$LEADER_LOG" "replicating on")

"$CLI" follow --data-dir "$WORK/follower" --leader-port "$REPL_PORT" \
  --port 0 --max-seconds 18 >"$FOLLOWER_LOG" 2>&1 &
FOLLOWER_PID=$!
FOLLOWER_PORT=$(wait_port "$FOLLOWER_LOG" "listening on")

"$CLI" loadgen --port "$LEADER_PORT" --read-from-follower "$FOLLOWER_PORT" \
  --series 8 --steps 5 --batch 8

# Let the last acks/heartbeats land, then bring both ends down in order.
# SIGTERM is handled (the serve loop exits and prints stats), so a clean
# shutdown still reports rc=0.
sleep 1
FOLLOWER_RC=0; LEADER_RC=0
kill "$FOLLOWER_PID"; wait "$FOLLOWER_PID" || FOLLOWER_RC=$?; FOLLOWER_PID=""
kill "$LEADER_PID"; wait "$LEADER_PID" || LEADER_RC=$?; LEADER_PID=""
[ "$FOLLOWER_RC" -eq 0 ] || { echo "follower exited rc=$FOLLOWER_RC" >&2; cat "$FOLLOWER_LOG" >&2; exit 1; }
[ "$LEADER_RC" -eq 0 ] || { echo "leader exited rc=$LEADER_RC" >&2; cat "$LEADER_LOG" >&2; exit 1; }

# The follower must have applied a non-zero replicated frame count and never
# fallen into the unrecoverable re-bootstrap state.
grep -E "replication +[1-9][0-9]* frames applied" "$FOLLOWER_LOG" >/dev/null || {
  echo "error: follower applied no frames" >&2
  cat "$FOLLOWER_LOG" >&2
  exit 1
}
if grep -q "FAILED" "$FOLLOWER_LOG"; then
  echo "error: follower reported failure" >&2
  cat "$FOLLOWER_LOG" >&2
  exit 1
fi

echo "repl smoke ok: leader $LEADER_PORT, repl $REPL_PORT, follower $FOLLOWER_PORT"
