// k-Nearest-Neighbor classifier (paper §5.1): memory-based classification of
// PCA-reduced windows to best-predictor labels.
//
// "Training" is indexing the N labeled points (O(N), as §7.3 notes);
// prediction finds the k closest points under Euclidean distance (eq. 6)
// and majority-votes their labels.  Two search backends are provided:
// brute-force scan (the paper's Matlab behaviour) and the kd-tree of §7.3's
// fast-NN citations — both return identical neighbours, which the tests
// assert.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/kdtree.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::ml {

enum class KnnBackend { BruteForce, KdTree };

class KnnClassifier {
 public:
  /// k must be positive (odd values avoid most voting ties; k = 3 in the
  /// paper's implementation).
  explicit KnnClassifier(std::size_t k = 3,
                         KnnBackend backend = KnnBackend::BruteForce);

  /// Indexes the labeled training points (rows of `points`).
  /// Throws InvalidArgument when labels/points disagree in count or the set
  /// is empty.
  void fit(linalg::Matrix points, std::vector<std::size_t> labels);

  /// Appends one labeled point to the index (online learning).  O(1) for
  /// the brute-force backend; the kd-tree backend inserts incrementally
  /// (amortized O(log N) — see KdTree::insert), so the online-learning
  /// per-step cost does not grow with the indexed-point count.
  void add(std::span<const double> point, std::size_t label);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] KnnBackend backend() const noexcept { return backend_; }

  /// The k nearest training points, ascending distance (index tiebreak).
  /// Allocates its result; doubles as the reference implementation the
  /// scratch path is tested against (brute force keeps the full scan +
  /// partial-sort formulation here).
  [[nodiscard]] std::vector<Neighbor> neighbors(
      std::span<const double> query) const;

  /// Allocation-free variant: results live in scratch.heap and the returned
  /// span views them.  Neighbour-for-neighbour identical to the allocating
  /// overload across both backends (asserted by the parity tests); the
  /// brute-force backend additionally drops the O(N) candidate buffer for a
  /// k-bounded heap.
  std::span<const Neighbor> neighbors(std::span<const double> query,
                                      NeighborScratch& scratch) const;

  /// Class label of the indexed training point (for vote-share queries).
  [[nodiscard]] std::size_t label_of(std::size_t index) const;

  /// Majority-vote label of the k nearest neighbours.  Ties break toward
  /// the smallest label value, matching the paper's class numbering
  /// (1-LAST < 2-AR < 3-SW_AVG).
  [[nodiscard]] std::size_t classify(std::span<const double> query) const;

  /// Allocation-free classify: neighbour search and majority vote run
  /// entirely in caller-owned scratch (flat per-label counts instead of a
  /// node-allocating std::map).  Same result as classify(query).
  std::size_t classify(std::span<const double> query,
                       NeighborScratch& scratch) const;

  /// classify() for every row of a query matrix.
  [[nodiscard]] std::vector<std::size_t> classify(
      const linalg::Matrix& queries) const;

  /// Exact-state serialization: k, backend, the labeled point set, and the
  /// kd-tree structure (when present) all round-trip verbatim so restored
  /// classifications are bit-identical, tie-breaking included.
  void save(persist::io::Writer& w) const;
  void load(persist::io::Reader& r);

 private:
  void require_fitted() const;

  std::size_t k_;
  KnnBackend backend_;
  linalg::Matrix points_;
  std::vector<std::size_t> labels_;
  std::size_t max_label_ = 0;  // bound for flat vote counting
  std::optional<KdTree> tree_;
  bool fitted_ = false;
};

/// Majority vote with smallest-label tie-breaking over arbitrary labels.
[[nodiscard]] std::size_t majority_vote(const std::vector<std::size_t>& labels);

}  // namespace larp::ml
