#include "ml/knn.hpp"

#include <algorithm>
#include <map>

#include "linalg/kernels.hpp"
#include "ml/serialize.hpp"
#include "util/error.hpp"

namespace larp::ml {

KnnClassifier::KnnClassifier(std::size_t k, KnnBackend backend)
    : k_(k), backend_(backend) {
  if (k == 0) throw InvalidArgument("KnnClassifier: k must be positive");
}

void KnnClassifier::fit(linalg::Matrix points, std::vector<std::size_t> labels) {
  if (points.rows() == 0) {
    throw InvalidArgument("KnnClassifier::fit: empty training set");
  }
  if (points.rows() != labels.size()) {
    throw InvalidArgument("KnnClassifier::fit: points/labels count mismatch");
  }
  points_ = std::move(points);
  labels_ = std::move(labels);
  max_label_ = *std::max_element(labels_.begin(), labels_.end());
  if (backend_ == KnnBackend::KdTree) {
    tree_.emplace(points_);
  } else {
    tree_.reset();
  }
  fitted_ = true;
}

void KnnClassifier::add(std::span<const double> point, std::size_t label) {
  require_fitted();
  if (point.size() != points_.cols()) {
    throw InvalidArgument("KnnClassifier::add: point dimension mismatch");
  }
  points_.append_row(point);
  labels_.push_back(label);
  max_label_ = std::max(max_label_, label);
  if (tree_) tree_->insert(point);  // amortized O(log N) incremental insert
}

void KnnClassifier::require_fitted() const {
  if (!fitted_) throw StateError("KnnClassifier used before fit()");
}

std::vector<Neighbor> KnnClassifier::neighbors(
    std::span<const double> query) const {
  require_fitted();
  if (query.size() != points_.cols()) {
    throw InvalidArgument("KnnClassifier: query dimension mismatch");
  }
  const std::size_t k = std::min(k_, points_.rows());

  if (tree_) return tree_->nearest(query, k);

  // Brute force: scan all points, keep the k best via partial sort.
  std::vector<Neighbor> all;
  all.reserve(points_.rows());
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    all.push_back({i, linalg::squared_distance(points_.row(i), query)});
  }
  const auto better = [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.index < b.index;
  };
  std::partial_sort(all.begin(), all.begin() + k, all.end(), better);
  all.resize(k);
  return all;
}

std::span<const Neighbor> KnnClassifier::neighbors(
    std::span<const double> query, NeighborScratch& scratch) const {
  require_fitted();
  if (query.size() != points_.cols()) {
    throw InvalidArgument("KnnClassifier: query dimension mismatch");
  }
  const std::size_t k = std::min(k_, points_.rows());

  if (tree_) return tree_->nearest(query, k, scratch);

  // Brute force without the O(N) candidate buffer: one batched kernel call
  // sweeps every distance into scratch (dispatch + vectorization across
  // points, not per point), then a k-bounded max-heap keeps the best.  The
  // comparator matches the allocating path's partial_sort ordering
  // (distance, then index), so the retained set and its order are identical.
  const auto heap_less = [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.index < b.index;
  };
  auto& heap = scratch.heap;
  heap.clear();
  heap.reserve(k);
  const std::size_t rows = points_.rows();
  scratch.distances.resize(rows);
  linalg::kernels::batch_squared_distance(points_.data().data(), rows,
                                          points_.cols(), query.data(),
                                          scratch.distances.data());
  for (std::size_t i = 0; i < rows; ++i) {
    const Neighbor candidate{i, scratch.distances[i]};
    if (heap.size() < k) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), heap_less);
    } else if (heap_less(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), heap_less);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), heap_less);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), heap_less);
  return heap;
}

std::size_t KnnClassifier::label_of(std::size_t index) const {
  require_fitted();
  if (index >= labels_.size()) {
    throw InvalidArgument("KnnClassifier::label_of: index out of range");
  }
  return labels_[index];
}

std::size_t KnnClassifier::classify(std::span<const double> query) const {
  const auto hits = neighbors(query);
  std::vector<std::size_t> votes;
  votes.reserve(hits.size());
  for (const auto& hit : hits) votes.push_back(labels_[hit.index]);
  return majority_vote(votes);
}

std::size_t KnnClassifier::classify(std::span<const double> query,
                                    NeighborScratch& scratch) const {
  const auto hits = neighbors(query, scratch);
  // Flat majority vote: counts indexed by label, scanned ascending so ties
  // resolve to the smallest label — the same convention as majority_vote's
  // ordered-map walk.  assign() reuses the vector's capacity.
  scratch.votes.assign(max_label_ + 1, 0);
  for (const auto& hit : hits) ++scratch.votes[labels_[hit.index]];
  std::size_t winner = 0;
  std::size_t best = 0;
  for (std::size_t label = 0; label < scratch.votes.size(); ++label) {
    if (scratch.votes[label] > best) {
      best = scratch.votes[label];
      winner = label;
    }
  }
  return winner;
}

std::vector<std::size_t> KnnClassifier::classify(
    const linalg::Matrix& queries) const {
  std::vector<std::size_t> out;
  out.reserve(queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    out.push_back(classify(queries.row(i)));
  }
  return out;
}

std::size_t majority_vote(const std::vector<std::size_t>& labels) {
  if (labels.empty()) throw InvalidArgument("majority_vote: no votes");
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t label : labels) ++counts[label];
  std::size_t winner = labels.front();
  std::size_t best = 0;
  // std::map iterates labels ascending, so ties resolve to the smallest.
  for (const auto& [label, count] : counts) {
    if (count > best) {
      best = count;
      winner = label;
    }
  }
  return winner;
}

void KnnClassifier::save(persist::io::Writer& w) const {
  w.u64(k_);
  w.u8(backend_ == KnnBackend::KdTree ? 1 : 0);
  save_matrix(w, points_);
  w.u64_span(labels_);
  w.u64(max_label_);
  w.boolean(tree_.has_value());
  if (tree_) tree_->save(w);
  w.boolean(fitted_);
}

void KnnClassifier::load(persist::io::Reader& r) {
  const auto k = static_cast<std::size_t>(r.u64());
  if (k == 0) throw persist::CorruptData("knn: serialized k must be positive");
  const std::uint8_t backend = r.u8();
  if (backend > 1) throw persist::CorruptData("knn: unknown serialized backend");
  k_ = k;
  backend_ = backend == 1 ? KnnBackend::KdTree : KnnBackend::BruteForce;
  points_ = load_matrix(r);
  labels_ = r.u64_vector();
  max_label_ = static_cast<std::size_t>(r.u64());
  tree_.reset();
  if (r.boolean()) {
    tree_.emplace();
    tree_->load(r);
  }
  fitted_ = r.boolean();
  if (labels_.size() != points_.rows()) {
    throw persist::CorruptData("knn: serialized labels/points mismatch");
  }
}

}  // namespace larp::ml
