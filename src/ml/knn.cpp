#include "ml/knn.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace larp::ml {

KnnClassifier::KnnClassifier(std::size_t k, KnnBackend backend)
    : k_(k), backend_(backend) {
  if (k == 0) throw InvalidArgument("KnnClassifier: k must be positive");
}

void KnnClassifier::fit(linalg::Matrix points, std::vector<std::size_t> labels) {
  if (points.rows() == 0) {
    throw InvalidArgument("KnnClassifier::fit: empty training set");
  }
  if (points.rows() != labels.size()) {
    throw InvalidArgument("KnnClassifier::fit: points/labels count mismatch");
  }
  points_ = std::move(points);
  labels_ = std::move(labels);
  if (backend_ == KnnBackend::KdTree) {
    tree_.emplace(points_);
  } else {
    tree_.reset();
  }
  fitted_ = true;
}

void KnnClassifier::add(std::span<const double> point, std::size_t label) {
  require_fitted();
  if (point.size() != points_.cols()) {
    throw InvalidArgument("KnnClassifier::add: point dimension mismatch");
  }
  points_.append_row(point);
  labels_.push_back(label);
  if (tree_) tree_->insert(point);  // amortized O(log N) incremental insert
}

void KnnClassifier::require_fitted() const {
  if (!fitted_) throw StateError("KnnClassifier used before fit()");
}

std::vector<Neighbor> KnnClassifier::neighbors(
    std::span<const double> query) const {
  require_fitted();
  if (query.size() != points_.cols()) {
    throw InvalidArgument("KnnClassifier: query dimension mismatch");
  }
  const std::size_t k = std::min(k_, points_.rows());

  if (tree_) return tree_->nearest(query, k);

  // Brute force: scan all points, keep the k best via partial sort.
  std::vector<Neighbor> all;
  all.reserve(points_.rows());
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    all.push_back({i, linalg::squared_distance(points_.row(i), query)});
  }
  const auto better = [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.index < b.index;
  };
  std::partial_sort(all.begin(), all.begin() + k, all.end(), better);
  all.resize(k);
  return all;
}

std::size_t KnnClassifier::label_of(std::size_t index) const {
  require_fitted();
  if (index >= labels_.size()) {
    throw InvalidArgument("KnnClassifier::label_of: index out of range");
  }
  return labels_[index];
}

std::size_t KnnClassifier::classify(std::span<const double> query) const {
  const auto hits = neighbors(query);
  std::vector<std::size_t> votes;
  votes.reserve(hits.size());
  for (const auto& hit : hits) votes.push_back(labels_[hit.index]);
  return majority_vote(votes);
}

std::vector<std::size_t> KnnClassifier::classify(
    const linalg::Matrix& queries) const {
  std::vector<std::size_t> out;
  out.reserve(queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    out.push_back(classify(queries.row(i)));
  }
  return out;
}

std::size_t majority_vote(const std::vector<std::size_t>& labels) {
  if (labels.empty()) throw InvalidArgument("majority_vote: no votes");
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t label : labels) ++counts[label];
  std::size_t winner = labels.front();
  std::size_t best = 0;
  // std::map iterates labels ascending, so ties resolve to the smallest.
  for (const auto& [label, count] : counts) {
    if (count > best) {
      best = count;
      winner = label;
    }
  }
  return winner;
}

}  // namespace larp::ml
