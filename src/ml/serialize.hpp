// persist::io helpers for the linalg substrate types the ml layer
// serializes (matrices, vectors of class labels).  Header-only and included
// from the ml .cpp files, so linalg itself never grows a persist dependency.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "persist/io.hpp"

namespace larp::ml {

/// [rows u64][cols u64][rows*cols f64 bit patterns, row-major].
inline void save_matrix(persist::io::Writer& w, const linalg::Matrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  for (double x : m.data()) w.f64(x);
}

inline linalg::Matrix load_matrix(persist::io::Reader& r) {
  const auto rows = static_cast<std::size_t>(r.length(r.u64(), sizeof(double)));
  const auto cols = static_cast<std::size_t>(r.length(r.u64(), sizeof(double)));
  // Each dimension alone fits the buffer; guard their product too before
  // allocating (rows * 8 cannot overflow: rows <= remaining / 8).
  if (rows != 0 && cols > r.remaining() / (rows * sizeof(double))) {
    throw persist::CorruptData("persist: matrix dimensions exceed payload");
  }
  linalg::Matrix m(rows, cols);
  for (double& x : m.data()) x = r.f64();
  return m;
}

}  // namespace larp::ml
