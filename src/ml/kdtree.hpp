// kd-tree exact nearest-neighbour index (Friedman/Bentley/Finkel, the
// "fast algorithms for finding nearest-neighbors" the paper cites in §7.3).
//
// Points live in a low-dimensional PCA space (n = 2 typically), where a
// kd-tree gives O(log N) expected query time against the brute-force O(N·n).
// The tree stores point indices into the caller's matrix; splitting is by
// median along the widest-spread dimension, which keeps the tree balanced
// for the clustered window distributions produced by real traces.
//
// insert() supports the online-learning path: a new point descends to a
// leaf position (O(depth)); a full rebuild runs on either of two triggers:
//   * doubling rule — more than half the points postdate the last build,
//     which keeps insertion amortized O(log N) for benign orders;
//   * depth cap — the new leaf would sit deeper than depth_limit(N)
//     (c·log₂N + slack).  Adversarial insertion orders (sorted values all
//     descending one path) grow depth linearly long before the doubling
//     rule fires; the cap bounds query cost — and the recursion depth of
//     search() — at O(log N) always, trading amortized O(N) insert cost in
//     the adversarial case (the cap can fire only once per Ω(log N)
//     inserts, since each insert deepens a path by at most one).
// Queries remain exact at every moment — the tests assert
// neighbour-identical results against brute force across interleaved
// inserts.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::ml {

/// A neighbour hit: index of the training point and squared distance.
struct Neighbor {
  std::size_t index;
  double squared_distance;
};

/// Caller-owned scratch for allocation-free k-NN queries: the k-best heap
/// and the vote counts reuse their capacity across queries, so steady-state
/// nearest()/classify() calls perform zero heap allocations.  One scratch
/// instance per querying thread; a scratch must not be shared concurrently.
struct NeighborScratch {
  std::vector<Neighbor> heap;       // k-best candidates, sorted on return
  std::vector<std::size_t> votes;   // per-label counts (KnnClassifier)
  std::vector<double> distances;    // batched brute-force distance sweep
};

class KdTree {
 public:
  KdTree() = default;

  /// Builds the index over the rows of `points` (copied in).
  explicit KdTree(linalg::Matrix points);

  [[nodiscard]] std::size_t size() const noexcept { return points_.rows(); }
  [[nodiscard]] std::size_t dimension() const noexcept { return points_.cols(); }

  /// The k exact nearest neighbours of `query`, ordered by ascending
  /// distance with index as the tiebreaker (so results are deterministic
  /// when distances are equal).  k is clamped to size().
  [[nodiscard]] std::vector<Neighbor> nearest(std::span<const double> query,
                                              std::size_t k) const;

  /// Allocation-free variant: the result lives in scratch.heap (sorted
  /// ascending, same order as the allocating overload) and the returned span
  /// views it.  Steady-state queries reuse the scratch capacity and perform
  /// no heap allocations.
  std::span<const Neighbor> nearest(std::span<const double> query,
                                    std::size_t k,
                                    NeighborScratch& scratch) const;

  /// Appends one point to the index (its index is the previous size()).
  /// O(depth) leaf insertion; a full rebalance runs once the inserted
  /// points outnumber the ones present at the last build (doubling rule) or
  /// once the new leaf would exceed depth_limit(size()) (depth cap, the
  /// adversarial-order guard).  An empty tree adopts the point's dimension.
  void insert(std::span<const double> point);

  /// Deepest node, counted in nodes (empty tree = 0, lone root = 1).
  /// Invariant after every insert(): max_depth() <= depth_limit(size()).
  [[nodiscard]] std::size_t max_depth() const;

  /// The depth bound insert() enforces: 2·⌈log₂N⌉-ish plus constant slack
  /// (exact shape documented in the implementation; shared with the tests).
  [[nodiscard]] static std::size_t depth_limit(std::size_t n) noexcept;

  /// Exact-structure serialization: nodes and split dimensions round-trip
  /// verbatim, so a restored tree visits neighbours in the identical order
  /// (equal-distance ties included) as the one that was snapshotted.
  void save(persist::io::Writer& w) const;
  void load(persist::io::Reader& r);

 private:
  struct Node {
    std::size_t point = 0;        // row index of the splitting point
    std::size_t split_dim = 0;    // dimension this node splits on
    std::int32_t left = -1;       // child node ids (-1 = none)
    std::int32_t right = -1;
  };

  std::int32_t build(std::vector<std::size_t>& items, std::size_t lo,
                     std::size_t hi);
  void rebuild();
  void search(std::int32_t node_id, std::span<const double> query,
              std::size_t k, std::vector<Neighbor>& heap) const;

  linalg::Matrix points_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t inserted_since_build_ = 0;
};

}  // namespace larp::ml
