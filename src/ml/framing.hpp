// Series framing (paper §6, Fig. 3): turns a series of u values into the
// overlapping window matrix X_{(u-m)×m} plus the one-step-ahead target for
// each window.
//
// Window i is (x_i ... x_{i+m-1}) and its target is x_{i+m}; only windows
// whose target exists are emitted, so a u-point series yields u-m supervised
// pairs.  (The paper's Fig. 3 writes u-m+1 frames because it counts the
// final, target-less window too; frame_windows() provides that variant.)
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace larp::ml {

/// Supervised framing: windows and aligned next-value targets.
struct FramedSeries {
  linalg::Matrix windows;   // (u-m) x m
  linalg::Vector targets;   // u-m; targets[i] follows windows.row(i)
};

/// Frames a series into supervised (window, next value) pairs.
/// Throws InvalidArgument when window_size == 0 or series.size() <= window_size.
[[nodiscard]] FramedSeries frame_supervised(std::span<const double> series,
                                            std::size_t window_size);

/// Frames all (u-m+1) windows without targets (the paper's X'_{(u-m+1)×m}).
[[nodiscard]] linalg::Matrix frame_windows(std::span<const double> series,
                                           std::size_t window_size);

}  // namespace larp::ml
