// Z-score normalization (paper §5.1/§6): features are scaled to zero mean
// and unit variance because the metrics under study (CPU percentage,
// bytes/second, ...) have incomparable units.
//
// Coefficients are derived once from the training half and replayed on test
// data (§6.2), so the normalizer is a fit/transform pair rather than a free
// function — this is what prevents train/test leakage.
#pragma once

#include <span>
#include <vector>

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::ml {

class ZScoreNormalizer {
 public:
  /// Estimates mean and standard deviation from `series`.
  /// Throws InvalidArgument for an empty series.  A constant series gets
  /// stddev 1 so transform() maps it to all-zeros instead of dividing by 0.
  void fit(std::span<const double> series);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

  /// (x - mean) / stddev; throws StateError before fit().
  [[nodiscard]] double transform(double x) const;
  [[nodiscard]] std::vector<double> transform(std::span<const double> xs) const;

  /// Batched, allocation-free transform into caller-owned storage (same
  /// length as the input; in-place xs == out is fine).  Vectorized through
  /// the linalg kernel layer with rounding identical to the scalar overload.
  void transform_into(std::span<const double> xs, std::span<double> out) const;

  /// mean + z * stddev.
  [[nodiscard]] double inverse(double z) const;
  [[nodiscard]] std::vector<double> inverse(std::span<const double> zs) const;

  /// Batched, allocation-free inverse into caller-owned storage.
  void inverse_into(std::span<const double> zs, std::span<double> out) const;

  /// Exact-state serialization for durable snapshots (persist layer).
  void save(persist::io::Writer& w) const;
  void load(persist::io::Reader& r);

 private:
  void require_fitted() const;

  double mean_ = 0.0;
  double stddev_ = 1.0;
  bool fitted_ = false;
};

}  // namespace larp::ml
