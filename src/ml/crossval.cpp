#include "ml/crossval.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace larp::ml {

std::vector<SplitFold> make_random_split_folds(std::size_t length,
                                               const CrossValidationPlan& plan,
                                               Rng& rng,
                                               std::size_t min_side_points) {
  if (length == 0) throw InvalidArgument("cross-validation: empty series");
  if (plan.folds == 0) throw InvalidArgument("cross-validation: zero folds");
  if (!(plan.min_fraction > 0.0) || !(plan.max_fraction < 1.0) ||
      plan.min_fraction > plan.max_fraction) {
    throw InvalidArgument("cross-validation: fraction band must satisfy 0 < min <= max < 1");
  }
  if (length < 2 * min_side_points) {
    throw InvalidArgument("cross-validation: series shorter than 2 x min_side_points");
  }

  std::vector<SplitFold> folds;
  folds.reserve(plan.folds);
  for (std::size_t f = 0; f < plan.folds; ++f) {
    const double fraction = rng.uniform(plan.min_fraction, plan.max_fraction);
    std::size_t split = static_cast<std::size_t>(
        fraction * static_cast<double>(length) + 0.5);
    split = std::clamp(split, min_side_points, length - min_side_points);
    folds.push_back(SplitFold{split, length});
  }
  return folds;
}

}  // namespace larp::ml
