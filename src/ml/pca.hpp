// Principal Component Analysis (paper §5.2): the linear projection that
// reduces the classifier's feature space from the window size m to n < m
// dimensions before the k-NN search.
//
// Implementation: center the training windows, form the sample covariance,
// eigendecompose it with the Jacobi solver, and keep the leading components.
// Two selection policies mirror the paper: a fixed component count
// (n = 2 in the paper's implementation) and a minimum fraction of retained
// variance ("the minimal fraction variance was set to extract exactly two
// principal components").
#pragma once

#include <cstddef>
#include <span>

#include "linalg/matrix.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::ml {

/// Component-selection policy.
struct PcaPolicy {
  /// Keep exactly this many components when > 0 (clamped to the feature
  /// dimension); otherwise use min_variance_fraction.
  std::size_t fixed_components = 2;
  /// Keep the smallest k whose cumulative explained variance reaches this
  /// fraction (only when fixed_components == 0).
  double min_variance_fraction = 0.9;
};

class Pca {
 public:
  /// Learns the projection from training samples (rows = observations).
  /// Throws InvalidArgument for an empty matrix or a zero policy.
  void fit(const linalg::Matrix& samples, const PcaPolicy& policy = {});

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Number of retained components n.
  [[nodiscard]] std::size_t components() const noexcept { return components_; }

  /// Input dimensionality m seen at fit().
  [[nodiscard]] std::size_t input_dimension() const noexcept { return dimension_; }

  /// Eigenvalues of all m components, descending.
  [[nodiscard]] const linalg::Vector& eigenvalues() const noexcept {
    return eigenvalues_;
  }

  /// Fraction of total variance captured by each retained component.
  [[nodiscard]] linalg::Vector explained_variance_ratio() const;

  /// Projects one sample (length m) to the reduced space (length n).
  [[nodiscard]] linalg::Vector transform(std::span<const double> sample) const;

  /// Allocation-free projection into caller-owned storage (length n).
  /// The hot-path variant: no temporary Vector per sample.
  void transform_into(std::span<const double> sample,
                      std::span<double> out) const;

  /// Convenience overload that resizes `out` to components() — no
  /// reallocation once the capacity is established.
  void transform_into(std::span<const double> sample, linalg::Vector& out) const;

  /// Projects a whole sample matrix in a single pass: every row is projected
  /// straight into the output matrix, with dimensions validated once.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& samples) const;

  /// Maps a reduced vector (length n) back to the original space (length m);
  /// lossy unless n == m.
  [[nodiscard]] linalg::Vector inverse_transform(
      std::span<const double> reduced) const;

  /// Allocation-free inverse projection into caller-owned storage (length m).
  void inverse_transform_into(std::span<const double> reduced,
                              std::span<double> out) const;

  /// Exact-state serialization for durable snapshots (persist layer).
  void save(persist::io::Writer& w) const;
  void load(persist::io::Reader& r);

 private:
  void require_fitted() const;

  linalg::Vector means_;       // column means used for centering
  linalg::Matrix basis_;       // m x n, columns are retained eigenvectors
  linalg::Vector eigenvalues_; // all m eigenvalues, descending
  std::size_t components_ = 0;
  std::size_t dimension_ = 0;
  bool fitted_ = false;
};

}  // namespace larp::ml
