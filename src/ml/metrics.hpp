// Classification quality metrics for the best-predictor forecasting
// experiments (§7.1 reports "best predictor forecasting accuracy").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace larp::ml {

/// Square confusion matrix over `classes` labels.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  /// Records one (true label, predicted label) pair; throws InvalidArgument
  /// for out-of-range labels.
  void add(std::size_t actual, std::size_t predicted);

  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(std::size_t actual, std::size_t predicted) const;

  /// Fraction of diagonal entries; 0 when empty.
  [[nodiscard]] double accuracy() const noexcept;

  /// Per-class recall (diagonal / row sum); 0 for unseen classes.
  [[nodiscard]] std::vector<double> recall() const;

  /// Per-class precision (diagonal / column sum); 0 for never-predicted ones.
  [[nodiscard]] std::vector<double> precision() const;

  /// ASCII rendering for reports (rows = actual, columns = predicted).
  [[nodiscard]] std::string render(const std::vector<std::string>& names) const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // row-major classes_ x classes_
};

/// Accuracy of a predicted label sequence against truth (equal lengths).
[[nodiscard]] double accuracy(const std::vector<std::size_t>& actual,
                              const std::vector<std::size_t>& predicted);

}  // namespace larp::ml
