#include "ml/normalizer.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::ml {

void ZScoreNormalizer::fit(std::span<const double> series) {
  if (series.empty()) throw InvalidArgument("ZScoreNormalizer: empty series");
  mean_ = stats::mean(series);
  const double sd = stats::stddev(series);
  stddev_ = sd > 0.0 ? sd : 1.0;
  fitted_ = true;
}

void ZScoreNormalizer::require_fitted() const {
  if (!fitted_) throw StateError("ZScoreNormalizer: used before fit()");
}

double ZScoreNormalizer::transform(double x) const {
  require_fitted();
  return (x - mean_) / stddev_;
}

std::vector<double> ZScoreNormalizer::transform(std::span<const double> xs) const {
  require_fitted();
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back((x - mean_) / stddev_);
  return out;
}

double ZScoreNormalizer::inverse(double z) const {
  require_fitted();
  return mean_ + z * stddev_;
}

std::vector<double> ZScoreNormalizer::inverse(std::span<const double> zs) const {
  require_fitted();
  std::vector<double> out;
  out.reserve(zs.size());
  for (double z : zs) out.push_back(mean_ + z * stddev_);
  return out;
}

}  // namespace larp::ml
