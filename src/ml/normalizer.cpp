#include "ml/normalizer.hpp"

#include "linalg/kernels.hpp"
#include "persist/io.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::ml {

void ZScoreNormalizer::fit(std::span<const double> series) {
  if (series.empty()) throw InvalidArgument("ZScoreNormalizer: empty series");
  mean_ = stats::mean(series);
  const double sd = stats::stddev(series);
  stddev_ = sd > 0.0 ? sd : 1.0;
  fitted_ = true;
}

void ZScoreNormalizer::require_fitted() const {
  if (!fitted_) throw StateError("ZScoreNormalizer: used before fit()");
}

double ZScoreNormalizer::transform(double x) const {
  require_fitted();
  return (x - mean_) / stddev_;
}

std::vector<double> ZScoreNormalizer::transform(std::span<const double> xs) const {
  require_fitted();
  std::vector<double> out(xs.size());
  transform_into(xs, out);
  return out;
}

void ZScoreNormalizer::transform_into(std::span<const double> xs,
                                      std::span<double> out) const {
  require_fitted();
  if (xs.size() != out.size()) {
    throw InvalidArgument("ZScoreNormalizer::transform_into: size mismatch");
  }
  linalg::kernels::zscore(xs.data(), xs.size(), mean_, stddev_, out.data());
}

double ZScoreNormalizer::inverse(double z) const {
  require_fitted();
  return mean_ + z * stddev_;
}

std::vector<double> ZScoreNormalizer::inverse(std::span<const double> zs) const {
  require_fitted();
  std::vector<double> out(zs.size());
  inverse_into(zs, out);
  return out;
}

void ZScoreNormalizer::inverse_into(std::span<const double> zs,
                                    std::span<double> out) const {
  require_fitted();
  if (zs.size() != out.size()) {
    throw InvalidArgument("ZScoreNormalizer::inverse_into: size mismatch");
  }
  linalg::kernels::zscore_inverse(zs.data(), zs.size(), mean_, stddev_,
                                  out.data());
}

void ZScoreNormalizer::save(persist::io::Writer& w) const {
  w.f64(mean_);
  w.f64(stddev_);
  w.boolean(fitted_);
}

void ZScoreNormalizer::load(persist::io::Reader& r) {
  mean_ = r.f64();
  stddev_ = r.f64();
  fitted_ = r.boolean();
}

}  // namespace larp::ml
