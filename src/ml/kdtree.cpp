#include "ml/kdtree.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "linalg/kernels.hpp"
#include "ml/serialize.hpp"
#include "util/error.hpp"

namespace larp::ml {

namespace {
// Max-heap ordering on (squared_distance, index): the root is the worst
// retained neighbour, which is what gets evicted when a closer point shows up.
bool heap_less(const Neighbor& a, const Neighbor& b) {
  if (a.squared_distance != b.squared_distance) {
    return a.squared_distance < b.squared_distance;
  }
  return a.index < b.index;
}
}  // namespace

KdTree::KdTree(linalg::Matrix points) : points_(std::move(points)) {
  if (points_.rows() == 0) return;
  if (points_.cols() == 0) throw InvalidArgument("KdTree: zero-dimensional points");
  rebuild();
}

void KdTree::rebuild() {
  std::vector<std::size_t> items(points_.rows());
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
  nodes_.clear();
  nodes_.reserve(points_.rows());
  root_ = build(items, 0, items.size());
  inserted_since_build_ = 0;
}

void KdTree::insert(std::span<const double> point) {
  if (point.empty()) throw InvalidArgument("KdTree::insert: empty point");
  if (size() > 0 && point.size() != dimension()) {
    throw InvalidArgument("KdTree::insert: point dimension mismatch");
  }
  points_.append_row(point);
  const std::size_t index = points_.rows() - 1;

  // Doubling rule: once the post-build inserts outnumber the points the
  // balanced build saw, re-balance from scratch.  The O(N log N) rebuild is
  // charged against the >= N/2 preceding O(depth) inserts, so each insert
  // pays amortized O(log N).
  if (inserted_since_build_ + 1 > points_.rows() / 2) {
    rebuild();
    return;
  }
  ++inserted_since_build_;

  // Descend to the leaf position.  The search invariant only needs the left
  // subtree <= node <= right subtree along each split dimension, so points
  // equal on the split coordinate may go either way.
  const std::int32_t leaf = static_cast<std::int32_t>(nodes_.size());
  std::int32_t current = root_;
  std::size_t depth = 1;  // depth of `current`, in nodes (root = 1)
  for (;;) {
    Node& node = nodes_[current];
    const bool go_left = point[node.split_dim] <= points_(node.point, node.split_dim);
    std::int32_t& child = go_left ? node.left : node.right;
    if (child < 0) {
      // Cycle the split dimension past the parent's — a leaf holds a single
      // point, so there is no spread to pick the widest dimension from.
      const std::size_t split_dim = (node.split_dim + 1) % points_.cols();
      child = leaf;
      nodes_.push_back(Node{index, split_dim, -1, -1});
      // Depth cap: an adversarial (e.g. sorted) insertion order deepens one
      // path by 1 per insert, reaching depth N/2 long before the doubling
      // rule runs — and query cost is O(depth).  Rebalance as soon as the
      // new leaf breaches the cap; between two such rebuilds at least
      // (depth_limit - log2 N) = Ω(log N) inserts must pass, so the
      // O(N log N) rebuild amortizes to O(N) per insert even against the
      // adversary, while queries stay O(log N) unconditionally.
      if (depth + 1 > depth_limit(points_.rows())) rebuild();
      return;
    }
    current = child;
    ++depth;
  }
}

std::size_t KdTree::depth_limit(std::size_t n) noexcept {
  // c·log₂N with c = 2, plus constant slack so small/degenerate trees never
  // thrash: bit_width(n) = floor(log2 n) + 1.
  return 8 + 2 * static_cast<std::size_t>(std::bit_width(n));
}

std::size_t KdTree::max_depth() const {
  if (root_ < 0) return 0;
  std::size_t deepest = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack;
  stack.emplace_back(root_, 1);
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    deepest = std::max(deepest, depth);
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.left >= 0) stack.emplace_back(node.left, depth + 1);
    if (node.right >= 0) stack.emplace_back(node.right, depth + 1);
  }
  return deepest;
}

std::int32_t KdTree::build(std::vector<std::size_t>& items, std::size_t lo,
                           std::size_t hi) {
  if (lo >= hi) return -1;

  // Split along the dimension with the widest spread in this subset.
  const std::size_t dims = points_.cols();
  std::size_t split_dim = 0;
  double best_spread = -1.0;
  for (std::size_t d = 0; d < dims; ++d) {
    double low = std::numeric_limits<double>::infinity();
    double high = -low;
    for (std::size_t i = lo; i < hi; ++i) {
      const double v = points_(items[i], d);
      low = std::min(low, v);
      high = std::max(high, v);
    }
    if (high - low > best_spread) {
      best_spread = high - low;
      split_dim = d;
    }
  }

  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(items.begin() + lo, items.begin() + mid, items.begin() + hi,
                   [&](std::size_t a, std::size_t b) {
                     const double va = points_(a, split_dim);
                     const double vb = points_(b, split_dim);
                     return va != vb ? va < vb : a < b;
                   });

  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{items[mid], split_dim, -1, -1});
  const std::int32_t left = build(items, lo, mid);
  const std::int32_t right = build(items, mid + 1, hi);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void KdTree::search(std::int32_t node_id, std::span<const double> query,
                    std::size_t k, std::vector<Neighbor>& heap) const {
  if (node_id < 0) return;
  const Node& node = nodes_[node_id];
  const auto point = points_.row(node.point);

  const double sq = linalg::kernels::squared_distance(query.data(),
                                                      point.data(),
                                                      query.size());
  const Neighbor candidate{node.point, sq};
  if (heap.size() < k) {
    heap.push_back(candidate);
    std::push_heap(heap.begin(), heap.end(), heap_less);
  } else if (heap_less(candidate, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), heap_less);
  }

  const double along = query[node.split_dim] - point[node.split_dim];
  const std::int32_t near_child = along <= 0.0 ? node.left : node.right;
  const std::int32_t far_child = along <= 0.0 ? node.right : node.left;

  search(near_child, query, k, heap);
  // Only descend the far side if the splitting plane is closer than the
  // current worst retained neighbour (or the heap is not yet full).
  if (heap.size() < k || along * along <= heap.front().squared_distance) {
    search(far_child, query, k, heap);
  }
}

std::vector<Neighbor> KdTree::nearest(std::span<const double> query,
                                      std::size_t k) const {
  NeighborScratch scratch;
  const auto hits = nearest(query, k, scratch);
  return {hits.begin(), hits.end()};
}

std::span<const Neighbor> KdTree::nearest(std::span<const double> query,
                                          std::size_t k,
                                          NeighborScratch& scratch) const {
  scratch.heap.clear();
  if (size() == 0 || k == 0) return {};
  if (query.size() != dimension()) {
    throw InvalidArgument("KdTree::nearest: query dimension mismatch");
  }
  k = std::min(k, size());
  scratch.heap.reserve(k);
  search(root_, query, k, scratch.heap);
  std::sort_heap(scratch.heap.begin(), scratch.heap.end(), heap_less);
  return scratch.heap;
}

void KdTree::save(persist::io::Writer& w) const {
  save_matrix(w, points_);
  w.u64(nodes_.size());
  for (const Node& n : nodes_) {
    w.u64(n.point);
    w.u64(n.split_dim);
    w.i64(n.left);
    w.i64(n.right);
  }
  w.i64(root_);
  w.u64(inserted_since_build_);
}

void KdTree::load(persist::io::Reader& r) {
  points_ = load_matrix(r);
  const auto count =
      static_cast<std::size_t>(r.length(r.u64(), 4 * sizeof(std::uint64_t)));
  nodes_.clear();
  nodes_.reserve(count);
  const auto valid_child = [count](std::int64_t id) {
    return id == -1 || (id >= 0 && static_cast<std::size_t>(id) < count);
  };
  for (std::size_t i = 0; i < count; ++i) {
    Node node;
    node.point = static_cast<std::size_t>(r.u64());
    node.split_dim = static_cast<std::size_t>(r.u64());
    const std::int64_t left = r.i64();
    const std::int64_t right = r.i64();
    if (node.point >= points_.rows() ||
        (points_.cols() != 0 && node.split_dim >= points_.cols()) ||
        !valid_child(left) || !valid_child(right)) {
      throw persist::CorruptData("kdtree: node references out of range");
    }
    node.left = static_cast<std::int32_t>(left);
    node.right = static_cast<std::int32_t>(right);
    nodes_.push_back(node);
  }
  const std::int64_t root = r.i64();
  if (!valid_child(root)) throw persist::CorruptData("kdtree: root out of range");
  root_ = static_cast<std::int32_t>(root);
  inserted_since_build_ = static_cast<std::size_t>(r.u64());
}

}  // namespace larp::ml
