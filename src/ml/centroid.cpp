#include "ml/centroid.hpp"

#include <algorithm>
#include <map>

#include "ml/serialize.hpp"
#include "util/error.hpp"

namespace larp::ml {

void NearestCentroidClassifier::fit(const linalg::Matrix& points,
                                    const std::vector<std::size_t>& labels) {
  if (points.rows() == 0) {
    throw InvalidArgument("NearestCentroid::fit: empty training set");
  }
  if (points.rows() != labels.size()) {
    throw InvalidArgument("NearestCentroid::fit: points/labels mismatch");
  }
  dimension_ = points.cols();

  std::map<std::size_t, std::pair<linalg::Vector, std::size_t>> sums;
  for (std::size_t r = 0; r < points.rows(); ++r) {
    auto& [sum, count] = sums.try_emplace(labels[r],
                                          linalg::Vector(dimension_, 0.0), 0)
                             .first->second;
    const auto row = points.row(r);
    for (std::size_t c = 0; c < dimension_; ++c) sum[c] += row[c];
    ++count;
  }

  labels_.clear();
  centroids_.clear();
  counts_.clear();
  for (auto& [label, entry] : sums) {  // std::map: ascending label order
    auto& [sum, count] = entry;
    for (double& v : sum) v /= static_cast<double>(count);
    labels_.push_back(label);
    centroids_.push_back(std::move(sum));
    counts_.push_back(count);
  }
  fitted_ = true;
}

void NearestCentroidClassifier::add(std::span<const double> point,
                                    std::size_t label) {
  if (!fitted_) throw StateError("NearestCentroid::add before fit()");
  if (point.size() != dimension_) {
    throw InvalidArgument("NearestCentroid::add: point dimension mismatch");
  }
  // Find the class, keeping labels_ sorted ascending.
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  const std::size_t index = static_cast<std::size_t>(it - labels_.begin());
  if (it == labels_.end() || *it != label) {
    labels_.insert(it, label);
    centroids_.insert(centroids_.begin() + index,
                      linalg::Vector(point.begin(), point.end()));
    counts_.insert(counts_.begin() + index, 1);
    return;
  }
  // Incremental mean update.
  auto& centroid = centroids_[index];
  const double n = static_cast<double>(++counts_[index]);
  for (std::size_t c = 0; c < dimension_; ++c) {
    centroid[c] += (point[c] - centroid[c]) / n;
  }
}

const linalg::Vector& NearestCentroidClassifier::centroid(std::size_t i) const {
  if (i >= centroids_.size()) {
    throw InvalidArgument("NearestCentroid::centroid: index out of range");
  }
  return centroids_[i];
}

std::size_t NearestCentroidClassifier::class_label(std::size_t i) const {
  if (i >= labels_.size()) {
    throw InvalidArgument("NearestCentroid::class_label: index out of range");
  }
  return labels_[i];
}

std::size_t NearestCentroidClassifier::classify(
    std::span<const double> query) const {
  if (!fitted_) throw StateError("NearestCentroid used before fit()");
  if (query.size() != dimension_) {
    throw InvalidArgument("NearestCentroid::classify: dimension mismatch");
  }
  std::size_t best = 0;
  double best_distance = linalg::squared_distance(centroids_[0], query);
  for (std::size_t i = 1; i < centroids_.size(); ++i) {
    const double d = linalg::squared_distance(centroids_[i], query);
    // Strict < keeps the smallest label on ties (labels_ is ascending).
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return labels_[best];
}

void NearestCentroidClassifier::save(persist::io::Writer& w) const {
  w.u64_span(labels_);
  w.u64(centroids_.size());
  for (const auto& c : centroids_) w.f64_span(c);
  w.u64_span(counts_);
  w.u64(dimension_);
  w.boolean(fitted_);
}

void NearestCentroidClassifier::load(persist::io::Reader& r) {
  labels_ = r.u64_vector();
  const auto count =
      static_cast<std::size_t>(r.length(r.u64(), sizeof(std::uint64_t)));
  centroids_.clear();
  centroids_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) centroids_.push_back(r.f64_vector());
  counts_ = r.u64_vector();
  dimension_ = static_cast<std::size_t>(r.u64());
  fitted_ = r.boolean();
  if (centroids_.size() != labels_.size() || counts_.size() != labels_.size()) {
    throw persist::CorruptData("centroid: serialized class arrays mismatch");
  }
  for (const auto& c : centroids_) {
    if (c.size() != dimension_) {
      throw persist::CorruptData("centroid: serialized centroid dimension");
    }
  }
}

}  // namespace larp::ml
