#include "ml/framing.hpp"

#include "util/error.hpp"

namespace larp::ml {

namespace {
void require_frameable(std::span<const double> series, std::size_t window_size,
                       std::size_t min_extra) {
  if (window_size == 0) {
    throw InvalidArgument("framing: window size must be positive");
  }
  if (series.size() < window_size + min_extra) {
    throw InvalidArgument("framing: series of " + std::to_string(series.size()) +
                          " values too short for window " +
                          std::to_string(window_size));
  }
}
}  // namespace

FramedSeries frame_supervised(std::span<const double> series,
                              std::size_t window_size) {
  require_frameable(series, window_size, 1);
  const std::size_t count = series.size() - window_size;
  FramedSeries framed{linalg::Matrix(count, window_size), linalg::Vector(count)};
  for (std::size_t i = 0; i < count; ++i) {
    auto row = framed.windows.row(i);
    for (std::size_t j = 0; j < window_size; ++j) row[j] = series[i + j];
    framed.targets[i] = series[i + window_size];
  }
  return framed;
}

linalg::Matrix frame_windows(std::span<const double> series,
                             std::size_t window_size) {
  require_frameable(series, window_size, 0);
  const std::size_t count = series.size() - window_size + 1;
  linalg::Matrix windows(count, window_size);
  for (std::size_t i = 0; i < count; ++i) {
    auto row = windows.row(i);
    for (std::size_t j = 0; j < window_size; ++j) row[j] = series[i + j];
  }
  return windows;
}

}  // namespace larp::ml
