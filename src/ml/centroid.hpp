// Nearest-centroid classifier: the simplest alternative classification
// algorithm for the selector layer (§5: "our methodology may be generally
// used with other types of classification algorithms").
//
// Training computes one centroid per class in the (PCA-reduced) feature
// space; classification assigns the class of the nearest centroid.  O(P)
// per query instead of k-NN's O(N) — the trade is a linear decision
// boundary per class pair.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::ml {

class NearestCentroidClassifier {
 public:
  /// Computes per-class centroids.  Classes are the distinct labels seen;
  /// throws InvalidArgument for an empty or mismatched training set.
  void fit(const linalg::Matrix& points, const std::vector<std::size_t>& labels);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Number of distinct classes seen at fit().
  [[nodiscard]] std::size_t classes() const noexcept { return labels_.size(); }

  /// Centroid of the i-th seen class (tests/diagnostics).
  [[nodiscard]] const linalg::Vector& centroid(std::size_t i) const;
  [[nodiscard]] std::size_t class_label(std::size_t i) const;

  /// Label of the nearest centroid (Euclidean); ties break toward the
  /// smallest label, matching the library-wide convention.
  [[nodiscard]] std::size_t classify(std::span<const double> query) const;

  /// Folds one labeled point into its class centroid (online learning);
  /// a previously unseen label opens a new class.
  void add(std::span<const double> point, std::size_t label);

  /// Exact-state serialization for durable snapshots (persist layer).
  void save(persist::io::Writer& w) const;
  void load(persist::io::Reader& r);

 private:
  std::vector<std::size_t> labels_;      // distinct class labels, ascending
  std::vector<linalg::Vector> centroids_;  // parallel to labels_
  std::vector<std::size_t> counts_;        // points behind each centroid
  std::size_t dimension_ = 0;
  bool fitted_ = false;
};

}  // namespace larp::ml
