#include "ml/metrics.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace larp::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : classes_(classes), cells_(classes * classes, 0) {
  if (classes == 0) throw InvalidArgument("ConfusionMatrix: zero classes");
}

void ConfusionMatrix::add(std::size_t actual, std::size_t predicted) {
  if (actual >= classes_ || predicted >= classes_) {
    throw InvalidArgument("ConfusionMatrix::add: label out of range");
  }
  ++cells_[actual * classes_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t actual, std::size_t predicted) const {
  if (actual >= classes_ || predicted >= classes_) {
    throw InvalidArgument("ConfusionMatrix::count: label out of range");
  }
  return cells_[actual * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) correct += cells_[c * classes_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::recall() const {
  std::vector<double> out(classes_, 0.0);
  for (std::size_t r = 0; r < classes_; ++r) {
    std::size_t row_total = 0;
    for (std::size_t c = 0; c < classes_; ++c) row_total += cells_[r * classes_ + c];
    if (row_total > 0) {
      out[r] = static_cast<double>(cells_[r * classes_ + r]) /
               static_cast<double>(row_total);
    }
  }
  return out;
}

std::vector<double> ConfusionMatrix::precision() const {
  std::vector<double> out(classes_, 0.0);
  for (std::size_t c = 0; c < classes_; ++c) {
    std::size_t col_total = 0;
    for (std::size_t r = 0; r < classes_; ++r) col_total += cells_[r * classes_ + c];
    if (col_total > 0) {
      out[c] = static_cast<double>(cells_[c * classes_ + c]) /
               static_cast<double>(col_total);
    }
  }
  return out;
}

std::string ConfusionMatrix::render(const std::vector<std::string>& names) const {
  if (names.size() != classes_) {
    throw InvalidArgument("ConfusionMatrix::render: names count mismatch");
  }
  std::size_t width = 8;
  for (const auto& name : names) width = std::max(width, name.size() + 2);

  std::ostringstream os;
  os << std::setw(static_cast<int>(width)) << "act\\pred";
  for (const auto& name : names) os << std::setw(static_cast<int>(width)) << name;
  os << '\n';
  for (std::size_t r = 0; r < classes_; ++r) {
    os << std::setw(static_cast<int>(width)) << names[r];
    for (std::size_t c = 0; c < classes_; ++c) {
      os << std::setw(static_cast<int>(width)) << cells_[r * classes_ + c];
    }
    os << '\n';
  }
  return os.str();
}

double accuracy(const std::vector<std::size_t>& actual,
                const std::vector<std::size_t>& predicted) {
  if (actual.size() != predicted.size()) {
    throw InvalidArgument("accuracy: sequence length mismatch");
  }
  if (actual.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(actual.size());
}

}  // namespace larp::ml
