#include "ml/pca.hpp"

#include <algorithm>

#include "linalg/covariance.hpp"
#include "linalg/eigen.hpp"
#include "linalg/kernels.hpp"
#include "ml/serialize.hpp"
#include "util/error.hpp"

namespace larp::ml {

void Pca::fit(const linalg::Matrix& samples, const PcaPolicy& policy) {
  if (samples.rows() == 0 || samples.cols() == 0) {
    throw InvalidArgument("Pca::fit: empty sample matrix");
  }
  if (policy.fixed_components == 0 &&
      (policy.min_variance_fraction <= 0.0 || policy.min_variance_fraction > 1.0)) {
    throw InvalidArgument("Pca::fit: min_variance_fraction outside (0, 1]");
  }

  dimension_ = samples.cols();
  means_ = linalg::column_means(samples);
  const linalg::Matrix cov = linalg::covariance(samples, means_);
  const auto eig = linalg::eigen_symmetric(cov);
  eigenvalues_ = eig.values;

  if (policy.fixed_components > 0) {
    components_ = std::min(policy.fixed_components, dimension_);
  } else {
    double total = 0.0;
    for (double v : eigenvalues_) total += std::max(v, 0.0);
    components_ = dimension_;
    if (total > 0.0) {
      double cumulative = 0.0;
      for (std::size_t k = 0; k < dimension_; ++k) {
        cumulative += std::max(eigenvalues_[k], 0.0);
        if (cumulative / total >= policy.min_variance_fraction) {
          components_ = k + 1;
          break;
        }
      }
    } else {
      components_ = 1;  // zero-variance data: a single constant component
    }
  }

  basis_ = linalg::Matrix(dimension_, components_);
  for (std::size_t c = 0; c < components_; ++c) {
    for (std::size_t r = 0; r < dimension_; ++r) {
      basis_(r, c) = eig.vectors(r, c);
    }
  }
  fitted_ = true;
}

void Pca::require_fitted() const {
  if (!fitted_) throw StateError("Pca used before fit()");
}

linalg::Vector Pca::explained_variance_ratio() const {
  require_fitted();
  double total = 0.0;
  for (double v : eigenvalues_) total += std::max(v, 0.0);
  linalg::Vector ratio(components_, 0.0);
  if (total > 0.0) {
    for (std::size_t k = 0; k < components_; ++k) {
      ratio[k] = std::max(eigenvalues_[k], 0.0) / total;
    }
  }
  return ratio;
}

void Pca::transform_into(std::span<const double> sample,
                         std::span<double> out) const {
  require_fitted();
  if (sample.size() != dimension_) {
    throw InvalidArgument("Pca::transform: sample dimension mismatch");
  }
  if (out.size() != components_) {
    throw InvalidArgument("Pca::transform_into: output size mismatch");
  }
  linalg::kernels::project_centered(sample.data(), means_.data(),
                                    basis_.data().data(), dimension_,
                                    components_, out.data());
}

void Pca::transform_into(std::span<const double> sample,
                         linalg::Vector& out) const {
  require_fitted();
  out.resize(components_);
  transform_into(sample, std::span<double>(out));
}

linalg::Vector Pca::transform(std::span<const double> sample) const {
  require_fitted();
  linalg::Vector reduced(components_, 0.0);
  transform_into(sample, std::span<double>(reduced));
  return reduced;
}

linalg::Matrix Pca::transform(const linalg::Matrix& samples) const {
  require_fitted();
  if (samples.cols() != dimension_) {
    throw InvalidArgument("Pca::transform: sample dimension mismatch");
  }
  // Single pass: project each row directly into the output matrix — no
  // per-row temporary Vector, no per-row dimension re-validation.
  linalg::Matrix reduced(samples.rows(), components_);
  const double* in = samples.data().data();
  double* out = reduced.data().data();
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    linalg::kernels::project_centered(in + i * dimension_, means_.data(),
                                      basis_.data().data(), dimension_,
                                      components_, out + i * components_);
  }
  return reduced;
}

linalg::Vector Pca::inverse_transform(std::span<const double> reduced) const {
  require_fitted();
  linalg::Vector sample(dimension_, 0.0);
  inverse_transform_into(reduced, sample);
  return sample;
}

void Pca::inverse_transform_into(std::span<const double> reduced,
                                 std::span<double> out) const {
  require_fitted();
  if (reduced.size() != components_) {
    throw InvalidArgument("Pca::inverse_transform: dimension mismatch");
  }
  if (out.size() != dimension_) {
    throw InvalidArgument("Pca::inverse_transform_into: output size mismatch");
  }
  for (std::size_t r = 0; r < dimension_; ++r) {
    out[r] = means_[r] + linalg::kernels::dot(basis_.data().data() + r * components_,
                                              reduced.data(), components_);
  }
}

void Pca::save(persist::io::Writer& w) const {
  w.f64_span(means_);
  save_matrix(w, basis_);
  w.f64_span(eigenvalues_);
  w.u64(components_);
  w.u64(dimension_);
  w.boolean(fitted_);
}

void Pca::load(persist::io::Reader& r) {
  means_ = r.f64_vector();
  basis_ = load_matrix(r);
  eigenvalues_ = r.f64_vector();
  components_ = static_cast<std::size_t>(r.u64());
  dimension_ = static_cast<std::size_t>(r.u64());
  fitted_ = r.boolean();
  if (fitted_ && (basis_.rows() != dimension_ || basis_.cols() != components_ ||
                  means_.size() != dimension_)) {
    throw persist::CorruptData("pca: inconsistent serialized dimensions");
  }
}

}  // namespace larp::ml
