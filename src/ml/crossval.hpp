// Cross-validation driver for the paper's evaluation protocol (§7.2):
// "ten-fold cross validation ... a time stamp was randomly chosen to divide
// the performance data into two parts: 50% ... to train ... the other 50% ...
// to test".
//
// That is a repeated random-split holdout on a *time series*: each fold
// chooses one split timestamp, everything before it trains and everything
// after it tests (shuffling individual points would leak future data into
// training).  "Randomly chosen ... 50%" is interpreted as the split point
// jittering around the middle of the series; the jitter band is configurable
// and defaults to ±15% so folds see genuinely different train/test regimes
// while preserving the paper's ~50/50 intent (see DESIGN.md §5).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace larp::ml {

/// One train/test division: [0, split) trains, [split, length) tests.
struct SplitFold {
  std::size_t split = 0;
  std::size_t length = 0;

  [[nodiscard]] std::size_t train_size() const noexcept { return split; }
  [[nodiscard]] std::size_t test_size() const noexcept { return length - split; }
};

struct CrossValidationPlan {
  /// Number of repetitions ("ten-fold" in the paper).
  std::size_t folds = 10;
  /// Split point is drawn uniformly in [min_fraction, max_fraction] of the
  /// series length; the defaults centre on the paper's 50%.
  double min_fraction = 0.35;
  double max_fraction = 0.65;
};

/// Generates the fold list for a series of `length` points.  Throws
/// InvalidArgument for a zero-length series, zero folds, or a fraction band
/// outside (0, 1) — and guarantees every fold leaves at least
/// `min_side_points` on both sides of the split (the split is clamped).
[[nodiscard]] std::vector<SplitFold> make_random_split_folds(
    std::size_t length, const CrossValidationPlan& plan, Rng& rng,
    std::size_t min_side_points = 1);

}  // namespace larp::ml
