// Profiler (paper §3.2): extracts the performance data of a given time
// frame for the VM identified by vmID and deviceID from the round-robin
// performance database, producing the uniform series the LARPredictor
// consumes.  (The paper's prototype did this with Perl/Shell scripts.)
#pragma once

#include "tsdb/rrd.hpp"

namespace larp::tsdb {

/// An extraction request: which stream, which resolution, which window.
struct ProfileRequest {
  SeriesKey key;
  Timestamp interval = kFiveMinutes;  // 5-minute default, like the paper
  Timestamp start = 0;
  Timestamp end = 0;  // exclusive
};

class Profiler {
 public:
  /// The profiler borrows the database; the caller keeps it alive.
  explicit Profiler(const RoundRobinDatabase& db) : db_(&db) {}

  /// Extracts one series; propagates RRD errors (unknown key, misaligned or
  /// unretained window, unavailable resolution).
  [[nodiscard]] TimeSeries extract(const ProfileRequest& request) const;

  /// Extracts everything the database currently retains at the given
  /// resolution for the key.  Throws NotFound/InvalidArgument like extract,
  /// plus InvalidArgument when nothing is retained yet.
  [[nodiscard]] TimeSeries extract_all(const SeriesKey& key,
                                       Timestamp interval) const;

  /// Extracts the most recent `samples` values at the given resolution —
  /// the "recent performance data" used for QA-triggered re-training.
  [[nodiscard]] TimeSeries extract_recent(const SeriesKey& key,
                                          Timestamp interval,
                                          std::size_t samples) const;

 private:
  const RoundRobinDatabase* db_;
};

}  // namespace larp::tsdb
