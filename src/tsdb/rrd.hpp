// Round-Robin Database: the performance database of the paper's prototype
// (§3.2), where vmkusage samples every minute and consolidates five
// one-minute statistics into a five-minute average.
//
// Each series key owns one or more archives.  An archive consolidates
// `steps_per_bin` consecutive base-step samples with a consolidation
// function (AVERAGE like vmkusage, or MIN/MAX/LAST) and retains at most
// `capacity` consolidated bins in a fixed ring — old data is overwritten,
// which is the defining round-robin property.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tsdb/series.hpp"

namespace larp::tsdb {

enum class Consolidation { Average, Min, Max, Last };

[[nodiscard]] const char* to_string(Consolidation fn) noexcept;

/// One retention tier of the database.
struct ArchiveSpec {
  Consolidation function = Consolidation::Average;
  /// Base-step samples per consolidated bin (vmkusage: 5 one-minute samples).
  std::size_t steps_per_bin = 1;
  /// Maximum bins retained; older bins are overwritten round-robin.
  std::size_t capacity = 0;
};

/// What to do when an update arrives more than one base step after the
/// previous one (a monitoring agent dropped samples).
enum class GapPolicy {
  /// Reject the update (default: a strict grid, gaps are a caller bug).
  Reject,
  /// Synthesize the missing base steps by holding the last observed value
  /// (the pragmatic choice for lossy collectors; bounded by max_gap_steps).
  HoldLast,
};

struct RrdConfig {
  /// Interval between raw samples fed to update() (vmkusage: one minute).
  Timestamp base_step = kMinute;
  std::vector<ArchiveSpec> archives;
  GapPolicy gap_policy = GapPolicy::Reject;
  /// HoldLast refuses to bridge gaps longer than this many missing steps
  /// (the stream is clearly dead, not merely lossy).
  std::size_t max_gap_steps = 16;
};

/// The vmkusage-like default: a 1:1 archive of one day of minute samples
/// plus a 5-minute AVERAGE archive retaining `days` days.
[[nodiscard]] RrdConfig make_vmkusage_config(std::size_t days = 8);

class RoundRobinDatabase {
 public:
  /// Throws InvalidArgument for a non-positive base step, no archives, or an
  /// archive with zero capacity / zero steps_per_bin.
  explicit RoundRobinDatabase(RrdConfig config);

  [[nodiscard]] const RrdConfig& config() const noexcept { return config_; }

  /// Feeds one raw sample.  Timestamps must be on the base-step grid and
  /// strictly increasing per key (real RRDs reject out-of-order updates too);
  /// violations throw InvalidArgument.
  void update(const SeriesKey& key, Timestamp ts, double value);

  /// Number of distinct keys stored.
  [[nodiscard]] std::size_t key_count() const noexcept { return streams_.size(); }

  /// All stored keys (unordered).
  [[nodiscard]] std::vector<SeriesKey> keys() const;

  /// True when the key has at least one consolidated bin in some archive.
  [[nodiscard]] bool contains(const SeriesKey& key) const noexcept;

  /// Step sizes (seconds) available for the key, ascending.
  [[nodiscard]] std::vector<Timestamp> available_steps(const SeriesKey& key) const;

  /// Retained range [first, last] of the archive with the given step, or
  /// nullopt when empty.  `step` must match an archive exactly.
  [[nodiscard]] std::optional<std::pair<Timestamp, Timestamp>> retained_range(
      const SeriesKey& key, Timestamp step) const;

  /// Extracts the consolidated series with the given step over
  /// [start, end) — both on the archive grid.  Throws NotFound for unknown
  /// keys/steps and InvalidArgument when the window is misaligned or not
  /// fully retained (overwritten or not yet filled).
  [[nodiscard]] TimeSeries fetch(const SeriesKey& key, Timestamp step,
                                 Timestamp start, Timestamp end) const;

 private:
  /// Ring storage of one archive for one key.
  struct ArchiveRing {
    std::vector<double> bins;       // ring buffer, size <= spec capacity
    std::size_t head = 0;           // slot of the OLDEST bin once full
    Timestamp first_ts = 0;         // timestamp of the oldest retained bin
    std::size_t count = 0;          // bins stored so far (<= capacity)
    // Partial-bin accumulation state.
    double accum = 0.0;
    double accum_min = 0.0;
    double accum_max = 0.0;
    double accum_last = 0.0;
    std::size_t accum_samples = 0;

    void push(double consolidated, Timestamp bin_ts, std::size_t capacity);
  };

  struct Stream {
    std::optional<Timestamp> last_update;
    double last_value = 0.0;  // for GapPolicy::HoldLast bridging
    std::vector<ArchiveRing> archives;  // parallel to config_.archives
  };

  RrdConfig config_;
  std::unordered_map<SeriesKey, Stream> streams_;
};

}  // namespace larp::tsdb
