#include "tsdb/prediction_db.hpp"

#include "util/error.hpp"

namespace larp::tsdb {

double PredictionRecord::squared_error() const {
  if (!observed) throw StateError("PredictionRecord: unresolved record");
  const double d = predicted - *observed;
  return d * d;
}

void PredictionDatabase::record_prediction(const SeriesKey& key, Timestamp ts,
                                           double predicted,
                                           std::size_t predictor_label) {
  auto& stream = streams_[key];
  const auto [it, inserted] =
      stream.emplace(ts, PredictionRecord{predicted, std::nullopt, predictor_label});
  if (!inserted) {
    throw InvalidArgument("PredictionDatabase: duplicate forecast for " +
                          key.to_string() + " @" + std::to_string(ts));
  }
}

void PredictionDatabase::record_observation(const SeriesKey& key, Timestamp ts,
                                            double observed) {
  const auto stream_it = streams_.find(key);
  if (stream_it == streams_.end()) {
    throw NotFound("PredictionDatabase: unknown stream " + key.to_string());
  }
  const auto it = stream_it->second.find(ts);
  if (it == stream_it->second.end()) {
    throw NotFound("PredictionDatabase: no forecast for " + key.to_string() +
                   " @" + std::to_string(ts));
  }
  if (it->second.observed) {
    throw StateError("PredictionDatabase: observation already recorded");
  }
  it->second.observed = observed;
}

std::size_t PredictionDatabase::size() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, stream] : streams_) total += stream.size();
  return total;
}

std::optional<PredictionRecord> PredictionDatabase::find(const SeriesKey& key,
                                                         Timestamp ts) const {
  const auto stream_it = streams_.find(key);
  if (stream_it == streams_.end()) return std::nullopt;
  const auto it = stream_it->second.find(ts);
  if (it == stream_it->second.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<Timestamp, PredictionRecord>>
PredictionDatabase::resolved_range(const SeriesKey& key, Timestamp start,
                                   Timestamp end) const {
  std::vector<std::pair<Timestamp, PredictionRecord>> out;
  const auto stream_it = streams_.find(key);
  if (stream_it == streams_.end()) return out;
  const auto& stream = stream_it->second;
  for (auto it = stream.lower_bound(start); it != stream.end() && it->first < end;
       ++it) {
    if (it->second.resolved()) out.emplace_back(it->first, it->second);
  }
  return out;
}

std::optional<double> PredictionDatabase::audit_mse(const SeriesKey& key,
                                                    Timestamp start,
                                                    Timestamp end) const {
  const auto records = resolved_range(key, start, end);
  if (records.empty()) return std::nullopt;
  double acc = 0.0;
  for (const auto& [ts, record] : records) acc += record.squared_error();
  return acc / static_cast<double>(records.size());
}

std::vector<std::pair<Timestamp, PredictionRecord>>
PredictionDatabase::latest_resolved(const SeriesKey& key, std::size_t count) const {
  std::vector<std::pair<Timestamp, PredictionRecord>> out;
  const auto stream_it = streams_.find(key);
  if (stream_it == streams_.end()) return out;
  const auto& stream = stream_it->second;
  for (auto it = stream.rbegin(); it != stream.rend() && out.size() < count; ++it) {
    if (it->second.resolved()) out.emplace_back(it->first, it->second);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void PredictionDatabase::prune_before(const SeriesKey& key, Timestamp cutoff) {
  const auto stream_it = streams_.find(key);
  if (stream_it == streams_.end()) return;
  auto& stream = stream_it->second;
  stream.erase(stream.begin(), stream.lower_bound(cutoff));
}

void PredictionDatabase::erase_stream(const SeriesKey& key) {
  streams_.erase(key);
}

std::vector<std::pair<Timestamp, PredictionRecord>>
PredictionDatabase::all_records(const SeriesKey& key) const {
  std::vector<std::pair<Timestamp, PredictionRecord>> out;
  const auto stream_it = streams_.find(key);
  if (stream_it == streams_.end()) return out;
  out.assign(stream_it->second.begin(), stream_it->second.end());
  return out;
}

void PredictionDatabase::restore_record(const SeriesKey& key, Timestamp ts,
                                        const PredictionRecord& record) {
  auto& stream = streams_[key];
  const auto [it, inserted] = stream.emplace(ts, record);
  if (!inserted) {
    throw InvalidArgument("PredictionDatabase: restore over existing record " +
                          key.to_string() + " @" + std::to_string(ts));
  }
}

}  // namespace larp::tsdb
