#include "tsdb/rrd.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace larp::tsdb {

const char* to_string(Consolidation fn) noexcept {
  switch (fn) {
    case Consolidation::Average: return "AVERAGE";
    case Consolidation::Min: return "MIN";
    case Consolidation::Max: return "MAX";
    case Consolidation::Last: return "LAST";
  }
  return "?";
}

RrdConfig make_vmkusage_config(std::size_t days) {
  RrdConfig config;
  config.base_step = kMinute;
  // Tier 1: raw minute samples for one day.
  config.archives.push_back(
      ArchiveSpec{Consolidation::Average, 1, static_cast<std::size_t>(kDay / kMinute)});
  // Tier 2: 5-minute averages (the vmkusage consolidation the paper uses).
  config.archives.push_back(ArchiveSpec{
      Consolidation::Average, 5,
      days * static_cast<std::size_t>(kDay / kFiveMinutes)});
  // Tier 3: 30-minute averages for the week-long VM1 extraction.
  config.archives.push_back(ArchiveSpec{
      Consolidation::Average, 30,
      days * static_cast<std::size_t>(kDay / kThirtyMinutes)});
  return config;
}

RoundRobinDatabase::RoundRobinDatabase(RrdConfig config)
    : config_(std::move(config)) {
  if (config_.base_step <= 0) {
    throw InvalidArgument("RRD: base step must be positive");
  }
  if (config_.archives.empty()) {
    throw InvalidArgument("RRD: at least one archive required");
  }
  for (const auto& spec : config_.archives) {
    if (spec.steps_per_bin == 0) {
      throw InvalidArgument("RRD: archive steps_per_bin must be positive");
    }
    if (spec.capacity == 0) {
      throw InvalidArgument("RRD: archive capacity must be positive");
    }
  }
}

void RoundRobinDatabase::ArchiveRing::push(double consolidated, Timestamp bin_ts,
                                           std::size_t capacity) {
  if (count == 0) first_ts = bin_ts;
  if (bins.size() < capacity) {
    bins.push_back(consolidated);
    ++count;
  } else {
    // Overwrite the oldest bin; the retained window slides forward.
    bins[head] = consolidated;
    head = (head + 1) % capacity;
    // first_ts advances by one bin duration; the caller knows the duration,
    // so it is reconstructed there — we only flag the slide via count.
  }
}

void RoundRobinDatabase::update(const SeriesKey& key, Timestamp ts, double value) {
  if ((ts % config_.base_step) != 0) {
    throw InvalidArgument("RRD::update: timestamp off the base-step grid");
  }
  if (!std::isfinite(value)) {
    // A NaN/Inf sample would silently poison every consolidated bin that
    // covers it and everything downstream (normalizer, AR fit, PCA).
    throw InvalidArgument("RRD::update: non-finite sample for " +
                          key.to_string());
  }
  Stream& stream = streams_[key];
  if (stream.archives.empty()) stream.archives.resize(config_.archives.size());
  if (stream.last_update && ts <= *stream.last_update) {
    throw InvalidArgument("RRD::update: non-increasing timestamp for " +
                          key.to_string());
  }
  if (stream.last_update && ts != *stream.last_update + config_.base_step) {
    const std::size_t missing = static_cast<std::size_t>(
        (ts - *stream.last_update) / config_.base_step - 1);
    if (config_.gap_policy == GapPolicy::Reject ||
        missing > config_.max_gap_steps) {
      throw InvalidArgument("RRD::update: gap of " + std::to_string(missing) +
                            " base-step samples for " + key.to_string());
    }
    // HoldLast: bridge the gap with the last observed value so every
    // consolidation bin stays complete.
    const double hold = stream.last_value;
    for (std::size_t i = 0; i < missing; ++i) {
      update(key, *stream.last_update + config_.base_step, hold);
    }
  }
  stream.last_update = ts;
  stream.last_value = value;

  for (std::size_t a = 0; a < config_.archives.size(); ++a) {
    const ArchiveSpec& spec = config_.archives[a];
    ArchiveRing& ring = stream.archives[a];

    if (ring.accum_samples == 0) {
      ring.accum = 0.0;
      ring.accum_min = value;
      ring.accum_max = value;
    }
    ring.accum += value;
    ring.accum_min = std::min(ring.accum_min, value);
    ring.accum_max = std::max(ring.accum_max, value);
    ring.accum_last = value;
    ++ring.accum_samples;

    if (ring.accum_samples == spec.steps_per_bin) {
      double consolidated = 0.0;
      switch (spec.function) {
        case Consolidation::Average:
          consolidated = ring.accum / static_cast<double>(spec.steps_per_bin);
          break;
        case Consolidation::Min: consolidated = ring.accum_min; break;
        case Consolidation::Max: consolidated = ring.accum_max; break;
        case Consolidation::Last: consolidated = ring.accum_last; break;
      }
      // A bin closing at sample ts covers (ts - bin_len, ts]; it is stamped
      // with its first covered sample so fetch() axes start at the bin open.
      const Timestamp bin_len =
          config_.base_step * static_cast<Timestamp>(spec.steps_per_bin);
      const Timestamp bin_ts = ts - bin_len + config_.base_step;
      const bool was_full = ring.bins.size() == spec.capacity;
      ring.push(consolidated, bin_ts, spec.capacity);
      if (was_full) ring.first_ts += bin_len;
      ring.accum_samples = 0;
    }
  }
}

std::vector<SeriesKey> RoundRobinDatabase::keys() const {
  std::vector<SeriesKey> out;
  out.reserve(streams_.size());
  for (const auto& [key, stream] : streams_) out.push_back(key);
  return out;
}

bool RoundRobinDatabase::contains(const SeriesKey& key) const noexcept {
  const auto it = streams_.find(key);
  if (it == streams_.end()) return false;
  for (const auto& ring : it->second.archives) {
    if (ring.count > 0) return true;
  }
  return false;
}

std::vector<Timestamp> RoundRobinDatabase::available_steps(
    const SeriesKey& key) const {
  if (!streams_.contains(key)) {
    throw NotFound("RRD: unknown series " + key.to_string());
  }
  std::vector<Timestamp> steps;
  for (const auto& spec : config_.archives) {
    steps.push_back(config_.base_step * static_cast<Timestamp>(spec.steps_per_bin));
  }
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  return steps;
}

std::optional<std::pair<Timestamp, Timestamp>> RoundRobinDatabase::retained_range(
    const SeriesKey& key, Timestamp step) const {
  const auto it = streams_.find(key);
  if (it == streams_.end()) {
    throw NotFound("RRD: unknown series " + key.to_string());
  }
  for (std::size_t a = 0; a < config_.archives.size(); ++a) {
    const Timestamp archive_step =
        config_.base_step * static_cast<Timestamp>(config_.archives[a].steps_per_bin);
    if (archive_step != step) continue;
    const ArchiveRing& ring = it->second.archives[a];
    if (ring.count == 0) return std::nullopt;
    const Timestamp last =
        ring.first_ts + static_cast<Timestamp>(ring.count - 1) * step;
    return std::make_pair(ring.first_ts, last);
  }
  throw NotFound("RRD: no archive with step " + std::to_string(step));
}

TimeSeries RoundRobinDatabase::fetch(const SeriesKey& key, Timestamp step,
                                     Timestamp start, Timestamp end) const {
  const auto it = streams_.find(key);
  if (it == streams_.end()) {
    throw NotFound("RRD: unknown series " + key.to_string());
  }
  for (std::size_t a = 0; a < config_.archives.size(); ++a) {
    const Timestamp archive_step =
        config_.base_step * static_cast<Timestamp>(config_.archives[a].steps_per_bin);
    if (archive_step != step) continue;

    const ArchiveRing& ring = it->second.archives[a];
    if (ring.count == 0) {
      throw InvalidArgument("RRD::fetch: archive empty for " + key.to_string());
    }
    if (end <= start) throw InvalidArgument("RRD::fetch: empty window");
    if ((start - ring.first_ts) % step != 0 || (end - start) % step != 0) {
      throw InvalidArgument("RRD::fetch: window misaligned with archive grid");
    }
    const Timestamp retained_end =
        ring.first_ts + static_cast<Timestamp>(ring.count) * step;
    if (start < ring.first_ts || end > retained_end) {
      throw InvalidArgument("RRD::fetch: window not fully retained for " +
                            key.to_string());
    }

    const std::size_t first_bin =
        static_cast<std::size_t>((start - ring.first_ts) / step);
    const std::size_t bin_count = static_cast<std::size_t>((end - start) / step);
    TimeSeries series;
    series.axis = TimeAxis(start, step, bin_count);
    series.values.reserve(bin_count);
    const std::size_t capacity = ring.bins.size();
    for (std::size_t i = 0; i < bin_count; ++i) {
      // head is the index of the oldest bin once the ring has wrapped;
      // before wrapping the oldest bin is at slot 0 and head stays 0.
      const std::size_t slot = (ring.head + first_bin + i) % capacity;
      series.values.push_back(ring.bins[slot]);
    }
    return series;
  }
  throw NotFound("RRD: no archive with step " + std::to_string(step));
}

}  // namespace larp::tsdb
