#include "tsdb/profiler.hpp"

#include "util/error.hpp"

namespace larp::tsdb {

TimeSeries Profiler::extract(const ProfileRequest& request) const {
  return db_->fetch(request.key, request.interval, request.start, request.end);
}

TimeSeries Profiler::extract_all(const SeriesKey& key, Timestamp interval) const {
  const auto range = db_->retained_range(key, interval);
  if (!range) {
    throw InvalidArgument("Profiler: nothing retained yet for " + key.to_string());
  }
  return db_->fetch(key, interval, range->first, range->second + interval);
}

TimeSeries Profiler::extract_recent(const SeriesKey& key, Timestamp interval,
                                    std::size_t samples) const {
  if (samples == 0) throw InvalidArgument("Profiler: zero samples requested");
  const auto range = db_->retained_range(key, interval);
  if (!range) {
    throw InvalidArgument("Profiler: nothing retained yet for " + key.to_string());
  }
  const Timestamp end = range->second + interval;
  const Timestamp span = static_cast<Timestamp>(samples) * interval;
  const Timestamp start = std::max(range->first, end - span);
  return db_->fetch(key, interval, start, end);
}

}  // namespace larp::tsdb
