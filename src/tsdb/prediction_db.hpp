// Prediction database (paper §3.2): stores each forecast made by the
// LARPredictor together with the observation once it materializes, keyed by
// the paper's combinational primary key [vmID, deviceID, timeStamp,
// metricName].
//
// The Quality Assuror audits this store (average MSE over an audit window)
// and the resource manager reads it for provisioning decisions.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "tsdb/series.hpp"

namespace larp::tsdb {

/// One stored forecast.
struct PredictionRecord {
  double predicted = 0.0;
  /// Filled by record_observation() when the measurement arrives.
  std::optional<double> observed;
  /// Pool label of the predictor that produced the forecast.
  std::size_t predictor_label = 0;

  [[nodiscard]] bool resolved() const noexcept { return observed.has_value(); }
  /// Squared error; throws StateError when unresolved.
  [[nodiscard]] double squared_error() const;
};

class PredictionDatabase {
 public:
  /// Stores a forecast for (key, ts); re-inserting the same primary key
  /// throws InvalidArgument (forecasts are immutable once issued).
  void record_prediction(const SeriesKey& key, Timestamp ts, double predicted,
                         std::size_t predictor_label);

  /// Attaches the realized observation; throws NotFound when no forecast
  /// exists and StateError when already resolved.
  void record_observation(const SeriesKey& key, Timestamp ts, double observed);

  [[nodiscard]] std::size_t size() const noexcept;

  /// Record lookup; nullopt when the primary key is absent.
  [[nodiscard]] std::optional<PredictionRecord> find(const SeriesKey& key,
                                                     Timestamp ts) const;

  /// All resolved records of a stream within [start, end), time-ordered.
  [[nodiscard]] std::vector<std::pair<Timestamp, PredictionRecord>> resolved_range(
      const SeriesKey& key, Timestamp start, Timestamp end) const;

  /// Mean squared error of the stream's resolved records in [start, end);
  /// nullopt when there are none — the QA audit primitive.
  [[nodiscard]] std::optional<double> audit_mse(const SeriesKey& key,
                                                Timestamp start,
                                                Timestamp end) const;

  /// The most recent `count` resolved records of a stream (time-ordered).
  [[nodiscard]] std::vector<std::pair<Timestamp, PredictionRecord>>
  latest_resolved(const SeriesKey& key, std::size_t count) const;

  /// Removes all records of a stream older than `cutoff` (retention).
  void prune_before(const SeriesKey& key, Timestamp cutoff);

  /// Removes every record of a stream (stream teardown).
  void erase_stream(const SeriesKey& key);

  /// All records of a stream (resolved or not), time-ordered — the
  /// durability layer serializes streams through this view.
  [[nodiscard]] std::vector<std::pair<Timestamp, PredictionRecord>> all_records(
      const SeriesKey& key) const;

  /// Reinserts a record verbatim (snapshot restore); unlike
  /// record_prediction() the record may already be resolved.  Throws
  /// InvalidArgument when the primary key already exists.
  void restore_record(const SeriesKey& key, Timestamp ts,
                      const PredictionRecord& record);

 private:
  // Ordered map per stream gives cheap range queries by timestamp.
  std::map<SeriesKey, std::map<Timestamp, PredictionRecord>> streams_;
};

}  // namespace larp::tsdb
