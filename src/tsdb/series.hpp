// Core time-series value types shared by the storage and prediction layers.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/time_axis.hpp"

namespace larp::tsdb {

/// Identifies one monitored metric stream, mirroring the paper's
/// [vmID, deviceID, metricName] key (§3.2).
struct SeriesKey {
  std::string vm_id;
  std::string device_id;
  std::string metric;

  friend bool operator==(const SeriesKey&, const SeriesKey&) = default;
  friend auto operator<=>(const SeriesKey&, const SeriesKey&) = default;

  [[nodiscard]] std::string to_string() const {
    return vm_id + "/" + device_id + "/" + metric;
  }
};

/// A uniformly sampled series: axis.size() == values.size().
struct TimeSeries {
  TimeAxis axis;
  std::vector<double> values;

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] bool empty() const noexcept { return values.empty(); }
};

}  // namespace larp::tsdb

template <>
struct std::hash<larp::tsdb::SeriesKey> {
  std::size_t operator()(const larp::tsdb::SeriesKey& key) const noexcept {
    const std::hash<std::string> h;
    std::size_t seed = h(key.vm_id);
    seed ^= h(key.device_id) + 0x9e3779b9 + (seed << 6) + (seed >> 2);
    seed ^= h(key.metric) + 0x9e3779b9 + (seed << 6) + (seed >> 2);
    return seed;
  }
};
