// Descriptive statistics and error metrics used throughout the library.
//
// All routines operate on std::span<const double> so they can be applied to
// raw vectors, matrix rows, and database extracts without copies.  The
// prediction-error metrics implement the definitions in §4 of the paper
// (MSE, eq. 5) plus the companions (MAE, RMSE) used in the benchmarks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace larp::stats {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Population variance (divide by N); 0 for spans shorter than 1.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Sample variance (divide by N-1); 0 for spans shorter than 2.
[[nodiscard]] double sample_variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Minimum value; +inf for an empty span.
[[nodiscard]] double min(std::span<const double> xs) noexcept;

/// Maximum value; -inf for an empty span.
[[nodiscard]] double max(std::span<const double> xs) noexcept;

/// Median (by copy-and-nth_element); 0 for an empty span.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Mean of the central values after trimming `trim_fraction` from each tail.
[[nodiscard]] double trimmed_mean(std::span<const double> xs, double trim_fraction);

/// Mean squared error between predictions and observations (same length).
[[nodiscard]] double mse(std::span<const double> predicted,
                         std::span<const double> observed);

/// Root mean squared error.
[[nodiscard]] double rmse(std::span<const double> predicted,
                          std::span<const double> observed);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> predicted,
                         std::span<const double> observed);

/// Biased sample autocorrelation at the given lag (denominator N·var),
/// the estimator the Yule–Walker fit consumes.  Returns 0 when the series
/// variance is zero or the lag is out of range.
[[nodiscard]] double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Autocorrelation values for lags 0..max_lag inclusive (acf[0] == 1 unless
/// the series is constant, in which case all entries are 0 except acf[0]=1).
[[nodiscard]] std::vector<double> autocorrelations(std::span<const double> xs,
                                                   std::size_t max_lag);

/// Hurst exponent estimated by the classic rescaled-range (R/S) method:
/// the series is cut into chunks of doubling sizes, the rescaled range
/// R/S is averaged per size, and H is the slope of log(R/S) vs log(size).
/// H ~ 0.5 for uncorrelated noise, > 0.5 for persistent (self-similar)
/// series like Dinda's host-load traces, < 0.5 for anti-persistent ones.
/// Requires at least 32 points; throws InvalidArgument otherwise.  Returns
/// 0.5 for constant series (no variability to scale).
[[nodiscard]] double hurst_exponent(std::span<const double> xs);

/// Numerically stable streaming accumulator (Welford) for mean/variance.
class RunningMoments {
 public:
  void add(double x) noexcept;
  void merge(const RunningMoments& other) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance.
  [[nodiscard]] double variance() const noexcept { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

  /// Exact internal state for persistence: the Welford accumulator's sum of
  /// squared deviations.  Together with count()/mean() this round-trips the
  /// accumulator bit-identically (variance() alone would re-divide).
  [[nodiscard]] double sum_squared_deviations() const noexcept { return m2_; }
  /// Restores state previously read via count()/mean()/
  /// sum_squared_deviations().
  void restore(std::size_t n, double mean, double m2) noexcept {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Streaming squared-error accumulator: the "cumulative MSE" of the NWS
/// predictor-selection baseline (§2) and of the Quality Assuror audits.
class RunningMse {
 public:
  /// Records one (prediction, observation) pair.
  void add(double predicted, double observed) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Mean squared error so far; 0 before any sample.
  [[nodiscard]] double value() const noexcept {
    return n_ ? sum_sq_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double sum_squared_error() const noexcept { return sum_sq_; }
  void reset() noexcept { n_ = 0; sum_sq_ = 0.0; }
  /// Restores state previously read via count()/sum_squared_error().
  void restore(std::size_t n, double sum_sq) noexcept {
    n_ = n;
    sum_sq_ = sum_sq;
  }

 private:
  std::size_t n_ = 0;
  double sum_sq_ = 0.0;
};

/// Fixed-capacity sliding-window MSE: the W-Cum.MSE baseline of Fig. 6 keeps
/// only the last `window` squared errors.
class WindowedMse {
 public:
  explicit WindowedMse(std::size_t window);
  void add(double predicted, double observed);
  [[nodiscard]] std::size_t count() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  /// Mean of the retained squared errors; 0 before any sample.
  [[nodiscard]] double value() const noexcept;
  void reset() noexcept;

  /// Exact ring-buffer state for persistence (squared errors in slot order,
  /// next overwrite slot, running sum — the sum is an accumulator, so it
  /// must round-trip verbatim for bit-identical continuation).
  [[nodiscard]] std::span<const double> raw_buffer() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t head() const noexcept { return head_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Restores state previously read via the accessors above; throws
  /// InvalidArgument when buffer/head are impossible for this window.
  void restore(std::vector<double> buffer, std::size_t head, double sum);

 private:
  std::size_t window_;
  std::vector<double> buffer_;  // ring buffer of squared errors
  std::size_t head_ = 0;        // next slot to overwrite once full
  double sum_ = 0.0;
};

}  // namespace larp::stats
