// Minimal CSV reading/writing for trace import/export and benchmark output.
//
// The dialect is deliberately simple (comma separator, optional quoting with
// doubled-quote escapes, single header row) — enough to round-trip the
// library's own exports and to ingest externally collected traces.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace larp::csv {

/// One parsed table: a header row plus data rows of strings.
struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of the named column; throws NotFound if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// The named column converted to double; throws on non-numeric cells.
  [[nodiscard]] std::vector<double> numeric_column(const std::string& name) const;
};

/// Parses a CSV document from a stream.  An empty stream yields an empty
/// table.  Ragged rows are padded with empty cells to the header width.
[[nodiscard]] Table read(std::istream& in);

/// Parses the file at `path`; throws NotFound if it cannot be opened.
[[nodiscard]] Table read_file(const std::string& path);

/// Serializes a single row, quoting cells that contain separators/quotes.
void write_row(std::ostream& out, const std::vector<std::string>& cells);

/// Writes a full table (header + rows).
void write(std::ostream& out, const Table& table);

/// Writes a named series of doubles as a two-column (index,value) table.
void write_series(std::ostream& out, const std::string& name,
                  const std::vector<double>& values);

}  // namespace larp::csv
