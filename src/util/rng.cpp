#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace larp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's multiply-shift rejection-free-enough reduction; the modulo bias
  // for span << 2^64 is below 2^-53 and irrelevant for simulation purposes.
  // __extension__ keeps -Wpedantic quiet about the non-ISO 128-bit type.
  __extension__ typedef unsigned __int128 uint128;
  const uint128 product = static_cast<uint128>((*this)()) * span;
  return lo + static_cast<std::int64_t>(product >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  // -log(1-U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform()) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large lambda.
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Mix the parent seed with the stream id through SplitMix64 twice so that
  // adjacent streams are decorrelated.
  std::uint64_t mix = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  (void)splitmix64(mix);
  return Rng(splitmix64(mix));
}

}  // namespace larp
