// Fixed-size thread pool used to parallelize embarrassingly parallel
// experiment sweeps (traces × cross-validation folds × selector variants).
//
// Design notes (per C++ Core Guidelines CP.*):
//  * tasks are type-erased std::move_only_function-style packaged jobs;
//  * the pool owns its threads (RAII, joined in the destructor);
//  * parallel_for hands each worker a private index range, so callers can
//    give each task an Rng::split(stream) generator and stay deterministic
//    regardless of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace larp {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Equivalent to shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins the workers.  Idempotent; after it
  /// returns, submit() and parallel_for() throw instead of enqueueing.
  /// Must not be called from a worker thread (a task cannot join itself).
  void shutdown();

  /// True once shutdown() has begun; submissions are rejected from then on.
  [[nodiscard]] bool stopped() const;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a callable and returns a future for its result.  Exceptions
  /// thrown by the callable propagate through the future.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  [[nodiscard]] std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for every i in [begin, end) across the pool and blocks until
  /// all iterations finish.  The iteration space is divided into contiguous
  /// chunks; fn must be safe to call concurrently for distinct i.  The first
  /// exception thrown by any iteration is rethrown to the caller.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience: map fn over [0, count) on a transient pool sized for the
/// machine, collecting results in index order.  For small counts the work is
/// run inline to avoid thread start-up cost.
template <typename F,
          typename R = std::invoke_result_t<std::decay_t<F>, std::size_t>>
std::vector<R> parallel_map(std::size_t count, F&& fn,
                            std::size_t threads = 0) {
  std::vector<R> results(count);
  if (count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  ThreadPool pool(threads == 0 ? std::min<std::size_t>(
                                     count, std::thread::hardware_concurrency())
                               : threads);
  pool.parallel_for(0, count, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace larp
