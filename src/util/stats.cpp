#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace larp::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (double x : xs) best = std::min(best, x);
  return best;
}

double max(std::span<const double> xs) noexcept {
  double best = -std::numeric_limits<double>::infinity();
  for (double x : xs) best = std::max(best, x);
  return best;
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double upper = copy[mid];
  std::nth_element(copy.begin(), copy.begin() + mid - 1, copy.begin() + mid);
  return 0.5 * (copy[mid - 1] + upper);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw InvalidArgument("percentile: p outside [0,100]");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double rank = p / 100.0 * static_cast<double>(copy.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return copy[lo] + frac * (copy[hi] - copy[lo]);
}

double trimmed_mean(std::span<const double> xs, double trim_fraction) {
  if (xs.empty()) return 0.0;
  if (trim_fraction < 0.0 || trim_fraction >= 0.5) {
    throw InvalidArgument("trimmed_mean: trim_fraction outside [0, 0.5)");
  }
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t cut =
      static_cast<std::size_t>(trim_fraction * static_cast<double>(copy.size()));
  const std::size_t kept = copy.size() - 2 * cut;
  if (kept == 0) return median(xs);
  double total = 0.0;
  for (std::size_t i = cut; i < copy.size() - cut; ++i) total += copy[i];
  return total / static_cast<double>(kept);
}

namespace {
void require_same_length(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw InvalidArgument("error metric: prediction/observation length mismatch");
  }
}
}  // namespace

double mse(std::span<const double> predicted, std::span<const double> observed) {
  require_same_length(predicted, observed);
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - observed[i];
    acc += d * d;
  }
  return acc / static_cast<double>(predicted.size());
}

double rmse(std::span<const double> predicted, std::span<const double> observed) {
  return std::sqrt(mse(predicted, observed));
}

double mae(std::span<const double> predicted, std::span<const double> observed) {
  require_same_length(predicted, observed);
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - observed[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (lag >= xs.size()) return 0.0;
  const double mu = mean(xs);
  double denom = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    denom += d * d;
  }
  if (denom == 0.0) return lag == 0 ? 1.0 : 0.0;
  double numer = 0.0;
  for (std::size_t i = lag; i < xs.size(); ++i) {
    numer += (xs[i] - mu) * (xs[i - lag] - mu);
  }
  return numer / denom;
}

std::vector<double> autocorrelations(std::span<const double> xs, std::size_t max_lag) {
  std::vector<double> acf(max_lag + 1, 0.0);
  acf[0] = 1.0;
  if (xs.empty()) return acf;
  const double mu = mean(xs);
  double denom = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    denom += d * d;
  }
  if (denom == 0.0) return acf;  // constant series: acf[k>0] = 0 by convention
  for (std::size_t lag = 1; lag <= max_lag && lag < xs.size(); ++lag) {
    double numer = 0.0;
    for (std::size_t i = lag; i < xs.size(); ++i) {
      numer += (xs[i] - mu) * (xs[i - lag] - mu);
    }
    acf[lag] = numer / denom;
  }
  return acf;
}

double hurst_exponent(std::span<const double> xs) {
  if (xs.size() < 32) {
    throw InvalidArgument("hurst_exponent: need at least 32 points");
  }
  if (variance(xs) == 0.0) return 0.5;

  // Average R/S over non-overlapping chunks for each chunk size 8,16,32,...
  std::vector<double> log_size, log_rs;
  for (std::size_t chunk = 8; chunk <= xs.size() / 2; chunk *= 2) {
    double rs_total = 0.0;
    std::size_t rs_count = 0;
    for (std::size_t start = 0; start + chunk <= xs.size(); start += chunk) {
      const auto part = xs.subspan(start, chunk);
      const double mu = mean(part);
      // Range of the cumulative deviation series.
      double cum = 0.0, lo = 0.0, hi = 0.0;
      for (double x : part) {
        cum += x - mu;
        lo = std::min(lo, cum);
        hi = std::max(hi, cum);
      }
      const double sd = stddev(part);
      if (sd > 0.0 && hi > lo) {
        rs_total += (hi - lo) / sd;
        ++rs_count;
      }
    }
    if (rs_count > 0) {
      log_size.push_back(std::log(static_cast<double>(chunk)));
      log_rs.push_back(std::log(rs_total / static_cast<double>(rs_count)));
    }
  }
  if (log_size.size() < 2) return 0.5;  // not enough scales to fit a slope

  // Closed-form simple linear regression slope.
  const double mx = mean(log_size);
  const double my = mean(log_rs);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < log_size.size(); ++i) {
    sxx += (log_size[i] - mx) * (log_size[i] - mx);
    sxy += (log_size[i] - mx) * (log_rs[i] - my);
  }
  return sxx > 0.0 ? sxy / sxx : 0.5;
}

void RunningMoments::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

void RunningMse::add(double predicted, double observed) noexcept {
  const double d = predicted - observed;
  sum_sq_ += d * d;
  ++n_;
}

WindowedMse::WindowedMse(std::size_t window) : window_(window) {
  if (window == 0) throw InvalidArgument("WindowedMse: window must be positive");
  buffer_.reserve(window);
}

void WindowedMse::add(double predicted, double observed) {
  const double d = predicted - observed;
  const double sq = d * d;
  if (buffer_.size() < window_) {
    buffer_.push_back(sq);
    sum_ += sq;
  } else {
    sum_ += sq - buffer_[head_];
    buffer_[head_] = sq;
    head_ = (head_ + 1) % window_;
  }
}

double WindowedMse::value() const noexcept {
  return buffer_.empty() ? 0.0 : sum_ / static_cast<double>(buffer_.size());
}

void WindowedMse::reset() noexcept {
  buffer_.clear();
  head_ = 0;
  sum_ = 0.0;
}

void WindowedMse::restore(std::vector<double> buffer, std::size_t head,
                          double sum) {
  if (buffer.size() > window_) {
    throw InvalidArgument("WindowedMse::restore: buffer exceeds window");
  }
  if (head >= window_) {
    throw InvalidArgument("WindowedMse::restore: head out of range");
  }
  buffer_ = std::move(buffer);
  buffer_.reserve(window_);
  head_ = head;
  sum_ = sum;
}

}  // namespace larp::stats
