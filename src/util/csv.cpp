#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace larp::csv {

namespace {

std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

}  // namespace

std::size_t Table::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw NotFound("csv: no column named '" + name + "'");
}

std::vector<double> Table::numeric_column(const std::string& name) const {
  const std::size_t idx = column(name);
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) {
    const std::string& cell = row[idx];
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(cell.data(), cell.data() + cell.size(), value);
    if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
      throw InvalidArgument("csv: non-numeric cell '" + cell + "' in column '" +
                            name + "'");
    }
    values.push_back(value);
  }
  return values;
}

Table read(std::istream& in) {
  Table table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty() && in.peek() == std::char_traits<char>::eof()) break;
    auto cells = parse_line(line);
    if (first) {
      table.header = std::move(cells);
      first = false;
    } else {
      cells.resize(table.header.size());
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

Table read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NotFound("csv: cannot open '" + path + "'");
  return read(in);
}

void write_row(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out << ',';
    if (needs_quoting(cells[i])) {
      out << '"';
      for (char c : cells[i]) {
        if (c == '"') out << "\"\"";
        else out << c;
      }
      out << '"';
    } else {
      out << cells[i];
    }
  }
  out << '\n';
}

void write(std::ostream& out, const Table& table) {
  write_row(out, table.header);
  for (const auto& row : table.rows) write_row(out, row);
}

void write_series(std::ostream& out, const std::string& name,
                  const std::vector<double>& values) {
  write_row(out, {"index", name});
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::ostringstream value;
    value << values[i];
    write_row(out, {std::to_string(i), value.str()});
  }
}

}  // namespace larp::csv
