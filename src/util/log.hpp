// Leveled logging with a process-global sink.
//
// Defaults to stderr at Warn so library users see problems but experiment
// binaries stay quiet; the examples raise the level to Info to narrate the
// pipeline.  Thread safe: a single mutex serializes sink writes.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace larp::log {

enum class Level { Trace = 0, Debug, Info, Warn, Error, Off };

/// Sets the minimum level that reaches the sink.
void set_level(Level level) noexcept;
[[nodiscard]] Level level() noexcept;

/// Redirects output to the given stream (not owned); nullptr restores stderr.
void set_sink(std::ostream* sink) noexcept;

/// Emits one formatted line if `lvl` passes the threshold.
void write(Level lvl, const std::string& component, const std::string& message);

namespace detail {
[[nodiscard]] bool enabled(Level lvl) noexcept;
}

}  // namespace larp::log

/// Streaming log macros: LARP_LOG_INFO("tsdb") << "consolidated " << n;
#define LARP_LOG_IMPL(lvl, component)                                        \
  if (!::larp::log::detail::enabled(lvl)) {                                  \
  } else                                                                     \
    ::larp::log::LineEmitter(lvl, component)

namespace larp::log {

/// Accumulates one log line and flushes it on destruction.
class LineEmitter {
 public:
  LineEmitter(Level lvl, std::string component)
      : level_(lvl), component_(std::move(component)) {}
  ~LineEmitter() { write(level_, component_, buffer_.str()); }
  template <typename T>
  LineEmitter& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string component_;
  std::ostringstream buffer_;
};

}  // namespace larp::log

#define LARP_LOG_TRACE(component) LARP_LOG_IMPL(::larp::log::Level::Trace, component)
#define LARP_LOG_DEBUG(component) LARP_LOG_IMPL(::larp::log::Level::Debug, component)
#define LARP_LOG_INFO(component) LARP_LOG_IMPL(::larp::log::Level::Info, component)
#define LARP_LOG_WARN(component) LARP_LOG_IMPL(::larp::log::Level::Warn, component)
#define LARP_LOG_ERROR(component) LARP_LOG_IMPL(::larp::log::Level::Error, component)
