// Discrete time axis shared by the monitoring, storage and prediction layers.
//
// The paper's pipeline is built on uniformly sampled series (vmkusage samples
// every minute; the profiler extracts 5- or 30-minute series).  TimeAxis
// captures "start + fixed step" and converts between timestamps and sample
// indices, so alignment bugs surface as exceptions instead of silent
// off-by-one shifts.
#pragma once

#include <cstdint>
#include <string>

namespace larp {

/// Seconds since an arbitrary epoch; the library never needs wall-clock time.
using Timestamp = std::int64_t;

/// Common sampling intervals used in the paper's experiments.
inline constexpr Timestamp kSecond = 1;
inline constexpr Timestamp kMinute = 60;
inline constexpr Timestamp kFiveMinutes = 5 * kMinute;
inline constexpr Timestamp kThirtyMinutes = 30 * kMinute;
inline constexpr Timestamp kHour = 60 * kMinute;
inline constexpr Timestamp kDay = 24 * kHour;

/// A uniform sampling grid: sample i is at `start + i*step`.
class TimeAxis {
 public:
  TimeAxis() = default;

  /// Constructs an axis; throws InvalidArgument for a non-positive step.
  TimeAxis(Timestamp start, Timestamp step, std::size_t samples);

  [[nodiscard]] Timestamp start() const noexcept { return start_; }
  [[nodiscard]] Timestamp step() const noexcept { return step_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_; }
  [[nodiscard]] bool empty() const noexcept { return samples_ == 0; }

  /// Timestamp of sample `index`; throws InvalidArgument when out of range.
  [[nodiscard]] Timestamp at(std::size_t index) const;

  /// Timestamp one step past the final sample (exclusive end).
  [[nodiscard]] Timestamp end() const noexcept {
    return start_ + static_cast<Timestamp>(samples_) * step_;
  }

  /// True when `ts` falls exactly on a grid point within range.
  [[nodiscard]] bool contains(Timestamp ts) const noexcept;

  /// Sample index for `ts`; throws InvalidArgument if off-grid/out of range.
  [[nodiscard]] std::size_t index_of(Timestamp ts) const;

  /// Axis covering samples [first, first+count) of this axis.
  [[nodiscard]] TimeAxis slice(std::size_t first, std::size_t count) const;

  /// Human-readable "start=.. step=..s n=.." description for logs.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const TimeAxis&, const TimeAxis&) = default;

 private:
  Timestamp start_ = 0;
  Timestamp step_ = kMinute;
  std::size_t samples_ = 0;
};

}  // namespace larp
