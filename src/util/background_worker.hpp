// A single maintenance thread that runs a tick on a fixed period and
// immediately on notify().  The building block for background housekeeping
// (WAL syncing today; compaction-style jobs tomorrow) — one condition
// variable, one thread, no task queue.
//
// Contract:
//  * the tick runs outside the internal lock, so notify() never blocks
//    behind a slow tick and the tick may itself call notify();
//  * stop() (and the destructor) joins the thread without running a final
//    tick — callers that need an end-of-life pass (e.g. a last fsync) do it
//    themselves after stop() returns, when no tick can race them;
//  * ticks never run concurrently with each other (single thread).
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace larp {

class BackgroundWorker {
 public:
  /// Starts the thread immediately.  `tick` must not throw — an exception
  /// escaping it terminates the process (it has no caller to report to).
  BackgroundWorker(std::chrono::milliseconds period, std::function<void()> tick);

  /// stop()s.
  ~BackgroundWorker();

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Wakes the thread for an immediate tick (coalesced: several notifies
  /// before the wakeup produce one tick).
  void notify();

  /// Joins the thread; idempotent.  No tick runs after this returns.
  void stop();

 private:
  void run();

  std::chrono::milliseconds period_;
  std::function<void()> tick_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool notified_ = false;
  std::thread thread_;
};

}  // namespace larp
