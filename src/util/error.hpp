// Error-handling primitives shared across the LARPredictor libraries.
//
// The library throws typed exceptions for contract violations at API
// boundaries (bad dimensions, empty inputs, unknown keys) and uses
// LARP_ASSERT for internal invariants that indicate a library bug rather
// than misuse.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace larp {

/// Base class for every exception thrown by the LARPredictor libraries.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an argument violates a documented precondition
/// (e.g. a window size of zero, mismatched matrix dimensions).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Thrown when a lookup key does not exist (database rows, metric names).
class NotFound : public Error {
 public:
  using Error::Error;
};

/// Thrown when an operation is attempted on an object in the wrong state
/// (e.g. transform() before fit(), predicting with an untrained model).
class StateError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a numerical routine cannot proceed (singular system,
/// non-convergent iteration).
class NumericalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, std::source_location loc);
}  // namespace detail

}  // namespace larp

/// Internal invariant check: active in all build types because the library's
/// correctness claims (reproduction of published results) depend on them.
#define LARP_ASSERT(expr)                                                \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::larp::detail::assert_fail(#expr, std::source_location::current()); \
    }                                                                    \
  } while (false)
