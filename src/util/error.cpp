#include "util/error.hpp"

#include <sstream>

namespace larp::detail {

void assert_fail(const char* expr, std::source_location loc) {
  std::ostringstream os;
  os << "LARP_ASSERT failed: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line() << " in " << loc.function_name();
  throw Error(os.str());
}

}  // namespace larp::detail
