#include "util/time_axis.hpp"

#include <sstream>

#include "util/error.hpp"

namespace larp {

TimeAxis::TimeAxis(Timestamp start, Timestamp step, std::size_t samples)
    : start_(start), step_(step), samples_(samples) {
  if (step <= 0) throw InvalidArgument("TimeAxis: step must be positive");
}

Timestamp TimeAxis::at(std::size_t index) const {
  if (index >= samples_) throw InvalidArgument("TimeAxis::at: index out of range");
  return start_ + static_cast<Timestamp>(index) * step_;
}

bool TimeAxis::contains(Timestamp ts) const noexcept {
  if (ts < start_ || ts >= end()) return false;
  return (ts - start_) % step_ == 0;
}

std::size_t TimeAxis::index_of(Timestamp ts) const {
  if (!contains(ts)) {
    throw InvalidArgument("TimeAxis::index_of: timestamp off-grid or out of range");
  }
  return static_cast<std::size_t>((ts - start_) / step_);
}

TimeAxis TimeAxis::slice(std::size_t first, std::size_t count) const {
  if (first + count > samples_) {
    throw InvalidArgument("TimeAxis::slice: range out of bounds");
  }
  return TimeAxis(at(first), step_, count);
}

std::string TimeAxis::describe() const {
  std::ostringstream os;
  os << "start=" << start_ << " step=" << step_ << "s n=" << samples_;
  return os.str();
}

}  // namespace larp
