// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (trace generators, random-split
// cross-validation, contention models) draws from an explicitly seeded Rng so
// that a given seed reproduces a bit-identical experiment.  The core engine is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is fast,
// has a 2^256-1 period, and passes BigCrush — more than adequate for the
// Monte-Carlo style workloads here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace larp {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, but the member helpers below are preferred
/// because their output is reproducible across standard-library versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is a function of `seed`.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal draw (Marsaglia polar method, deterministic).
  [[nodiscard]] double normal() noexcept;

  /// Normal draw with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential draw with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Pareto draw with scale xm > 0 and shape alpha > 0 (heavy-tailed bursts).
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Poisson draw (Knuth's method for small lambda, normal approx for large).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Derives an independent child generator; stream `i` of the same parent
  /// seed is stable, which lets parallel tasks own private generators.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_ = 0;  // retained for split()
};

}  // namespace larp
