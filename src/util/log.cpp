#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace larp::log {

namespace {
std::atomic<Level> g_level{Level::Warn};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_sink(std::ostream* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

bool detail::enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >= static_cast<int>(level());
}

void write(Level lvl, const std::string& component, const std::string& message) {
  if (!detail::enabled(lvl)) return;
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = &std::cerr;
  std::lock_guard lock(g_mutex);
  (*sink) << '[' << level_name(lvl) << "] [" << component << "] " << message
          << '\n';
}

}  // namespace larp::log
