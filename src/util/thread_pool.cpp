#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace larp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

bool ThreadPool::stopped() const {
  std::lock_guard lock(mutex_);
  return stopping_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  // Ceil-division twice over: `chunks * chunk_size` can overshoot `total`,
  // leaving trailing chunks with lo >= end.  Those carry no iterations but
  // would still burn a submit slot (and a queue wakeup) each — skip them by
  // submitting only the chunks that contain work.
  const std::size_t used_chunks = (total + chunk_size - 1) / chunk_size;

  std::atomic<std::size_t> remaining{used_chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  // Shutdown safety: if submit() throws mid-loop (pool shut down
  // concurrently), the already-submitted jobs still reference this frame's
  // locals — so never leave before `remaining` reaches zero.  The
  // unsubmitted chunks are credited below and the submit error is rethrown
  // only after the in-flight jobs have drained.
  std::exception_ptr submit_error;
  for (std::size_t c = 0; c < used_chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    try {
      // Fire-and-forget job; completion is tracked via `remaining`.
      (void)submit([&, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard lock(done_mutex);
          done_cv.notify_all();
        }
      });
    } catch (...) {
      submit_error = std::current_exception();
      remaining.fetch_sub(used_chunks - c, std::memory_order_acq_rel);
      break;
    }
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  lock.unlock();
  if (submit_error) std::rethrow_exception(submit_error);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace larp
