#include "util/background_worker.hpp"

#include <utility>

namespace larp {

BackgroundWorker::BackgroundWorker(std::chrono::milliseconds period,
                                   std::function<void()> tick)
    : period_(period), tick_(std::move(tick)), thread_([this] { run(); }) {}

BackgroundWorker::~BackgroundWorker() { stop(); }

void BackgroundWorker::notify() {
  {
    std::lock_guard lock(mutex_);
    notified_ = true;
  }
  cv_.notify_one();
}

void BackgroundWorker::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void BackgroundWorker::run() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, period_, [this] { return stop_ || notified_; });
    if (stop_) break;
    notified_ = false;
    lock.unlock();
    tick_();
    lock.lock();
  }
}

}  // namespace larp
