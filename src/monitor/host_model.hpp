// Host/VM contention model: the physical ESX server of the paper's testbed
// (§7: one Xeon 2.0 GHz host running five guest VMs).
//
// Each guest owns a set of per-metric demand models (from tracegen).  The
// host multiplexes a finite CPU capacity: when the guests' aggregate CPU
// demand exceeds it, each guest is granted a proportional share and the
// unmet remainder appears as CPU_Ready — the paper's Table-1 definition:
// "the percentage of time that the virtual machine was ready but could not
// get scheduled to run on a physical CPU".  Non-CPU metrics pass through
// their demand models unchanged (memory/NIC/disk contention is secondary in
// the paper and its traces).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tracegen/metric_model.hpp"

namespace larp::monitor {

/// One guest VM: identity plus its per-metric demand models.
class GuestVm {
 public:
  explicit GuestVm(std::string vm_id);

  [[nodiscard]] const std::string& vm_id() const noexcept { return vm_id_; }

  /// Registers the demand model for a metric; replaces any previous one.
  void set_metric_model(const std::string& metric,
                        std::unique_ptr<tracegen::MetricModel> model);

  [[nodiscard]] bool has_metric(const std::string& metric) const noexcept;
  [[nodiscard]] std::vector<std::string> metrics() const;

  /// Samples the demand model of a metric; throws NotFound when absent.
  [[nodiscard]] double sample_demand(const std::string& metric, Rng& rng);

 private:
  std::string vm_id_;
  std::map<std::string, std::unique_ptr<tracegen::MetricModel>> models_;
};

/// Builds a guest with the full paper metric suite from the trace catalog.
[[nodiscard]] GuestVm make_catalog_guest(const std::string& vm_id);

/// One sampling step's worth of observed metrics for one guest.
using MetricSample = std::map<std::string, double>;

class HostServer {
 public:
  /// `cpu_capacity` is the total schedulable CPU in the same units as the
  /// guests' CPU_usedsec demand (percent; 100 = one fully used core).
  explicit HostServer(double cpu_capacity = 100.0);

  /// Takes ownership of a guest.  Guest ids must be unique.
  void add_guest(GuestVm guest);

  [[nodiscard]] std::size_t guest_count() const noexcept { return guests_.size(); }
  [[nodiscard]] const std::vector<GuestVm>& guests() const noexcept {
    return guests_;
  }
  [[nodiscard]] double cpu_capacity() const noexcept { return cpu_capacity_; }

  /// Advances every guest one base step and returns the metrics the VMM
  /// layer observes, per guest id — with CPU contention applied:
  ///   CPU_usedsec <- granted share, CPU_ready <- own unmet demand plus the
  ///   guest's intrinsic ready noise.
  [[nodiscard]] std::map<std::string, MetricSample> step(Rng& rng);

 private:
  double cpu_capacity_;
  std::vector<GuestVm> guests_;
};

}  // namespace larp::monitor
