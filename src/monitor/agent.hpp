// MonitoringAgent: the vmkusage stand-in (paper §3.2) — "installed in the
// VMM", it samples every guest's performance metrics once per minute and
// stores them in the round-robin performance database, whose 5-minute
// AVERAGE archive is what the profiler later extracts.
#pragma once

#include "monitor/host_model.hpp"
#include "tsdb/rrd.hpp"

namespace larp::monitor {

class MonitoringAgent {
 public:
  /// Borrows the host and the database; both must outlive the agent.
  /// The database's base step defines the sampling interval (one minute in
  /// the vmkusage configuration).
  MonitoringAgent(HostServer& host, tsdb::RoundRobinDatabase& db);

  /// Runs the sampling loop for `steps` base-step ticks starting at `start`
  /// (grid-aligned).  Each tick advances the host model once and writes one
  /// sample per (guest, metric) stream.  Returns the timestamp one step past
  /// the last sample, which can be passed back as the next `start`.
  Timestamp run(Timestamp start, std::size_t steps, Rng& rng);

  /// Samples written so far across all streams.
  [[nodiscard]] std::size_t samples_written() const noexcept {
    return samples_written_;
  }

 private:
  HostServer* host_;
  tsdb::RoundRobinDatabase* db_;
  std::size_t samples_written_ = 0;
};

}  // namespace larp::monitor
