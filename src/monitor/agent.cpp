#include "monitor/agent.hpp"

#include "tracegen/catalog.hpp"
#include "util/log.hpp"

namespace larp::monitor {

MonitoringAgent::MonitoringAgent(HostServer& host, tsdb::RoundRobinDatabase& db)
    : host_(&host), db_(&db) {}

Timestamp MonitoringAgent::run(Timestamp start, std::size_t steps, Rng& rng) {
  const Timestamp step = db_->config().base_step;
  Timestamp ts = start;
  for (std::size_t i = 0; i < steps; ++i, ts += step) {
    const auto observed = host_->step(rng);
    for (const auto& [vm_id, sample] : observed) {
      for (const auto& [metric, value] : sample) {
        const tsdb::SeriesKey key{vm_id, tracegen::device_of_metric(metric),
                                  metric};
        db_->update(key, ts, value);
        ++samples_written_;
      }
    }
  }
  LARP_LOG_DEBUG("monitor") << "agent wrote " << samples_written_
                            << " samples up to t=" << ts;
  return ts;
}

}  // namespace larp::monitor
