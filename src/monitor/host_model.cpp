#include "monitor/host_model.hpp"

#include "tracegen/catalog.hpp"
#include "util/error.hpp"

namespace larp::monitor {

GuestVm::GuestVm(std::string vm_id) : vm_id_(std::move(vm_id)) {
  if (vm_id_.empty()) throw InvalidArgument("GuestVm: empty vm id");
}

void GuestVm::set_metric_model(const std::string& metric,
                               std::unique_ptr<tracegen::MetricModel> model) {
  if (!model) throw InvalidArgument("GuestVm: null metric model");
  models_[metric] = std::move(model);
}

bool GuestVm::has_metric(const std::string& metric) const noexcept {
  return models_.contains(metric);
}

std::vector<std::string> GuestVm::metrics() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [metric, model] : models_) out.push_back(metric);
  return out;
}

double GuestVm::sample_demand(const std::string& metric, Rng& rng) {
  const auto it = models_.find(metric);
  if (it == models_.end()) {
    throw NotFound("GuestVm " + vm_id_ + ": no metric " + metric);
  }
  return it->second->next(rng);
}

GuestVm make_catalog_guest(const std::string& vm_id) {
  GuestVm guest(vm_id);
  for (const auto& metric : tracegen::paper_metrics()) {
    guest.set_metric_model(metric, tracegen::make_metric_model(vm_id, metric));
  }
  return guest;
}

HostServer::HostServer(double cpu_capacity) : cpu_capacity_(cpu_capacity) {
  if (cpu_capacity <= 0.0) {
    throw InvalidArgument("HostServer: capacity must be positive");
  }
}

void HostServer::add_guest(GuestVm guest) {
  for (const auto& existing : guests_) {
    if (existing.vm_id() == guest.vm_id()) {
      throw InvalidArgument("HostServer: duplicate guest " + guest.vm_id());
    }
  }
  guests_.push_back(std::move(guest));
}

std::map<std::string, MetricSample> HostServer::step(Rng& rng) {
  std::map<std::string, MetricSample> observed;

  // Pass 1: sample every guest's raw demand for every metric.
  std::vector<double> cpu_demand(guests_.size(), 0.0);
  double total_cpu_demand = 0.0;
  for (std::size_t g = 0; g < guests_.size(); ++g) {
    GuestVm& guest = guests_[g];
    MetricSample sample;
    for (const auto& metric : guest.metrics()) {
      sample[metric] = guest.sample_demand(metric, rng);
    }
    if (const auto it = sample.find("CPU_usedsec"); it != sample.end()) {
      cpu_demand[g] = it->second;
      total_cpu_demand += it->second;
    }
    observed[guest.vm_id()] = std::move(sample);
  }

  // Pass 2: apply CPU contention — proportional-share scheduling with the
  // unmet remainder surfacing as CPU_ready.
  if (total_cpu_demand > cpu_capacity_ && total_cpu_demand > 0.0) {
    const double scale = cpu_capacity_ / total_cpu_demand;
    for (std::size_t g = 0; g < guests_.size(); ++g) {
      auto& sample = observed[guests_[g].vm_id()];
      const auto used = sample.find("CPU_usedsec");
      if (used == sample.end()) continue;
      const double granted = cpu_demand[g] * scale;
      const double unmet = cpu_demand[g] - granted;
      used->second = granted;
      // Only surface the unmet share on guests that expose a CPU_ready
      // metric — injecting a new stream sporadically would leave gaps in
      // downstream sample-per-tick consumers (the RRD rejects gapped
      // streams).
      if (const auto ready = sample.find("CPU_ready"); ready != sample.end()) {
        ready->second += unmet;
      }
    }
  }
  return observed;
}

}  // namespace larp::monitor
