#include "predictors/pool.hpp"

#include <algorithm>

#include "predictors/adaptive_window.hpp"
#include "predictors/arma.hpp"
#include "predictors/autoregressive.hpp"
#include "predictors/ewma.hpp"
#include "predictors/last.hpp"
#include "predictors/median_window.hpp"
#include "predictors/polyfit.hpp"
#include "predictors/running_mean.hpp"
#include "predictors/sliding_window_average.hpp"
#include "predictors/tendency.hpp"
#include "util/error.hpp"

namespace larp::predictors {

std::size_t PredictorPool::add(std::unique_ptr<Predictor> predictor) {
  if (!predictor) throw InvalidArgument("PredictorPool::add: null predictor");
  names_.push_back(predictor->name());
  members_.push_back(std::move(predictor));
  return members_.size() - 1;
}

Predictor& PredictorPool::at(std::size_t label) {
  if (label >= members_.size()) {
    throw InvalidArgument("PredictorPool::at: label out of range");
  }
  return *members_[label];
}

const Predictor& PredictorPool::at(std::size_t label) const {
  if (label >= members_.size()) {
    throw InvalidArgument("PredictorPool::at: label out of range");
  }
  return *members_[label];
}

const std::string& PredictorPool::name(std::size_t label) const {
  if (label >= names_.size()) {
    throw InvalidArgument("PredictorPool::name: label out of range");
  }
  return names_[label];
}

std::vector<std::string> PredictorPool::names() const { return names_; }

std::size_t PredictorPool::label_of(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw NotFound("PredictorPool: no member named '" + name + "'");
  }
  return static_cast<std::size_t>(it - names_.begin());
}

std::size_t PredictorPool::min_history() const noexcept {
  std::size_t required = 1;
  for (const auto& member : members_) {
    required = std::max(required, member->min_history());
  }
  return required;
}

void PredictorPool::fit_all(std::span<const double> training_series) {
  for (auto& member : members_) member->fit(training_series);
}

void PredictorPool::reset_all() {
  for (auto& member : members_) member->reset();
}

void PredictorPool::observe_all(double value) {
  for (auto& member : members_) member->observe(value);
}

std::vector<double> PredictorPool::predict_all(
    std::span<const double> window) const {
  std::vector<double> forecasts;
  predict_all_into(window, forecasts);
  return forecasts;
}

void PredictorPool::predict_all_into(std::span<const double> window,
                                     std::vector<double>& out) const {
  out.clear();
  out.reserve(members_.size());
  for (const auto& member : members_) {
    out.push_back(member->predict(window));
  }
}

PredictorPool PredictorPool::clone() const {
  PredictorPool copy;
  for (const auto& member : members_) copy.add(member->clone());
  return copy;
}

PredictorPool make_paper_pool(std::size_t ar_order) {
  PredictorPool pool;
  pool.add(std::make_unique<LastValue>());
  pool.add(std::make_unique<Autoregressive>(ar_order));
  pool.add(std::make_unique<SlidingWindowAverage>());
  return pool;
}

PredictorPool make_extended_pool(std::size_t ar_order) {
  PredictorPool pool = make_paper_pool(ar_order);
  pool.add(std::make_unique<Ewma>(0.2));
  pool.add(std::make_unique<Ewma>(0.7));
  pool.add(std::make_unique<RunningMean>());
  pool.add(std::make_unique<MedianWindow>());
  pool.add(std::make_unique<TrimmedMeanWindow>(0.25));
  pool.add(std::make_unique<AdaptiveMean>(32));
  pool.add(std::make_unique<Tendency>());
  pool.add(std::make_unique<PolynomialFit>(2, 0));
  pool.add(make_moving_average(2));
  pool.add(std::make_unique<Arma>(2, 1));
  return pool;
}

}  // namespace larp::predictors
