#include "predictors/polyfit.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace larp::predictors {

namespace {

// Solves the small dense normal-equation system A x = b in place via
// Gaussian elimination with partial pivoting.  The Vandermonde normal matrix
// for degree <= 3 over a handful of points is tiny and well within double
// precision once the abscissa is kept near the origin.
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      throw NumericalError("PolynomialFit: singular normal equations");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * x[c];
    x[i] = acc / a[i][i];
  }
  return x;
}

}  // namespace

PolynomialFit::PolynomialFit(std::size_t degree, std::size_t fit_points)
    : degree_(degree), fit_points_(fit_points) {
  if (degree == 0) throw InvalidArgument("PolynomialFit: degree must be >= 1");
  if (fit_points != 0 && fit_points < degree + 1) {
    throw InvalidArgument("PolynomialFit: need at least degree+1 fit points");
  }
}

std::string PolynomialFit::name() const {
  std::ostringstream os;
  os << "POLY_FIT(d" << degree_ << ')';
  return os.str();
}

std::size_t PolynomialFit::min_history() const {
  return fit_points_ == 0 ? degree_ + 1 : fit_points_;
}

double PolynomialFit::predict(std::span<const double> window) const {
  require_window(window, min_history());
  const std::size_t take =
      fit_points_ == 0 ? window.size() : std::min(fit_points_, window.size());
  const auto points = window.subspan(window.size() - take, take);
  const std::size_t terms = degree_ + 1;

  // Normal equations for least-squares fit of y_i over x_i = i.
  std::vector<double> power_sums(2 * degree_ + 1, 0.0);
  std::vector<double> rhs(terms, 0.0);
  for (std::size_t i = 0; i < take; ++i) {
    const double x = static_cast<double>(i);
    double xp = 1.0;
    for (std::size_t p = 0; p < power_sums.size(); ++p) {
      power_sums[p] += xp;
      if (p < terms) rhs[p] += xp * points[i];
      xp *= x;
    }
  }
  std::vector<std::vector<double>> normal(terms, std::vector<double>(terms, 0.0));
  for (std::size_t r = 0; r < terms; ++r) {
    for (std::size_t c = 0; c < terms; ++c) normal[r][c] = power_sums[r + c];
  }
  const auto coeffs = solve_dense(std::move(normal), std::move(rhs));

  // Evaluate one step beyond the window: x = take.
  const double x_next = static_cast<double>(take);
  double forecast = 0.0;
  double xp = 1.0;
  for (std::size_t p = 0; p < terms; ++p) {
    forecast += coeffs[p] * xp;
    xp *= x_next;
  }
  return forecast;
}

std::unique_ptr<Predictor> PolynomialFit::clone() const {
  return std::make_unique<PolynomialFit>(*this);
}

}  // namespace larp::predictors
