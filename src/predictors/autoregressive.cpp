#include "predictors/autoregressive.hpp"

#include "linalg/toeplitz.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::predictors {

Autoregressive::Autoregressive(std::size_t order) : order_(order) {
  if (order == 0) throw InvalidArgument("AR: order must be positive");
}

void Autoregressive::fit(std::span<const double> training_series) {
  const auto solution = linalg::yule_walker(training_series, order_);
  coefficients_ = solution.coefficients;
  innovation_variance_ = solution.innovation_variance;
  mean_ = stats::mean(training_series);
  fitted_ = true;
}

double Autoregressive::predict(std::span<const double> window) const {
  if (!fitted_) throw StateError("AR: predict() before fit()");
  require_window(window, order_);
  // coefficients_[i] multiplies Z_{t-1-i}; window.back() is Z_{t-1}.
  // The AR model is fitted on the mean-removed series, so forecast in
  // deviations around the training mean (the mean is ~0 for normalized data).
  double forecast = 0.0;
  const std::size_t last = window.size() - 1;
  for (std::size_t i = 0; i < order_; ++i) {
    forecast += coefficients_[i] * (window[last - i] - mean_);
  }
  return mean_ + forecast;
}

std::unique_ptr<Predictor> Autoregressive::clone() const {
  return std::make_unique<Autoregressive>(*this);
}

}  // namespace larp::predictors
