#include "predictors/autoregressive.hpp"

#include <algorithm>

#include "linalg/kernels.hpp"
#include "linalg/toeplitz.hpp"
#include "persist/io.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::predictors {

Autoregressive::Autoregressive(std::size_t order) : order_(order) {
  if (order == 0) throw InvalidArgument("AR: order must be positive");
}

void Autoregressive::fit(std::span<const double> training_series) {
  const auto solution = linalg::yule_walker(training_series, order_);
  coefficients_ = solution.coefficients;
  coefficients_reversed_.assign(coefficients_.rbegin(), coefficients_.rend());
  innovation_variance_ = solution.innovation_variance;
  mean_ = stats::mean(training_series);
  fitted_ = true;
}

double Autoregressive::predict(std::span<const double> window) const {
  if (!fitted_) throw StateError("AR: predict() before fit()");
  require_window(window, order_);
  // coefficients_[i] multiplies Z_{t-1-i}; window.back() is Z_{t-1}.  With
  // the reversed coefficient copy the sum is one contiguous centered dot
  // product over the window tail, vectorized by the kernel layer.  The AR
  // model is fitted on the mean-removed series, so forecast in deviations
  // around the training mean (the mean is ~0 for normalized data).
  const std::size_t start = window.size() - order_;
  return mean_ + linalg::kernels::dot_centered(coefficients_reversed_.data(),
                                               window.data() + start, order_,
                                               mean_);
}

std::unique_ptr<Predictor> Autoregressive::clone() const {
  return std::make_unique<Autoregressive>(*this);
}

void Autoregressive::save_state(persist::io::Writer& w) const {
  w.f64_span(coefficients_);
  w.f64_span(coefficients_reversed_);
  w.f64(mean_);
  w.f64(innovation_variance_);
  w.boolean(fitted_);
}

void Autoregressive::load_state(persist::io::Reader& r) {
  coefficients_ = r.f64_vector();
  coefficients_reversed_ = r.f64_vector();
  mean_ = r.f64();
  innovation_variance_ = r.f64();
  fitted_ = r.boolean();
  if (coefficients_.size() != coefficients_reversed_.size() ||
      (fitted_ && coefficients_.size() != order_)) {
    throw persist::CorruptData("AR: serialized coefficients disagree with order");
  }
}

}  // namespace larp::predictors
