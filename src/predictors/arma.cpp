#include "predictors/arma.hpp"

#include <algorithm>
#include <sstream>

#include "linalg/lstsq.hpp"
#include "linalg/toeplitz.hpp"
#include "persist/io.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::predictors {

Arma::Arma(std::size_t ar_order, std::size_t ma_order)
    : p_(ar_order), q_(ma_order) {
  if (q_ == 0) {
    throw InvalidArgument("Arma: for q = 0 use the Autoregressive class");
  }
}

std::string Arma::name() const {
  std::ostringstream os;
  if (p_ == 0) {
    os << "MA(" << q_ << ')';
  } else {
    os << "ARMA(" << p_ << ',' << q_ << ')';
  }
  return os.str();
}

std::size_t Arma::min_history() const { return std::max<std::size_t>(p_, 1); }

void Arma::fit(std::span<const double> series) {
  const std::size_t min_points = 4 * (p_ + q_) + 32;
  if (series.size() < min_points) {
    throw InvalidArgument("Arma::fit: series shorter than " +
                          std::to_string(min_points) + " points");
  }
  mean_ = stats::mean(series);

  // Stage 1: long AR proxy for the innovations.
  const std::size_t long_order =
      std::min<std::size_t>(std::max<std::size_t>(20, 2 * (p_ + q_)),
                            series.size() / 4);
  std::vector<double> centered(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) centered[i] = series[i] - mean_;

  std::vector<double> residuals(series.size(), 0.0);
  if (stats::variance(series) == 0.0) {
    // Constant series: zero innovations, zero coefficients.
    phi_.assign(p_, 0.0);
    theta_.assign(q_, 0.0);
    fitted_ = true;
    reset();
    return;
  }
  const auto long_ar = linalg::yule_walker(centered, long_order);
  for (std::size_t t = long_order; t < centered.size(); ++t) {
    double forecast = 0.0;
    for (std::size_t i = 0; i < long_order; ++i) {
      forecast += long_ar.coefficients[i] * centered[t - 1 - i];
    }
    residuals[t] = centered[t] - forecast;
  }

  // Stage 2: regress Z_t on (Z_{t-1..t-p}, e_{t-1..t-q}).
  const std::size_t start = long_order + std::max(p_, q_);
  const std::size_t rows = centered.size() - start;
  const std::size_t cols = p_ + q_;
  linalg::Matrix design(rows, cols);
  linalg::Vector target(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = start + r;
    auto row = design.row(r);
    for (std::size_t i = 0; i < p_; ++i) row[i] = centered[t - 1 - i];
    for (std::size_t j = 0; j < q_; ++j) row[p_ + j] = residuals[t - 1 - j];
    target[r] = centered[t];
  }
  const auto coefficients = linalg::solve_least_squares(design, target);
  phi_.assign(coefficients.begin(), coefficients.begin() + p_);
  theta_.assign(coefficients.begin() + p_, coefficients.end());
  fitted_ = true;
  reset();
}

void Arma::reset() {
  innovations_.assign(q_, 0.0);
  history_.clear();
}

double Arma::forecast_from(std::span<const double> window) const {
  double forecast = 0.0;
  const std::size_t last = window.size() - 1;
  for (std::size_t i = 0; i < p_ && i < window.size(); ++i) {
    forecast += phi_[i] * (window[last - i] - mean_);
  }
  for (std::size_t j = 0; j < q_; ++j) {
    forecast += theta_[j] * innovations_[j];
  }
  return mean_ + forecast;
}

double Arma::predict(std::span<const double> window) const {
  if (!fitted_) throw StateError("Arma: predict() before fit()");
  require_window(window, min_history());
  return forecast_from(window);
}

void Arma::observe(double value) {
  if (!fitted_) return;  // pre-training observations carry no innovations
  // Exact innovation: the surprise relative to the forecast this model
  // implied for the current step, reconstructed from its own history (it
  // may not have been asked to predict() this step).
  double innovation;
  if (history_.size() >= p_) {
    innovation = value - forecast_from(history_);
  } else {
    innovation = value - mean_;  // warm-up before p values are seen
  }
  innovations_.insert(innovations_.begin(), innovation);
  innovations_.resize(q_);
  history_.push_back(value);
  if (history_.size() > std::max<std::size_t>(p_, 1)) {
    history_.erase(history_.begin());
  }
}

std::unique_ptr<Predictor> Arma::clone() const {
  return std::make_unique<Arma>(*this);
}

std::unique_ptr<Arma> make_moving_average(std::size_t ma_order) {
  return std::make_unique<Arma>(0, ma_order);
}

void Arma::save_state(persist::io::Writer& w) const {
  w.f64_span(phi_);
  w.f64_span(theta_);
  w.f64(mean_);
  w.boolean(fitted_);
  w.f64_span(innovations_);
  w.f64_span(history_);
}

void Arma::load_state(persist::io::Reader& r) {
  phi_ = r.f64_vector();
  theta_ = r.f64_vector();
  mean_ = r.f64();
  fitted_ = r.boolean();
  innovations_ = r.f64_vector();
  history_ = r.f64_vector();
  if (fitted_ && (phi_.size() != p_ || theta_.size() != q_)) {
    throw persist::CorruptData("ARMA: serialized orders disagree with config");
  }
  if (innovations_.size() > q_ || history_.size() > p_) {
    throw persist::CorruptData("ARMA: serialized online state too long");
  }
}

}  // namespace larp::predictors
