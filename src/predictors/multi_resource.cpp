#include "predictors/multi_resource.hpp"

#include "linalg/lstsq.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::predictors {

MultiResourcePredictor::MultiResourcePredictor(std::size_t order)
    : order_(order) {
  if (order == 0) {
    throw InvalidArgument("MultiResourcePredictor: order must be positive");
  }
}

void MultiResourcePredictor::fit(std::span<const double> primary,
                                 std::span<const double> auxiliary) {
  if (primary.size() != auxiliary.size()) {
    throw InvalidArgument("MultiResourcePredictor: series lengths differ");
  }
  const std::size_t min_points = 3 * order_ + 8;
  if (primary.size() < min_points) {
    throw InvalidArgument("MultiResourcePredictor: need at least " +
                          std::to_string(min_points) + " aligned points");
  }

  const std::size_t rows = primary.size() - order_;
  const std::size_t cols = 2 * order_ + 1;  // primary lags, aux lags, intercept
  linalg::Matrix design(rows, cols);
  linalg::Vector target(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = r + order_;
    auto row = design.row(r);
    for (std::size_t i = 0; i < order_; ++i) row[i] = primary[t - 1 - i];
    for (std::size_t j = 0; j < order_; ++j) {
      row[order_ + j] = auxiliary[t - 1 - j];
    }
    row[2 * order_] = 1.0;
    target[r] = primary[t];
  }

  const auto coefficients = linalg::solve_least_squares(design, target);
  a_.assign(coefficients.begin(), coefficients.begin() + order_);
  b_.assign(coefficients.begin() + order_, coefficients.begin() + 2 * order_);
  intercept_ = coefficients[2 * order_];
  fitted_ = true;
}

double MultiResourcePredictor::predict(
    std::span<const double> primary_window,
    std::span<const double> auxiliary_window) const {
  if (!fitted_) throw StateError("MultiResourcePredictor: predict before fit");
  if (primary_window.size() < order_ || auxiliary_window.size() < order_) {
    throw InvalidArgument("MultiResourcePredictor: windows shorter than order");
  }
  double forecast = intercept_;
  const std::size_t lastp = primary_window.size() - 1;
  const std::size_t lasta = auxiliary_window.size() - 1;
  for (std::size_t i = 0; i < order_; ++i) {
    forecast += a_[i] * primary_window[lastp - i];
    forecast += b_[i] * auxiliary_window[lasta - i];
  }
  return forecast;
}

double MultiResourcePredictor::walk_mse(std::span<const double> primary,
                                        std::span<const double> auxiliary) const {
  if (!fitted_) throw StateError("MultiResourcePredictor: walk before fit");
  if (primary.size() != auxiliary.size()) {
    throw InvalidArgument("MultiResourcePredictor: series lengths differ");
  }
  if (primary.size() <= order_) {
    throw InvalidArgument("MultiResourcePredictor: series shorter than order+1");
  }
  stats::RunningMse mse;
  for (std::size_t t = order_; t < primary.size(); ++t) {
    const double forecast = predict(primary.subspan(t - order_, order_),
                                    auxiliary.subspan(t - order_, order_));
    mse.add(forecast, primary[t]);
  }
  return mse.value();
}

}  // namespace larp::predictors
