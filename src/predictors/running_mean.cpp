#include "predictors/running_mean.hpp"

namespace larp::predictors {

double RunningMean::predict(std::span<const double> window) const {
  require_window(window, 1);
  if (moments_.count() == 0) return stats::mean(window);
  return moments_.mean();
}

std::unique_ptr<Predictor> RunningMean::clone() const {
  return std::make_unique<RunningMean>(*this);
}

}  // namespace larp::predictors
