#include "predictors/running_mean.hpp"

#include "persist/io.hpp"

namespace larp::predictors {

double RunningMean::predict(std::span<const double> window) const {
  require_window(window, 1);
  if (moments_.count() == 0) return stats::mean(window);
  return moments_.mean();
}

std::unique_ptr<Predictor> RunningMean::clone() const {
  return std::make_unique<RunningMean>(*this);
}

void RunningMean::save_state(persist::io::Writer& w) const {
  w.u64(moments_.count());
  w.f64(moments_.mean());
  w.f64(moments_.sum_squared_deviations());
}

void RunningMean::load_state(persist::io::Reader& r) {
  const auto n = static_cast<std::size_t>(r.u64());
  const double mean = r.f64();
  const double m2 = r.f64();
  moments_.restore(n, mean, m2);
}

}  // namespace larp::predictors
