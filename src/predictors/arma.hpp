// ARMA(p,q) and MA(q) predictors — the "more sophisticated prediction
// models ... studied in [7]" (Dinda's host-load battery) that the paper's
// §8 plans to add to the pool (extension members).
//
// Fitting uses the Hannan–Rissanen two-stage method, which stays within the
// library's linear-algebra substrate:
//   1. fit a long AR(L) by Yule–Walker and compute its residuals — a proxy
//      for the unobserved innovation series;
//   2. least-squares regress Z_t on (Z_{t-1..t-p}, e_{t-1..t-q}).
//
// Prediction is stateful: observe() maintains the recent innovation
// estimates e_t = z_t - forecast_t, so the model must be driven through the
// standard predict/observe walk (which every pipeline in this library does).
#pragma once

#include <cstddef>
#include <vector>

#include "predictors/predictor.hpp"

namespace larp::predictors {

class Arma final : public Predictor {
 public:
  /// AR order p >= 0 and MA order q >= 1 with p + q >= 1.
  /// (For a pure AR model use the Autoregressive class, whose Yule–Walker
  /// fit is the paper's choice.)
  Arma(std::size_t ar_order, std::size_t ma_order);

  [[nodiscard]] std::string name() const override;

  /// Hannan–Rissanen fit; requires a series comfortably longer than the
  /// long-AR stage (>= 4 * (p + q) + 32 points).
  void fit(std::span<const double> training_series) override;

  void reset() override;
  void observe(double value) override;

  /// Forecast from the last p window values and the q most recent innovation
  /// estimates.  Throws StateError before fit().
  [[nodiscard]] double predict(std::span<const double> window) const override;

  [[nodiscard]] std::size_t min_history() const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

  [[nodiscard]] const std::vector<double>& ar_coefficients() const noexcept {
    return phi_;
  }
  [[nodiscard]] const std::vector<double>& ma_coefficients() const noexcept {
    return theta_;
  }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  void save_state(persist::io::Writer& w) const override;
  void load_state(persist::io::Reader& r) override;

 private:
  [[nodiscard]] double forecast_from(std::span<const double> window) const;

  std::size_t p_;
  std::size_t q_;
  std::vector<double> phi_;     // AR part, phi_[i] multiplies Z_{t-1-i}
  std::vector<double> theta_;   // MA part, theta_[j] multiplies e_{t-1-j}
  double mean_ = 0.0;
  bool fitted_ = false;

  // Online state: innovation estimates (most recent first) and the last p
  // observed values (most recent last), so observe() can compute the exact
  // one-step forecast the model had implied and turn the realized value into
  // an innovation — independent of whether predict() was called this step
  // (in deployment only the selected expert runs).
  std::vector<double> innovations_;
  std::vector<double> history_;
};

/// Convenience: MA(q) is ARMA(0, q).
[[nodiscard]] std::unique_ptr<Arma> make_moving_average(std::size_t ma_order);

}  // namespace larp::predictors
