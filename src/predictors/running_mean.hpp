// RUN_AVG: running mean over the entire observed history (one of the
// Network Weather Service forecaster battery; extension beyond the paper's
// three-model pool, see DESIGN.md §6).
//
// Unlike SW_AVG, the averaging horizon is unbounded, so the model is fed
// through observe() as the pipeline walks the series and keeps O(1) state.
#pragma once

#include "predictors/predictor.hpp"
#include "util/stats.hpp"

namespace larp::predictors {

class RunningMean final : public Predictor {
 public:
  [[nodiscard]] std::string name() const override { return "RUN_AVG"; }
  void reset() override { moments_ = {}; }
  void observe(double value) override { moments_.add(value); }
  /// Mean of everything observed so far; falls back to the window mean until
  /// the first observation arrives.
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

  [[nodiscard]] std::size_t observed_count() const noexcept {
    return moments_.count();
  }

  void save_state(persist::io::Writer& w) const override;
  void load_state(persist::io::Reader& r) override;

 private:
  stats::RunningMoments moments_;
};

}  // namespace larp::predictors
