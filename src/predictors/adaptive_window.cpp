#include "predictors/adaptive_window.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace larp::predictors {

AdaptiveWindowBase::AdaptiveWindowBase(std::size_t max_window) {
  if (max_window == 0) {
    throw InvalidArgument("AdaptiveWindow: max_window must be positive");
  }
  for (std::size_t w = 1; w <= max_window; w *= 2) candidates_.push_back(w);
  errors_.assign(candidates_.size(), stats::RunningMse{});
}

void AdaptiveWindowBase::reset() {
  for (auto& e : errors_) e.reset();
  history_.clear();
}

void AdaptiveWindowBase::observe(double value) {
  // Score every candidate against the value that just materialized, using
  // the history available *before* this observation.
  if (!history_.empty()) {
    const std::span<const double> past(history_);
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const std::size_t length = std::min(candidates_[i], past.size());
      const double forecast = window_statistic(past, length);
      errors_[i].add(forecast, value);
    }
  }
  history_.push_back(value);
  // Bound memory: only the largest candidate's worth of history is needed.
  const std::size_t cap = candidates_.back();
  if (history_.size() > cap) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(cap));
  }
}

std::size_t AdaptiveWindowBase::best_window() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    // Unscored candidates (count 0) lose to any scored one; among equals the
    // shorter window wins to favour responsiveness.
    const bool scored = errors_[i].count() > 0;
    const bool best_scored = errors_[best].count() > 0;
    if (scored && (!best_scored || errors_[i].value() < errors_[best].value())) {
      best = i;
    }
  }
  return candidates_[best];
}

double AdaptiveWindowBase::predict(std::span<const double> window) const {
  require_window(window, 1);
  const std::size_t length = std::min(best_window(), window.size());
  return window_statistic(window, length);
}

double AdaptiveMean::window_statistic(std::span<const double> window,
                                      std::size_t length) const {
  return stats::mean(window.subspan(window.size() - length, length));
}

std::unique_ptr<Predictor> AdaptiveMean::clone() const {
  return std::make_unique<AdaptiveMean>(*this);
}

double AdaptiveMedian::window_statistic(std::span<const double> window,
                                        std::size_t length) const {
  return stats::median(window.subspan(window.size() - length, length));
}

std::unique_ptr<Predictor> AdaptiveMedian::clone() const {
  return std::make_unique<AdaptiveMedian>(*this);
}

}  // namespace larp::predictors
