#include "predictors/adaptive_window.hpp"

#include <algorithm>

#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::predictors {

AdaptiveWindowBase::AdaptiveWindowBase(std::size_t max_window) {
  if (max_window == 0) {
    throw InvalidArgument("AdaptiveWindow: max_window must be positive");
  }
  for (std::size_t w = 1; w <= max_window; w *= 2) candidates_.push_back(w);
  errors_.assign(candidates_.size(), stats::RunningMse{});
}

void AdaptiveWindowBase::reset() {
  for (auto& e : errors_) e.reset();
  history_.clear();
}

void AdaptiveWindowBase::observe(double value) {
  // Score every candidate against the value that just materialized, using
  // the history available *before* this observation.
  if (!history_.empty()) {
    const std::span<const double> past(history_);
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const std::size_t length = std::min(candidates_[i], past.size());
      const double forecast = window_statistic(past, length);
      errors_[i].add(forecast, value);
    }
  }
  history_.push_back(value);
  // Bound memory: only the largest candidate's worth of history is needed.
  const std::size_t cap = candidates_.back();
  if (history_.size() > cap) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(cap));
  }
}

std::size_t AdaptiveWindowBase::best_window() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    // Unscored candidates (count 0) lose to any scored one; among equals the
    // shorter window wins to favour responsiveness.
    const bool scored = errors_[i].count() > 0;
    const bool best_scored = errors_[best].count() > 0;
    if (scored && (!best_scored || errors_[i].value() < errors_[best].value())) {
      best = i;
    }
  }
  return candidates_[best];
}

double AdaptiveWindowBase::predict(std::span<const double> window) const {
  require_window(window, 1);
  const std::size_t length = std::min(best_window(), window.size());
  return window_statistic(window, length);
}

void AdaptiveWindowBase::save_state(persist::io::Writer& w) const {
  // candidates_ derive from the constructor's max_window; their count is
  // written as a consistency check against a mismatched configuration.
  w.u64(candidates_.size());
  for (const auto& e : errors_) {
    w.u64(e.count());
    w.f64(e.sum_squared_error());
  }
  w.f64_span(history_);
}

void AdaptiveWindowBase::load_state(persist::io::Reader& r) {
  const auto count = static_cast<std::size_t>(r.u64());
  if (count != candidates_.size()) {
    throw persist::CorruptData(
        "AdaptiveWindow: serialized candidate ladder disagrees with config");
  }
  for (auto& e : errors_) {
    const auto n = static_cast<std::size_t>(r.u64());
    const double sum_sq = r.f64();
    e.restore(n, sum_sq);
  }
  history_ = r.f64_vector();
  if (history_.size() > candidates_.back()) {
    throw persist::CorruptData("AdaptiveWindow: serialized history too long");
  }
}

double AdaptiveMean::window_statistic(std::span<const double> window,
                                      std::size_t length) const {
  return stats::mean(window.subspan(window.size() - length, length));
}

std::unique_ptr<Predictor> AdaptiveMean::clone() const {
  return std::make_unique<AdaptiveMean>(*this);
}

double AdaptiveMedian::window_statistic(std::span<const double> window,
                                        std::size_t length) const {
  return stats::median(window.subspan(window.size() - length, length));
}

std::unique_ptr<Predictor> AdaptiveMedian::clone() const {
  return std::make_unique<AdaptiveMedian>(*this);
}

}  // namespace larp::predictors
