// PredictorPool: the ordered set of forecasting experts the selector layer
// chooses among.
//
// The pool index IS the class label used by the classifier and in all the
// paper's figures: the paper numbers its pool 1-LAST, 2-AR, 3-SW_AVG, which
// make_paper_pool() reproduces at 0-based indices 0, 1, 2.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "predictors/predictor.hpp"

namespace larp::predictors {

class PredictorPool {
 public:
  PredictorPool() = default;

  /// Takes ownership of a predictor; returns its class label (pool index).
  std::size_t add(std::unique_ptr<Predictor> predictor);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Member access by class label; throws InvalidArgument out of range.
  [[nodiscard]] Predictor& at(std::size_t label);
  [[nodiscard]] const Predictor& at(std::size_t label) const;

  /// Name of the labeled member.
  [[nodiscard]] const std::string& name(std::size_t label) const;

  /// All member names in label order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Label of the member with the given name; throws NotFound if absent.
  [[nodiscard]] std::size_t label_of(const std::string& name) const;

  /// Largest min_history() across members — the smallest window length every
  /// member of the pool can predict from.
  [[nodiscard]] std::size_t min_history() const noexcept;

  /// fit() every member on the training series.
  void fit_all(std::span<const double> training_series);

  /// reset() every member's online state.
  void reset_all();

  /// observe() the value on every member (parallel-prediction bookkeeping for
  /// the training/labeling phase and the NWS baselines).
  void observe_all(double value);

  /// One-step forecasts from every member for the given window, label order.
  [[nodiscard]] std::vector<double> predict_all(
      std::span<const double> window) const;

  /// predict_all into caller-owned storage (cleared and refilled; no
  /// reallocation once capacity is established) — the per-step hot path.
  void predict_all_into(std::span<const double> window,
                        std::vector<double>& out) const;

  /// Deep copy (each experiment thread owns a private pool).
  [[nodiscard]] PredictorPool clone() const;

 private:
  std::vector<std::unique_ptr<Predictor>> members_;
  std::vector<std::string> names_;  // cached; EWMA et al. build names lazily
};

/// The paper's pool: {LAST, AR(ar_order), SW_AVG} with labels 0, 1, 2
/// (paper classes 1, 2, 3).
[[nodiscard]] PredictorPool make_paper_pool(std::size_t ar_order);

/// Extended pool exercising the paper's future-work direction (§8): the
/// paper trio plus EWMA(0.2), EWMA(0.7), RUN_AVG, MEDIAN, TRIM_MEAN(0.25),
/// ADAPT_AVG, TENDENCY, POLY_FIT(d2), MA(2) and ARMA(2,1) — the NWS /
/// Dinda [7] / SC'03 [32] / CCGrid'06 [35] battery.  Note the ARMA members
/// need >= 44 training points (Hannan–Rissanen long-AR stage).
[[nodiscard]] PredictorPool make_extended_pool(std::size_t ar_order);

}  // namespace larp::predictors
