// Predictor: the common interface of every time-series forecaster in the
// pool (paper §4).
//
// Operating contract
// ------------------
// The pipeline walks a normalized series in temporal order.  For each step t
// it calls predict() with the window (z_{t-m} ... z_{t-1}) — most recent value
// last — and afterwards feeds the realized observation z_t via observe().
// Models fall into three groups:
//
//  * window-only (LAST, SW_AVG, median, trimmed mean, tendency, poly-fit):
//    predict() is a pure function of the window;
//  * fitted (AR): fit() estimates parameters offline on the training half,
//    predict() applies them to the window;
//  * online-state (running mean, EWMA, adaptive-window models): observe()
//    accumulates state across the walk and reset() clears it between folds.
//
// All models are cheap by design — the paper's premise is that running ONE
// predictor per step (selected by the classifier) is the cost win over
// running the full pool in parallel.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::predictors {

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Stable identifier, e.g. "LAST", "AR", "SW_AVG" (used in reports and as
  /// class-label names for the selector layer).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Offline parameter estimation on the (normalized) training series.
  /// Parameter-free models ignore it.  Throws if the series is too short
  /// for the model (see min_history()).
  virtual void fit(std::span<const double> training_series);

  /// Clears any online state accumulated through observe().
  virtual void reset();

  /// Feeds one realized observation after the corresponding predict() call.
  virtual void observe(double value);

  /// One-step-ahead forecast from the latest `window` (most recent value at
  /// window.back()).  Requires window.size() >= min_history().
  [[nodiscard]] virtual double predict(std::span<const double> window) const = 0;

  /// Minimum window length predict() accepts.
  [[nodiscard]] virtual std::size_t min_history() const;

  /// Deep copy (pools clone their prototypes for thread-private use).
  [[nodiscard]] virtual std::unique_ptr<Predictor> clone() const = 0;

  /// Serializes fitted/online state for durable snapshots.  The default is
  /// a no-op: window-only models have nothing to persist.  The contract is
  /// symmetric — load_state() consumes exactly what save_state() wrote,
  /// against an instance constructed with the same configuration (snapshots
  /// store state, not constructor parameters).
  virtual void save_state(persist::io::Writer& w) const;
  virtual void load_state(persist::io::Reader& r);

 protected:
  /// Throws InvalidArgument when the window is shorter than required.
  void require_window(std::span<const double> window, std::size_t required) const;
};

}  // namespace larp::predictors
