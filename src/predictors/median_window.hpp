// Robust window statistics from the NWS forecaster battery (extension pool):
//  * MedianWindow — forecast = median of the last w values; immune to the
//    spikes that wreck SW_AVG on bursty network traces;
//  * TrimmedMeanWindow — forecast = mean after trimming a fraction from each
//    tail; a compromise between mean and median.
#pragma once

#include <cstddef>

#include "predictors/predictor.hpp"

namespace larp::predictors {

class MedianWindow final : public Predictor {
 public:
  /// Median over the last `window_size` values; 0 = whole predict() window.
  explicit MedianWindow(std::size_t window_size = 0);

  [[nodiscard]] std::string name() const override { return "MEDIAN"; }
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::size_t min_history() const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

 private:
  std::size_t window_size_;
};

class TrimmedMeanWindow final : public Predictor {
 public:
  /// Trims `trim_fraction` (in [0, 0.5)) from each tail before averaging the
  /// last `window_size` values (0 = whole window).
  explicit TrimmedMeanWindow(double trim_fraction = 0.25,
                             std::size_t window_size = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::size_t min_history() const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

 private:
  double trim_fraction_;
  std::size_t window_size_;
};

}  // namespace larp::predictors
