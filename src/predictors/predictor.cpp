#include "predictors/predictor.hpp"

#include "util/error.hpp"

namespace larp::predictors {

void Predictor::fit(std::span<const double> /*training_series*/) {}

void Predictor::reset() {}

void Predictor::observe(double /*value*/) {}

std::size_t Predictor::min_history() const { return 1; }

void Predictor::save_state(persist::io::Writer& /*w*/) const {}

void Predictor::load_state(persist::io::Reader& /*r*/) {}

void Predictor::require_window(std::span<const double> window,
                               std::size_t required) const {
  if (window.size() < required) {
    throw InvalidArgument(name() + ": window of " + std::to_string(window.size()) +
                          " values is shorter than required " +
                          std::to_string(required));
  }
}

}  // namespace larp::predictors
