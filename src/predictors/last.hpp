// LAST model (paper §4, eq. 2): predicts the next value to equal the most
// recent observation.  Works best on smooth, strongly autocorrelated traces.
#pragma once

#include "predictors/predictor.hpp"

namespace larp::predictors {

class LastValue final : public Predictor {
 public:
  [[nodiscard]] std::string name() const override { return "LAST"; }
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;
};

}  // namespace larp::predictors
