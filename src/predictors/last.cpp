#include "predictors/last.hpp"

namespace larp::predictors {

double LastValue::predict(std::span<const double> window) const {
  require_window(window, 1);
  return window.back();
}

std::unique_ptr<Predictor> LastValue::clone() const {
  return std::make_unique<LastValue>(*this);
}

}  // namespace larp::predictors
