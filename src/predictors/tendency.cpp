#include "predictors/tendency.hpp"

#include <cmath>

#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::predictors {

Tendency::Tendency(double smoothing, double damping)
    : smoothing_(smoothing), damping_(damping) {
  if (!(smoothing > 0.0) || smoothing > 1.0) {
    throw InvalidArgument("Tendency: smoothing must be in (0, 1]");
  }
  if (damping < 0.0 || damping > 1.0) {
    throw InvalidArgument("Tendency: damping must be in [0, 1]");
  }
}

void Tendency::reset() {
  avg_step_ = 0.0;
  previous_ = 0.0;
  primed_ = false;
}

void Tendency::observe(double value) {
  if (primed_) {
    const double step = std::abs(value - previous_);
    avg_step_ = smoothing_ * step + (1.0 - smoothing_) * avg_step_;
  }
  previous_ = value;
  primed_ = true;
}

double Tendency::predict(std::span<const double> window) const {
  require_window(window, 2);
  const double current = window[window.size() - 1];
  const double before = window[window.size() - 2];
  // Step-magnitude estimate: online state when available, otherwise the mean
  // absolute first difference of the window.
  double magnitude = avg_step_;
  if (!primed_) {
    double acc = 0.0;
    for (std::size_t i = 1; i < window.size(); ++i) {
      acc += std::abs(window[i] - window[i - 1]);
    }
    magnitude = acc / static_cast<double>(window.size() - 1);
  }
  if (current > before) return current + damping_ * magnitude;
  if (current < before) return current - damping_ * magnitude;
  return current;
}

std::unique_ptr<Predictor> Tendency::clone() const {
  return std::make_unique<Tendency>(*this);
}

void Tendency::save_state(persist::io::Writer& w) const {
  w.f64(avg_step_);
  w.f64(previous_);
  w.boolean(primed_);
}

void Tendency::load_state(persist::io::Reader& r) {
  avg_step_ = r.f64();
  previous_ = r.f64();
  primed_ = r.boolean();
}

}  // namespace larp::predictors
