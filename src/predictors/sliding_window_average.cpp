#include "predictors/sliding_window_average.hpp"

#include "util/stats.hpp"

namespace larp::predictors {

SlidingWindowAverage::SlidingWindowAverage(std::size_t window_size)
    : window_size_(window_size) {}

double SlidingWindowAverage::predict(std::span<const double> window) const {
  require_window(window, min_history());
  const std::size_t take =
      window_size_ == 0 ? window.size() : std::min(window_size_, window.size());
  return stats::mean(window.subspan(window.size() - take, take));
}

std::size_t SlidingWindowAverage::min_history() const {
  return window_size_ == 0 ? 1 : window_size_;
}

std::unique_ptr<Predictor> SlidingWindowAverage::clone() const {
  return std::make_unique<SlidingWindowAverage>(*this);
}

}  // namespace larp::predictors
