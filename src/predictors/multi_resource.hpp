// Multi-resource predictor after Liang, Nahrstedt & Zhou (CCGrid'04), the
// related-work model the paper discusses in §2: "uses both the
// autocorrelation of the CPU load and the cross correlation between the CPU
// load and free memory to achieve higher CPU load prediction accuracy".
//
// The model is a two-series vector-autoregression slice: the primary
// resource's next value is a linear function of the last p primary values
// AND the last p auxiliary-resource values,
//   Z^prim_t = sum_i a_i Z^prim_{t-i} + sum_j b_j Z^aux_{t-j} + c,
// fitted by least squares on aligned training series.  When the auxiliary
// resource genuinely co-varies with the primary (e.g. memory pressure
// preceding CPU stalls), the cross terms cut the innovation variance below
// what any univariate model of the primary can reach.
//
// The model is intentionally outside the univariate Predictor interface —
// it consumes two aligned series — and ships with its own evaluation helper
// (bench_multi_resource compares it against the univariate AR on coupled
// and uncoupled trace pairs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace larp::predictors {

class MultiResourcePredictor {
 public:
  /// Order p >= 1: how many lags of each series enter the regression.
  explicit MultiResourcePredictor(std::size_t order);

  /// Fits the cross-regression on two aligned series of equal length
  /// (> 3*order + 8 points).  Throws InvalidArgument on misuse.
  void fit(std::span<const double> primary, std::span<const double> auxiliary);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t order() const noexcept { return order_; }

  /// Coefficients on the primary lags (index i multiplies Z^prim_{t-1-i}).
  [[nodiscard]] const std::vector<double>& primary_coefficients() const noexcept {
    return a_;
  }
  /// Coefficients on the auxiliary lags.
  [[nodiscard]] const std::vector<double>& auxiliary_coefficients() const noexcept {
    return b_;
  }

  /// One-step forecast of the primary from the two most recent windows
  /// (each at least `order` long, most recent value last).
  [[nodiscard]] double predict(std::span<const double> primary_window,
                               std::span<const double> auxiliary_window) const;

  /// Convenience evaluation: walks the aligned test series and returns the
  /// one-step MSE of the fitted model.
  [[nodiscard]] double walk_mse(std::span<const double> primary,
                                std::span<const double> auxiliary) const;

 private:
  std::size_t order_;
  std::vector<double> a_;  // primary lags
  std::vector<double> b_;  // auxiliary lags
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace larp::predictors
