// Seasonal-naive predictor: forecast = the value observed one full period
// ago ("same time yesterday").  The natural expert for the diurnal web-load
// traces of the catalog (and of the paper's web-server VMs), complementing a
// battery that otherwise only sees the recent window.  Extension member.
#pragma once

#include <cstddef>
#include <vector>

#include "predictors/predictor.hpp"

namespace larp::predictors {

class SeasonalNaive final : public Predictor {
 public:
  /// `period` in samples (e.g. 288 five-minute samples = one day).
  explicit SeasonalNaive(std::size_t period);

  [[nodiscard]] std::string name() const override;
  void reset() override;
  /// Feeds the ring of the last `period` observations.
  void observe(double value) override;
  /// The value one period back; before a full period has been observed it
  /// degrades to LAST (the window's most recent value).
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

  [[nodiscard]] std::size_t period() const noexcept { return period_; }
  [[nodiscard]] bool primed() const noexcept { return count_ >= period_; }

  void save_state(persist::io::Writer& w) const override;
  void load_state(persist::io::Reader& r) override;

 private:
  std::size_t period_;
  std::vector<double> ring_;   // last `period` observations
  std::size_t head_ = 0;       // slot holding the oldest value once full
  std::size_t count_ = 0;
};

}  // namespace larp::predictors
