#include "predictors/ewma.hpp"

#include <sstream>

#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::predictors {

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw InvalidArgument("EWMA: alpha must be in (0, 1]");
  }
}

std::string Ewma::name() const {
  std::ostringstream os;
  os << "EWMA(" << alpha_ << ')';
  return os.str();
}

void Ewma::reset() {
  state_ = 0.0;
  primed_ = false;
}

void Ewma::observe(double value) {
  if (!primed_) {
    state_ = value;
    primed_ = true;
  } else {
    state_ = alpha_ * value + (1.0 - alpha_) * state_;
  }
}

double Ewma::window_ewma(std::span<const double> window) const {
  double s = window.front();
  for (std::size_t i = 1; i < window.size(); ++i) {
    s = alpha_ * window[i] + (1.0 - alpha_) * s;
  }
  return s;
}

double Ewma::predict(std::span<const double> window) const {
  require_window(window, 1);
  return primed_ ? state_ : window_ewma(window);
}

std::unique_ptr<Predictor> Ewma::clone() const {
  return std::make_unique<Ewma>(*this);
}

void Ewma::save_state(persist::io::Writer& w) const {
  w.f64(state_);
  w.boolean(primed_);
}

void Ewma::load_state(persist::io::Reader& r) {
  state_ = r.f64();
  primed_ = r.boolean();
}

}  // namespace larp::predictors
