// Tendency-based predictor after Yang, Schopf & Foster (SC'03), cited as
// [32] in the paper and named in its future-work list (extension pool).
//
// The series' next value is forecast by continuing its current tendency:
// if the series increased on the last step, add an increment to the current
// value; if it decreased, subtract one.  The increment is the (exponentially
// smoothed) average magnitude of recent steps, which is the "dynamic
// information" variant of the SC'03 family.
#pragma once

#include "predictors/predictor.hpp"

namespace larp::predictors {

class Tendency final : public Predictor {
 public:
  /// `smoothing` in (0,1] controls how fast the step-magnitude estimate
  /// adapts; `damping` in [0,1] scales the applied increment (1 = full step).
  explicit Tendency(double smoothing = 0.3, double damping = 1.0);

  [[nodiscard]] std::string name() const override { return "TENDENCY"; }
  void reset() override;
  void observe(double value) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::size_t min_history() const override { return 2; }
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

  void save_state(persist::io::Writer& w) const override;
  void load_state(persist::io::Reader& r) override;

 private:
  double smoothing_;
  double damping_;
  double avg_step_ = 0.0;
  double previous_ = 0.0;
  bool primed_ = false;
};

}  // namespace larp::predictors
