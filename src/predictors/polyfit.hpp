// Polynomial-fit predictor after Zhang, Sun & Inoguchi (CCGrid'06), cited
// as [35] in the paper (extension pool member).
//
// A least-squares polynomial of the given degree is fitted to the last
// `fit_points` window values (abscissa 0..fit_points-1) and evaluated one
// step past the window.  Degree 1 recovers a local linear trend; degree 2
// captures curvature several steps backward, which is the CCGrid'06
// refinement of the tendency model.
#pragma once

#include <cstddef>

#include "predictors/predictor.hpp"

namespace larp::predictors {

class PolynomialFit final : public Predictor {
 public:
  /// degree >= 1; fit_points 0 means "use the whole window", otherwise at
  /// least degree+1 points are required.
  explicit PolynomialFit(std::size_t degree = 2, std::size_t fit_points = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::size_t min_history() const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

 private:
  std::size_t degree_;
  std::size_t fit_points_;
};

}  // namespace larp::predictors
