// AR(p) model (paper §4, eq. 4) fitted with the Yule–Walker equations.
//
// The forecast is a linear combination of the p most recent values,
//   Z_t = psi_1 Z_{t-1} + ... + psi_p Z_{t-p},
// with coefficients estimated from the training series' autocorrelation via
// the Levinson–Durbin recursion (src/linalg/toeplitz).  Because the pipeline
// normalizes series to zero mean (§6), no intercept term is needed; for
// un-normalized input the fitted training mean is used as the intercept.
#pragma once

#include <cstddef>
#include <vector>

#include "predictors/predictor.hpp"

namespace larp::predictors {

class Autoregressive final : public Predictor {
 public:
  /// AR order p; the paper uses p equal to the prediction window m
  /// ("prediction order = 16" in Table 2).
  explicit Autoregressive(std::size_t order);

  [[nodiscard]] std::string name() const override { return "AR"; }

  /// Estimates psi_1..psi_p via Yule–Walker on the training series.
  /// Throws InvalidArgument when the series has fewer than order+1 points.
  void fit(std::span<const double> training_series) override;

  /// Applies the fitted coefficients to the last p window values.
  /// Throws StateError before fit().
  [[nodiscard]] double predict(std::span<const double> window) const override;

  [[nodiscard]] std::size_t min_history() const override { return order_; }
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

  [[nodiscard]] std::size_t order() const noexcept { return order_; }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  /// psi_1..psi_p after fit(); coefficient i multiplies Z_{t-1-i}.
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coefficients_;
  }
  /// Innovation variance reported by the Levinson–Durbin recursion.
  [[nodiscard]] double innovation_variance() const noexcept {
    return innovation_variance_;
  }

  void save_state(persist::io::Writer& w) const override;
  void load_state(persist::io::Reader& r) override;

 private:
  std::size_t order_;
  std::vector<double> coefficients_;
  // coefficients_ reversed so predict() is one contiguous dot product over
  // the window tail (coefficients_reversed_[j] multiplies window[end-p+j]).
  std::vector<double> coefficients_reversed_;
  double mean_ = 0.0;
  double innovation_variance_ = 0.0;
  bool fitted_ = false;
};

}  // namespace larp::predictors
