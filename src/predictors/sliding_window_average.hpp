// SW_AVG model (paper §4, eq. 3): the forecast is the mean of the last
// `window_size` observations.  Damps noise on bursty traces at the cost of
// lagging behind trends.
#pragma once

#include <cstddef>

#include "predictors/predictor.hpp"

namespace larp::predictors {

class SlidingWindowAverage final : public Predictor {
 public:
  /// Averages the last `window_size` values; 0 means "average the whole
  /// window handed to predict()" (the paper's configuration, where the
  /// averaging length equals the prediction order m).
  explicit SlidingWindowAverage(std::size_t window_size = 0);

  [[nodiscard]] std::string name() const override { return "SW_AVG"; }
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::size_t min_history() const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

  [[nodiscard]] std::size_t window_size() const noexcept { return window_size_; }

 private:
  std::size_t window_size_;
};

}  // namespace larp::predictors
