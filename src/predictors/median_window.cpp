#include "predictors/median_window.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::predictors {

MedianWindow::MedianWindow(std::size_t window_size) : window_size_(window_size) {}

double MedianWindow::predict(std::span<const double> window) const {
  require_window(window, min_history());
  const std::size_t take =
      window_size_ == 0 ? window.size() : std::min(window_size_, window.size());
  return stats::median(window.subspan(window.size() - take, take));
}

std::size_t MedianWindow::min_history() const {
  return window_size_ == 0 ? 1 : window_size_;
}

std::unique_ptr<Predictor> MedianWindow::clone() const {
  return std::make_unique<MedianWindow>(*this);
}

TrimmedMeanWindow::TrimmedMeanWindow(double trim_fraction, std::size_t window_size)
    : trim_fraction_(trim_fraction), window_size_(window_size) {
  if (trim_fraction < 0.0 || trim_fraction >= 0.5) {
    throw InvalidArgument("TrimmedMeanWindow: trim fraction outside [0, 0.5)");
  }
}

std::string TrimmedMeanWindow::name() const {
  std::ostringstream os;
  os << "TRIM_MEAN(" << trim_fraction_ << ')';
  return os.str();
}

double TrimmedMeanWindow::predict(std::span<const double> window) const {
  require_window(window, min_history());
  const std::size_t take =
      window_size_ == 0 ? window.size() : std::min(window_size_, window.size());
  return stats::trimmed_mean(window.subspan(window.size() - take, take),
                             trim_fraction_);
}

std::size_t TrimmedMeanWindow::min_history() const {
  return window_size_ == 0 ? 1 : window_size_;
}

std::unique_ptr<Predictor> TrimmedMeanWindow::clone() const {
  return std::make_unique<TrimmedMeanWindow>(*this);
}

}  // namespace larp::predictors
