// Adaptive-window forecasters from the NWS battery (extension pool).
//
// Each model maintains a ladder of candidate window lengths (1, 2, 4, ...)
// and a running MSE per candidate, fed through observe().  predict() uses
// the candidate that has accumulated the lowest error so far — a per-model
// miniature of the mix-of-experts idea, operating over window lengths
// instead of model families.
#pragma once

#include <cstddef>
#include <vector>

#include "predictors/predictor.hpp"
#include "util/stats.hpp"

namespace larp::predictors {

/// Shared machinery for the mean/median variants.
class AdaptiveWindowBase : public Predictor {
 public:
  /// Candidate window lengths are 1,2,4,... capped at `max_window` (>= 1).
  explicit AdaptiveWindowBase(std::size_t max_window);

  void reset() override;
  void observe(double value) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::size_t min_history() const override { return 1; }

  /// Currently best candidate length (exposed for tests/diagnostics).
  [[nodiscard]] std::size_t best_window() const noexcept;

  void save_state(persist::io::Writer& w) const override;
  void load_state(persist::io::Reader& r) override;

 protected:
  /// Statistic over the last `length` values of `window` (length is clamped
  /// to the window size by the caller).
  [[nodiscard]] virtual double window_statistic(std::span<const double> window,
                                                std::size_t length) const = 0;

 private:
  std::vector<std::size_t> candidates_;
  std::vector<stats::RunningMse> errors_;
  std::vector<double> history_;  // values seen through observe()
};

class AdaptiveMean final : public AdaptiveWindowBase {
 public:
  explicit AdaptiveMean(std::size_t max_window = 32)
      : AdaptiveWindowBase(max_window) {}
  [[nodiscard]] std::string name() const override { return "ADAPT_AVG"; }
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

 protected:
  [[nodiscard]] double window_statistic(std::span<const double> window,
                                        std::size_t length) const override;
};

class AdaptiveMedian final : public AdaptiveWindowBase {
 public:
  explicit AdaptiveMedian(std::size_t max_window = 32)
      : AdaptiveWindowBase(max_window) {}
  [[nodiscard]] std::string name() const override { return "ADAPT_MEDIAN"; }
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

 protected:
  [[nodiscard]] double window_statistic(std::span<const double> window,
                                        std::size_t length) const override;
};

}  // namespace larp::predictors
