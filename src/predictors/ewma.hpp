// EWMA: exponentially weighted moving average (NWS forecaster battery;
// extension pool member).  s_t = alpha*z_t + (1-alpha)*s_{t-1}; the forecast
// is the current smoothed state.  Small alpha behaves like a long average,
// large alpha approaches LAST.
#pragma once

#include "predictors/predictor.hpp"

namespace larp::predictors {

class Ewma final : public Predictor {
 public:
  /// alpha in (0, 1]; throws InvalidArgument otherwise.
  explicit Ewma(double alpha);

  [[nodiscard]] std::string name() const override;
  void reset() override;
  void observe(double value) override;
  /// Smoothed state; before the first observation, the EWMA of the window.
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::unique_ptr<Predictor> clone() const override;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  void save_state(persist::io::Writer& w) const override;
  void load_state(persist::io::Reader& r) override;

 private:
  [[nodiscard]] double window_ewma(std::span<const double> window) const;

  double alpha_;
  double state_ = 0.0;
  bool primed_ = false;
};

}  // namespace larp::predictors
