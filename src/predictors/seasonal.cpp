#include "predictors/seasonal.hpp"

#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::predictors {

SeasonalNaive::SeasonalNaive(std::size_t period) : period_(period) {
  if (period == 0) throw InvalidArgument("SeasonalNaive: period must be positive");
  ring_.reserve(period);
}

std::string SeasonalNaive::name() const {
  return "SEASONAL(" + std::to_string(period_) + ")";
}

void SeasonalNaive::reset() {
  ring_.clear();
  head_ = 0;
  count_ = 0;
}

void SeasonalNaive::observe(double value) {
  if (ring_.size() < period_) {
    ring_.push_back(value);
  } else {
    ring_[head_] = value;
    head_ = (head_ + 1) % period_;
  }
  ++count_;
}

double SeasonalNaive::predict(std::span<const double> window) const {
  require_window(window, 1);
  if (!primed()) return window.back();
  // The oldest retained observation is exactly one period before the value
  // being forecast (the ring holds the last `period` observations and the
  // target is the next step).
  return ring_[head_];
}

std::unique_ptr<Predictor> SeasonalNaive::clone() const {
  return std::make_unique<SeasonalNaive>(*this);
}

void SeasonalNaive::save_state(persist::io::Writer& w) const {
  w.f64_span(ring_);
  w.u64(head_);
  w.u64(count_);
}

void SeasonalNaive::load_state(persist::io::Reader& r) {
  ring_ = r.f64_vector();
  head_ = static_cast<std::size_t>(r.u64());
  count_ = static_cast<std::size_t>(r.u64());
  if (ring_.size() > period_ || head_ >= period_) {
    throw persist::CorruptData("SeasonalNaive: serialized ring out of range");
  }
  ring_.reserve(period_);
}

}  // namespace larp::predictors
