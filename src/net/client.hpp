// net::Client — a blocking client for the serving protocol: one request on
// the wire at a time, replies matched by the echoed request id.  This is
// what larp_cli's load generator and the loopback tests drive; it also
// exposes raw-byte hooks so protocol tests can send deliberately broken
// frames and observe the server's error replies.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace larp::net {

/// A well-formed kError reply from the server, surfaced with its typed code
/// so callers can react per class — in particular kStale from a lagging
/// replication follower means "fail over to the leader", not "give up".
class ServerError : public NetError {
 public:
  ServerError(ErrorCode code, const std::string& message)
      : NetError(message), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

struct ClientConfig {
  /// Abort a connect that has not completed within this window (0 = wait
  /// however long the kernel takes).
  std::chrono::milliseconds connect_timeout{0};
  /// Abort a reply wait when the socket stays silent this long (0 = block
  /// forever).  Applies per read(2), i.e. to reply *silence*, not to the
  /// total transfer time of a large reply that keeps arriving.
  std::chrono::milliseconds read_timeout{0};
};

class Client {
 public:
  /// Connects immediately (blocking); throws NetError on failure.
  Client(const std::string& host, std::uint16_t port);
  /// Connect with timeouts (see ClientConfig); throws NetError on failure,
  /// with "timed out" in the message when a deadline expired.
  Client(const std::string& host, std::uint16_t port,
         const ClientConfig& config);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void ping();
  /// Returns the number of observations the server accepted.
  std::uint64_t observe(std::span<const serve::Observation> batch);
  /// One prediction per key, in request order, into the caller's buffer
  /// (reuse it across calls to keep the loop allocation-free).
  void predict(std::span<const tsdb::SeriesKey> keys,
               std::vector<serve::Prediction>& out);
  [[nodiscard]] WireStats stats();

  // -- pipelined API --------------------------------------------------------
  // start_*() puts the request on the wire and returns its id immediately;
  // finish_*() blocks for that request's reply.  The server answers a
  // connection's requests strictly in request order, so finishes must be
  // issued in start order.  A load generator keeps several connections in
  // flight from one thread by starting on all of them before finishing any.
  std::uint64_t start_observe(std::span<const serve::Observation> batch);
  std::uint64_t start_predict(std::span<const tsdb::SeriesKey> keys);
  /// Returns the number of observations the server accepted.
  std::uint64_t finish_observe(std::uint64_t id);
  void finish_predict(std::uint64_t id, std::size_t expect_count,
                      std::vector<serve::Prediction>& out);

  // -- test hooks -----------------------------------------------------------
  /// Writes raw bytes to the socket, bypassing framing entirely.
  void send_raw(std::span<const std::byte> bytes);
  /// Blocks for the next well-formed reply frame; returns its header and
  /// copies its body into `body`.  Throws NetError on EOF or a corrupt
  /// reply stream.
  FrameHeader read_reply(std::vector<std::byte>& body);
  /// True when the server has closed the connection (after draining any
  /// buffered replies).
  [[nodiscard]] bool eof();

 private:
  void send_frame();
  /// Waits for the reply to request `id`; throws NetError if the server
  /// answered with an error frame or the wrong type/id.
  void expect_reply(MsgType type, std::uint64_t id,
                    std::vector<std::byte>& body);

  Fd fd_;
  FrameDecoder decoder_;
  persist::io::Writer body_;
  std::vector<std::byte> out_;
  std::vector<std::byte> reply_body_;
  std::uint64_t next_id_ = 1;
};

}  // namespace larp::net
