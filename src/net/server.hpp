// net::Server — the epoll front-end that puts a PredictionEngine on a TCP
// port.
//
// Threading model: N event-loop threads, each with its own epoll instance.
// Loop 0 additionally owns the (non-blocking) listener; accepted sockets
// are handed to loops round-robin through a per-loop inbox + eventfd wake,
// so a connection lives on exactly one loop for its whole life and needs no
// per-connection locking.
//
// Batching: frames are processed strictly in arrival order, but consecutive
// frames of the same type drained from one socket read are coalesced into a
// single engine call — a client pipelining M observe frames costs one
// engine.observe() spanning all of them, which is exactly the batch shape
// the shard fan-out in PredictionEngine is built for.  Replies are emitted
// per frame, in request order.
//
// Errors: a payload that fails validation gets a kBadRequest error reply; a
// framing/CRC failure gets kBadFrame.  Either way the server stops reading
// from that connection and closes it once the error reply has drained — a
// peer whose stream is corrupt cannot be re-synchronized.
//
// Backpressure: when a connection's pending output exceeds
// write_backpressure_bytes the server stops reading from it until the
// kernel accepts the backlog, bounding memory per slow consumer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/prediction_engine.hpp"

namespace larp::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back with port().
  std::uint16_t port = 0;
  /// Event-loop threads.  0 means one.
  std::size_t event_threads = 1;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Pending-output cap per connection before reads pause.
  std::size_t write_backpressure_bytes = 1u << 20;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t protocol_errors = 0;
  /// Engine calls issued (after coalescing) — frames_in / batches is the
  /// realized batching factor.
  std::uint64_t observe_batches = 0;
  std::uint64_t predict_batches = 0;
};

class Server {
 public:
  /// The engine must outlive the server.
  Server(serve::PredictionEngine& engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the event-loop threads, returns once accepting.
  void start();
  /// Stops accepting, closes every connection, joins the threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] ServerStats stats() const;

 private:
  struct Conn;
  struct Loop;

  void run_loop(Loop& loop, bool is_acceptor);
  void accept_ready();
  void adopt_inbox(Loop& loop);
  void add_conn(Loop& loop, Fd fd);
  void close_conn(Loop& loop, Conn& conn);
  void handle_readable(Loop& loop, Conn& conn);
  void handle_writable(Loop& loop, Conn& conn);
  void process_frames(Conn& conn);
  void flush_runs(Conn& conn);
  void protocol_error(Conn& conn, std::uint64_t id, ErrorCode code,
                      std::string_view message);
  void try_flush(Conn& conn);
  void update_interest(Loop& loop, Conn& conn);

  serve::PredictionEngine& engine_;
  ServerConfig config_;
  Fd listener_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> next_loop_{0};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> observe_batches_{0};
  std::atomic<std::uint64_t> predict_batches_{0};
};

}  // namespace larp::net
