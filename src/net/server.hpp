// net::Server — the epoll front-end that puts a PredictionEngine on a TCP
// port.
//
// Threading model: N event-loop threads, each with its own epoll instance.
// With AcceptMode::kReusePort (the default where the kernel supports it)
// every loop owns its OWN listening socket bound with SO_REUSEPORT, accepts
// directly, and keeps the connection for its whole life — no cross-thread
// handoff, no wake round-trip, and the kernel load-balances new connections
// across the loops.  AcceptMode::kHandoff keeps the older design as the
// fallback: loop 0 owns the single listener and hands accepted sockets to
// loops round-robin through a per-loop inbox + eventfd wake.  Either way a
// connection lives on exactly one loop, so all its state is single-threaded
// by construction.
//
// Edge-triggered epoll: connections are registered once with
// EPOLLIN|EPOLLOUT|EPOLLRDHUP|EPOLLET and never re-armed via epoll_ctl.
// Readiness is tracked in per-connection flags (`can_read`/`can_write`)
// that an edge sets and a drain-until-EAGAIN loop clears — a hot connection
// costs one epoll_wait wakeup per burst instead of one per frame.  The
// invariant that makes ET safe: whenever a flag is left set without the
// corresponding drain having hit EAGAIN (read paused by backpressure), the
// server itself resumes that drain as soon as the blocking condition
// clears, because no further edge is coming.
//
// Batching: frames are processed strictly in arrival order, but consecutive
// frames of the same type drained from one socket read are coalesced into a
// single engine call — a client pipelining M observe frames costs one
// engine.observe() spanning all of them.  Replies are emitted per frame, in
// request order, each encoded into its own queued buffer; the flush
// gathers the queued frames into iovecs and hands them to the kernel with
// one writev-style sendmsg per syscall, resuming mid-frame after a partial
// transfer.
//
// Errors: a payload that fails validation gets a kBadRequest error reply; a
// framing/CRC failure gets kBadFrame.  Either way the server stops reading
// from that connection and closes it once the error reply has drained — a
// peer whose stream is corrupt cannot be re-synchronized.
//
// Backpressure: when a connection's pending output exceeds
// write_backpressure_bytes the server stops reading from it until the
// kernel accepts the backlog, bounding memory per slow consumer.  A peer
// that half-closes (EPOLLRDHUP) stops being read immediately; its already
// earned replies still drain before the connection is torn down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/prediction_engine.hpp"

namespace larp::net {

/// How accepted connections reach their event loop.
enum class AcceptMode : std::uint8_t {
  /// Try per-loop SO_REUSEPORT listeners; fall back to kHandoff if the
  /// kernel refuses the option.
  kAuto,
  /// Per-loop listeners, required: start() throws where unsupported.
  kReusePort,
  /// Single acceptor on loop 0 + eventfd inbox handoff (the pre-reuseport
  /// design, kept for kernels without SO_REUSEPORT).
  kHandoff,
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back with port().
  std::uint16_t port = 0;
  /// Event-loop threads.  0 means one.
  std::size_t event_threads = 1;
  AcceptMode accept_mode = AcceptMode::kAuto;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Pending-output cap per connection before reads pause.
  std::size_t write_backpressure_bytes = 1u << 20;
  /// epoll_wait batch size per loop (events drained per syscall).  Size it
  /// near the expected connections per loop; too small costs extra
  /// epoll_wait calls under fan-in.  0 means the 256 default.
  std::size_t epoll_events = 256;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t protocol_errors = 0;
  /// Engine calls issued (after coalescing) — frames_in / batches is the
  /// realized batching factor.
  std::uint64_t observe_batches = 0;
  std::uint64_t predict_batches = 0;
  /// True when the running server accepts on per-loop SO_REUSEPORT
  /// listeners (false = single-acceptor handoff fallback).
  bool reuseport = false;
};

/// Per-event-loop counters (stats() aggregates them; loop_stats() exposes
/// the per-loop split so a scaling bench can see accept/load imbalance).
struct LoopStats {
  std::uint64_t connections = 0;  // connections this loop ever owned
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t wakeups = 0;      // epoll_wait returns with >= 1 event
  double busy_seconds = 0.0;      // wall time spent servicing events
};

class Server {
 public:
  /// The engine must outlive the server.
  Server(serve::PredictionEngine& engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the event-loop threads, returns once accepting.
  void start();
  /// Stops accepting, closes every connection, joins the threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] ServerStats stats() const;
  /// One entry per event loop, index-aligned with the spawn order.
  [[nodiscard]] std::vector<LoopStats> loop_stats() const;

 private:
  struct Conn;
  struct Loop;

  void run_loop(Loop& loop);
  void accept_ready(Loop& loop);
  void adopt_inbox(Loop& loop);
  void add_conn(Loop& loop, Fd fd);
  void close_conn(Loop& loop, Conn& conn);
  /// Drives a connection until neither direction can make progress:
  /// flush while writable, read while readable and under the backpressure
  /// cap, repeat — the ET re-arm loop described in the header comment.
  void service_conn(Loop& loop, Conn& conn);
  void read_drain(Loop& loop, Conn& conn);
  void process_frames(Loop& loop, Conn& conn);
  void flush_runs(Loop& loop, Conn& conn);
  void protocol_error(Loop& loop, Conn& conn, std::uint64_t id, ErrorCode code,
                      std::string_view message);
  void try_flush(Conn& conn);
  void enqueue_reply(Loop& loop, Conn& conn);

  serve::PredictionEngine& engine_;
  ServerConfig config_;
  bool reuseport_ = false;  // realized accept mode (valid after start())
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> next_loop_{0};
  // Folded at stop() so counters stay readable after the loops are gone.
  ServerStats final_stats_;
  std::vector<LoopStats> final_loop_stats_;
};

}  // namespace larp::net
