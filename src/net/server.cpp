#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "persist/io.hpp"

namespace larp::net {
namespace {

using Clock = std::chrono::steady_clock;

// What kind of engine call the connection's pending frame run coalesces to.
enum class Run : std::uint8_t { kNone, kObserve, kPredict };

struct RunEntry {
  std::uint64_t id = 0;     // request id to ack
  std::size_t count = 0;    // items this frame contributed to the run
};

// Queued reply frames awaiting the wire.  Each frame keeps its own buffer
// (a ring of grown-only vectors, so steady state allocates nothing) and the
// flush path scatters up to kFlushIov of them into one sendmsg.  consume()
// implements the partial-writev resume: the head frame carries an offset of
// bytes already transferred, and a partial transfer may end mid-frame.
class OutQueue {
 public:
  /// Cleared buffer to encode the next frame into; follow with push().
  std::vector<std::byte>& next_slot() {
    if (count_ == ring_.size()) grow();
    auto& buf = ring_[(head_ + count_) % ring_.size()];
    buf.clear();
    return buf;
  }
  /// Queues the buffer next_slot() returned (now holding one whole frame).
  void push() {
    bytes_ += ring_[(head_ + count_) % ring_.size()].size();
    ++count_;
  }

  [[nodiscard]] std::size_t pending() const noexcept { return bytes_; }

  /// At most `max` iovecs over the unsent bytes, head frame from its resume
  /// offset.  Returns the iovec count.
  int fill_iov(iovec* iov, int max) const {
    int n = 0;
    for (std::size_t i = 0; i < count_ && n < max; ++i) {
      const auto& buf = ring_[(head_ + i) % ring_.size()];
      const std::size_t off = i == 0 ? head_off_ : 0;
      iov[n].iov_base = const_cast<std::byte*>(buf.data()) + off;
      iov[n].iov_len = buf.size() - off;
      ++n;
    }
    return n;
  }

  /// Advances past `n` transferred bytes, retiring fully-sent frames (their
  /// buffers stay in the ring, capacity intact) and recording the resume
  /// offset when the transfer ended mid-frame.
  void consume(std::size_t n) {
    bytes_ -= n;
    while (n > 0) {
      const std::size_t left = ring_[head_].size() - head_off_;
      if (n < left) {
        head_off_ += n;
        return;
      }
      n -= left;
      head_off_ = 0;
      head_ = (head_ + 1) % ring_.size();
      --count_;
    }
  }

 private:
  void grow() {
    std::vector<std::vector<std::byte>> bigger;
    bigger.reserve(ring_.empty() ? 8 : ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
    }
    bigger.resize(bigger.capacity());
    ring_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<std::vector<std::byte>> ring_;
  std::size_t head_ = 0;      // ring index of the first unsent frame
  std::size_t count_ = 0;     // queued frames
  std::size_t head_off_ = 0;  // bytes of ring_[head_] already on the wire
  std::size_t bytes_ = 0;     // total unsent bytes
};

constexpr int kFlushIov = 64;

}  // namespace

struct Server::Conn {
  Fd fd;
  FrameDecoder decoder;
  // Edge-triggered readiness: an epoll edge sets these, the drain loops
  // clear them on EAGAIN.  A set flag means "the kernel may have more for
  // us and no further event is coming" — whoever stops a drain early
  // (backpressure) must re-run it once unblocked.
  bool can_read = false;
  bool can_write = false;      // first EPOLLOUT edge arrives right after ADD
  bool closing = false;        // stop reading; close once output drains
  bool dead = false;           // hard I/O error or fully-drained EOF

  OutQueue out;

  // Grown-only batching scratch: element strings keep their capacity across
  // requests, so steady-state decode/encode allocates nothing.
  Run run = Run::kNone;
  std::vector<RunEntry> entries;
  std::vector<serve::Observation> obs;
  std::size_t obs_used = 0;
  std::vector<tsdb::SeriesKey> keys;
  std::size_t keys_used = 0;
  std::vector<serve::Prediction> preds;
  persist::io::Writer reply;

  explicit Conn(Fd socket, std::size_t max_frame_bytes)
      : fd(std::move(socket)), decoder(max_frame_bytes) {}

  [[nodiscard]] std::size_t pending() const noexcept { return out.pending(); }
};

struct Server::Loop {
  Fd epoll;
  Fd wake;
  Fd listener;  // per-loop SO_REUSEPORT listener; invalid in handoff mode
                // (except loop 0, which owns the single listener)
  std::thread thread;
  std::mutex inbox_mutex;
  std::vector<int> inbox;  // raw fds handed over by the acceptor loop
  std::unordered_map<int, std::unique_ptr<Conn>> conns;

  // Loop-local traffic counters.  Only this loop's thread writes them
  // (relaxed), so the hot path never bounces a shared cache line between
  // loops; stats()/loop_stats() fold them from other threads.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> observe_batches{0};
  std::atomic<std::uint64_t> predict_batches{0};
  std::atomic<std::uint64_t> wakeups{0};
  std::atomic<std::uint64_t> busy_nanos{0};
};

namespace {

void epoll_ctl_or_throw(int epfd, int op, int fd, std::uint32_t events,
                        void* tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = tag;
  if (::epoll_ctl(epfd, op, fd, &ev) != 0) {
    throw NetError(std::string("net: epoll_ctl: ") + std::strerror(errno));
  }
}

void wake_loop(const Fd& wake) {
  const std::uint64_t one = 1;
  ssize_t rc;
  do {
    rc = ::write(wake.get(), &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
  // EAGAIN means the counter is already non-zero — the loop will wake.
}

std::uint64_t nanos_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

Server::Server(serve::PredictionEngine& engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.event_threads == 0) config_.event_threads = 1;
  if (config_.epoll_events == 0) config_.epoll_events = 256;
  if (config_.max_frame_bytes < kMinBodyBytes) {
    throw InvalidArgument("net: max_frame_bytes smaller than a header");
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (!loops_.empty()) throw StateError("net: server already started");

  // Accept-mode resolution.  kAuto probes SO_REUSEPORT by binding the first
  // listener with it; a kernel that refuses the option falls back to the
  // single-acceptor handoff design.
  reuseport_ = config_.accept_mode != AcceptMode::kHandoff;
  Fd first;
  if (reuseport_) {
    try {
      first = listen_tcp(config_.host, config_.port, 128, /*reuse_port=*/true);
    } catch (const NetError&) {
      if (config_.accept_mode == AcceptMode::kReusePort) throw;
      reuseport_ = false;
    }
  }
  if (!first.valid()) {
    first = listen_tcp(config_.host, config_.port);
  }
  // Ephemeral-port case: the remaining listeners must bind the port the
  // kernel actually picked for the first one.
  const std::uint16_t bound = local_port(first);

  loops_.reserve(config_.event_threads);
  for (std::size_t i = 0; i < config_.event_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!loop->epoll.valid()) {
      throw NetError(std::string("net: epoll_create1: ") +
                     std::strerror(errno));
    }
    loop->wake = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!loop->wake.valid()) {
      throw NetError(std::string("net: eventfd: ") + std::strerror(errno));
    }
    // The wake fd stays level-triggered on purpose: a wake posted between
    // epoll_wait and the drain must not be lost.
    epoll_ctl_or_throw(loop->epoll.get(), EPOLL_CTL_ADD, loop->wake.get(),
                       EPOLLIN, &loop->wake);
    if (i == 0) {
      loop->listener = std::move(first);
    } else if (reuseport_) {
      loop->listener = listen_tcp(config_.host, bound, 128,
                                  /*reuse_port=*/true);
    }
    if (loop->listener.valid()) {
      // Edge-triggered: accept_ready() drains until EAGAIN, so one wakeup
      // covers a whole burst of connections.
      epoll_ctl_or_throw(loop->epoll.get(), EPOLL_CTL_ADD,
                         loop->listener.get(), EPOLLIN | EPOLLET,
                         &loop->listener);
    }
    loops_.push_back(std::move(loop));
  }
  running_.store(true, std::memory_order_release);
  for (auto& loop_ptr : loops_) {
    Loop& loop = *loop_ptr;
    loop.thread = std::thread([this, &loop] { run_loop(loop); });
  }
}

void Server::stop() {
  if (loops_.empty()) return;
  running_.store(false, std::memory_order_release);
  for (auto& loop : loops_) wake_loop(loop->wake);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) {
    loop->closed.fetch_add(loop->conns.size(), std::memory_order_relaxed);
    loop->conns.clear();
    // Orphans handed off but never adopted still own raw fds.
    for (int fd : loop->inbox) ::close(fd);
    loop->inbox.clear();
  }
  final_stats_ = stats();
  final_loop_stats_ = loop_stats();
  loops_.clear();
}

std::uint16_t Server::port() const {
  if (loops_.empty() || !loops_[0]->listener.valid()) {
    throw StateError("net: server not started");
  }
  return local_port(loops_[0]->listener);
}

ServerStats Server::stats() const {
  if (loops_.empty()) return final_stats_;
  ServerStats s;
  for (const auto& loop : loops_) {
    s.connections_accepted += loop->accepted.load(std::memory_order_relaxed);
    s.connections_closed += loop->closed.load(std::memory_order_relaxed);
    s.frames_in += loop->frames_in.load(std::memory_order_relaxed);
    s.frames_out += loop->frames_out.load(std::memory_order_relaxed);
    s.protocol_errors +=
        loop->protocol_errors.load(std::memory_order_relaxed);
    s.observe_batches += loop->observe_batches.load(std::memory_order_relaxed);
    s.predict_batches += loop->predict_batches.load(std::memory_order_relaxed);
  }
  s.reuseport = reuseport_;
  return s;
}

std::vector<LoopStats> Server::loop_stats() const {
  if (loops_.empty()) return final_loop_stats_;
  std::vector<LoopStats> out;
  out.reserve(loops_.size());
  for (const auto& loop : loops_) {
    LoopStats s;
    s.connections = loop->accepted.load(std::memory_order_relaxed);
    s.frames_in = loop->frames_in.load(std::memory_order_relaxed);
    s.frames_out = loop->frames_out.load(std::memory_order_relaxed);
    s.wakeups = loop->wakeups.load(std::memory_order_relaxed);
    s.busy_seconds =
        static_cast<double>(loop->busy_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    out.push_back(s);
  }
  return out;
}

void Server::run_loop(Loop& loop) {
  std::vector<epoll_event> events(config_.epoll_events);
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll.get(), events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // an unusable epoll fd cannot be recovered; exit the loop
    }
    const auto woke_at = Clock::now();
    loop.wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == &loop.wake) {
        std::uint64_t drain = 0;
        while (::read(loop.wake.get(), &drain, sizeof(drain)) > 0) {
        }
        adopt_inbox(loop);
        continue;
      }
      if (tag == &loop.listener) {
        try {
          accept_ready(loop);
        } catch (const NetError&) {
          // A transient accept failure (EMFILE, ENFILE) drops this wave of
          // connections; the listener stays registered.
        }
        continue;
      }
      auto* conn = static_cast<Conn*>(tag);
      const std::uint32_t ev = events[i].events;
      // EPOLLRDHUP rides with the read edge: the half-close is only
      // observable as read() == 0, which the drain reaches promptly in
      // this same wakeup instead of on some later one.
      if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) conn->can_read = true;
      if ((ev & EPOLLOUT) != 0) conn->can_write = true;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) conn->dead = true;
      try {
        service_conn(loop, *conn);
      } catch (const std::exception&) {
        conn->dead = true;  // never let an exception kill the event thread
      }
      if (conn->dead || (conn->closing && conn->pending() == 0)) {
        close_conn(loop, *conn);
      }
    }
    loop.busy_nanos.fetch_add(nanos_since(woke_at), std::memory_order_relaxed);
    if (!running_.load(std::memory_order_acquire)) break;
  }
}

void Server::accept_ready(Loop& loop) {
  for (;;) {
    Fd socket = accept_conn(loop.listener);
    if (!socket.valid()) return;
    try {
      set_nodelay(socket.get());
    } catch (const NetError&) {
      continue;  // peer vanished between accept and setsockopt
    }
    if (reuseport_ || loops_.size() == 1) {
      loop.accepted.fetch_add(1, std::memory_order_relaxed);
      add_conn(loop, std::move(socket));
      continue;
    }
    // Handoff fallback: this loop (0) owns the only listener; spread the
    // connection round-robin and wake the target's eventfd.
    const std::size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    Loop& owner = *loops_[target];
    owner.accepted.fetch_add(1, std::memory_order_relaxed);
    if (target == 0) {
      add_conn(owner, std::move(socket));
    } else {
      {
        const std::lock_guard<std::mutex> lock(owner.inbox_mutex);
        owner.inbox.push_back(socket.release());
      }
      wake_loop(owner.wake);
    }
  }
}

void Server::adopt_inbox(Loop& loop) {
  std::vector<int> fds;
  {
    const std::lock_guard<std::mutex> lock(loop.inbox_mutex);
    fds.swap(loop.inbox);
  }
  for (int fd : fds) add_conn(loop, Fd(fd));
}

void Server::add_conn(Loop& loop, Fd fd) {
  const int raw = fd.get();
  auto conn = std::make_unique<Conn>(std::move(fd), config_.max_frame_bytes);
  // One registration for the connection's whole life: both directions,
  // edge-triggered.  EPOLL_CTL_ADD reports the current readiness as the
  // first edge, so a socket that arrived with data (or, always, with write
  // space) gets its flags set by the first wakeup — no initial-state race.
  try {
    epoll_ctl_or_throw(loop.epoll.get(), EPOLL_CTL_ADD, raw,
                       EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET, conn.get());
  } catch (const NetError&) {
    loop.closed.fetch_add(1, std::memory_order_relaxed);
    return;  // conn's Fd destructor closes the socket
  }
  loop.conns.emplace(raw, std::move(conn));
}

void Server::close_conn(Loop& loop, Conn& conn) {
  ::epoll_ctl(loop.epoll.get(), EPOLL_CTL_DEL, conn.fd.get(), nullptr);
  loop.closed.fetch_add(1, std::memory_order_relaxed);
  loop.conns.erase(conn.fd.get());  // destroys conn; do not touch it after
}

void Server::service_conn(Loop& loop, Conn& conn) {
  // Alternate flush and read until neither can progress.  Every iteration
  // either hits EAGAIN on a direction (clearing its flag) or empties /
  // fills a buffer, so the loop terminates; kernel socket buffers bound
  // how long one connection can monopolize the loop thread.
  for (;;) {
    if (conn.dead) return;
    if (conn.can_write && conn.pending() > 0) try_flush(conn);
    if (conn.dead || conn.closing) return;
    const bool read_open = conn.can_read &&
                           conn.pending() < config_.write_backpressure_bytes;
    if (read_open) read_drain(loop, conn);
    // Progress still possible?  (a) produced replies and the socket is
    // writable; (b) flushing dropped us back under the backpressure cap
    // while a read edge is still pending.
    const bool want_flush = conn.can_write && conn.pending() > 0;
    const bool want_read = conn.can_read && !conn.closing && !conn.dead &&
                           conn.pending() < config_.write_backpressure_bytes;
    if (!want_flush && !want_read) return;
  }
}

void Server::read_drain(Loop& loop, Conn& conn) {
  std::byte buf[64 * 1024];
  while (conn.can_read && !conn.closing && !conn.dead) {
    // Backpressure: a slow consumer stops being read until the kernel
    // accepts its reply backlog.  can_read stays set — under ET no new
    // edge will come for data already buffered, so service_conn resumes
    // this drain itself once the flush frees space.
    if (conn.pending() >= config_.write_backpressure_bytes) return;
    const ssize_t r = ::read(conn.fd.get(), buf, sizeof(buf));
    if (r > 0) {
      conn.decoder.feed(
          std::span<const std::byte>(buf, static_cast<std::size_t>(r)));
      process_frames(loop, conn);
      continue;  // ET contract: drain until EAGAIN, not until a short read
    }
    if (r == 0) {
      // EOF / peer half-close (EPOLLRDHUP lands here): no more requests,
      // but replies already earned still drain before teardown.
      conn.can_read = false;
      conn.closing = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      conn.can_read = false;
      return;
    }
    conn.dead = true;
    return;
  }
}

void Server::enqueue_reply(Loop& loop, Conn& conn) {
  append_frame(conn.out.next_slot(), conn.reply.bytes());
  conn.out.push();
  loop.frames_out.fetch_add(1, std::memory_order_relaxed);
}

void Server::process_frames(Loop& loop, Conn& conn) {
  while (!conn.closing) {
    std::span<const std::byte> body;
    const FrameDecoder::Status status = conn.decoder.next(body);
    if (status == FrameDecoder::Status::kNeedMore) break;
    if (status == FrameDecoder::Status::kCorrupt) {
      flush_runs(loop, conn);  // frames before the corruption were valid
      protocol_error(loop, conn, 0, ErrorCode::kBadFrame,
                     "unrecoverable frame: bad length or checksum");
      break;
    }
    loop.frames_in.fetch_add(1, std::memory_order_relaxed);
    persist::io::Reader r(body);
    const FrameHeader h = decode_header(r);
    try {
      switch (h.type) {
        case MsgType::kObserve: {
          if (conn.run != Run::kObserve) flush_runs(loop, conn);
          const std::size_t before = conn.obs_used;
          conn.obs_used = decode_observe_items(r, conn.obs, conn.obs_used);
          conn.run = Run::kObserve;
          conn.entries.push_back({h.id, conn.obs_used - before});
          break;
        }
        case MsgType::kPredict: {
          if (conn.run != Run::kPredict) flush_runs(loop, conn);
          const std::size_t before = conn.keys_used;
          conn.keys_used = decode_predict_keys(r, conn.keys, conn.keys_used);
          conn.run = Run::kPredict;
          conn.entries.push_back({h.id, conn.keys_used - before});
          break;
        }
        case MsgType::kPing:
          flush_runs(loop, conn);
          encode_pong(conn.reply, h.id);
          enqueue_reply(loop, conn);
          break;
        case MsgType::kStats:
          flush_runs(loop, conn);
          encode_stats_reply(conn.reply, h.id, engine_.stats());
          enqueue_reply(loop, conn);
          break;
        default:
          flush_runs(loop, conn);
          protocol_error(loop, conn, h.id, ErrorCode::kBadRequest,
                         "unknown message type");
          break;
      }
    } catch (const persist::CorruptData& e) {
      // A partially-decoded item may sit beyond the used watermark in the
      // scratch vectors; it is simply overwritten by the next request.
      flush_runs(loop, conn);
      protocol_error(loop, conn, h.id, ErrorCode::kBadRequest, e.what());
    }
  }
  if (!conn.closing) flush_runs(loop, conn);
}

void Server::flush_runs(Loop& loop, Conn& conn) {
  if (conn.entries.empty()) {
    conn.run = Run::kNone;
    conn.obs_used = 0;
    conn.keys_used = 0;
    return;
  }
  if (conn.run == Run::kObserve) {
    try {
      engine_.observe(std::span<const serve::Observation>(conn.obs.data(),
                                                          conn.obs_used));
      loop.observe_batches.fetch_add(1, std::memory_order_relaxed);
      for (const RunEntry& entry : conn.entries) {
        encode_observe_ack(conn.reply, entry.id, entry.count);
        enqueue_reply(loop, conn);
      }
    } catch (const Error& e) {
      for (const RunEntry& entry : conn.entries) {
        encode_error(conn.reply, entry.id, ErrorCode::kInternal, e.what());
        enqueue_reply(loop, conn);
      }
    }
  } else if (conn.run == Run::kPredict) {
    try {
      engine_.predict_into(
          std::span<const tsdb::SeriesKey>(conn.keys.data(), conn.keys_used),
          conn.preds);
      loop.predict_batches.fetch_add(1, std::memory_order_relaxed);
      std::size_t offset = 0;
      for (const RunEntry& entry : conn.entries) {
        encode_predict_reply(
            conn.reply, entry.id,
            std::span<const serve::Prediction>(conn.preds.data() + offset,
                                               entry.count));
        offset += entry.count;
        enqueue_reply(loop, conn);
      }
    } catch (const serve::StaleRead& e) {
      // A lagging follower refuses the read but keeps the connection: the
      // client fails this request over to the leader and may retry here
      // once the follower catches up.
      for (const RunEntry& entry : conn.entries) {
        encode_error(conn.reply, entry.id, ErrorCode::kStale, e.what());
        enqueue_reply(loop, conn);
      }
    } catch (const Error& e) {
      for (const RunEntry& entry : conn.entries) {
        encode_error(conn.reply, entry.id, ErrorCode::kInternal, e.what());
        enqueue_reply(loop, conn);
      }
    }
  }
  conn.entries.clear();
  conn.run = Run::kNone;
  conn.obs_used = 0;
  conn.keys_used = 0;
}

void Server::protocol_error(Loop& loop, Conn& conn, std::uint64_t id,
                            ErrorCode code, std::string_view message) {
  loop.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  encode_error(conn.reply, id, code, message);
  enqueue_reply(loop, conn);
  conn.closing = true;  // stop reading; close once the error reply drains
}

void Server::try_flush(Conn& conn) {
  while (conn.can_write && conn.out.pending() > 0) {
    iovec iov[kFlushIov];
    const int n = conn.out.fill_iov(iov, kFlushIov);
    const ssize_t w = send_iov(conn.fd.get(), iov, n);
    if (w > 0) {
      conn.out.consume(static_cast<std::size_t>(w));
      continue;
    }
    if (w == 0) {  // EAGAIN: wait for the next EPOLLOUT edge
      conn.can_write = false;
      return;
    }
    conn.dead = true;
    return;
  }
}

}  // namespace larp::net
