#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "persist/io.hpp"

namespace larp::net {
namespace {

// What kind of engine call the connection's pending frame run coalesces to.
enum class Run : std::uint8_t { kNone, kObserve, kPredict };

struct RunEntry {
  std::uint64_t id = 0;     // request id to ack
  std::size_t count = 0;    // items this frame contributed to the run
};

}  // namespace

struct Server::Conn {
  Fd fd;
  FrameDecoder decoder;
  std::uint32_t interest = 0;  // epoll event mask currently registered
  bool closing = false;        // stop reading; close once output drains
  bool dead = false;           // EOF or hard I/O error: close now

  std::vector<std::byte> out;
  std::size_t out_pos = 0;

  // Grown-only batching scratch: element strings keep their capacity across
  // requests, so steady-state decode/encode allocates nothing.
  Run run = Run::kNone;
  std::vector<RunEntry> entries;
  std::vector<serve::Observation> obs;
  std::size_t obs_used = 0;
  std::vector<tsdb::SeriesKey> keys;
  std::size_t keys_used = 0;
  std::vector<serve::Prediction> preds;
  persist::io::Writer reply;

  explicit Conn(Fd socket, std::size_t max_frame_bytes)
      : fd(std::move(socket)), decoder(max_frame_bytes) {}

  [[nodiscard]] std::size_t pending() const noexcept {
    return out.size() - out_pos;
  }
};

struct Server::Loop {
  Fd epoll;
  Fd wake;
  std::thread thread;
  std::mutex inbox_mutex;
  std::vector<int> inbox;  // raw fds handed over by the acceptor loop
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
};

namespace {

void epoll_ctl_or_throw(int epfd, int op, int fd, std::uint32_t events,
                        void* tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = tag;
  if (::epoll_ctl(epfd, op, fd, &ev) != 0) {
    throw NetError(std::string("net: epoll_ctl: ") + std::strerror(errno));
  }
}

void wake_loop(const Fd& wake) {
  const std::uint64_t one = 1;
  ssize_t rc;
  do {
    rc = ::write(wake.get(), &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
  // EAGAIN means the counter is already non-zero — the loop will wake.
}

}  // namespace

Server::Server(serve::PredictionEngine& engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.event_threads == 0) config_.event_threads = 1;
  if (config_.max_frame_bytes < kMinBodyBytes) {
    throw InvalidArgument("net: max_frame_bytes smaller than a header");
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (!loops_.empty()) throw StateError("net: server already started");
  listener_ = listen_tcp(config_.host, config_.port);
  running_.store(true, std::memory_order_release);
  loops_.reserve(config_.event_threads);
  for (std::size_t i = 0; i < config_.event_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!loop->epoll.valid()) {
      throw NetError(std::string("net: epoll_create1: ") +
                     std::strerror(errno));
    }
    loop->wake = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!loop->wake.valid()) {
      throw NetError(std::string("net: eventfd: ") + std::strerror(errno));
    }
    epoll_ctl_or_throw(loop->epoll.get(), EPOLL_CTL_ADD, loop->wake.get(),
                       EPOLLIN, loop.get());
    if (i == 0) {
      epoll_ctl_or_throw(loop->epoll.get(), EPOLL_CTL_ADD, listener_.get(),
                         EPOLLIN, this);
    }
    loops_.push_back(std::move(loop));
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    Loop& loop = *loops_[i];
    loop.thread = std::thread([this, &loop, i] { run_loop(loop, i == 0); });
  }
}

void Server::stop() {
  if (loops_.empty()) {
    listener_.reset();
    return;
  }
  running_.store(false, std::memory_order_release);
  for (auto& loop : loops_) wake_loop(loop->wake);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) {
    closed_.fetch_add(loop->conns.size(), std::memory_order_relaxed);
    loop->conns.clear();
    // Orphans handed off but never adopted still own raw fds.
    for (int fd : loop->inbox) ::close(fd);
    loop->inbox.clear();
  }
  loops_.clear();
  listener_.reset();
}

std::uint16_t Server::port() const {
  if (!listener_.valid()) throw StateError("net: server not started");
  return local_port(listener_);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_closed = closed_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.observe_batches = observe_batches_.load(std::memory_order_relaxed);
  s.predict_batches = predict_batches_.load(std::memory_order_relaxed);
  return s;
}

void Server::run_loop(Loop& loop, bool is_acceptor) {
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll.get(), events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // an unusable epoll fd cannot be recovered; exit the loop
    }
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == &loop) {
        std::uint64_t drain = 0;
        while (::read(loop.wake.get(), &drain, sizeof(drain)) > 0) {
        }
        adopt_inbox(loop);
        continue;
      }
      if (is_acceptor && tag == this) {
        try {
          accept_ready();
        } catch (const NetError&) {
          // A transient accept failure (EMFILE, ENFILE) drops this wave of
          // connections; the listener stays registered.
        }
        continue;
      }
      auto* conn = static_cast<Conn*>(tag);
      try {
        if ((events[i].events & EPOLLIN) != 0) handle_readable(loop, *conn);
        if (!conn->dead && (events[i].events & EPOLLOUT) != 0) {
          handle_writable(loop, *conn);
        }
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          conn->dead = true;
        }
      } catch (const std::exception&) {
        conn->dead = true;  // never let an exception kill the event thread
      }
      if (conn->dead || (conn->closing && conn->pending() == 0)) {
        close_conn(loop, *conn);
      } else {
        update_interest(loop, *conn);
      }
    }
    if (!running_.load(std::memory_order_acquire)) break;
  }
}

void Server::accept_ready() {
  for (;;) {
    Fd socket = accept_conn(listener_);
    if (!socket.valid()) return;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    try {
      set_nodelay(socket.get());
    } catch (const NetError&) {
      closed_.fetch_add(1, std::memory_order_relaxed);
      continue;  // peer vanished between accept and setsockopt
    }
    const std::size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    Loop& loop = *loops_[target];
    if (target == 0) {
      add_conn(loop, std::move(socket));
    } else {
      {
        const std::lock_guard<std::mutex> lock(loop.inbox_mutex);
        loop.inbox.push_back(socket.release());
      }
      wake_loop(loop.wake);
    }
  }
}

void Server::adopt_inbox(Loop& loop) {
  std::vector<int> fds;
  {
    const std::lock_guard<std::mutex> lock(loop.inbox_mutex);
    fds.swap(loop.inbox);
  }
  for (int fd : fds) add_conn(loop, Fd(fd));
}

void Server::add_conn(Loop& loop, Fd fd) {
  const int raw = fd.get();
  auto conn = std::make_unique<Conn>(std::move(fd), config_.max_frame_bytes);
  conn->interest = EPOLLIN;
  try {
    epoll_ctl_or_throw(loop.epoll.get(), EPOLL_CTL_ADD, raw, EPOLLIN,
                       conn.get());
  } catch (const NetError&) {
    closed_.fetch_add(1, std::memory_order_relaxed);
    return;  // conn's Fd destructor closes the socket
  }
  loop.conns.emplace(raw, std::move(conn));
}

void Server::close_conn(Loop& loop, Conn& conn) {
  ::epoll_ctl(loop.epoll.get(), EPOLL_CTL_DEL, conn.fd.get(), nullptr);
  closed_.fetch_add(1, std::memory_order_relaxed);
  loop.conns.erase(conn.fd.get());  // destroys conn; do not touch it after
}

void Server::handle_readable(Loop& loop, Conn& conn) {
  (void)loop;
  std::byte buf[64 * 1024];
  while (!conn.closing) {
    const ssize_t r = ::read(conn.fd.get(), buf, sizeof(buf));
    if (r > 0) {
      conn.decoder.feed(
          std::span<const std::byte>(buf, static_cast<std::size_t>(r)));
      process_frames(conn);
      // Backpressure: a slow consumer stops being read until the kernel
      // accepts its reply backlog.
      if (conn.pending() >= config_.write_backpressure_bytes) break;
      if (static_cast<std::size_t>(r) < sizeof(buf)) break;
      continue;
    }
    if (r == 0) {
      conn.dead = true;  // peer closed; any unflushed replies are moot
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;
    break;
  }
  if (!conn.dead) try_flush(conn);
}

void Server::handle_writable(Loop& loop, Conn& conn) {
  (void)loop;
  try_flush(conn);
}

void Server::process_frames(Conn& conn) {
  while (!conn.closing) {
    std::span<const std::byte> body;
    const FrameDecoder::Status status = conn.decoder.next(body);
    if (status == FrameDecoder::Status::kNeedMore) break;
    if (status == FrameDecoder::Status::kCorrupt) {
      flush_runs(conn);  // frames before the corruption were valid
      protocol_error(conn, 0, ErrorCode::kBadFrame,
                     "unrecoverable frame: bad length or checksum");
      break;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    persist::io::Reader r(body);
    const FrameHeader h = decode_header(r);
    try {
      switch (h.type) {
        case MsgType::kObserve: {
          if (conn.run != Run::kObserve) flush_runs(conn);
          const std::size_t before = conn.obs_used;
          conn.obs_used = decode_observe_items(r, conn.obs, conn.obs_used);
          conn.run = Run::kObserve;
          conn.entries.push_back({h.id, conn.obs_used - before});
          break;
        }
        case MsgType::kPredict: {
          if (conn.run != Run::kPredict) flush_runs(conn);
          const std::size_t before = conn.keys_used;
          conn.keys_used = decode_predict_keys(r, conn.keys, conn.keys_used);
          conn.run = Run::kPredict;
          conn.entries.push_back({h.id, conn.keys_used - before});
          break;
        }
        case MsgType::kPing:
          flush_runs(conn);
          encode_pong(conn.reply, h.id);
          append_frame(conn.out, conn.reply.bytes());
          frames_out_.fetch_add(1, std::memory_order_relaxed);
          break;
        case MsgType::kStats:
          flush_runs(conn);
          encode_stats_reply(conn.reply, h.id, engine_.stats());
          append_frame(conn.out, conn.reply.bytes());
          frames_out_.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          flush_runs(conn);
          protocol_error(conn, h.id, ErrorCode::kBadRequest,
                         "unknown message type");
          break;
      }
    } catch (const persist::CorruptData& e) {
      // A partially-decoded item may sit beyond the used watermark in the
      // scratch vectors; it is simply overwritten by the next request.
      flush_runs(conn);
      protocol_error(conn, h.id, ErrorCode::kBadRequest, e.what());
    }
  }
  if (!conn.closing) flush_runs(conn);
}

void Server::flush_runs(Conn& conn) {
  if (conn.entries.empty()) {
    conn.run = Run::kNone;
    conn.obs_used = 0;
    conn.keys_used = 0;
    return;
  }
  if (conn.run == Run::kObserve) {
    try {
      engine_.observe(std::span<const serve::Observation>(conn.obs.data(),
                                                          conn.obs_used));
      observe_batches_.fetch_add(1, std::memory_order_relaxed);
      for (const RunEntry& entry : conn.entries) {
        encode_observe_ack(conn.reply, entry.id, entry.count);
        append_frame(conn.out, conn.reply.bytes());
        frames_out_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const Error& e) {
      for (const RunEntry& entry : conn.entries) {
        encode_error(conn.reply, entry.id, ErrorCode::kInternal, e.what());
        append_frame(conn.out, conn.reply.bytes());
        frames_out_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else if (conn.run == Run::kPredict) {
    try {
      engine_.predict_into(
          std::span<const tsdb::SeriesKey>(conn.keys.data(), conn.keys_used),
          conn.preds);
      predict_batches_.fetch_add(1, std::memory_order_relaxed);
      std::size_t offset = 0;
      for (const RunEntry& entry : conn.entries) {
        encode_predict_reply(
            conn.reply, entry.id,
            std::span<const serve::Prediction>(conn.preds.data() + offset,
                                               entry.count));
        offset += entry.count;
        append_frame(conn.out, conn.reply.bytes());
        frames_out_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const Error& e) {
      for (const RunEntry& entry : conn.entries) {
        encode_error(conn.reply, entry.id, ErrorCode::kInternal, e.what());
        append_frame(conn.out, conn.reply.bytes());
        frames_out_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  conn.entries.clear();
  conn.run = Run::kNone;
  conn.obs_used = 0;
  conn.keys_used = 0;
}

void Server::protocol_error(Conn& conn, std::uint64_t id, ErrorCode code,
                            std::string_view message) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  encode_error(conn.reply, id, code, message);
  append_frame(conn.out, conn.reply.bytes());
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  conn.closing = true;  // stop reading; close once the error reply drains
}

void Server::try_flush(Conn& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t w =
        ::send(conn.fd.get(), conn.out.data() + conn.out_pos,
               conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (w > 0) {
      conn.out_pos += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;
    return;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();  // keeps capacity: the reply path stays allocation-free
    conn.out_pos = 0;
  }
}

void Server::update_interest(Loop& loop, Conn& conn) {
  std::uint32_t want = 0;
  const bool read_paused =
      conn.pending() >= config_.write_backpressure_bytes;
  if (!conn.closing && !read_paused) want |= EPOLLIN;
  if (conn.pending() > 0) want |= EPOLLOUT;
  if (want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = &conn;
  if (::epoll_ctl(loop.epoll.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev) == 0) {
    conn.interest = want;
  } else {
    conn.dead = true;
    close_conn(loop, conn);
  }
}

}  // namespace larp::net
