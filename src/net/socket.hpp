// net::socket — thin RAII + error-checked wrappers over the POSIX socket
// calls the server and client share.  Everything here retries EINTR (the
// same discipline the persist I/O path follows) and reports failures as
// typed NetError exceptions carrying the errno text.
//
// IPv4 only, by design: the front-end binds loopback or an explicit
// dotted-quad address; name resolution stays out of the serving path.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

struct iovec;  // <sys/uio.h>

#include "util/error.hpp"

namespace larp::net {

/// Thrown for socket-layer failures (bind, connect, resolve, I/O).
class NetError : public Error {
 public:
  using Error::Error;
};

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Creates a non-blocking listening socket bound to host:port (port 0 asks
/// the kernel for an ephemeral port — read it back with local_port).  With
/// `reuse_port` the socket additionally sets SO_REUSEPORT, so several
/// listeners may bind the same address and the kernel load-balances
/// incoming connections across them (one listener per event loop); throws
/// NetError where the kernel lacks the option.
[[nodiscard]] Fd listen_tcp(const std::string& host, std::uint16_t port,
                            int backlog = 128, bool reuse_port = false);

/// The port a bound socket actually listens on.
[[nodiscard]] std::uint16_t local_port(const Fd& socket);

/// Blocking connect; the returned socket stays blocking (client use).
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port);

/// connect_tcp with a deadline: the connect itself is attempted in
/// non-blocking mode and polled for up to `timeout_ms`; on expiry a NetError
/// mentioning "timed out" is thrown.  timeout_ms == 0 degrades to the plain
/// blocking connect.  The returned socket is blocking either way.
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port,
                             std::uint32_t timeout_ms);

/// Accepts one pending connection as a non-blocking socket; returns an
/// invalid Fd when the listener has none pending (EAGAIN).
[[nodiscard]] Fd accept_conn(const Fd& listener);

/// Disables Nagle — the protocol writes whole frames, batching is explicit.
void set_nodelay(int fd);

/// Gathering send over `iov[0..iovcnt)` (sendmsg + MSG_NOSIGNAL), retrying
/// EINTR.  Returns the byte count the kernel accepted (possibly a partial
/// transfer ending mid-iovec), 0 on EAGAIN/EWOULDBLOCK, and -1 on a hard
/// error (errno preserved).  The server's reply flush is built on this;
/// testing::set_max_transfer_bytes can clamp each call to force the
/// partial-writev resume paths.
[[nodiscard]] ssize_t send_iov(int fd, const iovec* iov, int iovcnt);

namespace testing {
/// Clamps every send_iov transfer to at most `bytes` per call (0 restores
/// unlimited).  Process-global; tests use it to inject partial writes
/// across frame boundaries.
void set_max_transfer_bytes(std::size_t bytes);
}  // namespace testing

}  // namespace larp::net
