// net::protocol — the length-prefixed binary wire format the serving
// front-end speaks, built from the same primitives as the durability layer:
// persist::io::Writer/Reader for the body encoding and masked CRC32C for
// integrity (a frame on the wire validates exactly like a frame in the WAL).
//
// Frame layout (little-endian):
//
//   [length u32][masked crc32c u32][body...]
//
// `length` counts body bytes only; the CRC covers the body.  Every body
// starts with a fixed header:
//
//   [type u8][request id u64][payload...]
//
// Replies echo the request id so a client may pipeline requests and match
// responses in order.  Reply types are the request type with the high bit
// set; kError is the one reply any request can receive.
//
// Decode helpers are written for the server's zero-allocation discipline:
// request items land in caller-owned, grown-only scratch vectors whose
// inner std::strings are assigned (not re-constructed), so a steady-state
// decode reuses every allocation from previous requests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "persist/io.hpp"
#include "serve/prediction_engine.hpp"
#include "tsdb/series.hpp"

namespace larp::net {

/// Bytes of the on-wire frame header ([length u32][masked crc u32]).
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Smallest legal body: type u8 + request id u64.
inline constexpr std::size_t kMinBodyBytes = 9;
/// Largest body a peer may send; anything bigger is a protocol error, not
/// an allocation request.
inline constexpr std::size_t kMaxFrameBytes = 4u << 20;

enum class MsgType : std::uint8_t {
  kPing = 0x00,
  kObserve = 0x01,
  kPredict = 0x02,
  kStats = 0x03,
  // Replication (follower → leader).
  kReplHello = 0x10,
  kReplAck = 0x11,
  kPong = 0x80,
  kObserveAck = 0x81,
  kPredictReply = 0x82,
  kStatsReply = 0x83,
  // Replication (leader → follower).
  kReplSnapshotChunk = 0x90,
  kReplFrames = 0x91,
  kReplHeartbeat = 0x92,
  kError = 0xFF,
};

enum class ErrorCode : std::uint8_t {
  kBadFrame = 1,    // framing/CRC failure — the stream itself is unusable
  kBadRequest = 2,  // well-framed body that fails payload validation
  kInternal = 3,    // the engine rejected an otherwise valid request
  kStale = 4,       // follower read refused: lag exceeds max_staleness
};

struct FrameHeader {
  MsgType type = MsgType::kPing;
  std::uint64_t id = 0;
};

/// Subset of EngineStats that travels in a kStatsReply.
struct WireStats {
  std::uint64_t series = 0;
  std::uint64_t trained_series = 0;
  std::uint64_t observations = 0;
  std::uint64_t predictions = 0;
  double mean_absolute_error = 0.0;
  double mean_squared_error = 0.0;
};

struct WireError {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// -- replication payloads ---------------------------------------------------
// A follower opens the stream with kReplHello carrying its per-shard WAL
// positions (next_seq it expects per shard).  An empty position table means
// "I have nothing — bootstrap me": the leader answers with a snapshot shipped
// in kReplSnapshotChunk frames, after which the follower restores locally and
// re-sends Hello with its post-restore positions.  Live traffic then flows as
// kReplFrames (verbatim WAL frames, per shard, in seq order) interleaved with
// kReplHeartbeat (leader clock + published positions); the follower reports
// applied positions back with kReplAck so the leader can hold WAL pruning.

inline constexpr std::uint32_t kReplProtocolVersion = 1;

struct ReplHello {
  std::uint32_t proto_version = kReplProtocolVersion;
  /// Per-shard next expected WAL seq.  Empty = fresh follower, bootstrap me.
  std::vector<std::uint64_t> positions;
};

struct ReplSnapshotChunk {
  std::uint64_t epoch = 0;        // snapshot epoch (its filename stamp)
  std::uint64_t total_bytes = 0;  // full container size, repeated per chunk
  std::uint64_t offset = 0;       // this chunk's byte offset
  bool last = false;
  /// Borrows the decoded frame body; valid until the decoder's next feed().
  std::span<const std::byte> data;
};

/// One WAL frame in a kReplFrames batch.  The payload bytes are exactly the
/// engine's WAL frame payload (post-seq), shipped verbatim so the follower
/// appends/applies bit-identical records.
struct ReplFrame {
  std::uint64_t seq = 0;
  std::span<const std::byte> payload;  // borrows the decoded frame body
};

struct ReplHeartbeat {
  std::uint64_t leader_unix_ms = 0;
  /// Leader's published per-shard positions (next_seq per shard).
  std::vector<std::uint64_t> positions;
};

// -- framing ----------------------------------------------------------------

/// Appends [length][masked crc][body] to `out`.  Throws InvalidArgument if
/// the body violates the size bounds (a server bug, not a peer's).
void append_frame(std::vector<std::byte>& out, std::span<const std::byte> body);

/// Incremental frame splitter over a byte stream.  feed() bytes as they
/// arrive, then drain complete frames with next().  A returned body view
/// borrows the internal buffer: it is valid until the next feed() call.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  // no complete frame buffered
    kFrame,     // `body` points at one validated frame body
    kCorrupt,   // unrecoverable framing error; the stream must be dropped
  };

  explicit FrameDecoder(std::size_t max_body_bytes = kMaxFrameBytes)
      : max_body_bytes_(max_body_bytes) {}

  void feed(std::span<const std::byte> data);
  [[nodiscard]] Status next(std::span<const std::byte>& body);
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::size_t max_body_bytes_;
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

// -- body encoding ----------------------------------------------------------
// Every encode_* clears the writer first, so one reused Writer per
// connection serves all replies allocation-free in steady state.

void encode_ping(persist::io::Writer& body, std::uint64_t id);
void encode_pong(persist::io::Writer& body, std::uint64_t id);
void encode_observe_request(persist::io::Writer& body, std::uint64_t id,
                            std::span<const serve::Observation> batch);
void encode_observe_ack(persist::io::Writer& body, std::uint64_t id,
                        std::uint64_t accepted);
void encode_predict_request(persist::io::Writer& body, std::uint64_t id,
                            std::span<const tsdb::SeriesKey> keys);
void encode_predict_reply(persist::io::Writer& body, std::uint64_t id,
                          std::span<const serve::Prediction> predictions);
void encode_stats_request(persist::io::Writer& body, std::uint64_t id);
void encode_stats_reply(persist::io::Writer& body, std::uint64_t id,
                        const serve::EngineStats& stats);
void encode_error(persist::io::Writer& body, std::uint64_t id, ErrorCode code,
                  std::string_view message);
void encode_repl_hello(persist::io::Writer& body, std::uint64_t id,
                       std::uint32_t proto_version,
                       std::span<const std::uint64_t> positions);
void encode_repl_ack(persist::io::Writer& body, std::uint64_t id,
                     std::span<const std::uint64_t> positions);
void encode_repl_snapshot_chunk(persist::io::Writer& body, std::uint64_t id,
                                std::uint64_t epoch, std::uint64_t total_bytes,
                                std::uint64_t offset,
                                std::span<const std::byte> data, bool last);
void encode_repl_frames(persist::io::Writer& body, std::uint64_t id,
                        std::uint32_t shard,
                        std::span<const ReplFrame> frames);
void encode_repl_heartbeat(persist::io::Writer& body, std::uint64_t id,
                           std::uint64_t leader_unix_ms,
                           std::span<const std::uint64_t> positions);

// -- body decoding ----------------------------------------------------------
// All of these throw persist::CorruptData on payload validation failure;
// the server answers that with a kBadRequest error reply.

/// Reads the fixed [type][id] header.  The frame decoder guarantees at
/// least kMinBodyBytes, so this never throws on a validated frame.
[[nodiscard]] FrameHeader decode_header(persist::io::Reader& r);

/// Appends the request's observations to `scratch` starting at index
/// `used`, growing the vector only when needed; returns the new used count.
/// Existing elements keep their string capacity (assign, not construct).
[[nodiscard]] std::size_t decode_observe_items(
    persist::io::Reader& r, std::vector<serve::Observation>& scratch,
    std::size_t used);

/// Same contract as decode_observe_items, for predict request keys.
[[nodiscard]] std::size_t decode_predict_keys(
    persist::io::Reader& r, std::vector<tsdb::SeriesKey>& scratch,
    std::size_t used);

[[nodiscard]] std::uint64_t decode_observe_ack(persist::io::Reader& r);
void decode_predict_reply(persist::io::Reader& r,
                          std::vector<serve::Prediction>& out);
[[nodiscard]] WireStats decode_stats_reply(persist::io::Reader& r);
[[nodiscard]] WireError decode_error(persist::io::Reader& r);

[[nodiscard]] ReplHello decode_repl_hello(persist::io::Reader& r);
/// kReplAck payload is a bare position table, same layout as Hello's.
[[nodiscard]] std::vector<std::uint64_t> decode_repl_ack(persist::io::Reader& r);
/// The returned chunk's `data` borrows the reader's buffer.
[[nodiscard]] ReplSnapshotChunk decode_repl_snapshot_chunk(
    persist::io::Reader& r);
/// Appends the batch's frames to `out` (payload views borrow the reader's
/// buffer); returns the batch's shard.
[[nodiscard]] std::uint32_t decode_repl_frames(persist::io::Reader& r,
                                               std::vector<ReplFrame>& out);
[[nodiscard]] ReplHeartbeat decode_repl_heartbeat(persist::io::Reader& r);

}  // namespace larp::net
