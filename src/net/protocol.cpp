#include "net/protocol.hpp"

#include <cstring>

#include "persist/crc32c.hpp"
#include "util/error.hpp"

namespace larp::net {
namespace {

using persist::io::Reader;
using persist::io::Writer;

// Smallest possible encodings, used to reject absurd count prefixes before
// any per-item work: three empty length-prefixed strings + f64 value.
constexpr std::size_t kMinObservationBytes = 3 * 8 + 8;
// Three empty length-prefixed strings.
constexpr std::size_t kMinKeyBytes = 3 * 8;

void put_u32_le(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32_le(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

void header(Writer& body, MsgType type, std::uint64_t id) {
  body.clear();
  body.u8(static_cast<std::uint8_t>(type));
  body.u64(id);
}

void key_fields(Writer& body, const tsdb::SeriesKey& key) {
  body.str(key.vm_id);
  body.str(key.device_id);
  body.str(key.metric);
}

void key_fields(Reader& r, tsdb::SeriesKey& key) {
  // assign() keeps each string's existing capacity — the whole point of
  // decoding into grown-only scratch.
  key.vm_id.assign(r.str_view());
  key.device_id.assign(r.str_view());
  key.metric.assign(r.str_view());
}

}  // namespace

void append_frame(std::vector<std::byte>& out,
                  std::span<const std::byte> body) {
  if (body.size() < kMinBodyBytes || body.size() > kMaxFrameBytes) {
    throw InvalidArgument("net: frame body size out of bounds");
  }
  put_u32_le(out, static_cast<std::uint32_t>(body.size()));
  put_u32_le(out, persist::crc32c_mask(persist::crc32c(body)));
  out.insert(out.end(), body.begin(), body.end());
}

void FrameDecoder::feed(std::span<const std::byte> data) {
  // Compact before appending: any body view handed out by next() is
  // documented to die here, so the memmove is safe and keeps the buffer
  // bounded by one partial frame plus whatever just arrived.
  if (pos_ == buf_.size()) {
    buf_.clear();
  } else if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
  }
  pos_ = 0;
  buf_.insert(buf_.end(), data.begin(), data.end());
}

FrameDecoder::Status FrameDecoder::next(std::span<const std::byte>& body) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Status::kNeedMore;
  const std::uint32_t len = get_u32_le(buf_.data() + pos_);
  const std::uint32_t stored_crc = get_u32_le(buf_.data() + pos_ + 4);
  if (len < kMinBodyBytes || len > max_body_bytes_) return Status::kCorrupt;
  if (avail < kFrameHeaderBytes + len) return Status::kNeedMore;
  const std::span<const std::byte> candidate(
      buf_.data() + pos_ + kFrameHeaderBytes, len);
  if (persist::crc32c_mask(persist::crc32c(candidate)) != stored_crc) {
    return Status::kCorrupt;
  }
  pos_ += kFrameHeaderBytes + len;
  body = candidate;
  return Status::kFrame;
}

void encode_ping(Writer& body, std::uint64_t id) {
  header(body, MsgType::kPing, id);
}

void encode_pong(Writer& body, std::uint64_t id) {
  header(body, MsgType::kPong, id);
}

void encode_observe_request(Writer& body, std::uint64_t id,
                            std::span<const serve::Observation> batch) {
  header(body, MsgType::kObserve, id);
  body.u64(batch.size());
  for (const auto& obs : batch) {
    key_fields(body, obs.key);
    body.f64(obs.value);
  }
}

void encode_observe_ack(Writer& body, std::uint64_t id,
                        std::uint64_t accepted) {
  header(body, MsgType::kObserveAck, id);
  body.u64(accepted);
}

void encode_predict_request(Writer& body, std::uint64_t id,
                            std::span<const tsdb::SeriesKey> keys) {
  header(body, MsgType::kPredict, id);
  body.u64(keys.size());
  for (const auto& key : keys) key_fields(body, key);
}

void encode_predict_reply(Writer& body, std::uint64_t id,
                          std::span<const serve::Prediction> predictions) {
  header(body, MsgType::kPredictReply, id);
  body.u64(predictions.size());
  for (const auto& p : predictions) {
    body.boolean(p.ready);
    body.f64(p.value);
    body.u64(p.label);
    body.f64(p.uncertainty);
  }
}

void encode_stats_request(Writer& body, std::uint64_t id) {
  header(body, MsgType::kStats, id);
}

void encode_stats_reply(Writer& body, std::uint64_t id,
                        const serve::EngineStats& stats) {
  header(body, MsgType::kStatsReply, id);
  body.u64(stats.series);
  body.u64(stats.trained_series);
  body.u64(stats.observations);
  body.u64(stats.predictions);
  body.f64(stats.mean_absolute_error);
  body.f64(stats.mean_squared_error);
}

void encode_error(Writer& body, std::uint64_t id, ErrorCode code,
                  std::string_view message) {
  header(body, MsgType::kError, id);
  body.u8(static_cast<std::uint8_t>(code));
  body.u64(message.size());
  for (char c : message) body.u8(static_cast<std::uint8_t>(c));
}

namespace {

void position_table(Writer& body, std::span<const std::uint64_t> positions) {
  body.u64(positions.size());
  for (std::uint64_t p : positions) body.u64(p);
}

std::vector<std::uint64_t> position_table(Reader& r) {
  const std::uint64_t n = r.length(r.u64(), sizeof(std::uint64_t));
  std::vector<std::uint64_t> positions(static_cast<std::size_t>(n));
  for (auto& p : positions) p = r.u64();
  return positions;
}

}  // namespace

void encode_repl_hello(Writer& body, std::uint64_t id,
                       std::uint32_t proto_version,
                       std::span<const std::uint64_t> positions) {
  header(body, MsgType::kReplHello, id);
  body.u32(proto_version);
  position_table(body, positions);
}

void encode_repl_ack(Writer& body, std::uint64_t id,
                     std::span<const std::uint64_t> positions) {
  header(body, MsgType::kReplAck, id);
  position_table(body, positions);
}

void encode_repl_snapshot_chunk(Writer& body, std::uint64_t id,
                                std::uint64_t epoch, std::uint64_t total_bytes,
                                std::uint64_t offset,
                                std::span<const std::byte> data, bool last) {
  header(body, MsgType::kReplSnapshotChunk, id);
  body.u64(epoch);
  body.u64(total_bytes);
  body.u64(offset);
  body.u64(data.size());
  body.bytes(data);
  body.boolean(last);
}

void encode_repl_frames(Writer& body, std::uint64_t id, std::uint32_t shard,
                        std::span<const ReplFrame> frames) {
  header(body, MsgType::kReplFrames, id);
  body.u32(shard);
  body.u64(frames.size());
  for (const auto& f : frames) {
    body.u64(f.seq);
    body.u64(f.payload.size());
    body.bytes(f.payload);
  }
}

void encode_repl_heartbeat(Writer& body, std::uint64_t id,
                           std::uint64_t leader_unix_ms,
                           std::span<const std::uint64_t> positions) {
  header(body, MsgType::kReplHeartbeat, id);
  body.u64(leader_unix_ms);
  position_table(body, positions);
}

FrameHeader decode_header(Reader& r) {
  FrameHeader h;
  h.type = static_cast<MsgType>(r.u8());
  h.id = r.u64();
  return h;
}

std::size_t decode_observe_items(Reader& r,
                                 std::vector<serve::Observation>& scratch,
                                 std::size_t used) {
  const std::uint64_t n = r.length(r.u64(), kMinObservationBytes);
  const std::size_t total = used + static_cast<std::size_t>(n);
  if (scratch.size() < total) scratch.resize(total);
  for (std::size_t i = used; i < total; ++i) {
    key_fields(r, scratch[i].key);
    scratch[i].value = r.f64();
  }
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after observe payload");
  }
  return total;
}

std::size_t decode_predict_keys(Reader& r,
                                std::vector<tsdb::SeriesKey>& scratch,
                                std::size_t used) {
  const std::uint64_t n = r.length(r.u64(), kMinKeyBytes);
  const std::size_t total = used + static_cast<std::size_t>(n);
  if (scratch.size() < total) scratch.resize(total);
  for (std::size_t i = used; i < total; ++i) key_fields(r, scratch[i]);
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after predict payload");
  }
  return total;
}

std::uint64_t decode_observe_ack(Reader& r) {
  const std::uint64_t accepted = r.u64();
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after observe ack");
  }
  return accepted;
}

void decode_predict_reply(Reader& r, std::vector<serve::Prediction>& out) {
  constexpr std::size_t kPredictionBytes = 1 + 8 + 8 + 8;
  const std::uint64_t n = r.length(r.u64(), kPredictionBytes);
  out.resize(static_cast<std::size_t>(n));
  for (auto& p : out) {
    p.ready = r.boolean();
    p.value = r.f64();
    p.label = static_cast<std::size_t>(r.u64());
    p.uncertainty = r.f64();
  }
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after predict reply");
  }
}

WireStats decode_stats_reply(Reader& r) {
  WireStats s;
  s.series = r.u64();
  s.trained_series = r.u64();
  s.observations = r.u64();
  s.predictions = r.u64();
  s.mean_absolute_error = r.f64();
  s.mean_squared_error = r.f64();
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after stats reply");
  }
  return s;
}

WireError decode_error(Reader& r) {
  WireError e;
  e.code = static_cast<ErrorCode>(r.u8());
  e.message.assign(r.str_view());
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after error reply");
  }
  return e;
}

ReplHello decode_repl_hello(Reader& r) {
  ReplHello h;
  h.proto_version = r.u32();
  h.positions = position_table(r);
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after repl hello");
  }
  return h;
}

std::vector<std::uint64_t> decode_repl_ack(Reader& r) {
  auto positions = position_table(r);
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after repl ack");
  }
  return positions;
}

ReplSnapshotChunk decode_repl_snapshot_chunk(Reader& r) {
  ReplSnapshotChunk c;
  c.epoch = r.u64();
  c.total_bytes = r.u64();
  c.offset = r.u64();
  const std::uint64_t n = r.length(r.u64());
  c.data = r.bytes(static_cast<std::size_t>(n));
  c.last = r.boolean();
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after snapshot chunk");
  }
  if (c.offset > c.total_bytes || c.data.size() > c.total_bytes - c.offset) {
    throw persist::CorruptData("net: snapshot chunk overruns container size");
  }
  return c;
}

std::uint32_t decode_repl_frames(Reader& r, std::vector<ReplFrame>& out) {
  const std::uint32_t shard = r.u32();
  // A WAL frame payload is at least one byte (its record type tag), so the
  // cheapest legal frame encoding is seq + length prefix + that byte.
  const std::uint64_t n = r.length(r.u64(), 8 + 8 + 1);
  out.reserve(out.size() + static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ReplFrame f;
    f.seq = r.u64();
    const std::uint64_t len = r.length(r.u64());
    f.payload = r.bytes(static_cast<std::size_t>(len));
    out.push_back(f);
  }
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after repl frames");
  }
  return shard;
}

ReplHeartbeat decode_repl_heartbeat(Reader& r) {
  ReplHeartbeat hb;
  hb.leader_unix_ms = r.u64();
  hb.positions = position_table(r);
  if (!r.exhausted()) {
    throw persist::CorruptData("net: trailing bytes after repl heartbeat");
  }
  return hb;
}

}  // namespace larp::net
