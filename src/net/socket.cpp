#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>

#include <cerrno>
#include <cstring>

namespace larp::net {
namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw NetError("net: " + what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("net: not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    // EINTR after close() leaves the fd state unspecified on Linux; the
    // descriptor is gone either way, so never retry the close.
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog,
              bool reuse_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) raise_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    raise_errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
    raise_errno("setsockopt(SO_REUSEPORT)");
  }
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    raise_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) raise_errno("listen");
  return fd;
}

std::uint16_t local_port(const Fd& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    raise_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) raise_errno("socket");
  const sockaddr_in addr = make_addr(host, port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) raise_errno("connect " + host + ":" + std::to_string(port));
  set_nodelay(fd.get());
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::uint32_t timeout_ms) {
  if (timeout_ms == 0) return connect_tcp(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) raise_errno("socket");
  const sockaddr_in addr = make_addr(host, port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      raise_errno("connect " + host + ":" + std::to_string(port));
    }
    // In progress: poll for writability until the deadline, then read the
    // final status out of SO_ERROR (a refused connect reports there, not
    // through poll's return value).
    pollfd pfd{fd.get(), POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) raise_errno("poll(connect)");
    if (rc == 0) {
      throw NetError("net: connect " + host + ":" + std::to_string(port) +
                     " timed out after " + std::to_string(timeout_ms) + "ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      raise_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw NetError("net: connect " + host + ":" + std::to_string(port) +
                     ": " + std::strerror(err));
    }
  }
  // Back to blocking mode for the client's synchronous read/write loops.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
    raise_errno("fcntl(clear O_NONBLOCK)");
  }
  set_nodelay(fd.get());
  return fd;
}

Fd accept_conn(const Fd& listener) {
  int rc;
  do {
    rc = ::accept4(listener.get(), nullptr, nullptr,
                   SOCK_NONBLOCK | SOCK_CLOEXEC);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Fd();
    }
    raise_errno("accept");
  }
  return Fd(rc);
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    raise_errno("setsockopt(TCP_NODELAY)");
  }
}

namespace {
// 0 = unlimited.  Written only by tests, read on every send_iov.
std::atomic<std::size_t> g_max_transfer_bytes{0};
}  // namespace

namespace testing {
void set_max_transfer_bytes(std::size_t bytes) {
  g_max_transfer_bytes.store(bytes, std::memory_order_relaxed);
}
}  // namespace testing

ssize_t send_iov(int fd, const iovec* iov, int iovcnt) {
  const std::size_t clamp =
      g_max_transfer_bytes.load(std::memory_order_relaxed);
  iovec clamped[8];
  if (clamp > 0) {
    // Truncate the vector list to at most `clamp` bytes so the kernel
    // cannot transfer more — the caller then exercises its resume path
    // exactly as it would after a genuine partial writev.
    std::size_t budget = clamp;
    int n = 0;
    for (; n < iovcnt && n < 8 && budget > 0; ++n) {
      clamped[n] = iov[n];
      clamped[n].iov_len = std::min(clamped[n].iov_len, budget);
      budget -= clamped[n].iov_len;
    }
    iov = clamped;
    iovcnt = std::max(n, 1);
  }
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  for (;;) {
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w >= 0) return w;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

}  // namespace larp::net
