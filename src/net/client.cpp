#include "net/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace larp::net {

Client::Client(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {}

Client::Client(const std::string& host, std::uint16_t port,
               const ClientConfig& config)
    : fd_(connect_tcp(host, port,
                      static_cast<std::uint32_t>(
                          config.connect_timeout.count() < 0
                              ? 0
                              : config.connect_timeout.count()))) {
  if (config.read_timeout.count() > 0) {
    // SO_RCVTIMEO turns a silent socket's blocking read into EAGAIN after
    // the interval; read_reply maps that to a "timed out" NetError.
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(config.read_timeout.count() / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((config.read_timeout.count() % 1000) * 1000);
    if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
        0) {
      throw NetError(std::string("net: setsockopt(SO_RCVTIMEO): ") +
                     std::strerror(errno));
    }
  }
}

void Client::ping() {
  const std::uint64_t id = next_id_++;
  encode_ping(body_, id);
  send_frame();
  expect_reply(MsgType::kPong, id, reply_body_);
}

std::uint64_t Client::observe(std::span<const serve::Observation> batch) {
  const std::uint64_t id = next_id_++;
  encode_observe_request(body_, id, batch);
  send_frame();
  expect_reply(MsgType::kObserveAck, id, reply_body_);
  persist::io::Reader r(reply_body_);
  (void)decode_header(r);
  return decode_observe_ack(r);
}

void Client::predict(std::span<const tsdb::SeriesKey> keys,
                     std::vector<serve::Prediction>& out) {
  const std::uint64_t id = next_id_++;
  encode_predict_request(body_, id, keys);
  send_frame();
  expect_reply(MsgType::kPredictReply, id, reply_body_);
  persist::io::Reader r(reply_body_);
  (void)decode_header(r);
  decode_predict_reply(r, out);
  if (out.size() != keys.size()) {
    throw NetError("net: predict reply count mismatch");
  }
}

std::uint64_t Client::start_observe(std::span<const serve::Observation> batch) {
  const std::uint64_t id = next_id_++;
  encode_observe_request(body_, id, batch);
  send_frame();
  return id;
}

std::uint64_t Client::start_predict(std::span<const tsdb::SeriesKey> keys) {
  const std::uint64_t id = next_id_++;
  encode_predict_request(body_, id, keys);
  send_frame();
  return id;
}

std::uint64_t Client::finish_observe(std::uint64_t id) {
  expect_reply(MsgType::kObserveAck, id, reply_body_);
  persist::io::Reader r(reply_body_);
  (void)decode_header(r);
  return decode_observe_ack(r);
}

void Client::finish_predict(std::uint64_t id, std::size_t expect_count,
                            std::vector<serve::Prediction>& out) {
  expect_reply(MsgType::kPredictReply, id, reply_body_);
  persist::io::Reader r(reply_body_);
  (void)decode_header(r);
  decode_predict_reply(r, out);
  if (out.size() != expect_count) {
    throw NetError("net: predict reply count mismatch");
  }
}

WireStats Client::stats() {
  const std::uint64_t id = next_id_++;
  encode_stats_request(body_, id);
  send_frame();
  expect_reply(MsgType::kStatsReply, id, reply_body_);
  persist::io::Reader r(reply_body_);
  (void)decode_header(r);
  return decode_stats_reply(r);
}

void Client::send_raw(std::span<const std::byte> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw NetError(std::string("net: send: ") + std::strerror(errno));
  }
}

FrameHeader Client::read_reply(std::vector<std::byte>& body) {
  std::byte buf[16 * 1024];
  for (;;) {
    std::span<const std::byte> view;
    const FrameDecoder::Status status = decoder_.next(view);
    if (status == FrameDecoder::Status::kCorrupt) {
      throw NetError("net: corrupt reply stream");
    }
    if (status == FrameDecoder::Status::kFrame) {
      body.assign(view.begin(), view.end());
      persist::io::Reader r(body);
      return decode_header(r);
    }
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(
          std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) throw NetError("net: connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Only reachable with ClientConfig::read_timeout set (SO_RCVTIMEO).
      throw NetError("net: reply read timed out");
    }
    throw NetError(std::string("net: read: ") + std::strerror(errno));
  }
}

bool Client::eof() {
  std::byte buf[4 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n == 0) return true;
    if (n > 0) {
      decoder_.feed(
          std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
}

void Client::send_frame() {
  out_.clear();
  append_frame(out_, body_.bytes());
  send_raw(out_);
}

void Client::expect_reply(MsgType type, std::uint64_t id,
                          std::vector<std::byte>& body) {
  const FrameHeader h = read_reply(body);
  if (h.type == MsgType::kError) {
    persist::io::Reader r(body);
    (void)decode_header(r);
    const WireError err = decode_error(r);
    throw ServerError(err.code,
                      "net: server error " +
                          std::to_string(static_cast<int>(err.code)) + ": " +
                          err.message);
  }
  if (h.type != type || h.id != id) {
    throw NetError("net: unexpected reply type or id");
  }
}

}  // namespace larp::net
