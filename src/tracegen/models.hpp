// The stochastic building blocks of the synthetic trace catalog.
//
// Model → paper trace character it reproduces:
//   ArProcess       smooth, strongly autocorrelated CPU load (Dinda [6]:
//                   "CPU load is strongly correlated over time") — the regime
//                   where AR/LAST win;
//   OnOffBurst      bursty network traffic: Markov ON/OFF with heavy-tailed
//                   (Pareto) ON amplitudes — the regime where smoothing
//                   (SW_AVG) wins and LAST is badly mislead;
//   StepLevel       memory allocations: long flat plateaus with occasional
//                   level jumps — the regime where LAST is near-perfect;
//   PoissonSpikes   disk I/O: quiet baseline plus Poisson-arriving spikes
//                   with exponential decay;
//   Diurnal         additive sinusoidal day/period modulation on any child;
//   RegimeSwitching semi-Markov switching between child models — this is
//                   what makes "the best predictor ... varies as a function
//                   of time" (paper finding 3) true of the synthetic data.
#pragma once

#include <memory>
#include <vector>

#include "tracegen/metric_model.hpp"

namespace larp::tracegen {

/// AR(p) Gaussian process around a fixed mean, optionally clamped to a
/// non-negative range (utilizations cannot go below zero).
class ArProcess final : public MetricModel {
 public:
  struct Params {
    std::vector<double> coefficients{0.8};  // psi_1..psi_p, |sum| < 1 advised
    double mean = 50.0;
    double noise_sigma = 5.0;
    double clamp_min = 0.0;
    double clamp_max = 1e12;
  };

  explicit ArProcess(Params params);
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

 private:
  Params params_;
  std::vector<double> history_;  // most recent deviation first
};

/// Two-state Markov ON/OFF process with Pareto ON amplitudes.
class OnOffBurst final : public MetricModel {
 public:
  struct Params {
    double p_enter_on = 0.08;   // per-step probability OFF -> ON
    double p_exit_on = 0.25;    // per-step probability ON -> OFF
    double off_level = 2.0;     // idle traffic level
    double off_noise = 0.5;
    double pareto_scale = 20.0; // ON burst magnitude scale (xm)
    double pareto_shape = 1.6;  // heavy tail (alpha < 2 -> infinite variance)
    double on_noise_fraction = 0.15;  // jitter relative to burst magnitude
  };

  explicit OnOffBurst(Params params);
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

 private:
  Params params_;
  bool on_ = false;
  double burst_level_ = 0.0;
};

/// Piecewise-constant level process with occasional jumps, an optional slow
/// random-walk drift between jumps (the memory-footprint character: smooth
/// growth/shrink with occasional reallocations), and plateau jitter.
class StepLevel final : public MetricModel {
 public:
  struct Params {
    double initial_level = 512.0;
    double jump_probability = 0.01;  // per step
    double jump_sigma = 128.0;       // jump size scale
    double walk_sigma = 0.0;         // per-step random-walk drift of the level
    double hold_noise = 1.0;         // tiny jitter on the plateau
    double floor = 0.0;
  };

  explicit StepLevel(Params params);
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

 private:
  Params params_;
  double level_;
};

/// Quiet baseline plus Poisson-arriving spikes that decay geometrically.
class PoissonSpikes final : public MetricModel {
 public:
  struct Params {
    double base_level = 5.0;
    double base_noise = 1.0;
    double arrival_rate = 0.06;  // expected spikes per step
    double spike_mean = 80.0;    // exponential spike magnitude mean
    double decay = 0.55;         // per-step geometric decay of spike residue
  };

  explicit PoissonSpikes(Params params);
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

 private:
  Params params_;
  double residue_ = 0.0;
};

/// Adds a sinusoid of the given period (in steps) to a child model.
class Diurnal final : public MetricModel {
 public:
  Diurnal(std::unique_ptr<MetricModel> child, double period_steps,
          double amplitude, double phase = 0.0);
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

 private:
  std::unique_ptr<MetricModel> child_;
  double period_steps_;
  double amplitude_;
  double phase_;
  std::size_t step_ = 0;
};

/// Semi-Markov switching between child regimes: dwell times are geometric
/// with the given mean, and on each switch a uniformly random *different*
/// child takes over.
class RegimeSwitching final : public MetricModel {
 public:
  RegimeSwitching(std::vector<std::unique_ptr<MetricModel>> regimes,
                  double mean_dwell_steps);
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

  /// Active regime index (exposed for tests).
  [[nodiscard]] std::size_t active_regime() const noexcept { return active_; }

 private:
  std::vector<std::unique_ptr<MetricModel>> regimes_;
  double switch_probability_;
  std::size_t active_ = 0;
};

/// Deterministic regime schedule: plays each (model, duration) phase in
/// order and cycles.  The controlled-experiment counterpart of
/// RegimeSwitching — switch times are known exactly, which is what
/// regime-change tests and the online-retraining scenarios need.
class ScriptedSequence final : public MetricModel {
 public:
  struct Phase {
    std::unique_ptr<MetricModel> model;
    std::size_t duration = 0;  // steps; must be positive
  };

  /// Throws InvalidArgument for an empty script, a null model, or a
  /// zero-duration phase.
  explicit ScriptedSequence(std::vector<Phase> phases);

  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

  /// Phase active for the NEXT sample (exposed for tests).
  [[nodiscard]] std::size_t active_phase() const noexcept { return phase_; }

 private:
  std::vector<Phase> phases_;
  std::size_t phase_ = 0;
  std::size_t into_phase_ = 0;
};

/// Weighted sum of child models (e.g. baseline CPU + job-induced CPU).
class Superposition final : public MetricModel {
 public:
  struct Component {
    std::unique_ptr<MetricModel> model;
    double weight = 1.0;
  };

  explicit Superposition(std::vector<Component> components);
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

 private:
  std::vector<Component> components_;
};

}  // namespace larp::tracegen
