// Trace catalog: the synthetic stand-ins for the paper's five VMware ESX
// virtual machines (§7) and their twelve Table-2 performance metrics.
//
//   VM1  web server + Globus GRAM/MDS + GridFTP + PBS head node
//        (7-day trace @ 30-minute samples, 310-job batch mix)
//   VM2  Linux port-forwarding proxy for VNC sessions (24 h @ 5 min)
//   VM3  Windows XP based calendar (24 h @ 5 min)
//   VM4  web + list + wiki server (24 h @ 5 min)
//   VM5  web server (24 h @ 5 min)
//
// Each (vm, metric) pair maps to a stochastic model whose character matches
// what that VM would have produced: batch-job plateaus on VM1's CPU, heavy
// bursts on VM2's NICs, near-idle constancy on VM3, diurnal web load on
// VM4/VM5.  Several metrics are exactly constant (idle devices), which is
// what produces the NaN cells of the paper's Table 3.  All traces are
// deterministic functions of (vm, metric, seed).
#pragma once

#include <string>
#include <vector>

#include "tracegen/metric_model.hpp"
#include "tsdb/series.hpp"

namespace larp::tracegen {

/// One catalog VM: identity plus the paper's extraction parameters.
struct VmSpec {
  std::string vm_id;
  std::string description;
  Timestamp interval = kFiveMinutes;
  std::size_t samples = 288;  // 24 h at 5-minute samples
};

/// The twelve Table-2 metric names, in the paper's row order.
[[nodiscard]] const std::vector<std::string>& paper_metrics();

/// The five paper VMs with their extraction parameters.
[[nodiscard]] const std::vector<VmSpec>& paper_vms();

/// Spec by vm id ("VM1".."VM5"); throws NotFound for unknown ids.
[[nodiscard]] const VmSpec& vm_spec(const std::string& vm_id);

/// Generating model for (vm, metric).  Also accepts the two special Fig. 4/5
/// trace names on VM2: "load15" (CPU fifteen-minute load average) and
/// "PktIn" (network packets-in per second).  Throws NotFound for unknown
/// vm/metric combinations.
[[nodiscard]] std::unique_ptr<MetricModel> make_metric_model(
    const std::string& vm_id, const std::string& metric);

/// Deterministic trace for (vm, metric, seed) at the VM's paper extraction
/// length, or at `samples` when given.
[[nodiscard]] tsdb::TimeSeries make_trace(const std::string& vm_id,
                                          const std::string& metric,
                                          std::uint64_t seed);
[[nodiscard]] tsdb::TimeSeries make_trace(const std::string& vm_id,
                                          const std::string& metric,
                                          std::uint64_t seed,
                                          std::size_t samples);

/// All twelve metric traces of one VM, keyed like the paper's database.
[[nodiscard]] std::vector<std::pair<tsdb::SeriesKey, tsdb::TimeSeries>>
make_vm_suite(const std::string& vm_id, std::uint64_t seed);

/// Device id ("cpu", "memory", "nic1", ...) a metric belongs to.
[[nodiscard]] std::string device_of_metric(const std::string& metric);

}  // namespace larp::tracegen
