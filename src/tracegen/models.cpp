#include "tracegen/models.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace larp::tracegen {

// ---------------------------------------------------------------- ArProcess

ArProcess::ArProcess(Params params) : params_(std::move(params)) {
  if (params_.coefficients.empty()) {
    throw InvalidArgument("ArProcess: at least one coefficient required");
  }
  if (params_.noise_sigma < 0.0) {
    throw InvalidArgument("ArProcess: negative noise sigma");
  }
  history_.assign(params_.coefficients.size(), 0.0);
}

double ArProcess::next(Rng& rng) {
  double deviation = rng.normal(0.0, params_.noise_sigma);
  for (std::size_t i = 0; i < params_.coefficients.size(); ++i) {
    deviation += params_.coefficients[i] * history_[i];
  }
  // Shift history: most recent deviation first.
  for (std::size_t i = history_.size(); i-- > 1;) history_[i] = history_[i - 1];
  history_[0] = deviation;
  const double value = params_.mean + deviation;
  return std::clamp(value, params_.clamp_min, params_.clamp_max);
}

void ArProcess::reset() { std::fill(history_.begin(), history_.end(), 0.0); }

std::unique_ptr<MetricModel> ArProcess::clone() const {
  auto copy = std::make_unique<ArProcess>(params_);
  copy->history_ = history_;
  return copy;
}

// ---------------------------------------------------------------- OnOffBurst

OnOffBurst::OnOffBurst(Params params) : params_(std::move(params)) {
  if (params_.p_enter_on < 0.0 || params_.p_enter_on > 1.0 ||
      params_.p_exit_on < 0.0 || params_.p_exit_on > 1.0) {
    throw InvalidArgument("OnOffBurst: transition probabilities outside [0,1]");
  }
  if (params_.pareto_scale <= 0.0 || params_.pareto_shape <= 0.0) {
    throw InvalidArgument("OnOffBurst: Pareto parameters must be positive");
  }
}

double OnOffBurst::next(Rng& rng) {
  if (on_) {
    if (rng.bernoulli(params_.p_exit_on)) {
      on_ = false;
      burst_level_ = 0.0;
    }
  } else if (rng.bernoulli(params_.p_enter_on)) {
    on_ = true;
    burst_level_ = rng.pareto(params_.pareto_scale, params_.pareto_shape);
  }

  if (on_) {
    const double jitter =
        rng.normal(0.0, params_.on_noise_fraction * burst_level_);
    return std::max(0.0, burst_level_ + jitter);
  }
  return std::max(0.0, params_.off_level + rng.normal(0.0, params_.off_noise));
}

void OnOffBurst::reset() {
  on_ = false;
  burst_level_ = 0.0;
}

std::unique_ptr<MetricModel> OnOffBurst::clone() const {
  auto copy = std::make_unique<OnOffBurst>(params_);
  copy->on_ = on_;
  copy->burst_level_ = burst_level_;
  return copy;
}

// ---------------------------------------------------------------- StepLevel

StepLevel::StepLevel(Params params)
    : params_(std::move(params)), level_(params_.initial_level) {
  if (params_.jump_probability < 0.0 || params_.jump_probability > 1.0) {
    throw InvalidArgument("StepLevel: jump probability outside [0,1]");
  }
}

double StepLevel::next(Rng& rng) {
  if (params_.walk_sigma > 0.0) {
    level_ = std::max(params_.floor, level_ + rng.normal(0.0, params_.walk_sigma));
  }
  if (rng.bernoulli(params_.jump_probability)) {
    level_ = std::max(params_.floor, level_ + rng.normal(0.0, params_.jump_sigma));
  }
  return std::max(params_.floor, level_ + rng.normal(0.0, params_.hold_noise));
}

void StepLevel::reset() { level_ = params_.initial_level; }

std::unique_ptr<MetricModel> StepLevel::clone() const {
  auto copy = std::make_unique<StepLevel>(params_);
  copy->level_ = level_;
  return copy;
}

// ------------------------------------------------------------- PoissonSpikes

PoissonSpikes::PoissonSpikes(Params params) : params_(std::move(params)) {
  if (params_.arrival_rate < 0.0) {
    throw InvalidArgument("PoissonSpikes: negative arrival rate");
  }
  if (params_.decay < 0.0 || params_.decay >= 1.0) {
    throw InvalidArgument("PoissonSpikes: decay outside [0,1)");
  }
}

double PoissonSpikes::next(Rng& rng) {
  residue_ *= params_.decay;
  const std::uint64_t arrivals = rng.poisson(params_.arrival_rate);
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    residue_ += rng.exponential(1.0 / params_.spike_mean);
  }
  const double value =
      params_.base_level + residue_ + rng.normal(0.0, params_.base_noise);
  return std::max(0.0, value);
}

void PoissonSpikes::reset() { residue_ = 0.0; }

std::unique_ptr<MetricModel> PoissonSpikes::clone() const {
  auto copy = std::make_unique<PoissonSpikes>(params_);
  copy->residue_ = residue_;
  return copy;
}

// ------------------------------------------------------------------ Diurnal

Diurnal::Diurnal(std::unique_ptr<MetricModel> child, double period_steps,
                 double amplitude, double phase)
    : child_(std::move(child)),
      period_steps_(period_steps),
      amplitude_(amplitude),
      phase_(phase) {
  if (!child_) throw InvalidArgument("Diurnal: null child model");
  if (period_steps <= 0.0) throw InvalidArgument("Diurnal: non-positive period");
}

double Diurnal::next(Rng& rng) {
  const double angle = 2.0 * std::numbers::pi *
                           (static_cast<double>(step_) / period_steps_) +
                       phase_;
  ++step_;
  return std::max(0.0, child_->next(rng) + amplitude_ * std::sin(angle));
}

void Diurnal::reset() {
  child_->reset();
  step_ = 0;
}

std::unique_ptr<MetricModel> Diurnal::clone() const {
  auto copy = std::make_unique<Diurnal>(child_->clone(), period_steps_,
                                        amplitude_, phase_);
  copy->step_ = step_;
  return copy;
}

// ----------------------------------------------------------- RegimeSwitching

RegimeSwitching::RegimeSwitching(
    std::vector<std::unique_ptr<MetricModel>> regimes, double mean_dwell_steps)
    : regimes_(std::move(regimes)) {
  if (regimes_.empty()) throw InvalidArgument("RegimeSwitching: no regimes");
  for (const auto& r : regimes_) {
    if (!r) throw InvalidArgument("RegimeSwitching: null regime");
  }
  if (mean_dwell_steps < 1.0) {
    throw InvalidArgument("RegimeSwitching: mean dwell below one step");
  }
  switch_probability_ = 1.0 / mean_dwell_steps;
}

double RegimeSwitching::next(Rng& rng) {
  if (regimes_.size() > 1 && rng.bernoulli(switch_probability_)) {
    // Jump to a uniformly random different regime.
    const std::size_t offset = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(regimes_.size()) - 1));
    active_ = (active_ + offset) % regimes_.size();
  }
  return regimes_[active_]->next(rng);
}

void RegimeSwitching::reset() {
  for (auto& r : regimes_) r->reset();
  active_ = 0;
}

std::unique_ptr<MetricModel> RegimeSwitching::clone() const {
  std::vector<std::unique_ptr<MetricModel>> copies;
  copies.reserve(regimes_.size());
  for (const auto& r : regimes_) copies.push_back(r->clone());
  auto copy = std::make_unique<RegimeSwitching>(std::move(copies),
                                                1.0 / switch_probability_);
  copy->active_ = active_;
  return copy;
}

// ------------------------------------------------------------ ScriptedSequence

ScriptedSequence::ScriptedSequence(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty()) throw InvalidArgument("ScriptedSequence: no phases");
  for (const auto& phase : phases_) {
    if (!phase.model) throw InvalidArgument("ScriptedSequence: null model");
    if (phase.duration == 0) {
      throw InvalidArgument("ScriptedSequence: zero-duration phase");
    }
  }
}

double ScriptedSequence::next(Rng& rng) {
  if (into_phase_ == phases_[phase_].duration) {
    into_phase_ = 0;
    phase_ = (phase_ + 1) % phases_.size();
  }
  ++into_phase_;
  return phases_[phase_].model->next(rng);
}

void ScriptedSequence::reset() {
  for (auto& phase : phases_) phase.model->reset();
  phase_ = 0;
  into_phase_ = 0;
}

std::unique_ptr<MetricModel> ScriptedSequence::clone() const {
  std::vector<Phase> copies;
  copies.reserve(phases_.size());
  for (const auto& phase : phases_) {
    copies.push_back(Phase{phase.model->clone(), phase.duration});
  }
  auto copy = std::make_unique<ScriptedSequence>(std::move(copies));
  copy->phase_ = phase_;
  copy->into_phase_ = into_phase_;
  return copy;
}

// -------------------------------------------------------------- Superposition

Superposition::Superposition(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) throw InvalidArgument("Superposition: no components");
  for (const auto& c : components_) {
    if (!c.model) throw InvalidArgument("Superposition: null component");
  }
}

double Superposition::next(Rng& rng) {
  double total = 0.0;
  for (auto& c : components_) total += c.weight * c.model->next(rng);
  return total;
}

void Superposition::reset() {
  for (auto& c : components_) c.model->reset();
}

std::unique_ptr<MetricModel> Superposition::clone() const {
  std::vector<Component> copies;
  copies.reserve(components_.size());
  for (const auto& c : components_) {
    copies.push_back(Component{c.model->clone(), c.weight});
  }
  return std::make_unique<Superposition>(std::move(copies));
}

}  // namespace larp::tracegen
