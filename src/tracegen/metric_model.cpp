#include "tracegen/metric_model.hpp"

namespace larp::tracegen {

tsdb::TimeSeries generate(MetricModel& model, const TimeAxis& axis, Rng& rng) {
  tsdb::TimeSeries series;
  series.axis = axis;
  series.values.reserve(axis.size());
  for (std::size_t i = 0; i < axis.size(); ++i) {
    series.values.push_back(model.next(rng));
  }
  return series;
}

}  // namespace larp::tracegen
