// MetricModel: stochastic processes that stand in for the paper's VMware ESX
// resource traces (substitution record in DESIGN.md §2).
//
// Each model is a stateful process advanced one base step at a time with
// next(rng).  The catalog (tracegen/catalog) composes them per VM × metric so
// that every metric class has the statistical character the paper's findings
// rest on: smooth autocorrelated CPU load, bursty heavy-tailed network
// traffic, step-like memory allocations, spiky disk I/O — and regime switches
// that move the per-window best predictor around over time.
#pragma once

#include <memory>

#include "tsdb/series.hpp"
#include "util/rng.hpp"

namespace larp::tracegen {

class MetricModel {
 public:
  virtual ~MetricModel() = default;

  /// Advances the process one step and returns the new sample.
  [[nodiscard]] virtual double next(Rng& rng) = 0;

  /// Restores the initial state (so one model instance can generate
  /// multiple independent traces).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::unique_ptr<MetricModel> clone() const = 0;
};

/// Drives `model` over `axis` and returns the sampled series.
[[nodiscard]] tsdb::TimeSeries generate(MetricModel& model, const TimeAxis& axis,
                                        Rng& rng);

}  // namespace larp::tracegen
