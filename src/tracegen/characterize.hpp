// Trace characterization: the statistical fingerprint used to validate that
// the synthetic catalog reproduces the character of the paper's trace
// classes (smooth autocorrelated CPU per Dinda [6][7], bursty heavy-tailed
// network, step-like memory), and to help users judge which expert family a
// new trace resembles.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

namespace larp::tracegen {

struct TraceCharacter {
  std::size_t samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Coefficient of variation (stddev / |mean|); 0 when the mean is 0.
  double cv = 0.0;
  /// Lag-1 autocorrelation: > 0 smooth/persistent, < 0 seesaw, ~0 noise.
  double acf1 = 0.0;
  /// Hurst exponent (R/S estimate): > 0.5 persistent / self-similar.
  double hurst = 0.5;
  /// p99 / median spike ratio (medians of 0 fall back to the mean);
  /// >> 1 indicates a heavy-tailed, bursty trace.
  double spike_ratio = 1.0;
  /// True for zero-variance (idle-device) traces.
  bool constant = false;

  /// Coarse classification into the catalog's trace families.
  [[nodiscard]] std::string family() const;
};

/// Computes the fingerprint; requires at least 32 samples.
[[nodiscard]] TraceCharacter characterize(std::span<const double> series);

/// One-line rendering for reports.
std::ostream& operator<<(std::ostream& out, const TraceCharacter& c);

}  // namespace larp::tracegen
