#include "tracegen/jobmix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace larp::tracegen {

JobMix::JobMix(JobMixParams params) : params_(std::move(params)) {
  if (params_.expected_jobs <= 0.0 || params_.trace_duration_s <= 0.0 ||
      params_.step_s <= 0.0) {
    throw InvalidArgument("JobMix: durations and job count must be positive");
  }
  if (params_.classes.empty()) {
    throw InvalidArgument("JobMix: at least one job class required");
  }
  double total_probability = 0.0;
  for (const auto& cls : params_.classes) {
    if (cls.probability < 0.0 || cls.min_duration_s <= 0.0 ||
        cls.max_duration_s < cls.min_duration_s) {
      throw InvalidArgument("JobMix: malformed job class");
    }
    total_probability += cls.probability;
  }
  if (std::abs(total_probability - 1.0) > 1e-6) {
    throw InvalidArgument("JobMix: class probabilities must sum to 1");
  }
  arrivals_per_step_ =
      params_.expected_jobs * params_.step_s / params_.trace_duration_s;
}

double JobMix::next(Rng& rng) {
  const double step = params_.step_s;

  // New arrivals this step; each gets a uniformly random start offset.
  const std::uint64_t arrivals = rng.poisson(arrivals_per_step_);
  double utilization = 0.0;

  // Existing jobs first: they run from the start of the step.
  for (auto& job : active_) {
    const double ran = std::min(job.remaining_s, step);
    utilization += job.intensity * (ran / step);
    job.remaining_s -= ran;
  }
  std::erase_if(active_, [](const ActiveJob& j) { return j.remaining_s <= 0.0; });

  std::vector<double> weights;
  weights.reserve(params_.classes.size());
  for (const auto& cls : params_.classes) weights.push_back(cls.probability);

  for (std::uint64_t i = 0; i < arrivals; ++i) {
    const JobClass& cls = params_.classes[rng.weighted_index(weights)];
    const double duration = rng.uniform(cls.min_duration_s, cls.max_duration_s);
    const double start_offset = rng.uniform(0.0, step);
    ++jobs_started_;

    const double ran_this_step = std::min(duration, step - start_offset);
    utilization += cls.intensity * (ran_this_step / step);
    const double remaining = duration - ran_this_step;
    if (remaining > 0.0) {
      active_.push_back(ActiveJob{remaining, cls.intensity});
    }
  }
  return utilization;
}

void JobMix::reset() {
  active_.clear();
  jobs_started_ = 0;
}

std::unique_ptr<MetricModel> JobMix::clone() const {
  auto copy = std::make_unique<JobMix>(params_);
  copy->active_ = active_;
  copy->jobs_started_ = jobs_started_;
  return copy;
}

}  // namespace larp::tracegen
