// JobMix: the batch workload of the paper's VM1 (§7) — a PBS head node that
// executed 310 jobs over 7 days with a duration mix of 93.55% short
// (1–2 s), 3.87% medium (2–10 min) and 2.58% long (45–50 min) jobs.
//
// The simulator draws job arrivals as a Poisson process tuned to hit the
// expected total job count over the trace duration, assigns each arrival a
// duration class from the paper's mix, and reports — per sampling step — the
// fraction of the step during which at least one job was running, scaled by
// a per-class intensity.  Fed through Superposition this turns the VM1 CPU
// and disk metrics into the characteristic mostly-idle-with-occasional-long-
// plateaus shape of a batch node.
#pragma once

#include <vector>

#include "tracegen/metric_model.hpp"

namespace larp::tracegen {

/// One duration class of the mix.
struct JobClass {
  double probability = 0.0;   // fraction of arrivals in this class
  double min_duration_s = 0;  // uniform duration range
  double max_duration_s = 0;
  double intensity = 1.0;     // resource units consumed while running
};

struct JobMixParams {
  /// Expected total number of jobs over the whole trace.
  double expected_jobs = 310.0;
  /// Total trace duration in seconds (paper: 7 days).
  double trace_duration_s = 7.0 * 24 * 3600;
  /// Sampling step in seconds (paper VM1: 30 minutes).
  double step_s = 1800.0;
  /// The paper's duration mix (short/medium/long).
  std::vector<JobClass> classes = {
      {0.9355, 1.0, 2.0, 40.0},        // 1–2 s jobs: intense but fleeting
      {0.0387, 120.0, 600.0, 60.0},    // 2–10 min jobs
      {0.0258, 2700.0, 3000.0, 75.0},  // 45–50 min jobs: dominate a sample
  };
};

class JobMix final : public MetricModel {
 public:
  explicit JobMix(JobMixParams params);

  /// Utilization contributed by jobs during the next sampling step:
  /// sum over jobs of (overlap with the step / step length) * intensity.
  [[nodiscard]] double next(Rng& rng) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<MetricModel> clone() const override;

  /// Jobs started so far (for tests asserting the 310-job calibration).
  [[nodiscard]] std::size_t jobs_started() const noexcept { return jobs_started_; }

 private:
  struct ActiveJob {
    double remaining_s = 0.0;
    double intensity = 0.0;
  };

  JobMixParams params_;
  double arrivals_per_step_ = 0.0;
  std::vector<ActiveJob> active_;
  std::size_t jobs_started_ = 0;
};

}  // namespace larp::tracegen
