#include "tracegen/characterize.hpp"

#include <cmath>
#include <ostream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::tracegen {

TraceCharacter characterize(std::span<const double> series) {
  if (series.size() < 32) {
    throw InvalidArgument("characterize: need at least 32 samples");
  }
  TraceCharacter c;
  c.samples = series.size();
  c.mean = stats::mean(series);
  c.stddev = stats::stddev(series);
  c.constant = c.stddev == 0.0;
  if (c.constant) return c;

  c.cv = c.mean != 0.0 ? c.stddev / std::abs(c.mean) : 0.0;
  c.acf1 = stats::autocorrelation(series, 1);
  c.hurst = stats::hurst_exponent(series);
  const double med = stats::median(series);
  const double p99 = stats::percentile(series, 99);
  const double base = med != 0.0 ? med : (c.mean != 0.0 ? c.mean : 1.0);
  c.spike_ratio = std::abs(base) > 0.0 ? p99 / base : 1.0;
  return c;
}

std::string TraceCharacter::family() const {
  if (constant) return "idle";
  if (spike_ratio > 4.0) return "bursty";
  if (acf1 < -0.2) return "seesaw";
  if (acf1 > 0.8 && cv < 0.3) return "level";   // memory-walk style
  if (acf1 > 0.5) return "smooth";
  return "noisy";
}

std::ostream& operator<<(std::ostream& out, const TraceCharacter& c) {
  out << "n=" << c.samples << " mean=" << c.mean << " sd=" << c.stddev
      << " cv=" << c.cv << " acf1=" << c.acf1 << " H=" << c.hurst
      << " spike=" << c.spike_ratio << " family=" << c.family();
  return out;
}

}  // namespace larp::tracegen
