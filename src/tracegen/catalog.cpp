#include "tracegen/catalog.hpp"

#include <functional>
#include <unordered_map>

#include "tracegen/jobmix.hpp"
#include "tracegen/models.hpp"
#include "util/error.hpp"

namespace larp::tracegen {

namespace {

using ModelPtr = std::unique_ptr<MetricModel>;

// ---------------------------------------------------------------- builders
// Small factories expressing metric *characters*; the per-VM tables below
// compose them with VM-specific parameters.

// Smooth, strongly autocorrelated utilization (Dinda-style CPU load).
ModelPtr smooth_cpu(double mean, double sigma, double phi1, double phi2 = 0.0) {
  ArProcess::Params p;
  p.coefficients = phi2 != 0.0 ? std::vector<double>{phi1, phi2}
                               : std::vector<double>{phi1};
  p.mean = mean;
  p.noise_sigma = sigma;
  p.clamp_min = 0.0;
  p.clamp_max = 100.0;
  return std::make_unique<ArProcess>(p);
}

// CPU that alternates between an idle regime and a loaded regime — the
// time-varying character that moves the best predictor around (finding 3).
ModelPtr switching_cpu(double idle_mean, double busy_mean, double dwell) {
  std::vector<ModelPtr> regimes;
  regimes.push_back(smooth_cpu(idle_mean, 2.0, 0.85));
  regimes.push_back(smooth_cpu(busy_mean, 8.0, 0.6));
  {
    OnOffBurst::Params p;
    p.off_level = idle_mean;
    p.off_noise = 1.0;
    p.pareto_scale = busy_mean * 0.6;
    p.pareto_shape = 2.2;
    p.p_enter_on = 0.15;
    p.p_exit_on = 0.3;
    regimes.push_back(std::make_unique<OnOffBurst>(p));
  }
  return std::make_unique<RegimeSwitching>(std::move(regimes), dwell);
}

// Heavy-tailed bursty NIC traffic.  Bursts are short-lived (mean ON duration
// under two samples at the default p_off) so the traces are spiky and
// mean-reverting — the character the paper's Table 2 implies, where LAST's
// MSE on NIC metrics is >3x AR's.
ModelPtr bursty_nic(double idle, double burst_scale, double shape,
                    double p_on = 0.08, double p_off = 0.6) {
  OnOffBurst::Params p;
  p.off_level = idle;
  p.off_noise = idle * 0.2;
  p.pareto_scale = burst_scale;
  p.pareto_shape = shape;
  p.p_enter_on = p_on;
  p.p_exit_on = p_off;
  return std::make_unique<OnOffBurst>(p);
}

// Diurnal web traffic: bursts riding a day-period sinusoid.
ModelPtr web_nic(double idle, double burst_scale, double day_steps,
                 double amplitude, double phase = 0.0) {
  return std::make_unique<Diurnal>(bursty_nic(idle, burst_scale, 1.9, 0.12, 0.65),
                                   day_steps, amplitude, phase);
}

// Memory footprint: a slow random walk (allocator growth/shrink) with
// occasional reallocation jumps and small jitter.  On this character LAST is
// marginally the best expert, AR a close second and SW_AVG lags badly —
// the ordering of the paper's Memory_size/Memory_swapped rows in Table 2
// (LAST 0.2298, AR 0.2379, SW 0.4883).
ModelPtr mem_level(double level, double jump_prob, double jump_sigma,
                   double jitter_fraction = 0.003,
                   double walk_fraction = 0.012) {
  StepLevel::Params p;
  p.initial_level = level;
  p.jump_probability = jump_prob;
  p.jump_sigma = jump_sigma;
  p.walk_sigma = walk_fraction * level;
  p.hold_noise = jitter_fraction * level;
  return std::make_unique<StepLevel>(p);
}

// Noise-dominated memory: the footprint is pinned (small VM, little churn)
// and the signal is measurement noise around it — the regime where the
// mean-reverting experts (AR, SW_AVG) win over LAST, matching the AR cells
// of the paper's Table 3 memory rows on VM2/VM3/VM5.
ModelPtr noisy_mem_level(double level) {
  return mem_level(level, 0.004, 0.1 * level, /*jitter_fraction=*/0.035,
                   /*walk_fraction=*/0.002);
}

// AR-leaning spiky NIC traffic: the busy regime is anti-correlated
// fluctuation around a mean (phi ~ -0.45, so LAST's MSE is ~2/(1+phi) ~ 3.5x
// AR's — the LAST/AR ratio of the paper's NIC rows) plus occasional
// fast-decaying spikes; sessions come and go, so it alternates with a
// near-idle smooth regime (dwell ~25 samples).  AR dominates overall, which
// reproduces the paper's AR-heavy NIC cells, while the alternation gives the
// adaptive selector its Fig. 4/5-style switching opportunities.
ModelPtr spiky_nic(double mean, double spike_mean) {
  std::vector<ModelPtr> regimes;
  {
    std::vector<Superposition::Component> parts;
    {
      ArProcess::Params p;
      p.coefficients = {-0.45};
      p.mean = mean;
      p.noise_sigma = 0.45 * mean;
      parts.push_back({std::make_unique<ArProcess>(p), 1.0});
    }
    {
      PoissonSpikes::Params p;
      p.base_level = 0.0;
      p.base_noise = 0.0;
      p.arrival_rate = 0.04;
      p.spike_mean = spike_mean;
      p.decay = 0.2;
      parts.push_back({std::make_unique<PoissonSpikes>(p), 1.0});
    }
    regimes.push_back(std::make_unique<Superposition>(std::move(parts)));
  }
  {
    // Idle sessions: smooth trickle traffic where LAST wins.
    ArProcess::Params p;
    p.coefficients = {0.9};
    p.mean = 0.3 * mean;
    p.noise_sigma = 0.05 * mean;
    regimes.push_back(std::make_unique<ArProcess>(p));
  }
  return std::make_unique<RegimeSwitching>(std::move(regimes), 25.0);
}

// Disk I/O: alternates between a quiet baseline with sparse spikes and a
// busy period with dense spike arrivals (backup/scan-style activity bursts,
// dwell ~30 samples).
ModelPtr disk_io(double base, double rate, double spike_mean,
                 double decay = 0.35) {
  std::vector<ModelPtr> regimes;
  {
    PoissonSpikes::Params p;
    p.base_level = base;
    p.base_noise = base * 0.25;
    p.arrival_rate = rate;
    p.spike_mean = spike_mean;
    p.decay = decay;
    regimes.push_back(std::make_unique<PoissonSpikes>(p));
  }
  {
    PoissonSpikes::Params p;
    p.base_level = 2.5 * base;
    p.base_noise = base * 0.6;
    p.arrival_rate = 6.0 * rate;
    p.spike_mean = spike_mean;
    p.decay = decay;
    regimes.push_back(std::make_unique<PoissonSpikes>(p));
  }
  return std::make_unique<RegimeSwitching>(std::move(regimes), 30.0);
}

// The variable-workload motif of the paper's production traces: slow
// semi-Markov switching between three contrasting regimes, each of which a
// different expert dominates —
//   smooth    strongly positively-correlated drift  -> LAST/AR win,
//   spiky     short heavy-tailed bursts             -> SW_AVG wins,
//   seesaw    negatively-correlated oscillation     -> AR wins big.
// Regimes dwell tens of samples, long enough for window shapes to reveal
// them to the classifier; this is what makes adaptive selection beat every
// single expert (paper: "consistently outperform any single predictor for
// variable workloads").
ModelPtr regime_mix(double level, double scale, double dwell = 40.0) {
  std::vector<ModelPtr> regimes;
  {
    ArProcess::Params p;
    p.coefficients = {0.9};
    p.mean = level;
    p.noise_sigma = 0.08 * scale;
    regimes.push_back(std::make_unique<ArProcess>(p));
  }
  {
    OnOffBurst::Params p;
    p.off_level = level;
    p.off_noise = 0.05 * scale;
    p.pareto_scale = level + 0.9 * scale;
    p.pareto_shape = 2.4;
    p.p_enter_on = 0.25;
    p.p_exit_on = 0.7;
    regimes.push_back(std::make_unique<OnOffBurst>(p));
  }
  {
    ArProcess::Params p;
    p.coefficients = {-0.72};
    p.mean = level + 0.5 * scale;
    p.noise_sigma = 0.45 * scale;
    regimes.push_back(std::make_unique<ArProcess>(p));
  }
  return std::make_unique<RegimeSwitching>(std::move(regimes), dwell);
}

// An exactly constant (idle / unattached device) metric — zero variance,
// which reproduces the NaN cells of the paper's Table 3.
ModelPtr idle_device() {
  StepLevel::Params p;
  p.initial_level = 0.0;
  p.jump_probability = 0.0;
  p.jump_sigma = 0.0;
  p.hold_noise = 0.0;
  return std::make_unique<StepLevel>(p);
}

// Batch-node CPU: a small web-service baseline plus the 310-job batch mix.
ModelPtr vm1_cpu() {
  std::vector<Superposition::Component> parts;
  parts.push_back({smooth_cpu(8.0, 2.0, 0.8), 1.0});
  parts.push_back({std::make_unique<JobMix>(JobMixParams{}), 1.0});
  return std::make_unique<Superposition>(std::move(parts));
}

// CPU_ready (scheduling contention): bursty, loosely tracks load.  Kept as
// the documented alternative to the regime_mix the catalogs currently use.
[[maybe_unused]] ModelPtr contention_cpu(double idle, double busy,
                                         double dwell) {
  return switching_cpu(idle, busy, dwell);
}

// ------------------------------------------------------------- VM catalogs

using Builder = std::function<ModelPtr()>;
using MetricTable = std::unordered_map<std::string, Builder>;

// The number of 5-minute steps in one day (diurnal period for VM2-5).
constexpr double kDaySteps = 288.0;
// 30-minute steps per day for VM1.
constexpr double kVm1DaySteps = 48.0;

MetricTable vm1_table() {
  return {
      {"CPU_usedsec", [] { return vm1_cpu(); }},
      {"CPU_ready", [] { return regime_mix(2.0, 25.0, 35.0); }},
      {"Memory_size", [] { return mem_level(1024.0, 0.012, 220.0); }},
      {"Memory_swapped", [] { return mem_level(96.0, 0.01, 40.0); }},
      {"NIC1_received", [] { return spiky_nic(8.0, 40.0); }},
      {"NIC1_transmitted", [] { return spiky_nic(10.0, 55.0); }},
      {"NIC2_received", [] { return regime_mix(1.5, 22.0, 45.0); }},
      {"NIC2_transmitted", [] { return spiky_nic(3.0, 20.0); }},
      {"VD1_read",
       [] {
         // GridFTP staging: job-correlated reads.
         std::vector<Superposition::Component> parts;
         parts.push_back({disk_io(4.0, 0.08, 90.0), 1.0});
         JobMixParams jm;
         jm.classes[0].intensity = 15.0;
         jm.classes[1].intensity = 35.0;
         jm.classes[2].intensity = 50.0;
         parts.push_back({std::make_unique<JobMix>(jm), 0.8});
         return std::make_unique<Superposition>(std::move(parts));
       }},
      {"VD1_write", [] { return regime_mix(6.0, 60.0, 40.0); }},
      {"VD2_read", [] { return disk_io(2.0, 0.05, 45.0); }},
      {"VD2_write", [] { return regime_mix(3.0, 45.0, 50.0); }},
  };
}

MetricTable vm2_table() {
  // VNC proxy: traffic-dominated; CPU follows the forwarded sessions.
  return {
      {"CPU_usedsec", [] { return switching_cpu(5.0, 45.0, 30.0); }},
      {"CPU_ready", [] { return regime_mix(1.0, 18.0, 35.0); }},
      {"Memory_size", [] { return noisy_mem_level(384.0); }},
      {"Memory_swapped", [] { return noisy_mem_level(32.0); }},
      {"NIC1_received", [] { return spiky_nic(25.0, 120.0); }},
      {"NIC1_transmitted", [] { return regime_mix(3.5, 120.0, 45.0); }},
      {"NIC2_received", [] { return smooth_cpu(12.0, 1.5, 0.9); }},
      {"NIC2_transmitted", [] { return spiky_nic(6.0, 50.0); }},
      {"VD1_read", [] { return disk_io(2.0, 0.04, 35.0); }},
      {"VD1_write", [] { return regime_mix(3.0, 35.0, 40.0); }},
      {"VD2_read", [] { return disk_io(1.0, 0.03, 25.0); }},
      {"VD2_write", [] { return disk_io(1.5, 0.05, 30.0); }},
      // The two Fig. 4/5 display traces.
      {"load15", [] { return regime_mix(8.0, 30.0, 25.0); }},
      {"PktIn", [] { return regime_mix(10.0, 250.0, 45.0); }},
  };
}

MetricTable vm3_table() {
  // Windows XP calendar: mostly idle; several devices untouched (NaN cells).
  return {
      {"CPU_usedsec", [] { return smooth_cpu(4.0, 1.2, 0.85); }},
      {"CPU_ready", [] { return smooth_cpu(0.8, 0.4, 0.7); }},
      {"Memory_size", [] { return noisy_mem_level(256.0); }},
      {"Memory_swapped", [] { return idle_device(); }},
      {"NIC1_received", [] { return bursty_nic(0.8, 12.0, 2.0, 0.05, 0.4); }},
      {"NIC1_transmitted", [] { return bursty_nic(0.8, 10.0, 2.0, 0.05, 0.4); }},
      {"NIC2_received", [] { return idle_device(); }},
      {"NIC2_transmitted", [] { return idle_device(); }},
      {"VD1_read", [] { return idle_device(); }},
      {"VD1_write", [] { return idle_device(); }},
      {"VD2_read", [] { return disk_io(0.5, 0.02, 15.0, 0.3); }},
      {"VD2_write", [] { return disk_io(1.0, 0.03, 20.0, 0.3); }},
  };
}

MetricTable vm4_table() {
  // Web + list + wiki: diurnal request load across the board.
  return {
      {"CPU_usedsec",
       [] {
         return std::make_unique<Diurnal>(switching_cpu(10.0, 50.0, 35.0),
                                          kDaySteps, 10.0);
       }},
      {"CPU_ready", [] { return regime_mix(1.5, 22.0, 45.0); }},
      {"Memory_size", [] { return mem_level(768.0, 0.01, 96.0); }},
      {"Memory_swapped", [] { return mem_level(48.0, 0.008, 24.0); }},
      {"NIC1_received", [] { return web_nic(6.0, 90.0, kDaySteps, 10.0); }},
      {"NIC1_transmitted",
       [] { return regime_mix(8.0, 130.0, 40.0); }},
      {"NIC2_received", [] { return regime_mix(1.0, 18.0, 35.0); }},
      {"NIC2_transmitted", [] { return spiky_nic(4.0, 30.0); }},
      {"VD1_read", [] { return disk_io(5.0, 0.09, 60.0); }},
      {"VD1_write",
       [] {
         // Wiki edits: periodic flush pattern on top of spikes.
         return std::make_unique<Diurnal>(disk_io(6.0, 0.1, 50.0), kDaySteps / 4,
                                          4.0);
       }},
      {"VD2_read", [] { return disk_io(2.0, 0.05, 35.0); }},
      {"VD2_write", [] { return regime_mix(3.0, 40.0, 45.0); }},
  };
}

MetricTable vm5_table() {
  // Plain web server on NIC2; NIC1 and VD2_read unattached (NaN cells).
  return {
      {"CPU_usedsec", [] { return smooth_cpu(15.0, 4.0, 0.75, 0.1); }},
      {"CPU_ready", [] { return regime_mix(1.0, 14.0, 50.0); }},
      {"Memory_size", [] { return noisy_mem_level(512.0); }},
      {"Memory_swapped", [] { return noisy_mem_level(24.0); }},
      {"NIC1_received", [] { return idle_device(); }},
      {"NIC1_transmitted", [] { return idle_device(); }},
      {"NIC2_received", [] { return web_nic(5.0, 70.0, kDaySteps, 8.0); }},
      {"NIC2_transmitted", [] { return regime_mix(7.0, 100.0, 40.0); }},
      {"VD1_read", [] { return disk_io(3.0, 0.06, 40.0); }},
      {"VD1_write", [] { return regime_mix(4.0, 45.0, 45.0); }},
      {"VD2_read", [] { return idle_device(); }},
      {"VD2_write", [] { return disk_io(1.0, 0.03, 20.0); }},
  };
}

const MetricTable& table_for(const std::string& vm_id) {
  static const std::unordered_map<std::string, MetricTable> catalog = {
      {"VM1", vm1_table()}, {"VM2", vm2_table()}, {"VM3", vm3_table()},
      {"VM4", vm4_table()}, {"VM5", vm5_table()},
  };
  const auto it = catalog.find(vm_id);
  if (it == catalog.end()) throw NotFound("trace catalog: unknown VM " + vm_id);
  return it->second;
}

std::uint64_t trace_seed(const std::string& vm_id, const std::string& metric,
                         std::uint64_t seed) {
  // Stable per-(vm, metric) stream derivation so traces are independent.
  std::uint64_t mix = seed;
  for (char c : vm_id) mix = splitmix64(mix) ^ static_cast<std::uint64_t>(c);
  for (char c : metric) mix = splitmix64(mix) ^ static_cast<std::uint64_t>(c);
  return splitmix64(mix);
}

}  // namespace

const std::vector<std::string>& paper_metrics() {
  static const std::vector<std::string> metrics = {
      "CPU_usedsec",   "CPU_ready",       "Memory_size",  "Memory_swapped",
      "NIC1_received", "NIC1_transmitted", "NIC2_received", "NIC2_transmitted",
      "VD1_read",      "VD1_write",       "VD2_read",     "VD2_write",
  };
  return metrics;
}

const std::vector<VmSpec>& paper_vms() {
  static const std::vector<VmSpec> vms = {
      {"VM1", "web + Globus GRAM/MDS + GridFTP + PBS head node",
       kThirtyMinutes, 336},
      {"VM2", "Linux port-forwarding proxy for VNC sessions", kFiveMinutes, 288},
      {"VM3", "Windows XP based calendar", kFiveMinutes, 288},
      {"VM4", "web + list + wiki server", kFiveMinutes, 288},
      {"VM5", "web server", kFiveMinutes, 288},
  };
  return vms;
}

const VmSpec& vm_spec(const std::string& vm_id) {
  for (const auto& vm : paper_vms()) {
    if (vm.vm_id == vm_id) return vm;
  }
  throw NotFound("trace catalog: unknown VM " + vm_id);
}

std::string device_of_metric(const std::string& metric) {
  if (metric.starts_with("CPU") || metric == "load15") return "cpu";
  if (metric.starts_with("Memory")) return "memory";
  if (metric.starts_with("NIC1")) return "nic1";
  if (metric.starts_with("NIC2")) return "nic2";
  if (metric == "PktIn") return "nic1";
  if (metric.starts_with("VD1")) return "vd1";
  if (metric.starts_with("VD2")) return "vd2";
  throw NotFound("trace catalog: unknown metric " + metric);
}

std::unique_ptr<MetricModel> make_metric_model(const std::string& vm_id,
                                               const std::string& metric) {
  const MetricTable& table = table_for(vm_id);
  const auto it = table.find(metric);
  if (it == table.end()) {
    throw NotFound("trace catalog: no metric " + metric + " on " + vm_id);
  }
  return it->second();
}

tsdb::TimeSeries make_trace(const std::string& vm_id, const std::string& metric,
                            std::uint64_t seed) {
  return make_trace(vm_id, metric, seed, vm_spec(vm_id).samples);
}

tsdb::TimeSeries make_trace(const std::string& vm_id, const std::string& metric,
                            std::uint64_t seed, std::size_t samples) {
  const VmSpec& spec = vm_spec(vm_id);
  auto model = make_metric_model(vm_id, metric);
  Rng rng(trace_seed(vm_id, metric, seed));
  const TimeAxis axis(0, spec.interval, samples);
  return generate(*model, axis, rng);
}

std::vector<std::pair<tsdb::SeriesKey, tsdb::TimeSeries>> make_vm_suite(
    const std::string& vm_id, std::uint64_t seed) {
  std::vector<std::pair<tsdb::SeriesKey, tsdb::TimeSeries>> suite;
  suite.reserve(paper_metrics().size());
  for (const auto& metric : paper_metrics()) {
    tsdb::SeriesKey key{vm_id, device_of_metric(metric), metric};
    suite.emplace_back(std::move(key), make_trace(vm_id, metric, seed));
  }
  return suite;
}

}  // namespace larp::tracegen
