#include "persist/file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace larp::persist {

namespace testing {

namespace {
std::atomic<WriteHook> g_write_hook{nullptr};
std::atomic<SyncHook> g_sync_hook{nullptr};
}  // namespace

WriteHook set_write_hook(WriteHook hook) noexcept {
  return g_write_hook.exchange(hook);
}

SyncHook set_sync_hook(SyncHook hook) noexcept {
  return g_sync_hook.exchange(hook);
}

}  // namespace testing

namespace {

[[noreturn]] void raise_errno(const std::string& what,
                              const std::filesystem::path& path) {
  throw IoError(what + " " + path.string() + ": " + std::strerror(errno));
}

ssize_t do_write(int fd, const void* buf, std::size_t count) {
  const auto hook = testing::g_write_hook.load(std::memory_order_relaxed);
  return hook ? hook(fd, buf, count) : ::write(fd, buf, count);
}

// fdatasync with EINTR retry.  A signal can interrupt the sync with the data
// still in flight; the only state that makes the durability watermarks true
// is a sync that ran to completion, so the interrupted call is reissued.
int do_fdatasync(int fd) {
  const auto hook = testing::g_sync_hook.load(std::memory_order_relaxed);
  int rc;
  do {
    rc = hook ? hook(fd) : ::fdatasync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

int do_fsync(int fd) {
  const auto hook = testing::g_sync_hook.load(std::memory_order_relaxed);
  int rc;
  do {
    rc = hook ? hook(fd) : ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

}  // namespace

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void AppendFile::open(const std::filesystem::path& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) raise_errno("AppendFile: cannot open", path);
  path_ = path;
}

void AppendFile::append(std::span<const std::byte> data) {
  // write(2) transfers as much as it likes: a signal, memory pressure, or a
  // hooked fault injector can all return short.  Group commit hands this
  // function multi-frame buffers, so looping here (not "one write per
  // group") is what keeps WAL framing intact under partial transfers.
  const auto* p = reinterpret_cast<const char*>(data.data());
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = do_write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("AppendFile: write failed on", path_);
    }
    if (n == 0) {
      // A zero-byte transfer for a non-zero request never makes progress;
      // erroring out beats spinning forever on a wedged descriptor.
      errno = EIO;
      raise_errno("AppendFile: write returned 0 on", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::uint64_t AppendFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) raise_errno("AppendFile: fstat failed on", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void AppendFile::truncate(std::uint64_t size) {
  int rc;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) raise_errno("AppendFile: ftruncate failed on", path_);
}

void AppendFile::sync() {
  if (do_fdatasync(fd_) != 0) {
    raise_errno("AppendFile: fdatasync failed on", path_);
  }
}

int AppendFile::duplicate_handle() const {
  const int dup_fd = ::fcntl(fd_, F_DUPFD_CLOEXEC, 0);
  if (dup_fd < 0) raise_errno("AppendFile: dup failed on", path_);
  return dup_fd;
}

void AppendFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void sync_handle(int fd) {
  if (do_fdatasync(fd) != 0) {
    throw IoError(std::string("sync_handle: fdatasync failed: ") +
                  std::strerror(errno));
  }
}

void close_handle(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

std::vector<std::byte> read_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) raise_errno("read_file: cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    raise_errno("read_file: fstat failed on", path);
  }
  std::vector<std::byte> contents(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < contents.size()) {
    const ssize_t n = ::read(fd, contents.data() + got, contents.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      raise_errno("read_file: read failed on", path);
    }
    if (n == 0) break;  // file shrank under us; keep what we have
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  contents.resize(got);
  return contents;
}

void publish_file(const std::filesystem::path& path,
                  std::span<const std::byte> contents) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    AppendFile file;
    // O_APPEND over a fresh file: remove any orphaned tmp first so a retry
    // after a crash does not append to stale bytes.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    file.open(tmp);
    file.append(contents);
    file.sync();
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    raise_errno("publish_file: rename failed for", path);
  }
  sync_directory(path.parent_path());
}

void sync_directory(const std::filesystem::path& dir) {
  const std::filesystem::path target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) raise_errno("sync_directory: cannot open", target);
  const int rc = do_fsync(fd);
  ::close(fd);
  if (rc != 0) raise_errno("sync_directory: fsync failed on", target);
}

void ensure_directory(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("ensure_directory: cannot create " + dir.string() + ": " +
                  ec.message());
  }
}

}  // namespace larp::persist
