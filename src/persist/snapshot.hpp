// Versioned, checksummed model snapshots.
//
// A snapshot is one self-contained file holding a full serialized engine
// state (payload bytes are produced by the caller — see
// serve::PredictionEngine::snapshot).  File layout, all little-endian:
//
//   [ magic  u64 = "LARPSNP1" ]                      -- format identity
//   [ version u32 ]                                  -- container format version
//   [ epoch   u64 ]                                  -- snapshot ordinal (monotone)
//   [ payload_size u64 ]
//   [ payload bytes ... ]
//   [ crc32c u32 (masked) over everything above ]
//
// Publication is atomic (write-to-temp + fsync + rename + directory fsync),
// and validation is total: a reader accepts a snapshot only when the magic,
// version, size, and checksum all hold, so a bit flip anywhere in the file
// rejects it and recovery falls back to the previous retained snapshot.
//
// Naming: snapshot-<epoch, 20 digits>.snap in the snapshot directory, so a
// lexicographic directory sort is also an epoch sort.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "persist/io.hpp"

namespace larp::persist {

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// One discovered snapshot file (not yet validated).
struct SnapshotInfo {
  std::filesystem::path path;
  std::uint64_t epoch = 0;
};

/// A validated, fully loaded snapshot.
struct LoadedSnapshot {
  std::uint64_t epoch = 0;
  std::uint32_t version = 0;
  std::vector<std::byte> payload;
};

/// Atomically publishes `payload` as snapshot epoch `epoch` in `dir`
/// (created if absent).  Returns the published path.
std::filesystem::path publish_snapshot(const std::filesystem::path& dir,
                                       std::uint64_t epoch,
                                       std::span<const std::byte> payload);

/// All snapshot files in `dir`, ascending epoch.  Temp files and foreign
/// names are ignored; missing directory yields an empty list.
[[nodiscard]] std::vector<SnapshotInfo> list_snapshots(
    const std::filesystem::path& dir);

/// Loads and validates one snapshot file; throws CorruptData when the magic,
/// version, size, or checksum fails, IoError when unreadable.
[[nodiscard]] LoadedSnapshot load_snapshot(const std::filesystem::path& path);

/// The newest snapshot in `dir` that validates, walking backwards past
/// corrupt or torn files; nullopt when none survives.
[[nodiscard]] std::optional<LoadedSnapshot> load_newest_valid(
    const std::filesystem::path& dir);

/// Deletes the oldest snapshots beyond the newest `keep` (keep >= 1).
/// Corrupt files do not count toward the retained set.
void retain_snapshots(const std::filesystem::path& dir, std::size_t keep);

}  // namespace larp::persist
