// Per-shard append-only write-ahead log.
//
// Each engine shard owns one logical log: an ordered sequence of frames,
// split across segment files for bounded recovery reads and cheap garbage
// collection.  Segment naming:
//
//   wal-<shard, 4 digits>-<start_seq, 20 digits>.log
//
// Segment file layout:
//   [ magic u64 = "LARPWAL1" ][ version u32 ][ shard u32 ][ start_seq u64 ]
//   frame*
//
// Frame layout (all little-endian):
//   [ length u32 ]        -- byte count of seq + payload (i.e. 8 + payload)
//   [ crc    u32 ]        -- masked CRC32C over the seq + payload bytes
//   [ seq    u64 ]        -- this frame's log sequence number
//   [ payload bytes ... ]
//
// Durability policy (WalConfig::fsync):
//   * Always  — fdatasync after every append (lose nothing, pay a sync per
//               record);
//   * EveryN  — fdatasync after every n-th append (lose at most n-1 records);
//   * Interval— fdatasync when `interval` has elapsed since the last sync
//               (checked on append/commit; an idle writer needs a periodic
//               sync_if_due() tick to keep the loss window bounded).
//
// Durability mode (WalConfig::mode):
//   * Sync  — the policy runs inline on commit(), as described above;
//   * Async — commit() only *publishes* its frames (one write(2), no sync);
//             a background WalSyncer calls sync_published() to move the
//             durable watermark forward on a backlog/deadline policy.  The
//             appender is never blocked behind an fdatasync (except at the
//             rare segment rotation), at the price of a loss window of up to
//             backlog_frames + one in-flight group, time-bounded by the
//             syncer deadline.  FsyncPolicy::Always ignores Async and stays
//             inline — "lose nothing" cannot be met by a background sync.
//
// The writer tracks two watermarks for this split:
//   published_seq — frames handed to write(2) by commit() (in page cache);
//   durable_seq   — frames covered by a completed fdatasync.
// Only the current segment ever holds non-durable bytes: rotation syncs the
// outgoing segment before switching, so one fdatasync of the current file
// always moves durable_seq all the way to the published watermark.
//
// Group commit: stage() encodes frames into an in-memory group and commit()
// flushes the whole group with one write per segment run plus one policy
// sync decision (a B-frame group counts as B appends toward EveryN).  The
// serving engine stages one group per (shard, batch) under the shard lock,
// paying one syscall per shard per batched call instead of one per frame.
//
// Recovery contract: replay() delivers the longest checksum-valid prefix of
// the log at or past `from_seq` and stops at the first torn or corrupt
// frame — bytes beyond a bad frame are unreachable by construction, because
// sequence numbers past a hole cannot be trusted.  WalWriter::open()
// truncates a torn tail off the newest segment so appends continue from the
// last durable frame.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "persist/file.hpp"
#include "persist/io.hpp"

namespace larp::persist {

inline constexpr std::uint32_t kWalFormatVersion = 1;

enum class FsyncPolicy : std::uint8_t { Always, EveryN, Interval };

/// Sync: the fsync policy runs inline on commit().  Async: commit() never
/// syncs (FsyncPolicy::Always excepted); a WalSyncer thread does.
enum class DurabilityMode : std::uint8_t { Sync, Async };

/// Injectable time source for the Interval policy and the syncer deadline.
/// Null means std::chrono::steady_clock::now.  A test clock must be safe to
/// call from two threads at once (e.g. read an atomic tick counter) — the
/// writer calls it under the shard lock, the syncer from its own thread.
using WalClock = std::function<std::chrono::steady_clock::time_point()>;

struct WalConfig {
  /// Rotate to a new segment once the current one exceeds this many bytes.
  std::size_t segment_bytes = 4u << 20;
  FsyncPolicy fsync = FsyncPolicy::EveryN;
  /// FsyncPolicy::EveryN: sync after every n-th append (n >= 1).
  std::size_t fsync_every_n = 64;
  /// FsyncPolicy::Interval: sync when this much time elapsed since the last.
  std::chrono::milliseconds fsync_interval{50};
  /// Inline (Sync) or background (Async) execution of the fsync policy.
  DurabilityMode mode = DurabilityMode::Sync;
  /// Time source override for tests; null = steady_clock.
  WalClock clock{};
};

/// Appender for one shard's log.  The append surface (append/stage/commit/
/// sync/flush/prune_below) is not internally synchronized: the owning
/// shard's mutex serializes it, matching the engine's locking contract.
/// The watermark surface (published_seq/durable_seq/unsynced_appends/
/// last_sync_time/sync_published) IS internally synchronized so a WalSyncer
/// thread can run it concurrently with the appender — sync_published()
/// fdatasyncs through a dup(2)'d descriptor and never touches appender
/// state, so the serving thread is never blocked behind a background sync.
class WalWriter {
 public:
  /// Opens the shard's log in `dir` (created if absent), repairs a torn tail
  /// on the newest segment, and positions the writer at the next sequence
  /// number after the last valid frame.  `expected_next_seq` (when not
  /// npos-like ~0) must match that position — the engine passes its replay
  /// watermark so an inconsistent directory fails loudly instead of forking
  /// the log.
  WalWriter(std::filesystem::path dir, std::uint32_t shard, WalConfig config,
            std::uint64_t expected_next_seq = kAnySeq);

  static constexpr std::uint64_t kAnySeq = ~0ull;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one frame; returns its sequence number.  Durability follows the
  /// configured fsync policy.  Steady-state appends reuse the frame buffer —
  /// no heap allocation once its capacity is established.  Equivalent to
  /// stage() + commit() of a one-frame group.
  std::uint64_t append(std::span<const std::byte> payload,
                       std::size_t weight = 1);

  /// Group commit, part 1: encodes one frame into the group buffer and
  /// assigns its sequence number WITHOUT writing anything.  Staged frames
  /// reach the file only at the next commit(); callers must commit before
  /// releasing whatever lock serializes this writer, or the staged suffix is
  /// silently dropped (never half-written — nothing hit the file).
  ///
  /// `weight` is the number of LOGICAL RECORDS the frame carries (>= 1): a
  /// compressed block frame packing a whole batch weighs its op count, so
  /// the EveryN policy and the async syncer's backlog trigger keep counting
  /// records — the loss-window guarantee ("lose at most n-1 records") is
  /// independent of how many records share a frame.
  std::uint64_t stage(std::span<const std::byte> payload,
                      std::size_t weight = 1);

  /// Group commit, part 2: writes every staged frame with one append per
  /// segment run and applies ONE policy-driven sync decision for the whole
  /// group (the group counts as its frame count toward EveryN).  A group
  /// that crosses the rotation boundary is split there — frames up to the
  /// boundary are flushed and synced into the old segment, the rest open the
  /// next one — so the replay contiguity invariant (segment k+1 starts where
  /// k's valid frames end) holds for any crash point.  No-op when nothing is
  /// staged.
  void commit();

  /// Forces buffered frames durable regardless of policy.  Appender-side
  /// (runs under the owner's serialization).
  void sync();

  /// sync() and return the durable watermark — "block until everything
  /// committed so far is durable".  snapshot() and shutdown use this.
  std::uint64_t flush();

  /// Applies a due FsyncPolicy::Interval sync on an idle writer.  The policy
  /// is otherwise only evaluated on the next append, so a writer that goes
  /// idle would hold unsynced frames indefinitely — an unbounded loss
  /// window.  Call this from a maintenance tick; returns true when a sync
  /// was performed.  No-op (false) for other policies, under
  /// DurabilityMode::Async (the syncer owns the deadline there), when
  /// nothing is unsynced, or when the interval has not yet elapsed.
  bool sync_if_due();

  /// Syncer-side: makes every frame published at the moment of the call
  /// durable, through a dup(2)'d descriptor, WITHOUT the owner's lock — the
  /// appender keeps committing (and may even rotate segments) while the
  /// fdatasync runs.  Returns the new durable watermark.  Safe to call from
  /// exactly one syncer thread concurrently with the appender thread.
  std::uint64_t sync_published();

  /// Sequence number just past the last frame handed to write(2).
  [[nodiscard]] std::uint64_t published_seq() const;
  /// Sequence number just past the last frame covered by an fdatasync.
  [[nodiscard]] std::uint64_t durable_seq() const;
  /// When the durable watermark last advanced (injected-clock time).
  [[nodiscard]] std::chrono::steady_clock::time_point last_sync_time() const;

  /// Logical records (frame weights) published but not yet durable (0 =
  /// everything durable).  Staged frames of an uncommitted group are not
  /// counted — they never reached write(2).
  [[nodiscard]] std::size_t unsynced_appends() const;

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Deletes segments whose every frame is below `min_seq` (already covered
  /// by a retained snapshot on every recovery path).
  void prune_below(std::uint64_t min_seq);

 private:
  void open_segment(std::uint64_t start_seq);
  void publish(std::uint64_t seq, std::uint64_t records);
  void maybe_sync();
  [[nodiscard]] std::chrono::steady_clock::time_point now() const {
    return clock_();
  }

  std::filesystem::path dir_;
  std::uint32_t shard_;
  WalConfig config_;
  WalClock clock_;
  AppendFile file_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t segment_size_ = 0;
  // Watermark state shared with the syncer thread.  sync_mutex_ also covers
  // the fd handoff at segment rotation, so duplicate_handle() never races
  // the AppendFile::open() that replaces the descriptor.
  mutable std::mutex sync_mutex_;
  std::uint64_t published_seq_ = 0;
  std::uint64_t durable_seq_ = 0;
  // Record-weighted watermarks backing unsynced_appends(): monotone counts
  // of logical records staged since open, published and made durable.  With
  // one-record frames they track the seq watermarks exactly; block frames
  // spread them apart.
  std::uint64_t published_records_ = 0;
  std::uint64_t durable_records_ = 0;
  std::chrono::steady_clock::time_point last_sync_{};
  // Staged-group state: frame_scratch_ holds the concatenated encoded frames
  // of the open group, staged_sizes_ their individual byte counts and
  // staged_weights_ their record counts (so commit can split the group — and
  // its record accounting — at a segment-rotation boundary).  The buffers
  // keep their capacity across groups — steady-state batches allocate
  // nothing.
  std::vector<std::byte> frame_scratch_;
  std::vector<std::uint32_t> staged_sizes_;
  std::vector<std::uint32_t> staged_weights_;
};

/// One recovered frame.
struct WalFrame {
  std::uint64_t seq = 0;
  std::span<const std::byte> payload;  // valid only during the callback
};

/// Statistics of one replay pass.
struct WalReplayReport {
  std::uint64_t frames_delivered = 0;   // callbacks invoked (seq >= from_seq)
  std::uint64_t frames_skipped = 0;     // valid frames below from_seq
  std::uint64_t next_seq = 0;           // sequence after the last valid frame
  bool truncated_tail = false;          // stopped at a torn/corrupt frame
};

/// Replays shard `shard`'s log from `dir`, invoking `fn` for every valid
/// frame with seq >= from_seq, in sequence order.  Stops at the first
/// invalid frame (torn tail or corruption) — the checksum-valid prefix rule.
WalReplayReport replay_wal(const std::filesystem::path& dir, std::uint32_t shard,
                           std::uint64_t from_seq,
                           const std::function<void(const WalFrame&)>& fn);

/// Physically truncates shard `shard`'s log so that `next_seq` is the next
/// sequence number a writer will assign: deletes segments starting at or
/// past `next_seq`, and cuts the segment containing it back to its valid
/// prefix below `next_seq`.  Recovery calls this after a replay stopped at
/// a corrupt frame, discarding the untrustworthy suffix for good.
void repair_wal(const std::filesystem::path& dir, std::uint32_t shard,
                std::uint64_t next_seq);

/// Segment files of one shard in `dir`, ascending start_seq.
struct WalSegmentInfo {
  std::filesystem::path path;
  std::uint64_t start_seq = 0;
};
[[nodiscard]] std::vector<WalSegmentInfo> list_wal_segments(
    const std::filesystem::path& dir, std::uint32_t shard);

}  // namespace larp::persist
