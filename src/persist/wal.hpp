// Per-shard append-only write-ahead log.
//
// Each engine shard owns one logical log: an ordered sequence of frames,
// split across segment files for bounded recovery reads and cheap garbage
// collection.  Segment naming:
//
//   wal-<shard, 4 digits>-<start_seq, 20 digits>.log
//
// Segment file layout:
//   [ magic u64 = "LARPWAL1" ][ version u32 ][ shard u32 ][ start_seq u64 ]
//   frame*
//
// Frame layout (all little-endian):
//   [ length u32 ]        -- byte count of seq + payload (i.e. 8 + payload)
//   [ crc    u32 ]        -- masked CRC32C over the seq + payload bytes
//   [ seq    u64 ]        -- this frame's log sequence number
//   [ payload bytes ... ]
//
// Durability policy (WalConfig::fsync):
//   * Always  — fdatasync after every append (lose nothing, pay a sync per
//               record);
//   * EveryN  — fdatasync after every n-th append (lose at most n-1 records);
//   * Interval— fdatasync when `interval` has elapsed since the last sync
//               (checked on append; lose at most one interval of records).
//
// Recovery contract: replay() delivers the longest checksum-valid prefix of
// the log at or past `from_seq` and stops at the first torn or corrupt
// frame — bytes beyond a bad frame are unreachable by construction, because
// sequence numbers past a hole cannot be trusted.  WalWriter::open()
// truncates a torn tail off the newest segment so appends continue from the
// last durable frame.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "persist/file.hpp"
#include "persist/io.hpp"

namespace larp::persist {

inline constexpr std::uint32_t kWalFormatVersion = 1;

enum class FsyncPolicy : std::uint8_t { Always, EveryN, Interval };

struct WalConfig {
  /// Rotate to a new segment once the current one exceeds this many bytes.
  std::size_t segment_bytes = 4u << 20;
  FsyncPolicy fsync = FsyncPolicy::EveryN;
  /// FsyncPolicy::EveryN: sync after every n-th append (n >= 1).
  std::size_t fsync_every_n = 64;
  /// FsyncPolicy::Interval: sync when this much time elapsed since the last.
  std::chrono::milliseconds fsync_interval{50};
};

/// Appender for one shard's log.  Not internally synchronized: the owning
/// shard's mutex serializes append() with everything else, matching the
/// engine's locking contract.
class WalWriter {
 public:
  /// Opens the shard's log in `dir` (created if absent), repairs a torn tail
  /// on the newest segment, and positions the writer at the next sequence
  /// number after the last valid frame.  `expected_next_seq` (when not
  /// npos-like ~0) must match that position — the engine passes its replay
  /// watermark so an inconsistent directory fails loudly instead of forking
  /// the log.
  WalWriter(std::filesystem::path dir, std::uint32_t shard, WalConfig config,
            std::uint64_t expected_next_seq = kAnySeq);

  static constexpr std::uint64_t kAnySeq = ~0ull;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one frame; returns its sequence number.  Durability follows the
  /// configured fsync policy.  Steady-state appends reuse the frame buffer —
  /// no heap allocation once its capacity is established.
  std::uint64_t append(std::span<const std::byte> payload);

  /// Forces buffered frames durable regardless of policy.
  void sync();

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Deletes segments whose every frame is below `min_seq` (already covered
  /// by a retained snapshot on every recovery path).
  void prune_below(std::uint64_t min_seq);

 private:
  void open_segment(std::uint64_t start_seq);
  void maybe_sync();

  std::filesystem::path dir_;
  std::uint32_t shard_;
  WalConfig config_;
  AppendFile file_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t segment_size_ = 0;
  std::size_t appends_since_sync_ = 0;
  std::chrono::steady_clock::time_point last_sync_{};
  std::vector<std::byte> frame_scratch_;
};

/// One recovered frame.
struct WalFrame {
  std::uint64_t seq = 0;
  std::span<const std::byte> payload;  // valid only during the callback
};

/// Statistics of one replay pass.
struct WalReplayReport {
  std::uint64_t frames_delivered = 0;   // callbacks invoked (seq >= from_seq)
  std::uint64_t frames_skipped = 0;     // valid frames below from_seq
  std::uint64_t next_seq = 0;           // sequence after the last valid frame
  bool truncated_tail = false;          // stopped at a torn/corrupt frame
};

/// Replays shard `shard`'s log from `dir`, invoking `fn` for every valid
/// frame with seq >= from_seq, in sequence order.  Stops at the first
/// invalid frame (torn tail or corruption) — the checksum-valid prefix rule.
WalReplayReport replay_wal(const std::filesystem::path& dir, std::uint32_t shard,
                           std::uint64_t from_seq,
                           const std::function<void(const WalFrame&)>& fn);

/// Physically truncates shard `shard`'s log so that `next_seq` is the next
/// sequence number a writer will assign: deletes segments starting at or
/// past `next_seq`, and cuts the segment containing it back to its valid
/// prefix below `next_seq`.  Recovery calls this after a replay stopped at
/// a corrupt frame, discarding the untrustworthy suffix for good.
void repair_wal(const std::filesystem::path& dir, std::uint32_t shard,
                std::uint64_t next_seq);

/// Segment files of one shard in `dir`, ascending start_seq.
struct WalSegmentInfo {
  std::filesystem::path path;
  std::uint64_t start_seq = 0;
};
[[nodiscard]] std::vector<WalSegmentInfo> list_wal_segments(
    const std::filesystem::path& dir, std::uint32_t shard);

}  // namespace larp::persist
