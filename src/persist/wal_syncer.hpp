// WalSyncer — the background durability thread (RocksDB-style) behind
// DurabilityMode::Async.  One instance per engine watches every shard's
// WalWriter watermarks and issues the fdatasyncs the writers stopped doing
// inline, on a backlog/deadline policy:
//
//   * backlog:  a writer with >= backlog_frames published-but-not-durable
//               frames is synced on the next pass (the engine notify()s the
//               worker when a commit crosses the threshold, so the pass runs
//               promptly rather than at the next period);
//   * deadline: a writer with ANY unsynced frame is synced once `deadline`
//               has elapsed since its durable watermark last advanced — the
//               time bound on the async loss window, and the generalization
//               of the old idle-tick sync_if_due() to every policy.
//
// Syncs go through WalWriter::sync_published(), which fdatasyncs a dup(2)'d
// descriptor WITHOUT the shard lock — serving threads keep committing while
// the sync runs.  Loss window under Async: at most max(backlog_frames - 1,
// frames published within one deadline) plus any group whose commit() raced
// the crash; an acknowledged frame is NOT yet durable until the syncer (or
// a flush) catches up.
//
// The optional `tick` hook runs first on every pass; the engine hangs its
// Sync-mode Interval idle tick there so one maintenance thread serves both
// durability modes (and larp_cli serve-sim no longer drives syncs by hand).
//
// Tests drive poll() directly with an injected clock instead of start()ing
// the thread — the policy is then fully deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "persist/wal.hpp"
#include "util/background_worker.hpp"

namespace larp::persist {

class WalSyncer {
 public:
  struct Config {
    /// Sync a writer once this many published frames await durability.
    std::size_t backlog_frames = 64;
    /// ... and at the latest this long after its last durability advance.
    std::chrono::milliseconds deadline{50};
    /// Time source override for tests; null = steady_clock.  Must be safe
    /// to call concurrently (see WalClock).
    WalClock clock{};
    /// Extra hook run at the start of every pass (engine idle tick).
    std::function<void()> tick{};
  };

  /// The writers must outlive this object.  Nothing runs until start().
  WalSyncer(std::vector<WalWriter*> writers, Config config);

  /// stop()s; does NOT run a final sync — owners flush the writers
  /// themselves after the thread is gone (PredictionEngine's destructor
  /// order guarantees exactly that).
  ~WalSyncer();

  WalSyncer(const WalSyncer&) = delete;
  WalSyncer& operator=(const WalSyncer&) = delete;

  /// Launches the background thread: poll() every ~deadline/4, and
  /// immediately on notify().
  void start();

  /// Joins the background thread; idempotent.
  void stop();

  /// Kicks an immediate pass (a commit crossed the backlog threshold).
  void notify();

  /// One policy pass over every writer; returns how many were synced.
  /// Thread-safe against the writers' appender threads, but poll() itself
  /// must not run concurrently with poll()/flush() from a second thread
  /// (the background thread is the only caller in production).
  std::size_t poll();

  /// Syncs every writer's published watermark unconditionally.
  void flush();

  /// Background fdatasyncs issued so far (monotonic; tests + stats).
  [[nodiscard]] std::size_t syncs_performed() const noexcept {
    return syncs_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<WalWriter*> writers_;
  Config config_;
  WalClock clock_;
  std::atomic<std::size_t> syncs_{0};
  std::optional<BackgroundWorker> worker_;
};

}  // namespace larp::persist
