// Thin POSIX file layer for the durability subsystem: append-only writes,
// explicit fsync, atomic publish via write-to-temp + rename.
//
// Everything durable goes through this file so the fsync discipline is
// auditable in one place:
//  * AppendFile::sync() is fdatasync (frame data + size, not timestamps);
//  * publish_file() fsyncs the temp file BEFORE the rename and the parent
//    directory AFTER it — the order that makes the rename itself durable;
//  * readers never see a half-written published file: a crash leaves either
//    the old name, a *.tmp orphan (ignored by directory scans), or the
//    complete new file.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace larp::persist {

/// Thrown when the OS rejects a durability operation (open/write/fsync/
/// rename failures).  Distinct from CorruptData: this is an environment
/// problem, not an integrity one.
class IoError : public Error {
 public:
  using Error::Error;
};

/// An append-only file descriptor with explicit durability control.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  /// Opens (creating if absent) for appending.  Throws IoError on failure.
  void open(const std::filesystem::path& path);
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

  /// Appends every byte (loops over partial writes).  Throws IoError.
  void append(std::span<const std::byte> data);

  /// Current file size in bytes.
  [[nodiscard]] std::uint64_t size() const;

  /// Truncates to `size` bytes (torn-tail repair).  Throws IoError.
  void truncate(std::uint64_t size);

  /// fdatasync: makes every appended byte durable.  Throws IoError.
  void sync();

  /// dup(2) of the open descriptor.  The duplicate shares the open file
  /// description, so `sync_handle(duplicate_handle())` from another thread
  /// makes every byte appended *so far* durable without blocking this
  /// object — even if it rotates to a different file in the meantime (the
  /// duplicate keeps the old description alive).  The caller owns the
  /// handle: pair with sync_handle()/close_handle().  Throws IoError.
  [[nodiscard]] int duplicate_handle() const;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::filesystem::path path_;
};

/// fdatasync on a raw handle from AppendFile::duplicate_handle().  Throws
/// IoError (the handle stays open; the caller still close_handle()s it).
void sync_handle(int fd);

namespace testing {

/// Fault-injection seams for the durability syscalls.  Every write(2) issued
/// by this layer goes through the write hook and every fdatasync/fsync
/// through the sync hook, so tests can force short writes, EINTR storms, and
/// hard I/O failures at exact byte offsets — the conditions that become real
/// once a network front-end shares the process (signals, socket pressure).
/// A null hook (the default) means the real syscall.  Hooks are process-
/// global: install from a single thread, restore the previous value when
/// done, never leave one set across tests.
using WriteHook = ssize_t (*)(int fd, const void* buf, std::size_t count);
using SyncHook = int (*)(int fd);

/// Returns the previously installed hook.
WriteHook set_write_hook(WriteHook hook) noexcept;
SyncHook set_sync_hook(SyncHook hook) noexcept;

/// RAII install/restore for one test scope.
class FaultInjectionGuard {
 public:
  FaultInjectionGuard(WriteHook write, SyncHook sync) noexcept
      : prev_write_(set_write_hook(write)), prev_sync_(set_sync_hook(sync)) {}
  ~FaultInjectionGuard() {
    (void)set_write_hook(prev_write_);
    (void)set_sync_hook(prev_sync_);
  }
  FaultInjectionGuard(const FaultInjectionGuard&) = delete;
  FaultInjectionGuard& operator=(const FaultInjectionGuard&) = delete;

 private:
  WriteHook prev_write_;
  SyncHook prev_sync_;
};

}  // namespace testing

/// Closes a handle from AppendFile::duplicate_handle().
void close_handle(int fd) noexcept;

/// Reads a whole file into memory; throws IoError when unreadable.
[[nodiscard]] std::vector<std::byte> read_file(const std::filesystem::path& path);

/// Atomically publishes `contents` at `path`: writes `path` + ".tmp", fsyncs
/// it, renames over `path`, and fsyncs the parent directory.  A crash at any
/// point leaves either no file, a stale ".tmp" orphan, or the complete file.
void publish_file(const std::filesystem::path& path,
                  std::span<const std::byte> contents);

/// fsyncs a directory so previously renamed/created entries are durable.
void sync_directory(const std::filesystem::path& dir);

/// mkdir -p with IoError on failure.
void ensure_directory(const std::filesystem::path& dir);

}  // namespace larp::persist
