#include "persist/codec.hpp"

namespace larp::persist::codec {

void encode_f64_block(BlockWriter& w, std::span<const double> xs) {
  XorState state;
  for (double x : xs) XorEncoder::put(w, state, x);
}

std::size_t decode_f64_block(BlockReader& r, std::size_t count,
                             std::vector<double>& out) {
  XorState state;
  const std::size_t at = out.size();
  out.reserve(at + count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(XorDecoder::get(r, state));
  }
  return at;
}

void encode_i64_block(BlockWriter& w, std::span<const std::int64_t> xs) {
  DodEncoder enc;
  for (std::int64_t x : xs) enc.put(w, x);
}

void decode_i64_block(BlockReader& r, std::size_t count,
                      std::vector<std::int64_t>& out) {
  DodDecoder dec;
  out.reserve(out.size() + count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(dec.get(r));
}

}  // namespace larp::persist::codec
