#include "persist/crc32c.hpp"

#include <array>

namespace larp::persist {

namespace {

// 8 tables of 256 entries: table[0] is the classic byte-at-a-time table for
// the reflected polynomial 0x82F63B78; table[k] advances a byte through k
// additional zero bytes, which is what lets the hot loop fold 8 input bytes
// per iteration (slicing-by-8).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::byte> data) noexcept {
  const auto& t = kTables.t;
  std::uint32_t crc = state;
  std::size_t i = 0;
  const std::size_t n = data.size();
  for (; i + 8 <= n; i += 8) {
    const auto b = [&](std::size_t j) {
      return static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(data[i + j]));
    };
    const std::uint32_t low = crc ^ (b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24));
    crc = t[7][low & 0xFFu] ^ t[6][(low >> 8) & 0xFFu] ^
          t[5][(low >> 16) & 0xFFu] ^ t[4][low >> 24] ^
          t[3][b(4)] ^ t[2][b(5)] ^ t[1][b(6)] ^ t[0][b(7)];
  }
  for (; i < n; ++i) {
    crc = t[0][(crc ^ std::to_integer<std::uint8_t>(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32c_finish(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
  return crc32c_finish(crc32c_update(crc32c_init(), data));
}

}  // namespace larp::persist
