// persist::codec — Gorilla-style bit-packing primitives for time-series
// payloads (DESIGN.md §11).
//
// Two encoders cover the two shapes durable payloads are made of:
//
//   * DodEncoder/DodDecoder — delta-of-delta for monotone-ish integer
//     sequences (logical timestamps, sequence numbers).  Regularly sampled
//     series have a constant delta, so the second difference is almost
//     always zero: one bit per value.  Buckets widen for jitter and fall
//     back to a full zigzag value for arbitrary (backward, irregular)
//     jumps, so round-trip is exact for ANY int64 sequence.
//
//   * XorEncoder/XorDecoder — IEEE-754 doubles XORed against the previous
//     value's bit pattern.  Slowly-varying doubles share sign/exponent and
//     leading mantissa bits, so the XOR is a short run of meaningful bits
//     inside a stable (leading-zeros, length) window.  Encoding operates on
//     bit patterns only — never on arithmetic values — so every payload
//     (NaN payloads included) round-trips bit-exactly.  Non-finite and
//     denormal values additionally force the UNCOMPRESSED ESCAPE (a full
//     64-bit window): adversarial bit patterns cost 67 bits, never a
//     pathological window search, and a reader needs no special cases.
//
// Both encoders are explicit state machines (prev/prev-delta, prev-bits +
// window) whose state can be saved/loaded, so a chain may span many frames:
// the serving engine persists codec state in the snapshot and continues the
// chain across crash recovery (see serve/wal_codec.hpp).
//
// Bit order: values are appended least-significant-bit first into a byte
// stream; BlockWriter/BlockReader agree and nothing else reads the bits.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "persist/io.hpp"

namespace larp::persist::codec {

/// Append-only bit stream.  Reuse across blocks (clear()) keeps steady-state
/// encoding allocation-free once capacity is established.
class BlockWriter {
 public:
  void clear() noexcept {
    buffer_.clear();
    acc_ = 0;
    acc_bits_ = 0;
  }

  /// Appends the low `count` bits of `value` (count <= 64).
  void bits(std::uint64_t value, unsigned count) {
    while (count > 0) {
      const unsigned take = std::min(count, 64u - acc_bits_);
      std::uint64_t chunk = value;
      if (take < 64u) chunk &= (1ull << take) - 1ull;
      acc_ |= chunk << acc_bits_;
      acc_bits_ += take;
      value = take < 64u ? value >> take : 0;
      count -= take;
      if (acc_bits_ == 64u) spill();
    }
  }

  void bit(bool v) { bits(v ? 1u : 0u, 1); }

  /// LEB128-style varint inside the bit stream (7 value bits + 1 continue
  /// bit per group); unbounded range, cheap for the small counts it carries.
  void uvarint(std::uint64_t v) {
    while (v >= 0x80u) {
      bits((v & 0x7Fu) | 0x80u, 8);
      v >>= 7;
    }
    bits(v, 8);
  }

  /// Flushes the partial accumulator (zero-padded to a byte boundary) and
  /// returns the encoded bytes.  The writer stays usable: bytes() may be
  /// called once, at the end of a block.
  [[nodiscard]] std::span<const std::byte> bytes() {
    while (acc_bits_ > 0) {
      buffer_.push_back(static_cast<std::byte>(acc_ & 0xFFu));
      acc_ >>= 8;
      acc_bits_ -= std::min(acc_bits_, 8u);
    }
    acc_ = 0;
    return buffer_;
  }

 private:
  void spill() {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<std::byte>((acc_ >> (8 * i)) & 0xFFu));
    }
    acc_ = 0;
    acc_bits_ = 0;
  }

  std::vector<std::byte> buffer_;
  std::uint64_t acc_ = 0;
  unsigned acc_bits_ = 0;
};

/// Bounds-checked reader over a BlockWriter's bytes.  Reading past the end
/// throws CorruptData, mirroring io::Reader's contract.
class BlockReader {
 public:
  explicit BlockReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint64_t bits(unsigned count) {
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < count) {
      if (acc_bits_ == 0) refill();
      const unsigned take = std::min(count - got, acc_bits_);
      const std::uint64_t mask =
          take < 64u ? (1ull << take) - 1ull : ~0ull;
      out |= (acc_ & mask) << got;
      acc_ >>= (take < 64u ? take : 0);
      if (take == 64u) acc_ = 0;
      acc_bits_ -= take;
      got += take;
    }
    return out;
  }

  [[nodiscard]] bool bit() { return bits(1) != 0; }

  [[nodiscard]] std::uint64_t uvarint() {
    std::uint64_t out = 0;
    unsigned shift = 0;
    for (;;) {
      const std::uint64_t group = bits(8);
      out |= (group & 0x7Fu) << shift;
      if ((group & 0x80u) == 0) return out;
      shift += 7;
      if (shift > 63) throw CorruptData("codec: uvarint exceeds 64 bits");
    }
  }

 private:
  void refill() {
    if (cursor_ >= data_.size()) {
      throw CorruptData("codec: read past end of block");
    }
    const std::size_t take = std::min<std::size_t>(8, data_.size() - cursor_);
    acc_ = 0;
    for (std::size_t i = 0; i < take; ++i) {
      acc_ |= static_cast<std::uint64_t>(
                  std::to_integer<std::uint8_t>(data_[cursor_ + i]))
              << (8 * i);
    }
    cursor_ += take;
    acc_bits_ = static_cast<unsigned>(8 * take);
  }

  std::span<const std::byte> data_;
  std::size_t cursor_ = 0;
  std::uint64_t acc_ = 0;
  unsigned acc_bits_ = 0;
};

[[nodiscard]] inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Delta-of-delta integer encoder.  First value: zigzag uvarint.  Then, with
/// d = v - prev and dod = d - prev_delta (both in wrapping arithmetic so
/// INT64 extremes round-trip):
///   dod == 0            -> '0'
///   dod in [-63, 64]    -> '10'   + 7 bits  (dod + 63)
///   dod in [-255, 256]  -> '110'  + 9 bits  (dod + 255)
///   dod in [-2047,2048] -> '1110' + 12 bits (dod + 2047)
///   otherwise           -> '1111' + zigzag uvarint(dod)
class DodEncoder {
 public:
  void reset() { *this = DodEncoder{}; }

  void put(BlockWriter& w, std::int64_t v) {
    if (first_) {
      w.uvarint(zigzag(v));
      prev_ = v;
      prev_delta_ = 0;
      first_ = false;
      return;
    }
    const std::int64_t delta = wrap_sub(v, prev_);
    const std::int64_t dod = wrap_sub(delta, prev_delta_);
    if (dod == 0) {
      w.bit(false);
    } else if (dod >= -63 && dod <= 64) {
      w.bits(0b01u, 2);  // LSB-first: reads as '1' then '0'
      w.bits(static_cast<std::uint64_t>(dod + 63), 7);
    } else if (dod >= -255 && dod <= 256) {
      w.bits(0b011u, 3);
      w.bits(static_cast<std::uint64_t>(dod + 255), 9);
    } else if (dod >= -2047 && dod <= 2048) {
      w.bits(0b0111u, 4);
      w.bits(static_cast<std::uint64_t>(dod + 2047), 12);
    } else {
      w.bits(0b1111u, 4);
      w.uvarint(zigzag(dod));
    }
    prev_ = v;
    prev_delta_ = delta;
  }

 private:
  static std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
  }

  std::int64_t prev_ = 0;
  std::int64_t prev_delta_ = 0;
  bool first_ = true;
};

class DodDecoder {
 public:
  void reset() { *this = DodDecoder{}; }

  [[nodiscard]] std::int64_t get(BlockReader& r) {
    if (first_) {
      prev_ = unzigzag(r.uvarint());
      prev_delta_ = 0;
      first_ = false;
      return prev_;
    }
    std::int64_t dod = 0;
    if (r.bit()) {
      if (!r.bit()) {
        dod = static_cast<std::int64_t>(r.bits(7)) - 63;
      } else if (!r.bit()) {
        dod = static_cast<std::int64_t>(r.bits(9)) - 255;
      } else if (!r.bit()) {
        dod = static_cast<std::int64_t>(r.bits(12)) - 2047;
      } else {
        dod = unzigzag(r.uvarint());
      }
    }
    prev_delta_ = wrap_add(prev_delta_, dod);
    prev_ = wrap_add(prev_, prev_delta_);
    return prev_;
  }

 private:
  static std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
  }

  std::int64_t prev_ = 0;
  std::int64_t prev_delta_ = 0;
  bool first_ = true;
};

/// Persistable XOR-chain state: the previous value's bit pattern and the
/// last explicit (leading-zeros, meaningful-length) window.  A fresh state
/// behaves as if the previous value was +0.0 with no reusable window, so
/// the first value of a chain costs the full escape (67 bits) — no special
/// first-value branch, which is what lets a chain span WAL frames.
struct XorState {
  std::uint64_t prev_bits = 0;
  std::uint8_t lead = 0;
  std::uint8_t length = 0;  // 0 = no window established yet

  void save(io::Writer& w) const {
    w.u64(prev_bits);
    w.u8(lead);
    w.u8(length);
  }
  void load(io::Reader& r) {
    prev_bits = r.u64();
    lead = r.u8();
    length = r.u8();
    if (lead > 63 || length > 64 || lead + length > 64) {
      throw CorruptData("codec: corrupt XOR window state");
    }
  }
};

/// XOR double encoder over an explicit XorState.  Per value:
///   xor == 0                        -> '0'
///   fits previous window            -> '10' + length bits
///   new window                      -> '11' + 6 bits lead + 6 bits
///                                      (length - 1) + length bits
/// Non-finite/denormal values force the escape window (lead=0, length=64):
/// 67 bits, trivially bit-exact, no window churn from adversarial patterns.
class XorEncoder {
 public:
  static void put(BlockWriter& w, XorState& s, double value) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    const std::uint64_t x = bits ^ s.prev_bits;
    s.prev_bits = bits;
    if (x == 0) {
      w.bit(false);
      return;
    }
    unsigned lead = static_cast<unsigned>(std::countl_zero(x));
    unsigned trail = static_cast<unsigned>(std::countr_zero(x));
    if (lead > 63) lead = 63;  // keep the 6-bit field honest
    unsigned length = 64 - lead - trail;
    const bool escape = !normal_or_zero(value);
    if (escape) {
      lead = 0;
      length = 64;
    }
    // Reuse the previous window when the XOR fits inside it — one control
    // bit instead of twelve window bits.
    if (!escape && s.length != 0 && lead >= s.lead &&
        lead + length <= static_cast<unsigned>(s.lead) + s.length) {
      w.bits(0b01u, 2);
      w.bits(x >> (64 - s.lead - s.length), s.length);
      return;
    }
    w.bits(0b11u, 2);
    w.bits(lead, 6);
    w.bits(length - 1, 6);
    w.bits(x >> (64 - lead - length), static_cast<unsigned>(length));
    s.lead = static_cast<std::uint8_t>(lead);
    s.length = static_cast<std::uint8_t>(length);
  }

 private:
  static bool normal_or_zero(double v) {
    const std::uint64_t b = std::bit_cast<std::uint64_t>(v);
    const std::uint64_t exponent = (b >> 52) & 0x7FFu;
    // exponent 0 with a mantissa = denormal; exponent 0x7FF = Inf/NaN.
    return exponent != 0x7FFu && (exponent != 0 || (b << 12) == 0);
  }
};

class XorDecoder {
 public:
  [[nodiscard]] static double get(BlockReader& r, XorState& s) {
    if (!r.bit()) {
      return std::bit_cast<double>(s.prev_bits);
    }
    unsigned lead = s.lead;
    unsigned length = s.length;
    if (r.bit()) {
      lead = static_cast<unsigned>(r.bits(6));
      length = static_cast<unsigned>(r.bits(6)) + 1;
      s.lead = static_cast<std::uint8_t>(lead);
      s.length = static_cast<std::uint8_t>(length);
    } else if (length == 0) {
      throw CorruptData("codec: XOR window reuse before any window");
    }
    if (lead + length > 64) {
      throw CorruptData("codec: corrupt XOR window");
    }
    const std::uint64_t x = r.bits(length) << (64 - lead - length);
    s.prev_bits ^= x;
    return std::bit_cast<double>(s.prev_bits);
  }
};

/// Convenience block forms used by snapshot sections: a self-contained
/// chain (fresh state per block) over a whole span.
void encode_f64_block(BlockWriter& w, std::span<const double> xs);
[[nodiscard]] std::size_t decode_f64_block(BlockReader& r, std::size_t count,
                                           std::vector<double>& out);
void encode_i64_block(BlockWriter& w, std::span<const std::int64_t> xs);
void decode_i64_block(BlockReader& r, std::size_t count,
                      std::vector<std::int64_t>& out);

}  // namespace larp::persist::codec
