#include "persist/snapshot.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <string_view>

#include "persist/crc32c.hpp"
#include "persist/file.hpp"
#include "util/log.hpp"

namespace larp::persist {

namespace {

// "LARPSNP1" as a little-endian u64.
constexpr std::uint64_t kMagic = 0x31504E5350524C41ull;
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;  // magic+version+epoch+size
constexpr std::size_t kFooterBytes = 4;              // masked crc32c

// Epoch digits sit between these two; parse by their lengths, never by a
// hardcoded offset (the list_wal_segments shard-id lesson).
constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".snap";

std::filesystem::path snapshot_path(const std::filesystem::path& dir,
                                    std::uint64_t epoch) {
  char name[48];
  std::snprintf(name, sizeof(name), "snapshot-%020llu.snap",
                static_cast<unsigned long long>(epoch));
  return dir / name;
}

}  // namespace

std::filesystem::path publish_snapshot(const std::filesystem::path& dir,
                                       std::uint64_t epoch,
                                       std::span<const std::byte> payload) {
  ensure_directory(dir);
  io::Writer w;
  w.u64(kMagic);
  w.u32(kSnapshotFormatVersion);
  w.u64(epoch);
  w.u64(payload.size());
  w.bytes(payload);
  const std::uint32_t crc = crc32c(w.bytes());
  w.u32(crc32c_mask(crc));

  const auto path = snapshot_path(dir, epoch);
  publish_file(path, w.bytes());
  return path;
}

std::vector<SnapshotInfo> list_snapshots(const std::filesystem::path& dir) {
  std::vector<SnapshotInfo> found;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return found;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    // Stray files — editor droppings, "snapshot-old.snap", orphaned
    // "*.snap.tmp" — must be skipped, never misparsed or thrown on: recovery
    // scans this directory after a crash, exactly when junk is most likely.
    if (name.size() <= kSnapshotPrefix.size() + kSnapshotSuffix.size() ||
        !name.starts_with(kSnapshotPrefix) || !name.ends_with(kSnapshotSuffix)) {
      continue;
    }
    const std::string_view digits(
        name.data() + kSnapshotPrefix.size(),
        name.size() - kSnapshotPrefix.size() - kSnapshotSuffix.size());
    if (std::any_of(digits.begin(), digits.end(),
                    [](unsigned char c) { return c < '0' || c > '9'; })) {
      continue;
    }
    std::uint64_t epoch = 0;
    const auto [ptr, parse] =
        std::from_chars(digits.data(), digits.data() + digits.size(), epoch);
    if (parse != std::errc{} || ptr != digits.data() + digits.size()) continue;
    found.push_back({entry.path(), epoch});
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.epoch < b.epoch; });
  return found;
}

LoadedSnapshot load_snapshot(const std::filesystem::path& path) {
  const auto contents = read_file(path);
  if (contents.size() < kHeaderBytes + kFooterBytes) {
    throw CorruptData("snapshot: file shorter than header + checksum");
  }
  io::Reader header{std::span(contents).first(kHeaderBytes)};
  if (header.u64() != kMagic) throw CorruptData("snapshot: bad magic");
  LoadedSnapshot loaded;
  loaded.version = header.u32();
  if (loaded.version == 0 || loaded.version > kSnapshotFormatVersion) {
    throw CorruptData("snapshot: unsupported format version");
  }
  loaded.epoch = header.u64();
  const std::uint64_t payload_size = header.u64();
  if (payload_size != contents.size() - kHeaderBytes - kFooterBytes) {
    throw CorruptData("snapshot: payload size does not match file size");
  }

  const auto body = std::span(contents).first(contents.size() - kFooterBytes);
  io::Reader footer{std::span(contents).last(kFooterBytes)};
  if (crc32c_unmask(footer.u32()) != crc32c(body)) {
    throw CorruptData("snapshot: checksum mismatch");
  }
  loaded.payload.assign(body.begin() + kHeaderBytes, body.end());
  return loaded;
}

std::optional<LoadedSnapshot> load_newest_valid(
    const std::filesystem::path& dir) {
  const auto snapshots = list_snapshots(dir);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    try {
      return load_snapshot(it->path);
    } catch (const Error& e) {
      LARP_LOG_WARN("persist") << "skipping invalid snapshot "
                               << it->path.string() << ": " << e.what();
    }
  }
  return std::nullopt;
}

void retain_snapshots(const std::filesystem::path& dir, std::size_t keep) {
  if (keep == 0) keep = 1;
  const auto snapshots = list_snapshots(dir);
  // Count only snapshots that validate toward the retained set, so a corrupt
  // newest file never causes deletion of the fallback it shadows.
  std::size_t valid_kept = 0;
  std::vector<std::filesystem::path> removable;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    if (valid_kept >= keep) {
      removable.push_back(it->path);
      continue;
    }
    try {
      (void)load_snapshot(it->path);
      ++valid_kept;
    } catch (const Error&) {
      // Invalid: neither retained nor trusted enough to delete siblings over.
    }
  }
  for (const auto& path : removable) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

}  // namespace larp::persist
