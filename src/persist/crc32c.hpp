// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every durable artifact the persist layer writes —
// snapshot files and write-ahead-log frames.
//
// CRC32C is chosen over the zlib CRC32 because its error-detection
// properties are strictly better for the short-frame sizes a WAL produces
// (it is the checksum of iSCSI, ext4 metadata, LevelDB/RocksDB logs), and
// because the incremental form below lets a frame header's checksum cover a
// sequence number plus a payload without concatenating them first.
//
// Implementation: slicing-by-8 table lookup, ~1 byte/cycle without any ISA
// dependency, so checksumming never dominates the fsync-bound append path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace larp::persist {

/// One-shot CRC32C of a byte range.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data) noexcept;

/// Incremental form: extend a running checksum with more bytes.  Start from
/// crc32c_init() and finish with crc32c_finish() (the init/finish pair hides
/// the pre/post inversion of the reflected algorithm).
[[nodiscard]] std::uint32_t crc32c_init() noexcept;
[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t state,
                                          std::span<const std::byte> data) noexcept;
[[nodiscard]] std::uint32_t crc32c_finish(std::uint32_t state) noexcept;

/// Masked form stored on disk: a checksum of data that itself embeds
/// checksums is vulnerable to systematic collisions, so the stored value is
/// rotated and offset (the LevelDB/RocksDB masking constant).
[[nodiscard]] constexpr std::uint32_t crc32c_mask(std::uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
[[nodiscard]] constexpr std::uint32_t crc32c_unmask(std::uint32_t masked) noexcept {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace larp::persist
