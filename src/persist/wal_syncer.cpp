#include "persist/wal_syncer.hpp"

#include <algorithm>
#include <utility>

namespace larp::persist {

WalSyncer::WalSyncer(std::vector<WalWriter*> writers, Config config)
    : writers_(std::move(writers)),
      config_(std::move(config)),
      clock_(config_.clock ? config_.clock
                           : [] { return std::chrono::steady_clock::now(); }) {
  if (config_.backlog_frames == 0) config_.backlog_frames = 1;
}

WalSyncer::~WalSyncer() { stop(); }

void WalSyncer::start() {
  if (worker_) return;
  // Poll at a fraction of the deadline so a frame published right after a
  // pass still goes durable within ~deadline, not deadline + period.
  const auto period = std::clamp(config_.deadline / 4,
                                 std::chrono::milliseconds(1),
                                 std::chrono::milliseconds(1000));
  worker_.emplace(period, [this] { (void)poll(); });
}

void WalSyncer::stop() { worker_.reset(); }

void WalSyncer::notify() {
  if (worker_) worker_->notify();
}

std::size_t WalSyncer::poll() {
  if (config_.tick) config_.tick();
  const auto now = clock_();
  std::size_t synced = 0;
  for (WalWriter* writer : writers_) {
    const std::size_t backlog = writer->unsynced_appends();
    if (backlog == 0) continue;
    // Deadline age is measured from the writer's last durability advance —
    // a conservative upper bound on how long any published frame has been
    // waiting, so the loss window stays time-bounded even under a trickle
    // of sub-backlog commits.
    if (backlog >= config_.backlog_frames ||
        now - writer->last_sync_time() >= config_.deadline) {
      (void)writer->sync_published();
      ++synced;
    }
  }
  if (synced > 0) syncs_.fetch_add(synced, std::memory_order_relaxed);
  return synced;
}

void WalSyncer::flush() {
  for (WalWriter* writer : writers_) {
    if (writer->unsynced_appends() > 0) {
      (void)writer->sync_published();
      syncs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace larp::persist
