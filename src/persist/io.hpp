// persist::io — the explicit, versioned binary encoding every durable
// artifact (snapshot payloads, WAL frames) is written in.
//
// Encoding rules
// --------------
//  * every integer is little-endian with an explicit width (u8/u32/u64/i64);
//    std::size_t never hits the wire directly — container sizes travel as
//    u64, so a snapshot written on one ABI reads back on another;
//  * doubles travel as the little-endian bytes of their IEEE-754 bit
//    pattern (std::bit_cast), which is what makes restore *bit-identical*:
//    no text round-trip, no rounding;
//  * strings and byte blobs are u64-length-prefixed;
//  * there is no field tagging — layout is fixed per format version, and the
//    container formats (snapshot header, WAL frame header) carry the version
//    plus a CRC32C over everything, so a reader never parses bytes it cannot
//    trust.
//
// Reader is strictly bounds-checked: any overrun or contract mismatch throws
// CorruptData, which the recovery layer treats as "stop trusting this file
// here" rather than a crash.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace larp::persist {

/// Thrown when durable bytes fail validation (checksum mismatch, truncated
/// buffer, impossible length, wrong magic/version).  Recovery code catches
/// this to fall back to the previous valid artifact.
class CorruptData : public Error {
 public:
  using Error::Error;
};

namespace io {

/// Append-only little-endian encoder into an in-memory buffer.  The buffer
/// is exposed as bytes() for framing/checksumming by the caller; reusing one
/// Writer across frames (clear()) keeps the append path allocation-free in
/// steady state.
class Writer {
 public:
  void clear() noexcept { buffer_.clear(); }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

  void u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { raw_le(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    const auto* data = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), data, data + s.size());
  }

  void bytes(std::span<const std::byte> blob) {
    buffer_.insert(buffer_.end(), blob.begin(), blob.end());
  }

  /// u64 count followed by the raw IEEE-754 bit patterns.
  void f64_span(std::span<const double> xs) {
    u64(xs.size());
    for (double x : xs) f64(x);
  }

  /// u64 count followed by u64 values.
  void u64_span(std::span<const std::size_t> xs) {
    u64(xs.size());
    for (std::size_t x : xs) u64(x);
  }

  /// Reserves a u64 slot to be patched later (e.g. a blob length written
  /// before the blob is encoded); returns the slot's byte offset.
  [[nodiscard]] std::size_t reserve_u64() {
    const std::size_t at = buffer_.size();
    u64(0);
    return at;
  }
  void patch_u64(std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_[at + static_cast<std::size_t>(i)] =
          static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
    }
  }

 private:
  template <typename U>
  void raw_le(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buffer_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
    }
  }

  std::vector<std::byte> buffer_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - cursor_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return cursor_; }
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ == data_.size(); }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return std::to_integer<std::uint8_t>(data_[cursor_++]);
  }
  [[nodiscard]] std::uint32_t u32() { return raw_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return raw_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(raw_le<std::uint64_t>());
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(raw_le<std::uint64_t>()); }
  [[nodiscard]] bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw CorruptData("persist::io: boolean byte out of range");
    return v == 1;
  }

  [[nodiscard]] std::string str() { return std::string(str_view()); }

  /// Borrowed variant of str(): valid only while the underlying buffer is.
  /// The network request path assigns these into reused std::strings so a
  /// steady-state decode allocates nothing.
  [[nodiscard]] std::string_view str_view() {
    const std::uint64_t n = length(u64());
    const std::string_view s(reinterpret_cast<const char*>(data_.data() + cursor_),
                             static_cast<std::size_t>(n));
    cursor_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n) {
    need(n);
    const auto view = data_.subspan(cursor_, n);
    cursor_ += n;
    return view;
  }

  [[nodiscard]] std::vector<double> f64_vector() {
    const std::uint64_t n = length(u64(), sizeof(double));
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (auto& x : xs) x = f64();
    return xs;
  }

  [[nodiscard]] std::vector<std::size_t> u64_vector() {
    const std::uint64_t n = length(u64(), sizeof(std::uint64_t));
    std::vector<std::size_t> xs(static_cast<std::size_t>(n));
    for (auto& x : xs) x = static_cast<std::size_t>(u64());
    return xs;
  }

  /// Validates that a u64-encoded count is actually satisfiable by the
  /// remaining bytes (guards against reserving gigabytes off a corrupt
  /// length before the per-element reads would have caught it).
  [[nodiscard]] std::uint64_t length(std::uint64_t n, std::size_t element_size = 1) {
    if (element_size == 0 || n > remaining() / element_size) {
      throw CorruptData("persist::io: length prefix exceeds remaining bytes");
    }
    return n;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw CorruptData("persist::io: read past end of buffer");
    }
  }

  template <typename U>
  [[nodiscard]] U raw_le() {
    need(sizeof(U));
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(std::to_integer<std::uint8_t>(data_[cursor_ + i]))
           << (8 * i);
    }
    cursor_ += sizeof(U);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t cursor_ = 0;
};

}  // namespace io
}  // namespace larp::persist
