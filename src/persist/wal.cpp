#include "persist/wal.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "persist/crc32c.hpp"
#include "util/log.hpp"

namespace larp::persist {

namespace {

// "LARPWAL1" as a little-endian u64.
constexpr std::uint64_t kMagic = 0x314C415750524C41ull;
constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t kFrameHeaderBytes = 4 + 4;  // length + masked crc
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

std::filesystem::path segment_path(const std::filesystem::path& dir,
                                   std::uint32_t shard, std::uint64_t start_seq) {
  char name[48];
  std::snprintf(name, sizeof(name), "wal-%04u-%020llu.log", shard,
                static_cast<unsigned long long>(start_seq));
  return dir / name;
}

struct SegmentScan {
  std::uint64_t start_seq = 0;
  std::uint64_t next_seq = 0;     // after the last valid contiguous frame
  std::uint64_t valid_bytes = 0;  // file offset just past that frame
  bool clean = true;              // false: trailing torn/corrupt bytes exist
};

/// Walks a segment's frames, invoking fn(seq, payload) for each valid one in
/// order, stopping at the first torn or corrupt frame.  Sequence numbers
/// must be contiguous from the segment's start_seq — a gap is corruption.
/// Throws CorruptData only for an unusable header; frame damage is reported
/// via `clean` so callers recover the valid prefix.
template <typename Fn>
SegmentScan scan_segment(std::span<const std::byte> contents,
                         std::uint32_t shard, const Fn& fn) {
  if (contents.size() < kSegmentHeaderBytes) {
    throw CorruptData("wal: segment shorter than its header");
  }
  io::Reader header(contents.first(kSegmentHeaderBytes));
  if (header.u64() != kMagic) throw CorruptData("wal: bad segment magic");
  const std::uint32_t version = header.u32();
  if (version == 0 || version > kWalFormatVersion) {
    throw CorruptData("wal: unsupported segment version");
  }
  if (header.u32() != shard) throw CorruptData("wal: segment shard mismatch");

  SegmentScan scan;
  scan.start_seq = header.u64();
  scan.next_seq = scan.start_seq;
  scan.valid_bytes = kSegmentHeaderBytes;

  std::size_t offset = kSegmentHeaderBytes;
  while (offset < contents.size()) {
    if (contents.size() - offset < kFrameHeaderBytes) break;  // torn header
    io::Reader frame_header(contents.subspan(offset, kFrameHeaderBytes));
    const std::uint32_t length = frame_header.u32();
    const std::uint32_t stored_crc = crc32c_unmask(frame_header.u32());
    if (length < 8 || length > kMaxFrameBytes ||
        length > contents.size() - offset - kFrameHeaderBytes) {
      break;  // torn or corrupt length
    }
    const auto body = contents.subspan(offset + kFrameHeaderBytes, length);
    if (crc32c(body) != stored_crc) break;  // corrupt frame
    io::Reader body_reader(body);
    const std::uint64_t seq = body_reader.u64();
    if (seq != scan.next_seq) break;  // sequence hole: cannot trust onwards
    fn(seq, body.subspan(8));
    scan.next_seq = seq + 1;
    offset += kFrameHeaderBytes + length;
    scan.valid_bytes = offset;
  }
  scan.clean = (scan.valid_bytes == contents.size());
  return scan;
}

}  // namespace

std::vector<WalSegmentInfo> list_wal_segments(const std::filesystem::path& dir,
                                              std::uint32_t shard) {
  // %04u is a minimum width: shard ids >= 10000 widen the prefix, so the
  // start_seq digits must be located by the actual prefix length, not a
  // hardcoded offset.
  char prefix[24];
  const auto prefix_len = static_cast<std::size_t>(
      std::snprintf(prefix, sizeof(prefix), "wal-%04u-", shard));
  std::vector<WalSegmentInfo> found;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return found;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(prefix) || !name.ends_with(".log") ||
        name.size() < prefix_len + 4) {
      continue;
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - 4);
    std::uint64_t start_seq = 0;
    const auto [ptr, parse] =
        std::from_chars(digits.data(), digits.data() + digits.size(), start_seq);
    if (parse != std::errc{} || ptr != digits.data() + digits.size()) continue;
    found.push_back({entry.path(), start_seq});
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.start_seq < b.start_seq; });
  return found;
}

WalReplayReport replay_wal(const std::filesystem::path& dir, std::uint32_t shard,
                           std::uint64_t from_seq,
                           const std::function<void(const WalFrame&)>& fn) {
  WalReplayReport report;
  report.next_seq = 0;
  const auto segments = list_wal_segments(dir, shard);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    // Segments must themselves be contiguous: segment k starts where k-1's
    // valid frames ended.  A mismatch (missing file, mid-log damage) ends
    // the trustworthy prefix.
    if (i > 0 && segments[i].start_seq != report.next_seq) {
      report.truncated_tail = true;
      return report;
    }
    std::vector<std::byte> contents;
    SegmentScan scan;
    try {
      contents = read_file(segments[i].path);
      scan = scan_segment(contents, shard, [&](std::uint64_t seq,
                                               std::span<const std::byte> payload) {
        if (seq >= from_seq) {
          fn(WalFrame{seq, payload});
          ++report.frames_delivered;
        } else {
          ++report.frames_skipped;
        }
      });
    } catch (const Error& e) {
      LARP_LOG_WARN("persist") << "wal replay stopped at unreadable segment "
                               << segments[i].path.string() << ": " << e.what();
      report.truncated_tail = true;
      return report;
    }
    // Invariant: a frameless segment (header only) still advances next_seq
    // to its start_seq, because scan.next_seq starts there.
    report.next_seq = scan.next_seq;
    if (!scan.clean) {
      report.truncated_tail = true;
      return report;
    }
  }
  return report;
}

void repair_wal(const std::filesystem::path& dir, std::uint32_t shard,
                std::uint64_t next_seq) {
  const auto segments = list_wal_segments(dir, shard);
  for (const auto& segment : segments) {
    if (segment.start_seq >= next_seq) {
      std::error_code ec;
      std::filesystem::remove(segment.path, ec);
      continue;
    }
    // Segment starts below the cut: keep its frames below next_seq.
    std::vector<std::byte> contents;
    try {
      contents = read_file(segment.path);
    } catch (const Error&) {
      std::error_code ec;
      std::filesystem::remove(segment.path, ec);
      continue;
    }
    std::uint64_t cut_bytes = kSegmentHeaderBytes;
    try {
      std::uint64_t offset_after = kSegmentHeaderBytes;
      const auto scan = scan_segment(
          contents, shard,
          [&](std::uint64_t seq, std::span<const std::byte> payload) {
            offset_after += kFrameHeaderBytes + 8 + payload.size();
            if (seq < next_seq) cut_bytes = offset_after;
          });
      (void)scan;
    } catch (const Error&) {
      std::error_code ec;
      std::filesystem::remove(segment.path, ec);
      continue;
    }
    if (cut_bytes < contents.size()) {
      AppendFile file;
      file.open(segment.path);
      file.truncate(cut_bytes);
      file.sync();
    }
  }
  sync_directory(dir);
}

WalWriter::WalWriter(std::filesystem::path dir, std::uint32_t shard,
                     WalConfig config, std::uint64_t expected_next_seq)
    : dir_(std::move(dir)),
      shard_(shard),
      config_(std::move(config)),
      clock_(config_.clock ? config_.clock
                           : [] { return std::chrono::steady_clock::now(); }) {
  if (config_.fsync_every_n == 0) config_.fsync_every_n = 1;
  ensure_directory(dir_);
  last_sync_ = now();

  const auto segments = list_wal_segments(dir_, shard_);
  if (segments.empty()) {
    next_seq_ = expected_next_seq == kAnySeq ? 0 : expected_next_seq;
    published_seq_ = durable_seq_ = next_seq_;
    open_segment(next_seq_);
    return;
  }

  // Adopt the newest segment: scan its valid prefix, truncate any torn
  // tail, and continue appending after the last durable frame.
  const auto& newest = segments.back();
  const auto contents = read_file(newest.path);
  const auto scan =
      scan_segment(contents, shard_, [](std::uint64_t, std::span<const std::byte>) {});
  next_seq_ = scan.next_seq;
  published_seq_ = durable_seq_ = next_seq_;
  if (expected_next_seq != kAnySeq && expected_next_seq != next_seq_) {
    throw CorruptData(
        "wal: directory position disagrees with the engine's replay "
        "watermark; refusing to fork the log");
  }
  file_.open(newest.path);
  if (!scan.clean) {
    LARP_LOG_WARN("persist") << "wal: truncating torn tail of "
                             << newest.path.string() << " at byte "
                             << scan.valid_bytes;
    file_.truncate(scan.valid_bytes);
    file_.sync();
  }
  segment_size_ = scan.valid_bytes;
  if (segment_size_ >= config_.segment_bytes) {
    file_.sync();
    open_segment(next_seq_);
  }
}

void WalWriter::open_segment(std::uint64_t start_seq) {
  io::Writer header;
  header.u64(kMagic);
  header.u32(kWalFormatVersion);
  header.u32(shard_);
  header.u64(start_seq);
  {
    // The fd swap must be invisible to a concurrent sync_published(): its
    // duplicate_handle() call happens under the same mutex, so it either
    // dups the outgoing descriptor (kept alive by the dup) or the new one.
    std::lock_guard lock(sync_mutex_);
    file_.open(segment_path(dir_, shard_, start_seq));
  }
  file_.append(header.bytes());
  segment_size_ = header.size();
  // Make the segment's existence durable before any frame relies on it.
  file_.sync();
  sync_directory(dir_);
}

std::uint64_t WalWriter::append(std::span<const std::byte> payload,
                                std::size_t weight) {
  const std::uint64_t seq = stage(payload, weight);
  commit();
  return seq;
}

std::uint64_t WalWriter::stage(std::span<const std::byte> payload,
                               std::size_t weight) {
  const std::uint64_t seq = next_seq_++;

  const std::size_t begin = frame_scratch_.size();
  const std::size_t total = kFrameHeaderBytes + 8 + payload.size();
  if (frame_scratch_.capacity() < begin + total) {
    frame_scratch_.reserve(begin + total);
  }
  const auto push_le = [&](auto v, std::size_t bytes) {
    for (std::size_t i = 0; i < bytes; ++i) {
      frame_scratch_.push_back(
          static_cast<std::byte>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFFu));
    }
  };
  push_le(static_cast<std::uint32_t>(8 + payload.size()), 4);
  push_le(std::uint32_t{0}, 4);  // crc slot, patched below
  push_le(seq, 8);
  frame_scratch_.insert(frame_scratch_.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32c_mask(crc32c(
      std::span(frame_scratch_).subspan(begin + kFrameHeaderBytes)));
  for (std::size_t i = 0; i < 4; ++i) {
    frame_scratch_[begin + 4 + i] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xFFu);
  }
  staged_sizes_.push_back(static_cast<std::uint32_t>(total));
  staged_weights_.push_back(
      static_cast<std::uint32_t>(std::max<std::size_t>(1, weight)));
  return seq;
}

void WalWriter::commit() {
  if (staged_sizes_.empty()) return;
  const std::span<const std::byte> staged(frame_scratch_);
  // Sequence number / record count after staged frame i (for opening the
  // next segment at the right start — and publishing the right record
  // watermark — when frame i crosses the rotation boundary).
  std::uint64_t seq_after = next_seq_ - staged_sizes_.size();
  std::uint64_t records_after = 0;
  {
    std::lock_guard lock(sync_mutex_);
    records_after = published_records_;
  }
  std::size_t pos = 0;        // bytes of the group walked so far
  std::size_t run_begin = 0;  // start of the run destined for this segment
  for (std::size_t i = 0; i < staged_sizes_.size(); ++i) {
    const std::uint32_t frame_bytes = staged_sizes_[i];
    pos += frame_bytes;
    segment_size_ += frame_bytes;
    ++seq_after;
    records_after += staged_weights_[i];
    if (segment_size_ >= config_.segment_bytes) {
      // Rotation boundary inside the group: flush the run ending with this
      // frame, make the completed segment durable, and continue the group in
      // a fresh segment starting at the next staged sequence — replay's
      // segment-contiguity check then holds however far a crash lets the
      // remainder get.  Rotation syncs inline even under Async (amortized
      // once per segment_bytes), preserving the invariant that only the
      // current segment holds non-durable bytes.
      file_.append(staged.subspan(run_begin, pos - run_begin));
      publish(seq_after, records_after);
      sync();
      open_segment(seq_after);
      run_begin = pos;
    }
  }
  if (pos > run_begin) {
    file_.append(staged.subspan(run_begin, pos - run_begin));
  }
  publish(next_seq_, records_after);
  frame_scratch_.clear();
  staged_sizes_.clear();
  staged_weights_.clear();
  // One policy decision for the whole group, which counts as its record
  // weight toward EveryN (records already synced by a mid-group rotation
  // excluded — the published/durable spread only covers the final run).
  maybe_sync();
}

void WalWriter::publish(std::uint64_t seq, std::uint64_t records) {
  std::lock_guard lock(sync_mutex_);
  published_seq_ = seq;
  published_records_ = records;
}

void WalWriter::maybe_sync() {
  switch (config_.fsync) {
    case FsyncPolicy::Always:
      // "Lose nothing" cannot be met by a background sync: Always stays
      // inline in both durability modes.
      sync();
      break;
    case FsyncPolicy::EveryN:
      if (config_.mode == DurabilityMode::Async) break;  // syncer's job
      if (unsynced_appends() >= config_.fsync_every_n) sync();
      break;
    case FsyncPolicy::Interval:
      if (config_.mode == DurabilityMode::Async) break;  // syncer's job
      if (now() - last_sync_time() >= config_.fsync_interval) sync();
      break;
  }
}

void WalWriter::sync() {
  // Appender-side: every byte handed to write(2) so far becomes durable.
  // published_seq_ cannot advance concurrently (the owner's lock serializes
  // commit() with us), so durable := published is exact.
  file_.sync();
  std::lock_guard lock(sync_mutex_);
  durable_seq_ = published_seq_;
  durable_records_ = published_records_;
  last_sync_ = now();
}

std::uint64_t WalWriter::flush() {
  sync();
  return durable_seq();
}

std::uint64_t WalWriter::sync_published() {
  int fd = -1;
  std::uint64_t target = 0;
  std::uint64_t target_records = 0;
  {
    std::lock_guard lock(sync_mutex_);
    target = published_seq_;
    target_records = published_records_;
    if (durable_seq_ >= target) return durable_seq_;
    fd = file_.duplicate_handle();
  }
  // The fdatasync runs outside sync_mutex_ so commit()'s publish() and even
  // a rotation never wait on it.  The dup'd descriptor shares the open file
  // description of whatever segment was current when `target` was read; all
  // frames below `target` live either in that file or in already-synced
  // older segments (rotation syncs before switching), so syncing it makes
  // everything up to `target` durable.
  try {
    sync_handle(fd);
  } catch (...) {
    close_handle(fd);
    throw;
  }
  close_handle(fd);
  std::lock_guard lock(sync_mutex_);
  // max(): an inline sync() may have advanced the watermark past our target
  // while we were in fdatasync.
  durable_seq_ = std::max(durable_seq_, target);
  durable_records_ = std::max(durable_records_, target_records);
  last_sync_ = now();
  return durable_seq_;
}

bool WalWriter::sync_if_due() {
  if (config_.fsync != FsyncPolicy::Interval ||
      config_.mode == DurabilityMode::Async || unsynced_appends() == 0) {
    return false;
  }
  if (now() - last_sync_time() < config_.fsync_interval) return false;
  sync();
  return true;
}

std::uint64_t WalWriter::published_seq() const {
  std::lock_guard lock(sync_mutex_);
  return published_seq_;
}

std::uint64_t WalWriter::durable_seq() const {
  std::lock_guard lock(sync_mutex_);
  return durable_seq_;
}

std::chrono::steady_clock::time_point WalWriter::last_sync_time() const {
  std::lock_guard lock(sync_mutex_);
  return last_sync_;
}

std::size_t WalWriter::unsynced_appends() const {
  std::lock_guard lock(sync_mutex_);
  return static_cast<std::size_t>(published_records_ - durable_records_);
}

void WalWriter::prune_below(std::uint64_t min_seq) {
  const auto segments = list_wal_segments(dir_, shard_);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // A segment is removable when the NEXT segment starts at or below
    // min_seq: every frame in it is then older than the retention point.
    if (segments[i + 1].start_seq <= min_seq &&
        segments[i].path != file_.path()) {
      std::error_code ec;
      std::filesystem::remove(segments[i].path, ec);
    }
  }
}

}  // namespace larp::persist
