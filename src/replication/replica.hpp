// replication::Replica — the follower side of streaming WAL replication.
//
// A Replica owns a background thread that connects to a leader's
// ReplicationServer, bootstraps a local PredictionEngine when it has no
// state of its own (the leader ships a snapshot container; the replica
// publishes it into its data_dir and restores from it — so the follower's
// identity configuration comes from the leader, not from local flags), then
// applies the live kReplFrames stream through replicate_frames() and acks
// applied positions on a cadence.
//
// The engine it builds is a durable kFollower: frames are WAL-logged locally
// before applying, so a killed follower restarts from its own directory and
// resumes the stream from its acked position — no re-bootstrap.  Reads go
// through the usual PredictionEngine::predict() path, which enforces the
// configured max_staleness (heartbeats whose positions the replica has
// covered drive note_caught_up()).
//
// Reconnects are automatic with exponential backoff.  The one unrecoverable
// case is the leader demanding a re-bootstrap after the engine is live
// (e.g. the follower was partitioned long enough for the leader to prune
// past its position, under a snapshot cadence that outran the retain floor):
// the engine pointer is already published to callers, so the replica marks
// itself failed and stops — restart the follower process to re-bootstrap.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/prediction_engine.hpp"

namespace larp::replication {

struct ReplicaConfig {
  std::string leader_host = "127.0.0.1";
  std::uint16_t leader_port = 0;
  /// Local durability directory (required): bootstrap snapshots land here
  /// and replicated frames are WAL-logged here before applying.
  std::filesystem::path data_dir;
  /// Engine runtime knobs (threads, WAL tuning, max_staleness).  The role is
  /// forced to kFollower and durability.data_dir to `data_dir`; identity
  /// configuration (lar, quality, shards) comes from the leader's snapshot.
  serve::EngineConfig engine;
  std::chrono::milliseconds connect_timeout{1000};
  /// Ack cadence; also the stream-poll tick, so it bounds how quickly the
  /// replica notices new frames, heartbeats, and stop().
  std::chrono::milliseconds ack_interval{50};
  std::chrono::milliseconds reconnect_backoff{100};
  std::chrono::milliseconds max_backoff{2000};
};

class Replica {
 public:
  struct Stats {
    std::size_t reconnects = 0;  // connection attempts after the first
    std::size_t bootstraps = 0;  // snapshot bootstraps completed
    bool connected = false;
    bool failed = false;  // unrecoverable (see header comment); stop+restart
  };

  /// Throws InvalidArgument when data_dir is empty.
  Replica(predictors::PredictorPool pool_prototype, ReplicaConfig config);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Spawns the replication thread.  If data_dir already holds a snapshot,
  /// the engine is restored locally before the first connect (so a restarted
  /// follower serves reads immediately, before the leader is even reachable).
  void start();
  /// Joins the replication thread.  Idempotent; the destructor calls it.
  void stop();

  /// The follower engine, or nullptr until bootstrap/restore completes.
  /// Stable once non-null (valid until the Replica is destroyed).
  [[nodiscard]] serve::PredictionEngine* engine() const noexcept {
    return engine_ptr_.load(std::memory_order_acquire);
  }

  /// Blocks until engine() is non-null, the replica fails, or the timeout
  /// lapses.  Returns engine() (nullptr on timeout/failure).
  serve::PredictionEngine* wait_until_ready(std::chrono::milliseconds timeout);

  [[nodiscard]] Stats stats() const;

 private:
  void run();
  /// One connection's lifetime: handshake (+ bootstrap), stream, acks.
  /// Returns on disconnect or stop(); throws on protocol violations.
  void stream_once();
  /// Restores the engine from data_dir (follower role forced) and publishes
  /// it to engine().
  void adopt_engine();

  predictors::PredictorPool pool_prototype_;
  ReplicaConfig config_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::size_t> reconnects_{0};
  std::atomic<std::size_t> bootstraps_{0};

  mutable std::mutex ready_mutex_;
  std::condition_variable ready_cv_;
  std::unique_ptr<serve::PredictionEngine> engine_;  // owned; set once
  std::atomic<serve::PredictionEngine*> engine_ptr_{nullptr};
};

}  // namespace larp::replication
